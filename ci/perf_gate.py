#!/usr/bin/env python3
"""Perf regression gate: compare a fresh bench_timing run to the
committed baseline.

Usage: perf_gate.py <baseline.json> <current.json> <tolerance>

For every benchmark present in BOTH files, the current `min_s` must be
at most `tolerance` x the baseline `min_s`. The gate compares `min_s`
(not mean) because wall-clock noise on a shared runner is strictly
additive — nothing makes a deterministic simulation faster than its
code — so the minimum over warm rounds is the statistic that tracks
the code, not the host. The tolerance absorbs the CI-runner-vs-dev-box
hardware gap plus residual scheduling noise; real algorithmic
regressions (an accidental O(n) scan in the hot loop, a lost
memoization path) historically cost 3x or more and land well past any
sane tolerance.

Always prints the comparison table; exits 1 if any benchmark breaches.
The committed baseline (BENCH_simulator.json) is refreshed whenever a
perf-relevant PR lands, so the gate ratchets with the simulator.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, current_path, tol_s = sys.argv[1:4]
    tol = float(tol_s)
    baseline = {
        b["name"]: b for b in json.load(open(baseline_path))["benchmarks"]
    }
    current = {
        b["name"]: b for b in json.load(open(current_path))["benchmarks"]
    }
    shared = [n for n in current if n in baseline]
    if not shared:
        print("perf gate: no shared benchmarks between "
              f"{baseline_path} and {current_path}", file=sys.stderr)
        return 2

    rows = []
    failed = []
    for name in shared:
        base = baseline[name]["min_s"]
        cur = current[name]["min_s"]
        limit = base * tol
        ratio = cur / base if base > 0 else float("inf")
        ok = cur <= limit
        rows.append((name, base, cur, ratio, limit, "ok" if ok else "FAIL"))
        if not ok:
            failed.append(name)

    header = (f"{'benchmark':<18} {'base min_s':>10} {'cur min_s':>10} "
              f"{'ratio':>6} {'limit_s':>8}  verdict")
    print(header)
    print("-" * len(header))
    for name, base, cur, ratio, limit, verdict in rows:
        print(f"{name:<18} {base:>10.3f} {cur:>10.3f} "
              f"{ratio:>6.2f} {limit:>8.3f}  {verdict}")

    if failed:
        print(f"\nperf gate FAILED ({tol:.1f}x tolerance): "
              + ", ".join(failed), file=sys.stderr)
        return 1
    print(f"\nperf gate passed ({tol:.1f}x tolerance, "
          f"{len(shared)} benchmark(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
