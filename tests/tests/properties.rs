//! Property-based tests (proptest) over the core data structures and
//! invariants: LPM trie vs brute force, cuckoo map vs `HashMap`,
//! incremental vs full checksums, config-parser round-trips, cache
//! simulator invariants, layout reordering, and histogram percentiles.

use proptest::prelude::*;

mod lpm {
    use super::*;
    use pm_elements::trie::{RadixTrie, Route};

    fn brute_force(prefixes: &[(u32, u8, u16)], ip: u32) -> Option<u16> {
        prefixes
            .iter()
            .filter(|&&(p, l, _)| {
                let mask = if l == 0 {
                    0
                } else {
                    u32::MAX << (32 - u32::from(l))
                };
                ip & mask == p & mask
            })
            .max_by_key(|&&(_, l, _)| l)
            .map(|&(_, _, port)| port)
    }

    proptest! {
        /// The radix trie agrees with a brute-force longest-prefix scan
        /// for arbitrary route tables and lookups.
        #[test]
        fn trie_matches_brute_force(
            routes in proptest::collection::vec((any::<u32>(), 0u8..=32, any::<u16>()), 1..40),
            ips in proptest::collection::vec(any::<u32>(), 1..60),
        ) {
            // Deduplicate (prefix, len) pairs keeping the LAST (insert
            // replaces) — align the model accordingly.
            let mut t = RadixTrie::new();
            let mut canonical: Vec<(u32, u8, u16)> = Vec::new();
            for &(p, l, port) in &routes {
                let mask = if l == 0 { 0 } else { u32::MAX << (32 - u32::from(l)) };
                let key = (p & mask, l);
                canonical.retain(|&(cp, cl, _)| (cp, cl) != key);
                canonical.push((p & mask, l, port));
                t.insert(p, l, Route { port, gateway: 0 });
            }
            for ip in ips {
                prop_assert_eq!(
                    t.lookup(ip).map(|r| r.port),
                    brute_force(&canonical, ip),
                    "ip {:#x}", ip
                );
            }
        }
    }
}

mod cuckoo {
    use super::*;
    use pm_elements::cuckoo::{CuckooHash, InsertOutcome};
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u16, u32),
        Remove(u16),
        Lookup(u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
            any::<u16>().prop_map(|k| Op::Remove(k % 512)),
            any::<u16>().prop_map(|k| Op::Lookup(k % 512)),
        ]
    }

    proptest! {
        /// The cuckoo table behaves like `HashMap` for arbitrary
        /// operation sequences (sized so it never fills).
        #[test]
        fn cuckoo_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..300)) {
            let mut c: CuckooHash<u16, u32> = CuckooHash::new(512); // 2048 slots
            let mut m: HashMap<u16, u32> = HashMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_ne!(c.insert(k, v), InsertOutcome::Full);
                        m.insert(k, v);
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(c.remove(&k), m.remove(&k));
                    }
                    Op::Lookup(k) => {
                        prop_assert_eq!(c.lookup(&k), m.get(&k).copied());
                    }
                }
                prop_assert_eq!(c.len(), m.len());
            }
        }
    }
}

mod checksum {
    use super::*;
    use pm_packet::checksum::{checksum, update16, update32};

    proptest! {
        /// RFC 1624 incremental updates agree with full recomputation for
        /// arbitrary buffers and 16-bit field rewrites.
        #[test]
        fn incremental16_equals_recompute(
            mut data in proptest::collection::vec(any::<u8>(), 2..256),
            off in any::<proptest::sample::Index>(),
            new in any::<u16>(),
        ) {
            let off = (off.index(data.len() - 1)) & !1; // word-aligned
            let before = checksum(&data);
            let old = u16::from_be_bytes([data[off], data[off + 1]]);
            data[off..off + 2].copy_from_slice(&new.to_be_bytes());
            prop_assert_eq!(update16(before, old, new), checksum(&data));
        }

        /// Same for 32-bit rewrites (NAT address rewriting).
        #[test]
        fn incremental32_equals_recompute(
            mut data in proptest::collection::vec(any::<u8>(), 4..256),
            off in any::<proptest::sample::Index>(),
            new in any::<u32>(),
        ) {
            let off = (off.index(data.len() - 3)) & !1;
            let before = checksum(&data);
            let old = u32::from_be_bytes([data[off], data[off+1], data[off+2], data[off+3]]);
            data[off..off + 4].copy_from_slice(&new.to_be_bytes());
            prop_assert_eq!(update32(before, old, new), checksum(&data));
        }
    }
}

mod parser {
    use super::*;
    use packetmill::ConfigGraph;

    fn ident() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
    }

    proptest! {
        /// parse(pretty(parse(text))) is a fixpoint: re-parsing the
        /// pretty-printed configuration reproduces the same structure.
        #[test]
        fn pretty_print_round_trip(
            names in proptest::collection::hash_set(ident(), 2..8),
            bursts in proptest::collection::vec(1u32..256, 2..8),
        ) {
            let names: Vec<String> = names.into_iter().collect();
            let mut text = String::new();
            for (i, n) in names.iter().enumerate() {
                let burst = bursts[i % bursts.len()];
                text.push_str(&format!("{n} :: Null(BURST {burst});\n"));
            }
            // Chain them all.
            text.push_str(&names.join(" -> "));
            text.push(';');

            let g1 = ConfigGraph::parse(&text).unwrap();
            let g2 = ConfigGraph::parse(&g1.to_click()).unwrap();
            prop_assert_eq!(g1.declarations.len(), g2.declarations.len());
            prop_assert_eq!(g1.connections.len(), g2.connections.len());
            for (a, b) in g1.declarations.iter().zip(&g2.declarations) {
                prop_assert_eq!(&a.name, &b.name);
                prop_assert_eq!(&a.class, &b.class);
                prop_assert_eq!(&a.args, &b.args);
            }
        }
    }
}

mod cache {
    use super::*;
    use pm_mem::{AccessKind, MemoryHierarchy};

    proptest! {
        /// Temporal locality invariant: any address accessed twice in
        /// immediate succession hits L1 the second time (zero uncore
        /// stall), regardless of history.
        #[test]
        fn repeat_access_hits(
            history in proptest::collection::vec(any::<u32>(), 0..200),
            addr in any::<u32>(),
        ) {
            let mut m = MemoryHierarchy::skylake(1);
            for h in history {
                m.access(0, u64::from(h) * 64, 8, AccessKind::Load);
            }
            m.access(0, u64::from(addr) * 64, 8, AccessKind::Load);
            let c = m.access(0, u64::from(addr) * 64, 8, AccessKind::Load);
            prop_assert_eq!(c.uncore_ns, 0.0);
            prop_assert!(c.cycles <= 1.0, "L1 hit expected, stall {}", c.cycles);
        }

        /// Counter monotonicity and consistency: misses never exceed
        /// loads at any level.
        #[test]
        fn counters_consistent(ops in proptest::collection::vec((any::<u32>(), any::<bool>()), 1..300)) {
            let mut m = MemoryHierarchy::skylake(1);
            for (a, is_load) in ops {
                let kind = if is_load { AccessKind::Load } else { AccessKind::Store };
                m.access(0, u64::from(a), 8, kind);
            }
            let c = m.counters();
            prop_assert!(c.l1d_load_misses <= c.loads);
            prop_assert!(c.llc_loads <= c.l1d_load_misses);
            prop_assert!(c.llc_load_misses <= c.llc_loads);
            prop_assert!(c.llc_store_misses <= c.llc_stores);
            prop_assert!(c.llc_stores <= c.stores);
        }
    }
}

mod layout {
    use super::*;
    use packetmill::ExecPlan;
    use pm_dpdk::MetadataModel;

    proptest! {
        /// Reordering the Packet layout by any field subset preserves the
        /// field set, keeps offsets non-overlapping, and respects natural
        /// alignment.
        #[test]
        fn reorder_preserves_validity(pick in proptest::collection::vec(any::<proptest::sample::Index>(), 0..8)) {
            let base = ExecPlan::vanilla(MetadataModel::Copying).packet_layout;
            let names: Vec<&'static str> = base.fields().iter().map(|f| f.name).collect();
            let mut order: Vec<&'static str> = Vec::new();
            for idx in pick {
                let n = names[idx.index(names.len())];
                if !order.contains(&n) {
                    order.push(n);
                }
            }
            let r = base.reordered(&order);

            // Same field set.
            let mut a: Vec<&str> = base.fields().iter().map(|f| f.name).collect();
            let mut b: Vec<&str> = r.fields().iter().map(|f| f.name).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);

            // Alignment + non-overlap.
            let mut spans: Vec<(u32, u32)> = r
                .fields()
                .iter()
                .map(|f| (f.offset, f.offset + f.size))
                .collect();
            for f in r.fields() {
                prop_assert_eq!(f.offset % f.size, 0, "field {} misaligned", f.name);
            }
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
            }

            // Requested fields lead the layout in order.
            for (i, n) in order.iter().enumerate() {
                prop_assert_eq!(r.fields()[i].name, *n);
            }
        }
    }
}

mod histogram {
    use super::*;
    use pm_telemetry::LatencyHistogram;

    proptest! {
        /// Percentiles are monotone in p and bounded by min/max, for any
        /// recorded sample set.
        #[test]
        fn percentiles_monotone_and_bounded(values in proptest::collection::vec(1u64..1_000_000_000, 1..400)) {
            let mut h = LatencyHistogram::new();
            let max = *values.iter().max().unwrap();
            for &v in &values {
                h.record(v);
            }
            let mut last = 0;
            for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                let q = h.percentile(p);
                prop_assert!(q >= last, "p{p} decreased");
                prop_assert!(q <= max, "p{p} exceeds max");
                last = q;
            }
            prop_assert_eq!(h.count(), values.len() as u64);
        }
    }
}

mod packets {
    use super::*;
    use pm_packet::builder::PacketBuilder;
    use pm_packet::ipv4::Ipv4Header;

    proptest! {
        /// Every frame the builder produces parses back with a valid IP
        /// checksum, the requested addressing, and the exact length.
        #[test]
        fn built_frames_are_valid(
            src in any::<[u8; 4]>(),
            dst in any::<[u8; 4]>(),
            sport in any::<u16>(),
            dport in any::<u16>(),
            size in 64usize..=1500,
            tcp in any::<bool>(),
        ) {
            let b = if tcp { PacketBuilder::tcp() } else { PacketBuilder::udp() };
            let f = b.src_ip(src).dst_ip(dst).src_port(sport).dst_port(dport)
                .frame_len(size).build();
            prop_assert_eq!(f.len(), size);
            let ip = Ipv4Header::parse(&f[14..]).unwrap();
            prop_assert!(ip.verify_checksum(&f[14..]));
            prop_assert_eq!(ip.src, src);
            prop_assert_eq!(ip.dst, dst);
        }

        /// TTL decrement chains keep the checksum valid down to zero.
        #[test]
        fn ttl_chain_checksum_valid(ttl in 1u8..=64, dst in any::<[u8; 4]>()) {
            let mut f = PacketBuilder::udp().dst_ip(dst).ttl(ttl).frame_len(128).build();
            for expect in (0..ttl).rev() {
                let got = pm_packet::ipv4::dec_ttl_in_place(&mut f[14..]);
                prop_assert_eq!(got, Some(expect));
                let ip = Ipv4Header::parse(&f[14..]).unwrap();
                prop_assert!(ip.verify_checksum(&f[14..]));
            }
        }
    }
}

mod rings {
    use super::*;
    use pm_mem::AddressSpace;
    use pm_nic::{Completion, PostedBuffer, RxRing};
    use pm_sim::SimTime;

    proptest! {
        /// The RX ring preserves FIFO order and never exceeds its
        /// capacity for arbitrary interleavings of post / take+complete /
        /// reap operations.
        #[test]
        fn rx_ring_fifo_and_bounded(ops in proptest::collection::vec(0u8..3, 1..300)) {
            let mut space = AddressSpace::new();
            let mut ring = RxRing::new(&mut space, 16);
            let mut next_buf = 0u32;
            let mut next_seq = 0u64;
            let mut expected_reap = std::collections::VecDeque::new();
            for op in ops {
                match op {
                    0 => {
                        if ring.post(PostedBuffer { buf_id: next_buf, data_addr: 0 }) {
                            next_buf += 1;
                        }
                    }
                    1 => {
                        if let Some(b) = ring.take_posted() {
                            ring.push_completion(Completion {
                                buf_id: b.buf_id,
                                data_addr: b.data_addr,
                                len: 64,
                                rss_hash: 0,
                                arrival: SimTime::from_ns(next_seq as f64),
                                gen: SimTime::from_ns(next_seq as f64),
                                seq: next_seq,
                                desc_addr: 0,
                            });
                            expected_reap.push_back(next_seq);
                            next_seq += 1;
                        }
                    }
                    _ => {
                        for c in ring.reap(4) {
                            let want = expected_reap.pop_front();
                            prop_assert_eq!(Some(c.seq), want, "FIFO violated");
                        }
                    }
                }
                prop_assert!(
                    ring.posted_count() + ring.pending_completions() <= 16,
                    "capacity exceeded"
                );
            }
        }
    }
}

mod batches {
    use super::*;
    use pm_click::{BatchArena, LinkedBatch, VectorBatch};

    proptest! {
        /// The linked-list and vector chaining models stay equivalent
        /// under arbitrary sequences of pushes, splits, and merges.
        #[test]
        fn chaining_models_equivalent(
            ids in proptest::collection::vec(0u32..256, 1..128),
            pivot in any::<u32>(),
        ) {
            let pivot = pivot % 256;
            let mut arena = BatchArena::new(256);
            // De-duplicate: a packet id can be on only one list at a time.
            let mut seen = std::collections::HashSet::new();
            let ids: Vec<u32> = ids.into_iter().filter(|i| seen.insert(*i)).collect();

            let v = VectorBatch::from_ids(ids.clone());
            let l = LinkedBatch::from_ids(&mut arena, &ids);
            let (vl, vr) = v.split(|id| id < pivot);
            let (ll, lr) = l.split(&mut arena, |id| id < pivot);
            prop_assert_eq!(
                vl.iter().collect::<Vec<_>>(),
                ll.iter(&arena).collect::<Vec<_>>()
            );
            prop_assert_eq!(
                vr.iter().collect::<Vec<_>>(),
                lr.iter(&arena).collect::<Vec<_>>()
            );
            // Merge back: both models restore the full set in split order.
            let mut vm = vl;
            vm.merge(vr);
            let mut lm = ll;
            lm.merge(&mut arena, lr);
            prop_assert_eq!(
                vm.iter().collect::<Vec<_>>(),
                lm.iter(&arena).collect::<Vec<_>>()
            );
            prop_assert_eq!(vm.len(), ids.len());
        }
    }
}

mod replay {
    use super::*;
    use packetmill::{Trace, TraceConfig, TrafficProfile};

    proptest! {
        /// Replay arrival times are strictly ordered and track the
        /// offered rate within rounding, for any rate and packet count.
        #[test]
        fn replay_paces_correctly(
            gbps in 1.0f64..400.0,
            n in 2usize..200,
            size in 64usize..1500,
        ) {
            let t = Trace::synthesize(&TraceConfig {
                packets: 32,
                profile: TrafficProfile::FixedSize(size),
                ..TraceConfig::default()
            });
            let times: Vec<_> = t.replay(gbps, n).map(|(at, _)| at).collect();
            prop_assert!(times.windows(2).all(|w| w[0] < w[1]));
            let expect_ns = ((size + 20) * 8) as f64 / gbps;
            let gap = (times[n - 1] - times[0]).as_ns() / (n - 1) as f64;
            prop_assert!(
                (gap - expect_ns).abs() < 1.0,
                "gap {gap:.2} vs expected {expect_ns:.2}"
            );
        }
    }
}

mod mtf_cache {
    use super::*;
    use pm_mem::{CacheParams, ClassicSetAssocCache, SetAssocCache};

    /// One scripted operation against both cache models.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        /// `access_way_range(addr, lo, hi)` — covers `access` (full
        /// range) and `access_ways` (prefix range) as special cases.
        Access {
            addr: u64,
            lo: usize,
            hi: usize,
        },
        Invalidate(u64),
        Probe(u64),
        Flush,
    }

    /// Decodes a raw tuple into an op over a deliberately tiny address
    /// space (64 lines onto 16 sets × 4 ways) so every set sees hits,
    /// empty fills, victim evictions, and way-range interplay.
    fn decode(sel: u8, addr: u16, lohi: u8, assoc: usize) -> Op {
        let addr = u64::from(addr % 64) * 64;
        let lo = usize::from(lohi) % assoc;
        let hi = lo + 1 + usize::from(lohi / 16) % (assoc - lo);
        match sel % 8 {
            0 => Op::Invalidate(addr),
            1 => Op::Probe(addr),
            2 => Op::Flush,
            _ => Op::Access { addr, lo, hi },
        }
    }

    proptest! {
        /// Lock-step equivalence: the packed move-to-front cache and the
        /// classic per-way-metadata reference agree on every hit/miss,
        /// every evicted line, every probe, and the resident count, over
        /// arbitrary interleavings of ranged accesses, invalidates, and
        /// flushes.
        #[test]
        fn mtf_matches_classic(
            ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u8>()), 1..400),
        ) {
            let p = CacheParams::new(4096, 4, 64); // 16 sets × 4 ways
            let mut fast = SetAssocCache::new(p);
            let mut slow = ClassicSetAssocCache::new(p);
            for (i, &(sel, addr, lohi)) in ops.iter().enumerate() {
                match decode(sel, addr, lohi, fast.assoc()) {
                    Op::Access { addr, lo, hi } => {
                        let a = fast.access_way_range(addr, lo, hi);
                        let b = slow.access_way_range(addr, lo, hi);
                        prop_assert_eq!(a, b, "op {}: access {:#x} ways {}..{}", i, addr, lo, hi);
                    }
                    Op::Invalidate(addr) => {
                        prop_assert_eq!(
                            fast.invalidate(addr),
                            slow.invalidate(addr),
                            "op {}: invalidate {:#x}", i, addr
                        );
                    }
                    Op::Probe(addr) => {
                        prop_assert_eq!(fast.probe(addr), slow.probe(addr), "op {}: probe {:#x}", i, addr);
                    }
                    Op::Flush => {
                        fast.flush();
                        slow.flush();
                    }
                }
                prop_assert_eq!(fast.resident_lines(), slow.resident_lines(), "op {}", i);
            }
        }
    }
}

mod access_programs {
    use super::*;
    use pm_mem::{
        AccessKind, AccessProgram, CacheParams, Cost, HierarchyParams, LatencyModel,
        MemoryHierarchy, ProgramBuilder, Region, SCOPE_RX,
    };

    /// Tiny two-core geometry (L1 512 B/2w, L2 2 KiB/2w, LLC 8 KiB/4w,
    /// DDIO 2 ways) so a few hundred random operations exercise every
    /// eviction, back-invalidation, and signature-invalidation path.
    fn params() -> HierarchyParams {
        HierarchyParams {
            cores: 2,
            l1: CacheParams::new(512, 2, 64),
            l2: CacheParams::new(2048, 2, 64),
            llc: CacheParams::new(8192, 4, 64),
            ddio_ways: 2,
            lat: LatencyModel::default(),
        }
    }

    /// Base-address pool chosen so random scripts produce repeats
    /// (signature replays and fast-forwards), same-L1-set conflicts
    /// (stride 256), same-LLC-set conflicts (stride 2048), page
    /// crossings, touches inside the hugepage-backed region marked at
    /// setup (0x40_000..), and sub-line strides (0x10/0x20 offsets) that
    /// drive delta-class replay: same program, shifted bases — replayed
    /// when the per-step line counts match, bailed to the walk when the
    /// offset changes how a span straddles lines.
    const BASES: [u64; 12] = [
        0x0, 0x100, 0x800, 0x1000, 0x10_000, 0x10_800, 0x40_000, 0x41_000, 0x30_000, 0x30_010,
        0x30_020, 0x30_040,
    ];

    const N_PROGS: usize = 6;

    /// A fixed program zoo covering the shapes the data plane compiles:
    /// memoizable dispatch and metadata programs, a `no_memoize`
    /// ring-shaped program, a payload span too wide to ever arm, a
    /// WQE-shaped sub-line store whose 16-byte strided bases stay in one
    /// delta class, and an offset-sensitive load whose line count flips
    /// between 1 and 2 across the 0x10-strided bases (the delta-class
    /// bail path).
    fn programs() -> Vec<AccessProgram> {
        vec![
            ProgramBuilder::new()
                .prefetch(0, 0, 64)
                .load(0, 0, 32)
                .compute(18)
                .load(1, 0, 8)
                .build(),
            ProgramBuilder::new()
                .load(0, 0, 8)
                .store(0, 64, 8)
                .compute(4)
                .build(),
            ProgramBuilder::new()
                .no_memoize()
                .load(0, 0, 16)
                .store(1, 0, 16)
                .build(),
            ProgramBuilder::new()
                .load(0, 0, 1024)
                .compute(2)
                .store(1, 0, 64)
                .build(),
            ProgramBuilder::new().store(0, 0, 16).compute(7).build(),
            ProgramBuilder::new()
                .load(0, 0, 56)
                .compute(3)
                .load(1, 8, 112)
                .build(),
        ]
    }

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Run {
            prog: usize,
            core: usize,
            b0: u64,
            b1: u64,
        },
        /// A burst resolved through `run_program_batch`: `n` rows whose
        /// bases stride from `(b0, b1)` — 16 B keeps WQE-shaped rows in
        /// one delta class, 64 B walks lines, 256 B aliases L1 sets (so
        /// a row can evict a predecessor's lines and force the mid-batch
        /// per-packet fallback).
        RunBatch {
            prog: usize,
            core: usize,
            b0: u64,
            b1: u64,
            n: usize,
            stride: u64,
        },
        Access {
            core: usize,
            addr: u64,
            kind: AccessKind,
        },
        Prefetch {
            core: usize,
            addr: u64,
        },
        DmaWrite {
            addr: u64,
            len: u64,
        },
        Flush {
            core: usize,
        },
    }

    fn decode(sel: u8, a: u8, b: u8) -> Op {
        let core = usize::from(b & 1);
        let b0 = BASES[usize::from(a) % BASES.len()];
        let b1 = BASES[usize::from(b >> 1) % BASES.len()];
        match sel % 16 {
            0..=6 => Op::Run {
                prog: usize::from(sel >> 4) % N_PROGS,
                core,
                b0,
                b1,
            },
            7..=9 => Op::RunBatch {
                prog: usize::from(sel >> 4) % N_PROGS,
                core,
                b0,
                b1,
                n: usize::from(a % 7) + 2,
                stride: [16u64, 64, 256][usize::from(b >> 5) % 3],
            },
            10..=11 => Op::Access {
                core,
                addr: b0 + u64::from((b >> 1) & 3) * 64,
                kind: if b & 8 != 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
            },
            12 => Op::Prefetch { core, addr: b0 },
            13..=14 => Op::DmaWrite {
                addr: b0,
                len: 64 + u64::from(b & 3) * 64,
            },
            _ => Op::Flush { core },
        }
    }

    proptest! {
        /// Lock-step equivalence of the batched/memoized resolver against
        /// the reference per-call walk: over arbitrary interleavings of
        /// program runs, strided burst resolutions (`run_program_batch`),
        /// single accesses, prefetches, DMA invalidations, and
        /// private-cache flushes on two cores, every operation must
        /// return the bit-identical cost, the aggregate counters must
        /// match after every operation, and the final residency grid and
        /// per-scope attribution must be equal. Repeats in the script
        /// drive exact replay into steady-state fast-forward; DMA and
        /// conflict ops knock it back out; sub-line-strided bases
        /// exercise delta-class replay and its count-mismatch bail. This
        /// is the contract that makes signature replay, delta-class
        /// re-keying, fast-forward, and invalidation-scan elision safe
        /// to ship under the byte-identical golden gate.
        #[test]
        fn batched_resolver_matches_reference_walk(
            script in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..250),
        ) {
            let progs = programs();
            prop_assert_eq!(progs.len(), N_PROGS);
            let mut fast = MemoryHierarchy::new(&params());
            let mut slow = MemoryHierarchy::with_reference_walk(&params());
            let mut scopes = Vec::new();
            for m in [&mut fast, &mut slow] {
                m.enable_attribution();
                m.mark_hugepages(Region { base: 0x40_000, size: 0x40_000 });
                scopes.push(m.register_scope("element"));
            }
            let (el_fast, el_slow) = (scopes[0], scopes[1]);
            for (i, &(sel, a, b)) in script.iter().enumerate() {
                // Flip the attribution scope periodically so per-scope
                // counter deltas are split at arbitrary points.
                if i % 16 == 8 {
                    fast.set_scope(el_fast);
                    slow.set_scope(el_slow);
                } else if i % 16 == 0 {
                    fast.set_scope(SCOPE_RX);
                    slow.set_scope(SCOPE_RX);
                }
                match decode(sel, a, b) {
                    Op::Run { prog, core, b0, b1 } => {
                        let p = &progs[prog];
                        let bases = [b0, b1];
                        let mut ca = Cost::ZERO;
                        let mut cb = Cost::ZERO;
                        fast.run_program(core, p, &bases, &mut ca);
                        slow.run_program(core, p, &bases, &mut cb);
                        prop_assert_eq!(
                            ca, cb,
                            "op {}: program {} core {} bases {:#x},{:#x}", i, prog, core, b0, b1
                        );
                    }
                    Op::RunBatch { prog, core, b0, b1, n, stride } => {
                        let p = &progs[prog];
                        let rows: Vec<[u64; 2]> = (0..n as u64)
                            .map(|k| [b0 + k * stride, b1 + k * stride])
                            .collect();
                        let mut ca = Cost::ZERO;
                        let mut cb = Cost::ZERO;
                        fast.run_program_batch(core, p, &rows, &mut ca);
                        slow.run_program_batch(core, p, &rows, &mut cb);
                        prop_assert_eq!(
                            ca, cb,
                            "op {}: batch prog {} core {} b0 {:#x} n {} stride {}",
                            i, prog, core, b0, n, stride
                        );
                    }
                    Op::Access { core, addr, kind } => {
                        let ca = fast.access(core, addr, 8, kind);
                        let cb = slow.access(core, addr, 8, kind);
                        prop_assert_eq!(ca, cb, "op {}: access {:#x} core {}", i, addr, core);
                    }
                    Op::Prefetch { core, addr } => {
                        let ca = fast.prefetch(core, addr, 64);
                        let cb = slow.prefetch(core, addr, 64);
                        prop_assert_eq!(ca, cb, "op {}: prefetch {:#x} core {}", i, addr, core);
                    }
                    Op::DmaWrite { addr, len } => {
                        fast.dma_write(addr, len);
                        slow.dma_write(addr, len);
                    }
                    Op::Flush { core } => {
                        fast.flush_private(core);
                        slow.flush_private(core);
                    }
                }
                prop_assert_eq!(fast.counters(), slow.counters(), "op {}", i);
            }
            // Final state: the residency grid over every base's first
            // lines and the per-scope attribution must agree exactly.
            for core in 0..2 {
                for &base in &BASES {
                    for line in 0..4u64 {
                        let addr = base + line * 64;
                        prop_assert_eq!(
                            fast.probe_level(core, addr),
                            slow.probe_level(core, addr),
                            "probe {:#x} core {}", addr, core
                        );
                    }
                }
            }
            prop_assert_eq!(fast.profile_records(), slow.profile_records());
        }
    }
}

mod event_queue {
    use super::*;
    use pm_sim::{EventQueue, HeapEventQueue, SimTime};

    proptest! {
        /// Lock-step equivalence: the calendar queue pops the exact same
        /// `(time, event)` sequence as the binary-heap reference under
        /// arbitrary schedule/pop interleavings. Times are drawn from a
        /// tiny range so equal timestamps (FIFO ties) are common, and
        /// occasional large jumps exercise the ring-wrap fallback.
        #[test]
        fn calendar_matches_heap(
            script in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..300),
        ) {
            let mut cal: EventQueue<u32> = EventQueue::new();
            let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
            let mut id = 0u32;
            let mut clock = SimTime::ZERO;
            for &(sel, t) in &script {
                if sel % 3 == 0 {
                    prop_assert_eq!(cal.pop(), heap.pop(), "pop after {} schedules", id);
                } else {
                    // Mostly near-future times with ties; every 16th
                    // event jumps far ahead (past the bucket ring).
                    let delta = if sel % 16 == 9 {
                        SimTime::from_ns(f64::from(t) * 100.0)
                    } else {
                        SimTime::from_ns(f64::from(t % 40))
                    };
                    let when = clock + delta;
                    cal.schedule(when, id);
                    heap.schedule(when, id);
                    id += 1;
                }
                prop_assert_eq!(cal.len(), heap.len());
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
                if let Some(t) = cal.peek_time() {
                    clock = clock.max(t);
                }
            }
            // Drain: the full remaining order must match.
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b, "drain");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
