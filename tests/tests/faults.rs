//! Fault-injection invariants at the experiment level: the
//! packet-conservation ledger balances for every NF preset × metadata
//! model × fault plan, faulted runs are bit-identical at any thread
//! count, resource exhaustion degrades gracefully, and an empty plan is
//! byte-invisible in the run artifact.
//!
//! Plans are always set explicitly per builder — never via the
//! process-wide default, which other tests in this binary would race on.

use packetmill::{
    ExperimentBuilder, FaultKind, FaultPlan, MetadataModel, Nf, OptLevel, SimTime, SweepSpec,
};

const PRESETS: [Nf; 5] = [
    Nf::Forwarder,
    Nf::Router,
    Nf::IdsRouter,
    Nf::Nat,
    Nf::Firewall,
];

const MODELS: [MetadataModel; 3] = [
    MetadataModel::Copying,
    MetadataModel::Overlaying,
    MetadataModel::XChange,
];

/// A plan exercising every fault kind at once: always-on wire damage,
/// a mid-run link flap, a mempool-exhaustion window, and an element
/// slow-down.
fn rich_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(
            FaultKind::BitFlip { rate_ppm: 20_000 },
            SimTime::ZERO,
            SimTime::MAX,
        )
        .with(
            FaultKind::Truncate { rate_ppm: 20_000 },
            SimTime::ZERO,
            SimTime::MAX,
        )
        .with(
            FaultKind::DescDrop { rate_ppm: 10_000 },
            SimTime::ZERO,
            SimTime::MAX,
        )
        .with(
            FaultKind::LinkFlap,
            SimTime::from_us(10.0),
            SimTime::from_us(18.0),
        )
        .with(
            FaultKind::PoolExhaust,
            SimTime::from_us(30.0),
            SimTime::from_us(40.0),
        )
        .with(
            FaultKind::Slowdown {
                element: "CheckIPHeader".into(),
                factor_x1000: 2_500,
            },
            SimTime::ZERO,
            SimTime::MAX,
        )
}

fn faulted(nf: Nf, model: MetadataModel, plan: FaultPlan) -> ExperimentBuilder {
    ExperimentBuilder::new(nf)
        .metadata_model(model)
        .optimization(OptLevel::Vanilla)
        .frequency_ghz(2.3)
        .packets(2_000)
        .fault_plan(plan)
}

/// Every preset × metadata model survives the full fault battery with
/// an exactly balanced conservation ledger (the engine asserts balance;
/// this also checks the exported counters are real, not vacuous).
#[test]
fn ledger_balances_for_every_preset_and_model() {
    for nf in PRESETS {
        for model in MODELS {
            let (_, report) = faulted(nf.clone(), model, rich_plan(0xFA17))
                .run_with_report()
                .unwrap_or_else(|e| panic!("{nf:?}/{model:?}: {e}"));
            let f = report
                .faults
                .as_ref()
                .unwrap_or_else(|| panic!("{nf:?}/{model:?}: faulted run must export counters"));
            let l = &f.ledger;
            assert!(l.balances(), "{nf:?}/{model:?}: unbalanced {l}");
            assert!(l.generated > 0, "{nf:?}/{model:?}: nothing generated");
            assert!(
                l.fcs_dropped > 0 && l.truncated_delivered > 0 && l.desc_dropped > 0,
                "{nf:?}/{model:?}: wire faults never fired: {l}"
            );
            assert!(
                l.link_down_dropped > 0,
                "{nf:?}/{model:?}: link flap never fired: {l}"
            );
            assert!(
                l.tx_sent > 0,
                "{nf:?}/{model:?}: nothing survived the fault battery: {l}"
            );
        }
    }
}

/// Deterministically sampled plans (random rates, windows, and seeds)
/// all keep the ledger balanced, and re-running the same plan
/// reproduces the same ledger bit-for-bit.
#[test]
fn sampled_plans_balance_and_reproduce() {
    let mut rng = proptest::TestRng::default_for_test("sampled_plans_balance_and_reproduce");
    for i in 0..8 {
        let mut plan = FaultPlan::new(rng.next_u64());
        for _ in 0..=rng.below(3) {
            let from = SimTime::from_ns(rng.below(60_000) as f64);
            let until = from + SimTime::from_ns(1_000.0 + rng.below(80_000) as f64);
            let kind = match rng.below(5) {
                0 => FaultKind::BitFlip {
                    rate_ppm: rng.below(300_000) as u32,
                },
                1 => FaultKind::Truncate {
                    rate_ppm: rng.below(300_000) as u32,
                },
                2 => FaultKind::DescDrop {
                    rate_ppm: rng.below(300_000) as u32,
                },
                3 => FaultKind::LinkFlap,
                _ => FaultKind::PoolExhaust,
            };
            plan = plan.with(kind, from, until);
        }
        let nf = PRESETS[i % PRESETS.len()].clone();
        let model = MODELS[i % MODELS.len()];
        let run = || {
            faulted(nf.clone(), model, plan.clone())
                .run_with_report()
                .unwrap_or_else(|e| panic!("{nf:?}/{model:?} sample {i}: {e}"))
        };
        let (m1, r1) = run();
        let (m2, r2) = run();
        let l = &r1.faults.as_ref().expect("counters exported").ledger;
        assert!(l.balances(), "sample {i} {nf:?}/{model:?}: unbalanced {l}");
        assert_eq!(m1, m2, "sample {i}: measurement not reproducible");
        assert_eq!(
            r1.to_json().to_compact(),
            r2.to_json().to_compact(),
            "sample {i}: report not reproducible"
        );
    }
}

/// A faulted sweep serializes byte-identically at 1, 2, and 8 worker
/// threads: fault decisions are pure functions of (plan, stream, seq),
/// never of scheduling.
#[test]
fn faulted_sweep_identical_across_thread_counts() {
    let spec = || {
        let mut s = SweepSpec::new();
        for (i, nf) in [Nf::Router, Nf::Nat, Nf::IdsRouter].into_iter().enumerate() {
            for model in [MetadataModel::Copying, MetadataModel::XChange] {
                s.push(
                    format!("{nf:?}/{model:?}"),
                    faulted(nf.clone(), model, rich_plan(0xD00D + i as u64)),
                );
            }
        }
        s
    };
    let one = spec().run_with_threads(1).to_json("faulted").to_pretty();
    let two = spec().run_with_threads(2).to_json("faulted").to_pretty();
    let eight = spec().run_with_threads(8).to_json("faulted").to_pretty();
    assert_eq!(one, two, "1-thread vs 2-thread artifacts differ");
    assert_eq!(one, eight, "1-thread vs 8-thread artifacts differ");
    assert!(
        one.contains("\"faults\""),
        "faulted artifact carries counters"
    );
}

/// Mempool exhaustion starves replenishment without panicking or losing
/// accounting: denials are counted and the run still completes.
#[test]
fn pool_exhaustion_is_graceful() {
    let plan = FaultPlan::new(7).with(
        FaultKind::PoolExhaust,
        SimTime::from_us(5.0),
        SimTime::from_us(60.0),
    );
    let (m, report) = faulted(Nf::Router, MetadataModel::Copying, plan)
        .run_with_report()
        .expect("run completes");
    let l = &report.faults.as_ref().expect("counters").ledger;
    assert!(l.pool_denials > 0, "exhaustion window never bit: {l}");
    assert!(l.balances(), "unbalanced: {l}");
    assert!(m.tx_packets > 0, "forwarding stopped entirely");
}

/// An element slow-down lowers throughput but changes no packet
/// accounting: same drops, same tx count, worse timing.
#[test]
fn slowdown_changes_timing_not_accounting() {
    let baseline = faulted(Nf::Router, MetadataModel::Copying, FaultPlan::new(1))
        .run_with_report()
        .expect("baseline");
    let slowed = faulted(
        Nf::Router,
        MetadataModel::Copying,
        FaultPlan::new(1).with(
            FaultKind::Slowdown {
                element: "LookupIPRoute".into(),
                factor_x1000: 4_000,
            },
            SimTime::ZERO,
            SimTime::MAX,
        ),
    )
    .run_with_report()
    .expect("slowed");
    assert!(
        slowed.0.cycles_per_packet > baseline.0.cycles_per_packet,
        "4x slow-down must inflate per-packet cycles: {} vs {}",
        slowed.0.cycles_per_packet,
        baseline.0.cycles_per_packet
    );
    assert_eq!(slowed.0.tx_packets, baseline.0.tx_packets);
    assert_eq!(slowed.0.nf_dropped, baseline.0.nf_dropped);
}

/// The zero-cost invariant at the artifact level: a run with an
/// explicitly empty plan is byte-identical to a run with no plan at
/// all — no `faults` key, same measurement, same serialized report.
#[test]
fn empty_plan_is_byte_invisible() {
    let bare = ExperimentBuilder::new(Nf::Router)
        .metadata_model(MetadataModel::XChange)
        .optimization(OptLevel::AllSource)
        .frequency_ghz(2.3)
        .packets(2_000);
    let empty = bare.clone().fault_plan(FaultPlan::new(0xABCD));

    let (m1, r1) = bare.run_with_report().expect("bare");
    let (m2, r2) = empty.run_with_report().expect("empty plan");
    assert!(r1.faults.is_none() && r2.faults.is_none());
    assert_eq!(m1, m2, "empty plan changed the measurement");
    assert_eq!(
        r1.to_json().to_pretty(),
        r2.to_json().to_pretty(),
        "empty plan changed the serialized artifact"
    );
    assert!(!r1.to_json().to_pretty().contains("faults"));
}
