//! Multi-core data-plane battery: determinism across host thread
//! counts, per-queue conservation under faults, single-core artifact
//! stability, NIC-level flow affinity, and the committed cores=2
//! scaling fixture.
//!
//! The determinism tests run the same 4-core sweep at `--threads`
//! 1/2/8 and require byte-identical artifacts: the simulated cores are
//! interleaved deterministically inside one experiment, so host
//! parallelism must be invisible in every artifact byte.

use packetmill::sweep::artifact_document;
use packetmill::{ExperimentBuilder, Json, MetadataModel, Nf, OptLevel, SweepSpec};
use pm_mem::AddressSpace;
use pm_nic::{IndirectionTable, Nic, NicConfig};
use pm_packet::builder::PacketBuilder;

/// Reports the first differing line instead of dumping two large
/// strings through `assert_eq!`.
fn assert_same(actual: &str, expected: &str, what: &str) {
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(a, e, "{what}: first divergence at line {}", i + 1);
    }
    panic!(
        "{what}: lengths differ ({} vs {} bytes) with a common prefix",
        actual.len(),
        expected.len()
    );
}

/// A debug-friendly 4-core grid over three NFs.
fn small_multicore_sweep() -> SweepSpec {
    let mut s = SweepSpec::new();
    for nf in [Nf::Forwarder, Nf::Router, Nf::Nat] {
        s.push(
            format!("{nf:?} 4c"),
            ExperimentBuilder::new(nf)
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .cores(4)
                .frequency_ghz(2.3)
                .packets(2048),
        );
    }
    s
}

#[test]
fn multicore_artifact_is_byte_identical_across_thread_counts() {
    let render = |threads: usize| {
        let results = small_multicore_sweep().run_with_threads(threads);
        artifact_document(vec![results.to_json("multicore")]).to_pretty()
    };
    let serial = render(1);
    assert_same(&render(2), &serial, "threads=2 vs threads=1");
    assert_same(&render(8), &serial, "threads=8 vs threads=1");

    // Every run in the document carries the per-queue ledger sections.
    let doc = Json::parse(&serial).expect("valid artifact JSON");
    let Some(Json::Arr(groups)) = doc.get("groups") else {
        panic!("artifact document must carry groups");
    };
    let Some(Json::Arr(runs)) = groups[0].get("runs") else {
        panic!("group must carry runs");
    };
    assert_eq!(runs.len(), 3);
    for run in runs {
        let Some(Json::Arr(sections)) = run.get("cores") else {
            panic!("multi-core run must carry a cores array");
        };
        assert_eq!(sections.len(), 4, "one section per queue at 4 cores");
    }
}

#[test]
fn per_queue_ledgers_balance_under_faults() {
    let plan = packetmill::FaultPlan::parse(
        "seed=0xBEEF;bitflip@..:rate=4000ppm;drop@..:rate=2000ppm;trunc@..:rate=2000ppm",
    )
    .expect("valid fault spec");
    let (_, report) = ExperimentBuilder::new(Nf::Router)
        .metadata_model(MetadataModel::XChange)
        .optimization(OptLevel::AllSource)
        .cores(4)
        .packets(4096)
        .fault_plan(plan)
        .run_with_report()
        .expect("faulted multi-core run");

    let faults = report.faults.as_ref().expect("fault section present");
    assert!(faults.ledger.balances(), "aggregate ledger must balance");

    let cores = report.cores.as_ref().expect("per-queue sections present");
    assert_eq!(cores.len(), 4, "one section per (nic, queue) pair");
    for ql in cores {
        assert!(
            ql.balances(),
            "queue (core {}, nic {}, queue {}) out of balance: {ql:?}",
            ql.core,
            ql.nic,
            ql.queue
        );
    }
    // Every executing core owns its own queue in the 1-NIC, 4-core map.
    let mut owners: Vec<usize> = cores.iter().map(|q| q.core).collect();
    owners.sort_unstable();
    assert_eq!(owners, vec![0, 1, 2, 3]);
    // The per-queue sections decompose the whole-run aggregate TX count
    // exactly (the measurement's own counter only covers the post-warm-up
    // window, so the ledger is the right aggregate to match).
    assert_eq!(
        cores.iter().map(|q| q.tx_sent).sum::<u64>(),
        faults.ledger.tx_sent
    );
}

#[test]
fn single_core_report_stays_on_the_legacy_schema() {
    let run = || {
        let (_, report) = ExperimentBuilder::new(Nf::Router)
            .metadata_model(MetadataModel::XChange)
            .optimization(OptLevel::AllSource)
            .packets(2048)
            .run_with_report()
            .expect("single-core run");
        report
    };
    let report = run();
    assert!(
        report.cores.is_none(),
        "single-core runs must not grow a cores section"
    );
    let json = report.to_json().to_pretty();
    let parsed = Json::parse(&json).expect("valid report JSON");
    assert_eq!(
        parsed.get("cores"),
        None,
        "single-core artifact must not carry the top-level cores key"
    );
    assert_same(&run().to_json().to_pretty(), &json, "repeat run");
}

#[test]
fn nic_steering_keeps_a_flow_on_one_queue() {
    let mut space = AddressSpace::new();
    let nic = Nic::new(
        &NicConfig {
            queues: 3, // deliberately not a divisor of the 128-entry table
            rx_ring_size: 64,
            tx_ring_size: 64,
            ..NicConfig::default()
        },
        &mut space,
    );
    let table = IndirectionTable::round_robin(3);

    // The NAT's flow affinity: one 4-tuple must land on one queue no
    // matter how the frame length varies across the flow's packets.
    let flow_queue = |src: [u8; 4], sp: u16, len: usize| {
        let frame = PacketBuilder::udp()
            .src_ip(src)
            .dst_ip([192, 0, 2, 1])
            .src_port(sp)
            .dst_port(53)
            .frame_len(len)
            .build();
        table.queue_for(nic.rss_hash(&frame))
    };
    let mut used = [false; 3];
    for flow in 0..64u16 {
        let src = [10, 0, (flow >> 8) as u8, flow as u8];
        let q = flow_queue(src, 1000 + flow, 64);
        assert!(q < 3, "steering must stay inside the queue set");
        for len in [64, 128, 512, 1472] {
            assert_eq!(
                flow_queue(src, 1000 + flow, len),
                q,
                "flow {flow} migrated queues at frame length {len}"
            );
        }
        used[q] = true;
    }
    assert!(
        used.iter().all(|&u| u),
        "64 flows should populate all 3 queues: {used:?}"
    );
}

#[test]
fn fig_multicore_c2_matches_committed_fixture() {
    if cfg!(debug_assertions) {
        eprintln!("skipping fig_multicore golden sweep in debug builds (runs under --release)");
        return;
    }
    let a = pm_bench::figures::fig_multicore(2);
    let stdout = format!("{}\n", a.table);

    // PM_WRITE_GOLDEN=1 regenerates the fixture instead of comparing.
    if std::env::var("PM_WRITE_GOLDEN").is_ok_and(|v| v != "0") {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/golden");
        std::fs::write(format!("{dir}/fig-multicore-c2.txt"), &stdout).unwrap();
        eprintln!("wrote fig_multicore fixture to {dir}");
        return;
    }

    assert_same(
        &stdout,
        include_str!("../golden/fig-multicore-c2.txt"),
        "stdout table",
    );
}
