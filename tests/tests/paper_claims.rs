//! End-to-end tests of the paper's qualitative claims: orderings between
//! metadata models and optimization levels, micro-architectural effects,
//! and scaling behaviours. These run the full simulated testbed with
//! reduced packet counts (shapes are stable well below the bench sizes).

use packetmill::{ExperimentBuilder, MetadataModel, Nf, OptLevel, TrafficProfile};

const PACKETS: usize = 12_000;

fn forwarder(model: MetadataModel, f: f64) -> packetmill::Measurement {
    ExperimentBuilder::new(Nf::Forwarder)
        .metadata_model(model)
        .frequency_ghz(f)
        .packets(PACKETS)
        .run()
        .expect("forwarder run")
}

fn router(model: MetadataModel, opt: OptLevel, f: f64) -> packetmill::Measurement {
    ExperimentBuilder::new(Nf::Router)
        .metadata_model(model)
        .optimization(opt)
        .frequency_ghz(f)
        .packets(PACKETS)
        .run()
        .expect("router run")
}

/// §4.2: X-Change ≥ Overlaying ≥ Copying (measured at a low frequency
/// where the CPU, not the NIC, is the bottleneck).
#[test]
fn metadata_model_ordering() {
    let copy = forwarder(MetadataModel::Copying, 1.2);
    let overlay = forwarder(MetadataModel::Overlaying, 1.2);
    let xchg = forwarder(MetadataModel::XChange, 1.2);
    assert!(
        xchg.throughput_gbps > overlay.throughput_gbps,
        "x-change {:.1} must beat overlaying {:.1}",
        xchg.throughput_gbps,
        overlay.throughput_gbps
    );
    assert!(
        overlay.throughput_gbps > copy.throughput_gbps,
        "overlaying {:.1} must beat copying {:.1}",
        overlay.throughput_gbps,
        copy.throughput_gbps
    );
}

/// §4.1 / Table 1: every source-code optimization improves on vanilla,
/// and the combination beats each individual one.
#[test]
fn source_optimization_ordering() {
    let vanilla = router(MetadataModel::Copying, OptLevel::Vanilla, 3.0);
    let devirt = router(MetadataModel::Copying, OptLevel::Devirtualize, 3.0);
    let consts = router(MetadataModel::Copying, OptLevel::ConstantEmbed, 3.0);
    let stat = router(MetadataModel::Copying, OptLevel::StaticGraph, 3.0);
    let all = router(MetadataModel::Copying, OptLevel::AllSource, 3.0);
    assert!(devirt.mpps > vanilla.mpps, "devirtualization helps");
    assert!(consts.mpps > vanilla.mpps, "constant embedding helps");
    assert!(
        stat.mpps > devirt.mpps,
        "static graph beats devirtualization"
    );
    assert!(all.mpps >= stat.mpps * 0.98, "all is at least static graph");
    assert!(all.mpps > consts.mpps, "all beats constants alone");
}

/// Table 1: the static graph collapses LLC loads and misses by orders of
/// magnitude (the SROA effect) and raises IPC.
#[test]
fn static_graph_collapses_llc_traffic() {
    let vanilla = router(MetadataModel::Copying, OptLevel::Vanilla, 3.0);
    let stat = router(MetadataModel::Copying, OptLevel::StaticGraph, 3.0);
    assert!(
        vanilla.llc_loads_per_100ms > stat.llc_loads_per_100ms * 5.0,
        "LLC loads must collapse: vanilla {:.0} vs static {:.0}",
        vanilla.llc_loads_per_100ms,
        stat.llc_loads_per_100ms
    );
    assert!(
        vanilla.llc_misses_per_100ms > stat.llc_misses_per_100ms * 10.0 + 1.0,
        "LLC misses must collapse"
    );
    assert!(stat.ipc > vanilla.ipc, "IPC rises with the static graph");
}

/// Fig. 1: PacketMill shifts the latency/throughput knee — at an offered
/// load vanilla cannot sustain, PacketMill delivers more with far lower
/// tail latency.
#[test]
fn packetmill_shifts_the_knee() {
    let vanilla = router(MetadataModel::Copying, OptLevel::Vanilla, 2.3);
    let pm = router(MetadataModel::XChange, OptLevel::AllSource, 2.3);
    assert!(pm.throughput_gbps > vanilla.throughput_gbps * 1.3);
    assert!(
        pm.p99_latency_us < vanilla.p99_latency_us / 2.0,
        "packetmill p99 {:.0}us must be far below vanilla {:.0}us",
        pm.p99_latency_us,
        vanilla.p99_latency_us
    );
}

/// Fig. 4: throughput grows with core frequency (the paper's frequency
/// sweeps are monotone for every variant).
#[test]
fn throughput_monotone_in_frequency() {
    let mut last = 0.0;
    for f in [1.2, 1.8, 2.4, 3.0] {
        let m = router(MetadataModel::Copying, OptLevel::Vanilla, f);
        assert!(
            m.throughput_gbps > last * 0.99,
            "throughput at {f} GHz regressed: {:.1} after {last:.1}",
            m.throughput_gbps
        );
        last = m.throughput_gbps;
    }
}

/// Fig. 5b: with two NICs one X-Change core forwards more than 100 Gbps
/// in total — and more than the single-NIC configuration.
#[test]
fn two_nics_exceed_100_gbps_with_xchange() {
    let one = ExperimentBuilder::new(Nf::Forwarder)
        .metadata_model(MetadataModel::XChange)
        .frequency_ghz(3.0)
        .packets(PACKETS)
        .run()
        .expect("one nic");
    let two = ExperimentBuilder::new(Nf::Forwarder)
        .metadata_model(MetadataModel::XChange)
        .frequency_ghz(3.0)
        .nics(2)
        .packets(PACKETS)
        .run()
        .expect("two nics");
    assert!(
        two.throughput_gbps > 100.0,
        "total {:.1} Gbps must exceed 100",
        two.throughput_gbps
    );
    assert!(two.throughput_gbps > one.throughput_gbps * 1.2);
}

/// Fig. 7: PacketMill's relative improvement shrinks as the NF becomes
/// more memory-bound (larger S at fixed W). Measured at N = 5 accesses
/// per packet, where both variants are CPU/memory-bound (at N = 1 the
/// optimized configuration saturates the NIC pipe and the ratio is
/// cap-distorted — see EXPERIMENTS.md).
#[test]
fn improvement_shrinks_with_memory_intensity() {
    let improvement = |s_mb: u32| {
        let nf = Nf::WorkPackage { w: 1, s_mb, n: 5 };
        let v = ExperimentBuilder::new(nf.clone())
            .metadata_model(MetadataModel::Copying)
            .optimization(OptLevel::Vanilla)
            .frequency_ghz(2.3)
            .packets(PACKETS)
            .run()
            .expect("vanilla");
        let p = ExperimentBuilder::new(nf)
            .metadata_model(MetadataModel::XChange)
            .optimization(OptLevel::AllSource)
            .frequency_ghz(2.3)
            .packets(PACKETS)
            .run()
            .expect("packetmill");
        p.throughput_gbps / v.throughput_gbps
    };
    let light = improvement(1);
    let heavy = improvement(16);
    assert!(light > 1.05, "light NF should improve, got {light:.2}x");
    assert!(
        heavy < light,
        "improvement must shrink with footprint: {heavy:.2}x vs {light:.2}x"
    );
}

/// Fig. 10: the NAT scales with cores, and PacketMill stays ahead at
/// every core count until the pipe saturates.
#[test]
fn nat_scales_with_cores() {
    let run = |model, opt, cores| {
        ExperimentBuilder::new(Nf::Nat)
            .metadata_model(model)
            .optimization(opt)
            .cores(cores)
            .frequency_ghz(2.3)
            .packets(PACKETS)
            .run()
            .expect("nat run")
            .throughput_gbps
    };
    let v1 = run(MetadataModel::Copying, OptLevel::Vanilla, 1);
    let v2 = run(MetadataModel::Copying, OptLevel::Vanilla, 2);
    let p1 = run(MetadataModel::XChange, OptLevel::AllSource, 1);
    assert!(v2 > v1 * 1.4, "two cores must scale: {v1:.1} -> {v2:.1}");
    assert!(p1 > v1, "packetmill NAT beats vanilla on one core");
}

/// Fig. 6: PacketMill's Mpps advantage holds across packet sizes, and
/// large packets become pipe-bound for both.
#[test]
fn packet_size_sweep_shape() {
    let run = |model, opt, size| {
        ExperimentBuilder::new(Nf::Router)
            .metadata_model(model)
            .optimization(opt)
            .frequency_ghz(2.3)
            .traffic(TrafficProfile::FixedSize(size))
            .packets(PACKETS)
            .run()
            .expect("size run")
    };
    let v64 = run(MetadataModel::Copying, OptLevel::Vanilla, 64);
    let p64 = run(MetadataModel::XChange, OptLevel::AllSource, 64);
    assert!(p64.mpps > v64.mpps, "packetmill wins at 64B");
    let v1472 = run(MetadataModel::Copying, OptLevel::Vanilla, 1472);
    let p1472 = run(MetadataModel::XChange, OptLevel::AllSource, 1472);
    // At 1472 B both are within the NIC/PCIe-bound regime: the gap closes.
    let small_gap = p64.mpps / v64.mpps;
    let large_gap = p1472.mpps / v1472.mpps;
    assert!(
        large_gap < small_gap,
        "size sweep must converge: {large_gap:.2} vs {small_gap:.2}"
    );
}

/// §4.6: the framework ordering — PacketMill ≥ BESS ≥ FastClick(Copying),
/// and l2fwd-xchg ≥ l2fwd — at a CPU-bound operating point.
#[test]
fn framework_comparison_ordering() {
    use packetmill::{BessEngine, L2Fwd, VppEngine};
    let fc = |model, opt| {
        ExperimentBuilder::new(Nf::Forwarder)
            .metadata_model(model)
            .optimization(opt)
            .frequency_ghz(1.2)
            .traffic(TrafficProfile::FixedSize(256))
            .packets(PACKETS)
            .run()
            .expect("fastclick")
            .throughput_gbps
    };
    let fastclick = fc(MetadataModel::Copying, OptLevel::Vanilla);
    let packetmill = fc(MetadataModel::XChange, OptLevel::AllSource);
    let comp = |f: fn() -> Box<dyn packetmill::Dataplane>| {
        ExperimentBuilder::new(Nf::Forwarder)
            .frequency_ghz(1.2)
            .traffic(TrafficProfile::FixedSize(256))
            .packets(PACKETS)
            .run_with_dataplane(f)
            .expect("comparator")
            .throughput_gbps
    };
    let l2fwd = comp(|| Box::new(L2Fwd::plain()));
    let l2fwd_xchg = comp(|| Box::new(L2Fwd::xchg()));
    let bess = comp(|| Box::new(BessEngine));
    let vpp = comp(|| Box::new(VppEngine));

    assert!(packetmill > fastclick, "PacketMill beats vanilla FastClick");
    assert!(l2fwd_xchg > l2fwd, "X-Change speeds up even plain l2fwd");
    assert!(
        l2fwd > fastclick,
        "lean l2fwd beats modular vanilla FastClick"
    );
    assert!(
        bess > fastclick,
        "BESS (overlaying) beats Copying FastClick"
    );
    assert!(vpp < bess, "VPP's extra copy keeps it below BESS");
}

/// Regression: heavily-overloaded small-packet runs (most arrivals
/// dropped) must still measure the surviving packets — sequence
/// identity is the generator index, not the delivery ordinal.
#[test]
fn overloaded_small_packets_still_measured() {
    let m = ExperimentBuilder::new(Nf::Router)
        .metadata_model(MetadataModel::Copying)
        .frequency_ghz(2.3)
        .traffic(TrafficProfile::FixedSize(320))
        .packets(100_000)
        .run()
        .expect("run");
    assert!(m.tx_packets > 5_000, "measured window must not be empty");
    assert!(m.mpps > 3.0, "service rate visible: {:.2} Mpps", m.mpps);
    assert!(m.rx_dropped > 50_000, "most arrivals drop at this load");
}

/// Extension NF: the firewall forwards allowed flows, drops denied ones,
/// and PacketMill accelerates it like the paper's NFs.
#[test]
fn firewall_nf_end_to_end() {
    let v = ExperimentBuilder::new(Nf::Firewall)
        .metadata_model(MetadataModel::Copying)
        .packets(PACKETS)
        .run()
        .expect("vanilla firewall");
    let p = ExperimentBuilder::new(Nf::Firewall)
        .metadata_model(MetadataModel::XChange)
        .optimization(OptLevel::AllSource)
        .packets(PACKETS)
        .run()
        .expect("packetmill firewall");
    assert!(v.nf_dropped > 0, "the ACL denies some campus flows");
    assert!(p.throughput_gbps > v.throughput_gbps * 1.2);
}
