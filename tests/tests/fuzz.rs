//! Fuzz-style property tests: arbitrary truncated, bit-flipped, and
//! random bytes through every `pm-packet` parser and through complete NF
//! pipelines. The property under test is always the same — **malformed
//! input must never panic** — plus parse→build round-trips on valid
//! frames. `PROPTEST_CASES` bounds the per-property case count.

use pm_packet::builder::PacketBuilder;
use proptest::prelude::*;

/// One fuzzed frame: a well-formed builder frame deformed by wire-style
/// damage (truncation anywhere, bit flips anywhere), or raw noise.
#[derive(Debug, Clone)]
struct Fuzzed {
    bytes: Vec<u8>,
}

fn base_frame() -> impl Strategy<Value = Vec<u8>> {
    (0u8..4, 64usize..=1500, any::<[u8; 4]>(), any::<u16>()).prop_map(|(kind, size, ip, port)| {
        let b = match kind {
            0 => PacketBuilder::tcp(),
            1 => PacketBuilder::udp(),
            2 => PacketBuilder::icmp(),
            // ARP has no frame_len knob below 42 bytes; build as-is.
            _ => return PacketBuilder::arp().src_ip(ip).build(),
        };
        b.src_ip(ip).src_port(port).frame_len(size).build()
    })
}

fn fuzzed() -> impl Strategy<Value = Fuzzed> {
    let truncated = (base_frame(), any::<u16>()).prop_map(|(mut f, cut)| {
        f.truncate(usize::from(cut) % (f.len() + 1));
        Fuzzed { bytes: f }
    });
    let flipped = (
        base_frame(),
        proptest::collection::vec((any::<u16>(), 0u8..8), 1..16),
    )
        .prop_map(|(mut f, flips)| {
            for (pos, bit) in flips {
                let i = usize::from(pos) % f.len();
                f[i] ^= 1 << bit;
            }
            Fuzzed { bytes: f }
        });
    let noise = proptest::collection::vec(any::<u8>(), 0..128).prop_map(|bytes| Fuzzed { bytes });
    prop_oneof![truncated, flipped, noise]
}

mod parsers {
    use super::*;
    use pm_packet::arp::ArpPacket;
    use pm_packet::ether::EtherHeader;
    use pm_packet::icmp::IcmpHeader;
    use pm_packet::ipv4::Ipv4Header;
    use pm_packet::tcp::TcpHeader;
    use pm_packet::udp::UdpHeader;
    use pm_packet::vlan::{self, VlanTag};

    proptest! {
        /// Every parser tolerates arbitrary bytes at arbitrary offsets:
        /// it returns `Ok`/`Err`, never panics, and whatever it accepts
        /// supports its follow-up operations (checksum verification,
        /// L4 re-parsing at the declared header length).
        #[test]
        fn no_parser_panics_on_arbitrary_bytes(f in fuzzed()) {
            let b = &f.bytes[..];
            let _ = EtherHeader::parse(b);
            let _ = VlanTag::parse_frame(b);
            let l3 = b.get(14..).unwrap_or(&[]);
            let _ = ArpPacket::parse(l3);
            if let Ok(ip) = Ipv4Header::parse(l3) {
                // Parse promised the slice covers the declared header.
                let _ = ip.verify_checksum(l3);
                let l4 = &l3[ip.header_len..];
                let _ = TcpHeader::parse(l4);
                let _ = UdpHeader::parse(l4);
                let _ = IcmpHeader::parse(l4);
            }
            // Parsers must also cope with any starting offset, not just
            // the canonical header boundaries.
            for off in 0..b.len().min(4) {
                let s = &b[off..];
                let _ = TcpHeader::parse(s);
                let _ = UdpHeader::parse(s);
                let _ = IcmpHeader::parse(s);
            }
        }

        /// VLAN encap/decap accept arbitrary bytes and report malformed
        /// input as typed errors; a successful encap is decap-invertible.
        #[test]
        fn vlan_in_place_ops_never_panic(f in fuzzed()) {
            let len = f.bytes.len();
            let mut buf = f.bytes.clone();
            buf.resize(len + vlan::VLAN_TAG_LEN, 0);
            let tag = VlanTag::from_tci(0x6123, pm_packet::ether::EtherType::IPV4);
            if let Ok(tagged) = vlan::encap_in_place(&mut buf, len, tag) {
                prop_assert_eq!(tagged, len + vlan::VLAN_TAG_LEN);
                let parsed = VlanTag::parse_frame(&buf[..tagged]).unwrap();
                // The tag's PCP/DEI/VID go on the wire; the inner type is
                // whatever EtherType the frame already carried.
                prop_assert_eq!(parsed.tci(), tag.tci());
                let orig_type = u16::from_be_bytes([f.bytes[12], f.bytes[13]]);
                prop_assert_eq!(parsed.inner_type.0, orig_type);
                let restored = vlan::decap_in_place(&mut buf, tagged);
                prop_assert_eq!(restored, Ok(len));
                prop_assert_eq!(&buf[..len], &f.bytes[..]);
            }
            // Decap on the raw (possibly untagged, possibly tiny) bytes.
            let mut raw = f.bytes.clone();
            let _ = vlan::decap_in_place(&mut raw, len);
        }
    }
}

mod round_trip {
    use super::*;
    use pm_packet::arp::ArpPacket;
    use pm_packet::ether::EtherHeader;
    use pm_packet::icmp::IcmpHeader;
    use pm_packet::ipv4::Ipv4Header;
    use pm_packet::tcp::TcpHeader;
    use pm_packet::udp::UdpHeader;

    proptest! {
        /// parse→write→parse is the identity on every header the builder
        /// can produce, across the whole configuration space.
        #[test]
        fn headers_round_trip(
            kind in 0u8..4,
            size in 64usize..=1500,
            src in any::<[u8; 4]>(),
            dst in any::<[u8; 4]>(),
            sport in any::<u16>(),
            dport in any::<u16>(),
            ttl in 1u8..=255,
        ) {
            let frame = match kind {
                0 => PacketBuilder::tcp(),
                1 => PacketBuilder::udp(),
                2 => PacketBuilder::icmp(),
                _ => return Ok(()), // ARP is covered by arp_round_trips
            };
            let frame = frame
            .src_ip(src).dst_ip(dst).src_port(sport).dst_port(dport)
            .ttl(ttl).frame_len(size).build();

            let eth = EtherHeader::parse(&frame).unwrap();
            let mut eb = [0u8; 14];
            eth.write(&mut eb);
            prop_assert_eq!(EtherHeader::parse(&eb), Ok(eth));
            prop_assert_eq!(&eb[..], &frame[..14]);

            let ip = Ipv4Header::parse(&frame[14..]).unwrap();
            prop_assert!(ip.verify_checksum(&frame[14..]));
            let mut ib = vec![0u8; ip.header_len];
            ip.write(&mut ib);
            let rep = Ipv4Header::parse(&ib).unwrap();
            // `write` recomputes the checksum; everything else is equal.
            prop_assert_eq!(Ipv4Header { checksum: ip.checksum, ..rep }, ip);
            prop_assert!(rep.verify_checksum(&ib));

            let l4 = &frame[14 + ip.header_len..];
            match kind {
                0 => {
                    let t = TcpHeader::parse(l4).unwrap();
                    prop_assert_eq!((t.src_port, t.dst_port), (sport, dport));
                    let mut tb = vec![0u8; t.header_len];
                    t.write(&mut tb);
                    prop_assert_eq!(TcpHeader::parse(&tb), Ok(t));
                }
                1 => {
                    let u = UdpHeader::parse(l4).unwrap();
                    prop_assert_eq!((u.src_port, u.dst_port), (sport, dport));
                    let mut ub = vec![0u8; 8];
                    u.write(&mut ub);
                    prop_assert_eq!(UdpHeader::parse(&ub), Ok(u));
                }
                _ => {
                    let i = IcmpHeader::parse(l4).unwrap();
                    let mut ib = vec![0u8; l4.len()];
                    ib[8..].copy_from_slice(&l4[8..]);
                    i.write(&mut ib, l4.len());
                    prop_assert_eq!(IcmpHeader::parse(&ib), Ok(i));
                }
            }
        }

        /// ARP request/reply structures survive write→parse unchanged.
        #[test]
        fn arp_round_trips(src in any::<[u8; 4]>(), dst in any::<[u8; 4]>()) {
            let frame = PacketBuilder::arp().src_ip(src).dst_ip(dst).build();
            let a = ArpPacket::parse(&frame[14..]).unwrap();
            prop_assert_eq!(a.sender_ip, src);
            prop_assert_eq!(a.target_ip, dst);
            let mut b = vec![0u8; 28];
            a.write(&mut b);
            prop_assert_eq!(ArpPacket::parse(&b), Ok(a));
        }
    }
}

mod workload_grammar {
    use super::*;
    use pm_traffic::{Workload, WorkloadSpec};

    /// Clause soup: mostly-plausible key/value fragments, attack
    /// windows, and raw noise, joined with the grammar's separators.
    /// (Bare string literals are the shim's literal-pattern strategy:
    /// each generates exactly itself.)
    fn spec_soup() -> impl Strategy<Value = String> {
        let key = prop_oneof![
            "seed", "flows", "zipf", "life", "frames", "size", "syn", "scan", "bogus", "",
        ];
        let val = prop_oneof![
            "0",
            "1k",
            "10M",
            "0x",
            "0xZZ",
            "99999999999999999999",
            "-3",
            "1.",
            "..",
            "campus",
            "@..:rate=",
            "[a-z0-9.@:=]{0,12}",
        ];
        let clause = prop_oneof![
            (key, val).prop_map(|(k, v)| format!("{k}={v}")),
            (
                prop_oneof!["syn", "scan", "x"],
                "[0-9]{0,6}",
                "[0-9]{0,6}",
                "[0-9.]{0,5}"
            )
                .prop_map(|(k, a, b, r)| format!("{k}@{a}..{b}:rate={r}")),
            "[ -~]{0,16}",
        ];
        proptest::collection::vec(clause, 0..8).prop_map(|cs| cs.join(";"))
    }

    /// A canonical valid spec, then wire-style damage: bit flips,
    /// truncation, or splicing in arbitrary bytes.
    fn damaged_spec() -> impl Strategy<Value = String> {
        let base = (any::<u64>(), 1u64..100_000, 0u32..3_000, 0u64..10_000).prop_map(
            |(seed, flows, zipf_x1000, life)| {
                WorkloadSpec {
                    seed,
                    flows,
                    zipf_x1000,
                    life,
                    ..WorkloadSpec::default()
                }
                .to_spec()
            },
        );
        (base, any::<u16>(), any::<u8>(), "[ -~]{0,8}").prop_map(|(mut s, pos, op, splice)| {
            let i = usize::from(pos) % s.len().max(1);
            match op % 3 {
                0 => s.truncate(i),
                1 => s.insert_str(i.min(s.len()), &splice),
                _ => {
                    let mut b = s.into_bytes();
                    if !b.is_empty() {
                        // Stay ASCII so byte indexing stays char-aligned.
                        let j = i % b.len();
                        b[j] = 32 + (b[j] ^ op) % 95;
                    }
                    s = String::from_utf8(b).expect("ascii");
                }
            }
            s
        })
    }

    proptest! {
        /// The `--workload` grammar never panics: any input yields
        /// either a parsed spec or a typed error, accepted specs honor
        /// the parse caps, and acceptance is stable through the
        /// canonical form.
        #[test]
        fn parse_never_panics_on_clause_soup(s in spec_soup()) {
            if let Ok(spec) = WorkloadSpec::parse(&s) {
                prop_assert!(spec.flows <= 50_000_000, "flows cap: {}", spec.flows);
                prop_assert!(spec.frames <= 4_000_000, "frames cap: {}", spec.frames);
                let canon = spec.to_spec();
                prop_assert_eq!(WorkloadSpec::parse(&canon), Ok(spec));
            } else {
                // Typed error with a message; the Display impl is what
                // `--workload` prints, so it must render too.
                let msg = WorkloadSpec::parse(&s).unwrap_err().to_string();
                prop_assert!(!msg.is_empty());
            }
        }

        /// Same property under damaged previously-valid specs, which
        /// keep the parser in the interesting near-miss region.
        #[test]
        fn parse_never_panics_on_damaged_specs(s in damaged_spec()) {
            if let Ok(spec) = WorkloadSpec::parse(&s) {
                let canon = spec.to_spec();
                prop_assert_eq!(WorkloadSpec::parse(&canon), Ok(spec));
            }
        }

        /// Whatever the parser accepts, the churn model must run: plans
        /// and stats never panic, and the conservation identity holds.
        #[test]
        fn accepted_specs_drive_the_churn_model(s in spec_soup(), n in 1u64..512) {
            if let Ok(spec) = WorkloadSpec::parse(&s) {
                let w = Workload::new(spec);
                for seq in 0..64 {
                    let _ = w.plan(seq);
                }
                let stats = w.stats(n);
                prop_assert!(stats.conserves(), "n={n}: {stats:?}");
            }
        }
    }
}

mod pipelines {
    use super::*;
    use packetmill::{
        standard_registry, ClickDataplane, ConfigGraph, Dataplane, ExecPlan, Graph, MetadataModel,
        Nf,
    };
    use pm_click::GraphRuntime;
    use pm_dpdk::RxDesc;
    use pm_mem::{AddressSpace, MemoryHierarchy};

    /// Room for a full-size frame plus VLAN-tag growth (the mbuf size
    /// the simulated mempool uses).
    const BUF: usize = 2176;

    fn dataplane(nf: &Nf) -> ClickDataplane {
        let cfg = ConfigGraph::parse(&nf.config_text()).expect("parse");
        let graph = Graph::build(&cfg, &standard_registry()).expect("build");
        let mut space = AddressSpace::new();
        ClickDataplane::new(
            GraphRuntime::new(graph, ExecPlan::vanilla(MetadataModel::Copying), &mut space),
            0,
            "fuzz",
        )
    }

    fn desc(seq: u64, len: usize) -> RxDesc {
        RxDesc {
            buf_id: (seq % 1024) as u32,
            len: len as u32,
            rss_hash: 0,
            arrival: pm_sim::SimTime::ZERO,
            gen: pm_sim::SimTime::ZERO,
            seq,
            data_addr: 0x1_000_000 + (seq % 1024) * BUF as u64,
            meta_addr: 0x8_000_000 + (seq % 1024) * 256,
            xslot: None,
        }
    }

    proptest! {
        /// Every NF preset consumes arbitrary malformed frames without
        /// panicking: each packet is either forwarded (with a sane
        /// length) or dropped.
        #[test]
        fn nf_pipelines_never_panic(
            frames in proptest::collection::vec(fuzzed(), 1..24),
        ) {
            for nf in [Nf::Forwarder, Nf::Router, Nf::IdsRouter, Nf::Nat, Nf::Firewall] {
                let mut dp = dataplane(&nf);
                let mut mem = MemoryHierarchy::skylake(1);
                for (seq, f) in frames.iter().enumerate() {
                    let len = f.bytes.len().min(BUF - 4);
                    let mut buf = f.bytes[..len].to_vec();
                    buf.resize(BUF, 0);
                    let r = dp.process(0, &mut mem, &desc(seq as u64, len), &mut buf);
                    if let Some(out) = r.tx_len {
                        prop_assert!(out as usize <= BUF, "{nf:?} emitted {out} > buffer");
                    }
                }
            }
        }
    }
}
