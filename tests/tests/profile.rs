//! End-to-end contract of the per-element profiler: attributed costs
//! account for the aggregate measurement, the attribution tells the
//! paper's metadata story, and the artifact renders sensibly.

use packetmill::{ExperimentBuilder, MetadataModel, Nf, OptLevel};
use pm_telemetry::ProfileReport;

fn router(model: MetadataModel) -> ExperimentBuilder {
    ExperimentBuilder::new(Nf::Router)
        .metadata_model(model)
        .optimization(OptLevel::Vanilla)
        .frequency_ghz(2.3)
        .packets(6_000)
        .profile(true)
}

fn profiled_router(model: MetadataModel) -> (packetmill::Measurement, ProfileReport) {
    let (m, report) = router(model).run_with_report().expect("run");
    (m, report.profile.expect("profiled run has a profile"))
}

#[test]
fn attributed_costs_sum_to_the_measurement() {
    let (m, p) = profiled_router(MetadataModel::Copying);
    let total_cycles = m.cycles_per_packet * m.tx_packets as f64;
    let total_stall = m.uncore_ns_per_packet * m.tx_packets as f64;
    let total_instr = m.instr_per_packet * m.tx_packets as f64;

    let cycles: f64 = p.records.iter().map(|r| r.cycles).sum();
    let stall: f64 = p.records.iter().map(|r| r.stall_ns).sum();
    let instr: f64 = p.records.iter().map(|r| r.instructions as f64).sum();

    let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-9);
    assert!(
        rel(cycles, total_cycles) < 0.01,
        "cycles: attributed {cycles} vs measured {total_cycles}"
    );
    assert!(
        rel(stall, total_stall) < 0.01,
        "stall ns: attributed {stall} vs measured {total_stall}"
    );
    assert!(
        rel(instr, total_instr) < 0.01,
        "instructions: attributed {instr} vs measured {total_instr}"
    );
}

#[test]
fn profile_covers_elements_and_stages() {
    let (_, p) = profiled_router(MetadataModel::Copying);
    let names: Vec<&str> = p.records.iter().map(|r| r.name.as_str()).collect();
    for stage in ["rx/pmd", "tx", "mempool", "metadata", "scheduler"] {
        assert!(names.contains(&stage), "missing stage {stage} in {names:?}");
    }
    // Named router elements appear as Class(name); anonymous ones as
    // Class@N.
    assert!(
        names.iter().any(|n| n.starts_with("LookupIPRoute(")),
        "router elements attributed: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.contains('@')),
        "anonymous elements attributed: {names:?}"
    );
    // The rx stage batches packets and records the batch-size histogram.
    let rx = p.records.iter().find(|r| r.name == "rx/pmd").unwrap();
    assert!(rx.packets > 0);
    assert!(!rx.batches.is_empty(), "rx/pmd carries the batch histogram");
    let batched: u64 = rx.batches.iter().map(|&(size, n)| size * n).sum();
    assert_eq!(batched, rx.packets, "histogram sums to the rx packets");
}

#[test]
fn llc_attribution_shifts_between_metadata_models() {
    let (_, copying) = profiled_router(MetadataModel::Copying);
    let (_, xchange) = profiled_router(MetadataModel::XChange);

    let llc_share = |p: &ProfileReport, name: &str| {
        let total: u64 = p.records.iter().map(|r| r.llc_loads).sum();
        let scoped: u64 = p
            .records
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.llc_loads)
            .sum();
        scoped as f64 / total.max(1) as f64
    };

    // Copying materializes a fresh metadata object per packet, cycling
    // the packet pool through the LLC; X-Change hands the NF the
    // driver's own buffer, so the metadata stage's share of LLC traffic
    // collapses — the profile shows the paper's §3 story directly.
    let c = llc_share(&copying, "metadata");
    let x = llc_share(&xchange, "metadata");
    assert!(
        c > 1.5 * x,
        "metadata LLC-load share should drop under X-Change: copying {c:.4} vs xchange {x:.4}"
    );
}

#[test]
fn profile_table_renders_sorted_with_shares() {
    let (_, p) = profiled_router(MetadataModel::Copying);
    let table = p.to_table().to_string();
    assert!(table.contains("overhead"));
    assert!(table.contains("rx/pmd"));
    let first_data_line = table.lines().nth(2).unwrap_or("");
    assert!(
        first_data_line.contains('%'),
        "rows lead with the overhead share: {first_data_line}"
    );
}
