//! Flight-recorder invariants at the experiment level: recording is
//! measurement-neutral (bit-identical `Measurement` with the recorder on
//! vs off), timeline/trace artifacts are byte-identical at any worker
//! thread count, the windowed series reconcile with the conservation
//! ledger, and the Chrome-trace export is deterministic and well formed.
//!
//! Recording is always enabled explicitly per builder — never via the
//! process-wide `--timeline`/`--trace` defaults, which other tests in
//! this binary would race on.

use packetmill::{
    chrome_trace, ExperimentBuilder, FaultKind, FaultPlan, Json, MetadataModel, Nf, OptLevel,
    SimTime, SweepSpec,
};

const PACKETS: usize = 8_000;

/// A plan with a link flap and a mempool squeeze inside the run, over
/// always-on wire damage — every drop cause shows up in the series.
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(
            FaultKind::BitFlip { rate_ppm: 20_000 },
            SimTime::ZERO,
            SimTime::MAX,
        )
        .with(
            FaultKind::DescDrop { rate_ppm: 10_000 },
            SimTime::ZERO,
            SimTime::MAX,
        )
        .with(
            FaultKind::LinkFlap,
            SimTime::from_us(150.0),
            SimTime::from_us(200.0),
        )
        .with(
            FaultKind::PoolExhaust,
            SimTime::from_us(300.0),
            SimTime::from_us(340.0),
        )
}

fn recorded(nf: Nf, cores: usize) -> ExperimentBuilder {
    ExperimentBuilder::new(nf)
        .metadata_model(MetadataModel::XChange)
        .optimization(OptLevel::AllSource)
        .frequency_ghz(2.3)
        .cores(cores)
        .packets(PACKETS)
        .timeline_us(50.0)
        .packet_trace(true)
}

/// Recording must be free: the recorder only reads engine state, so a
/// run with timeline + trace enabled produces the bit-identical
/// `Measurement` of the same run with the recorder off — faulted,
/// multi-core, every metadata model.
#[test]
fn recorder_is_measurement_neutral() {
    for (nf, cores, faults) in [
        (Nf::Router, 1, Some(plan(0xBEEF))),
        (Nf::Router, 1, None),
        (Nf::Nat, 4, None),
        (Nf::IdsRouter, 2, Some(plan(0x5151))),
    ] {
        let base = || {
            let b = ExperimentBuilder::new(nf.clone())
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .frequency_ghz(2.3)
                .cores(cores)
                .packets(PACKETS);
            match &faults {
                Some(p) => b.fault_plan(p.clone()),
                None => b,
            }
        };
        let off = base().run().expect("recorder-off run");
        let on = base()
            .timeline_us(50.0)
            .packet_trace(true)
            .run()
            .expect("recorder-on run");
        assert_eq!(
            on, off,
            "{nf:?}/{cores}c: recording changed the measurement"
        );
    }
}

/// Delta-class replay and steady-state fast-forward must be invisible
/// to the flight recorder: a recorder-on run resolved through the
/// memoized fast path serializes byte-identically to the same run
/// forced through the reference per-line walk. In particular this pins
/// the fast-forward window-boundary contract — every recorder sampling
/// point observes the same occupancy/counter state either way, so a
/// fast-forwarded burst can never smear a stale occupancy sample across
/// a window boundary (any such smear would diff the windowed series
/// here).
#[test]
fn replay_and_fast_forward_are_recorder_neutral() {
    for (nf, cores, faults) in [
        (Nf::Router, 1, None),
        (Nf::Router, 2, Some(plan(0x1D1D))),
        (Nf::Nat, 1, None),
    ] {
        let base = || {
            let b = recorded(nf.clone(), cores);
            match &faults {
                Some(p) => b.fault_plan(p.clone()),
                None => b,
            }
        };
        let memoized = base().run_with_report().expect("memoized run");
        let reference = base()
            .reference_walk(true)
            .run_with_report()
            .expect("reference run");
        assert_eq!(
            memoized.0, reference.0,
            "{nf:?}/{cores}c: measurement diverges from the reference walk"
        );
        assert_eq!(
            memoized.1.to_json().to_pretty(),
            reference.1.to_json().to_pretty(),
            "{nf:?}/{cores}c: recorder artifact diverges from the reference walk"
        );
    }
}

/// A recorder-off run's artifact carries neither a `timeline` nor a
/// `trace` key, so pre-recorder golden fixtures stay byte-identical.
#[test]
fn recorder_off_artifact_has_no_recorder_keys() {
    let (_, r) = ExperimentBuilder::new(Nf::Router)
        .frequency_ghz(2.3)
        .packets(PACKETS)
        .run_with_report()
        .expect("run");
    let j = r.to_json();
    assert_eq!(j.get("timeline"), None, "no timeline key when off");
    assert_eq!(j.get("trace"), None, "no trace key when off");
}

/// Timeline and trace sections are driven entirely by virtual time, so
/// the full sweep artifact — per-window series and sampled packet
/// lifecycles included — serializes byte-identically at 1, 2, and 8
/// worker threads.
#[test]
fn recorded_sweep_identical_across_thread_counts() {
    let spec = || {
        let mut s = SweepSpec::new();
        s.push(
            "router 1c faulted",
            recorded(Nf::Router, 1).fault_plan(plan(0xAB)),
        );
        s.push("router 4c", recorded(Nf::Router, 4));
        s.push("nat 2c", recorded(Nf::Nat, 2));
        s
    };
    let one = spec().run_with_threads(1).to_json("timeline").to_pretty();
    let two = spec().run_with_threads(2).to_json("timeline").to_pretty();
    let eight = spec().run_with_threads(8).to_json("timeline").to_pretty();
    assert_eq!(one, two, "1-thread vs 2-thread artifacts differ");
    assert_eq!(one, eight, "1-thread vs 8-thread artifacts differ");
    assert!(one.contains("\"timeline\""), "artifact carries the series");
    assert!(one.contains("\"trace\""), "artifact carries the traces");
}

/// The windowed drop/tx series must account for exactly what the
/// conservation ledger counted: summing any per-window series over the
/// whole run reproduces the whole-run counter.
#[test]
fn timeline_series_reconcile_with_conservation_ledger() {
    let (_, r) = recorded(Nf::Router, 1)
        .fault_plan(plan(0xC0DE))
        .run_with_report()
        .expect("run");
    let tl = r.timeline.as_ref().expect("timeline recorded");
    let ledger = &r.faults.as_ref().expect("faulted run").ledger;

    let tx: u64 = tl.cores.iter().map(|c| c.tx.iter().sum::<u64>()).sum();
    assert_eq!(tx, ledger.tx_sent, "per-window tx vs ledger");

    let sum = |label: &str| -> u64 {
        tl.drops
            .iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| panic!("missing drop series {label}"))
            .1
            .iter()
            .sum()
    };
    assert_eq!(sum("fcs"), ledger.fcs_dropped, "fcs series vs ledger");
    assert_eq!(
        sum("link_down"),
        ledger.link_down_dropped,
        "link_down series vs ledger"
    );
    assert_eq!(sum("desc"), ledger.desc_dropped, "desc series vs ledger");
    assert_eq!(
        sum("rx_ring"),
        ledger.rx_ring_dropped,
        "rx_ring series vs ledger"
    );
    assert_eq!(sum("nf"), ledger.nf_dropped, "nf series vs ledger");
    assert_eq!(
        sum("tx_ring"),
        ledger.tx_ring_dropped,
        "tx_ring series vs ledger"
    );

    // The flap windows really show the dip: some window overlapping the
    // 150–200 µs outage has link-down drops and zero tx.
    let flap = tl
        .window_end_us
        .iter()
        .position(|&end| end > 160.0)
        .expect("run reaches the flap");
    assert!(
        tl.drops
            .iter()
            .any(|(l, v)| *l == "link_down" && v[flap] > 0),
        "flap window records link-down drops"
    );
}

/// Every sampled-and-recorded packet reaches a terminal fate, and its
/// lifecycle timestamps are monotone.
#[test]
fn traced_packets_have_monotone_lifecycles() {
    let (_, r) = recorded(Nf::Router, 2)
        .fault_plan(plan(0xFACE))
        .run_with_report()
        .expect("run");
    let tr = r.trace.as_ref().expect("trace recorded");
    assert!(!tr.packets.is_empty(), "head sampling recorded packets");
    for p in &tr.packets {
        assert!(p.fate.is_some(), "seq {} has a terminal fate", p.seq);
        let fate = p.fate.unwrap();
        if fate == "tx" {
            let arrival = p.arrival_ps.expect("tx packet was delivered");
            let poll = p.poll_ps.expect("tx packet was polled");
            assert!(p.gen_ps <= arrival, "gen before DMA completion");
            assert!(arrival <= poll, "DMA completion before poll");
            let mut prev = poll;
            for s in &p.spans {
                assert!(s.start_ps >= prev, "spans start after the poll");
                assert!(s.end_ps >= s.start_ps, "span ends after it starts");
                prev = s.start_ps;
            }
            assert!(
                p.done_ps.expect("tx departure") >= poll,
                "departure after poll"
            );
        }
    }
}

/// The Chrome-trace export is deterministic and structurally valid:
/// every event has the required keys and a known phase.
#[test]
fn chrome_trace_export_is_deterministic_and_well_formed() {
    let run = || {
        recorded(Nf::Router, 1)
            .fault_plan(plan(0x7777))
            .run_with_report()
            .expect("run")
            .1
    };
    let (r1, r2) = (run(), run());
    let t1 = chrome_trace(&[("run", r1.trace.as_ref().unwrap())]).to_pretty();
    let t2 = chrome_trace(&[("run", r2.trace.as_ref().unwrap())]).to_pretty();
    assert_eq!(t1, t2, "export not reproducible");

    let doc = Json::parse(&t1).expect("valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    assert!(events.len() > 10, "export has events");
    for e in events {
        let ph = match e.get("ph") {
            Some(Json::Str(s)) => s.clone(),
            other => panic!("event without ph: {other:?}"),
        };
        assert!(
            ["M", "X", "i"].contains(&ph.as_str()),
            "unexpected phase {ph}"
        );
        assert!(e.get("name").is_some(), "event without name");
        assert!(e.get("pid").is_some(), "event without pid");
    }
}
