//! Functional correctness of the NFs on real packet bytes, exercised
//! through the public facade (dataplane level), plus engine-level
//! accounting invariants.

use packetmill::{
    standard_registry, ClickDataplane, ConfigGraph, Dataplane, ExecPlan, ExperimentBuilder, Graph,
    MetadataModel, Nf, OptLevel,
};
use pm_click::GraphRuntime;
use pm_dpdk::RxDesc;
use pm_mem::{AddressSpace, MemoryHierarchy};
use pm_packet::builder::PacketBuilder;
use pm_packet::ipv4::Ipv4Header;
use pm_packet::tcp::TcpHeader;

fn dataplane(nf: &Nf, plan: ExecPlan) -> ClickDataplane {
    let cfg = ConfigGraph::parse(&nf.config_text()).expect("parse");
    let graph = Graph::build(&cfg, &standard_registry()).expect("build");
    let mut space = AddressSpace::new();
    ClickDataplane::new(GraphRuntime::new(graph, plan, &mut space), 0, "test")
}

fn desc(seq: u64, len: usize) -> RxDesc {
    RxDesc {
        buf_id: (seq % 1024) as u32,
        len: len as u32,
        rss_hash: 0,
        arrival: pm_sim::SimTime::ZERO,
        gen: pm_sim::SimTime::ZERO,
        seq,
        data_addr: 0x1_000_000 + (seq % 1024) * 2176,
        meta_addr: 0x8_000_000 + (seq % 1024) * 256,
        xslot: None,
    }
}

/// The full NAT pipeline rewrites the source, keeps checksums valid, and
/// is per-flow consistent across packets.
#[test]
fn nat_pipeline_end_to_end() {
    let mut dp = dataplane(&Nf::Nat, ExecPlan::vanilla(MetadataModel::Copying));
    let mut mem = MemoryHierarchy::skylake(1);
    let mut ports = Vec::new();
    for round in 0..3 {
        let mut f = PacketBuilder::tcp()
            .src_ip([10, 0, 0, 9])
            .src_port(7777)
            .dst_ip([192, 168, 1, 1])
            .frame_len(128)
            .build();
        let d = desc(round, f.len());
        let r = dp.process(0, &mut mem, &d, &mut f);
        assert!(r.tx_len.is_some(), "round {round} forwarded");
        let ip = Ipv4Header::parse(&f[14..]).unwrap();
        assert_eq!(ip.src, [198, 51, 100, 1], "source NATted");
        assert!(ip.verify_checksum(&f[14..]));
        assert_eq!(ip.ttl, 63, "router path decremented TTL");
        ports.push(TcpHeader::parse(&f[34..]).unwrap().src_port);
    }
    assert!(
        ports.windows(2).all(|w| w[0] == w[1]),
        "stable binding: {ports:?}"
    );

    // A different flow gets a different external port.
    let mut f = PacketBuilder::tcp()
        .src_ip([10, 0, 0, 9])
        .src_port(8888)
        .dst_ip([192, 168, 1, 1])
        .frame_len(128)
        .build();
    let r = dp.process(0, &mut mem, &desc(99, f.len()), &mut f);
    assert!(r.tx_len.is_some());
    let other = TcpHeader::parse(&f[34..]).unwrap().src_port;
    assert_ne!(other, ports[0]);
}

/// The IDS+router forwards clean traffic VLAN-tagged and drops scans.
#[test]
fn ids_router_tags_and_filters() {
    let mut dp = dataplane(&Nf::IdsRouter, ExecPlan::vanilla(MetadataModel::Copying));
    let mut mem = MemoryHierarchy::skylake(1);

    let mut ok = PacketBuilder::tcp()
        .dst_ip([10, 5, 5, 5])
        .frame_len(256)
        .build();
    ok.resize(2176, 0); // buffer headroom for the VLAN tag
    let r = dp.process(0, &mut mem, &desc(0, 256), &mut ok);
    assert_eq!(r.tx_len, Some(260), "VLAN tag adds 4 bytes");
    let tag = pm_packet::vlan::VlanTag::parse_frame(&ok).expect("tagged");
    assert_eq!(tag.vid, 42);

    let mut scan = PacketBuilder::tcp()
        .tcp_flags(pm_packet::tcp::TcpFlags::SYN | pm_packet::tcp::TcpFlags::FIN)
        .dst_ip([10, 5, 5, 5])
        .frame_len(256)
        .build();
    scan.resize(2176, 0);
    let r = dp.process(0, &mut mem, &desc(1, 256), &mut scan);
    assert_eq!(r.tx_len, None, "SYN+FIN scan dropped by the IDS");
}

/// Differential check: the fully optimized plan produces byte-identical
/// output and identical forward/drop decisions to vanilla.
#[test]
fn optimized_plan_preserves_behavior() {
    let mut vanilla = dataplane(&Nf::Router, ExecPlan::vanilla(MetadataModel::Copying));
    let mut optimized = dataplane(
        &Nf::Router,
        ExecPlan::all_source_opts(MetadataModel::Copying),
    );
    let mut mem_a = MemoryHierarchy::skylake(1);
    let mut mem_b = MemoryHierarchy::skylake(1);
    let trace = packetmill::Trace::synthesize(&packetmill::TraceConfig {
        packets: 512,
        ..Default::default()
    });
    for i in 0..trace.len() {
        let frame = trace.frame(i);
        let mut a = frame.to_vec();
        let mut b = frame.to_vec();
        let ra = vanilla.process(0, &mut mem_a, &desc(i as u64, frame.len()), &mut a);
        let rb = optimized.process(0, &mut mem_b, &desc(i as u64, frame.len()), &mut b);
        assert_eq!(ra.tx_len, rb.tx_len, "packet {i}: same fate");
        assert_eq!(a, b, "packet {i}: identical bytes");
    }
}

/// The same holds across metadata models (X-Change vs Copying).
#[test]
fn xchange_preserves_behavior() {
    let mut copy = dataplane(&Nf::Router, ExecPlan::vanilla(MetadataModel::Copying));
    let mut xchg = dataplane(&Nf::Router, ExecPlan::vanilla(MetadataModel::XChange));
    let mut mem_a = MemoryHierarchy::skylake(1);
    let mut mem_b = MemoryHierarchy::skylake(1);
    let trace = packetmill::Trace::synthesize(&packetmill::TraceConfig {
        packets: 256,
        ..Default::default()
    });
    for i in 0..trace.len() {
        let frame = trace.frame(i);
        let mut a = frame.to_vec();
        let mut b = frame.to_vec();
        let ra = copy.process(0, &mut mem_a, &desc(i as u64, frame.len()), &mut a);
        let rb = xchg.process(0, &mut mem_b, &desc(i as u64, frame.len()), &mut b);
        assert_eq!(ra.tx_len, rb.tx_len, "packet {i}");
        assert_eq!(a, b, "packet {i}");
    }
}

/// Engine accounting: runs are deterministic for a fixed seed, packets
/// are conserved, and latency respects the configured floor.
#[test]
fn engine_accounting_invariants() {
    let build = || {
        ExperimentBuilder::new(Nf::Router)
            .metadata_model(MetadataModel::XChange)
            .optimization(OptLevel::AllSource)
            .packets(8_000)
            .seed(42)
    };
    let a = build().run().expect("run a");
    let b = build().run().expect("run b");
    assert_eq!(a, b, "identical seeds must give identical measurements");

    assert!(a.tx_packets > 0);
    assert!(
        a.median_latency_us >= 4.0,
        "latency floor is the base latency"
    );
    assert!(a.p99_latency_us >= a.median_latency_us);
    assert!(a.mean_latency_us > 0.0);
    assert!(a.throughput_gbps > 0.0 && a.throughput_gbps < 100.5);
    assert!(a.ipc > 0.5 && a.ipc < 4.0, "IPC {:.2} plausible", a.ipc);
}

/// Changing the seed changes the trace but not the qualitative outcome.
#[test]
fn seed_affects_trace_not_shape() {
    let run = |seed| {
        ExperimentBuilder::new(Nf::Forwarder)
            .metadata_model(MetadataModel::XChange)
            .packets(8_000)
            .seed(seed)
            .run()
            .expect("run")
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "different traffic");
    let ratio = a.throughput_gbps / b.throughput_gbps;
    assert!((0.8..1.25).contains(&ratio), "ratio {ratio:.2} stays close");
}

/// The emitted specialized source reflects the optimization pipeline.
#[test]
fn specialized_source_emission() {
    let ir = ExperimentBuilder::new(Nf::Router)
        .metadata_model(MetadataModel::XChange)
        .optimization(OptLevel::AllSource)
        .build_ir()
        .expect("ir");
    let src = packetmill::emit_specialized_source(&ir);
    assert!(src.contains("static"), "static element declarations");
    assert!(src.contains("inline_"), "inlined call chain");
    assert!(ir.log.iter().any(|l| l.contains("static-graph")));
}

/// The Full optimization level runs the profile-guided reordering pass:
/// hot fields move to the front of the Packet layout.
#[test]
fn full_opt_reorders_packet_layout() {
    let ir = ExperimentBuilder::new(Nf::Router)
        .metadata_model(MetadataModel::Copying)
        .optimization(OptLevel::Full)
        .packets(4_096)
        .build_ir()
        .expect("ir");
    let default = packetmill::ExecPlan::vanilla(MetadataModel::Copying).packet_layout;
    assert_ne!(
        ir.plan.packet_layout, default,
        "reordering must change the layout"
    );
    // The router's hottest fields now live in the first cache line.
    for f in ["dst_ip_anno", "net_hdr", "paint_anno"] {
        assert_eq!(ir.plan.packet_layout.line_of(f), 0, "{f} should be hot");
    }
    assert_eq!(
        ir.plan.packet_layout.fields().len(),
        default.fields().len(),
        "field set preserved"
    );
}

/// Per-element handlers: packet counts are flow-conserving along the
/// firewall pipeline (in = out + drops at each stage).
#[test]
fn element_handlers_conserve_packets() {
    let (m, handlers) = ExperimentBuilder::new(Nf::Firewall)
        .packets(10_000)
        .run_with_handlers()
        .expect("run");
    let get = |name: &str| {
        handlers
            .iter()
            .find(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from {handlers:?}"))
    };
    let (_, fw_seen, fw_drops) = get("fw");
    let (_, rt_seen, _) = get("rt");
    assert_eq!(fw_seen - fw_drops, *rt_seen, "firewall out == router in");
    let (_, check_seen, check_drops) = get("CheckIPHeader@3");
    assert_eq!(
        check_seen - check_drops,
        *fw_seen,
        "check out == firewall in"
    );
    assert!(m.nf_dropped >= *fw_drops / 2, "NF drops include denials");
}

/// Pcap round trip through the whole stack: synthesize → save → load →
/// replay through the engine, matching the synthetic run exactly.
#[test]
fn pcap_replay_matches_synthetic() {
    let trace = packetmill::Trace::synthesize(&packetmill::TraceConfig {
        packets: 2_048,
        ..Default::default()
    });
    let mut path = std::env::temp_dir();
    path.push(format!("pm_replay_{}.pcap", std::process::id()));
    trace.to_pcap(&path).expect("save");
    let loaded = packetmill::Trace::from_pcap(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let run = |t: packetmill::Trace| {
        ExperimentBuilder::new(Nf::Forwarder)
            .metadata_model(MetadataModel::XChange)
            .packets(6_000)
            .trace(t)
            .run()
            .expect("run")
    };
    let a = run(trace);
    let b = run(loaded);
    assert_eq!(a, b, "bit-identical trace must give identical measurement");
    assert!(a.tx_packets > 0);
}
