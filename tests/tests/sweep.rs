//! The parallel sweep runner's contract: bit-identical results at any
//! thread count, input-order collection, and panic isolation.

use packetmill::{ExperimentBuilder, Measurement, MetadataModel, Nf, OptLevel, SweepSpec};

/// A 12-configuration mini-sweep spanning NFs, metadata models, and
/// optimization levels — small enough to run three times in a test,
/// varied enough that a scheduling-dependent bug would show up as a
/// field mismatch somewhere.
fn mini_sweep() -> SweepSpec {
    mini_sweep_with(false)
}

/// Same grid, optionally with per-element profiling (set explicitly on
/// every builder — never via the process-wide default, which other
/// tests in this binary would race on).
fn mini_sweep_with(profile: bool) -> SweepSpec {
    let nfs = [Nf::Forwarder, Nf::Router, Nf::Nat];
    let variants = [
        (MetadataModel::Copying, OptLevel::Vanilla),
        (MetadataModel::Overlaying, OptLevel::Vanilla),
        (MetadataModel::XChange, OptLevel::AllSource),
        (MetadataModel::XChange, OptLevel::Full),
    ];
    let mut spec = SweepSpec::new();
    for (i, nf) in nfs.into_iter().enumerate() {
        for (model, opt) in variants {
            spec.push(
                format!("{nf:?}/{model:?}/{opt:?}"),
                ExperimentBuilder::new(nf.clone())
                    .metadata_model(model)
                    .optimization(opt)
                    .frequency_ghz(2.3)
                    .packets(4_000)
                    .seed(0x5EED ^ i as u64)
                    .profile(profile),
            );
        }
    }
    assert_eq!(spec.len(), 12);
    spec
}

fn assert_measurements_identical(a: &[Measurement], b: &[Measurement], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: run counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        // Measurement is PartialEq over every field; compare via Debug on
        // mismatch so the failing field is visible in the assertion output.
        assert_eq!(x, y, "{what}: run {i} differs:\n  {x:?}\n  {y:?}");
    }
}

#[test]
fn sweep_is_deterministic_across_thread_counts() {
    let serial = mini_sweep().run_with_threads(1).expect_all();
    let two = mini_sweep().run_with_threads(2).expect_all();
    let eight = mini_sweep().run_with_threads(8).expect_all();
    assert_measurements_identical(&serial, &two, "threads=1 vs threads=2");
    assert_measurements_identical(&serial, &eight, "threads=1 vs threads=8");
}

#[test]
fn sweep_results_are_in_input_order() {
    let results = mini_sweep().run_with_threads(8);
    let labels: Vec<&str> = results.outcomes.iter().map(|o| o.label.as_str()).collect();
    let expected: Vec<String> = mini_sweep()
        .run_with_threads(1)
        .outcomes
        .into_iter()
        .map(|o| o.label)
        .collect();
    assert_eq!(labels, expected);
}

#[test]
fn panicking_experiment_is_reported_without_poisoning_the_sweep() {
    let mut spec = SweepSpec::new();
    spec.push(
        "healthy-before",
        ExperimentBuilder::new(Nf::Forwarder).packets(2_000),
    );
    spec.push_job("deliberate-panic", || panic!("injected failure for test"));
    spec.push(
        "healthy-after",
        ExperimentBuilder::new(Nf::Router).packets(2_000),
    );

    let results = spec.run_with_threads(4);
    assert_eq!(results.outcomes.len(), 3);

    assert_eq!(
        results.failures(),
        1,
        "exactly the injected panic should fail"
    );
    let failed: Vec<_> = results
        .outcomes
        .iter()
        .filter(|o| o.result.is_err())
        .collect();
    assert_eq!(failed[0].label, "deliberate-panic");
    let err = failed[0].result.as_ref().unwrap_err();
    assert!(
        err.contains("injected failure for test"),
        "panic message should be captured, got: {err}"
    );

    // The healthy runs on either side of the panic still completed.
    assert!(
        results.outcomes[0].result.is_ok(),
        "run before panic poisoned"
    );
    assert!(
        results.outcomes[2].result.is_ok(),
        "run after panic poisoned"
    );
    assert_eq!(results.report().runs, 3);
    assert_eq!(results.report().failures, 1);
}

/// The full structured artifact — measurements, configs, and per-element
/// profiles — serializes byte-identically at any worker count.
#[test]
fn profiled_sweep_artifacts_are_byte_identical_across_thread_counts() {
    let json_of = |threads: usize| {
        mini_sweep_with(true)
            .run_with_threads(threads)
            .to_json("mini")
            .to_pretty()
    };
    let serial = json_of(1);
    assert_eq!(serial, json_of(2), "threads=1 vs threads=2");
    assert_eq!(serial, json_of(8), "threads=1 vs threads=8");

    // The artifact really carries profiles: every run has a records
    // array with a populated rx/pmd stage.
    let doc = packetmill::Json::parse(&serial).expect("valid JSON");
    let runs = match doc.get("runs") {
        Some(packetmill::Json::Arr(v)) => v,
        other => panic!("runs not an array: {other:?}"),
    };
    assert_eq!(runs.len(), 12);
    for run in runs {
        let profile = run.get("profile").expect("profile key");
        let records = match profile.get("records") {
            Some(packetmill::Json::Arr(v)) => v,
            other => panic!("records not an array: {other:?}"),
        };
        assert!(
            records.iter().any(|r| {
                matches!(r.get("name"), Some(packetmill::Json::Str(s)) if s == "rx/pmd")
            }),
            "every profiled run attributes the rx/pmd stage"
        );
    }
}

/// Profiling is pure observation: enabling it must not change any
/// measured number.
#[test]
fn profiling_does_not_change_measurements() {
    let plain = mini_sweep_with(false).run_with_threads(4).expect_all();
    let profiled = mini_sweep_with(true).run_with_threads(4).expect_all();
    assert_measurements_identical(&plain, &profiled, "profile off vs on");
}
