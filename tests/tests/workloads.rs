//! Flow-population workload properties: empirical Zipf frequencies vs
//! the analytic CDF, churn conservation under arbitrary lifetimes and
//! windows, `--workload` spec round-trips, sweep byte-identity across
//! worker-thread counts, and attack mixes running under a fault plan
//! with the conservation ledger intact.

use packetmill::sweep::artifact_document;
use packetmill::{ExperimentBuilder, MetadataModel, Nf, OptLevel, SweepSpec};
use pm_traffic::{AttackEvent, AttackKind, FramePlan, SizeModel, Workload, WorkloadSpec};
use proptest::prelude::*;

/// A spec with no attacks: the pure popularity/churn model.
fn plain_spec(seed: u64, flows: u64, zipf_x1000: u32, life: u64) -> WorkloadSpec {
    WorkloadSpec {
        seed,
        flows,
        zipf_x1000,
        life,
        frames: 0,
        size: SizeModel::Campus,
        attacks: Vec::new(),
    }
}

proptest! {
    /// Empirical slot frequencies from the pure-hash per-frame plan
    /// match the analytic Zipf CDF: the mass observed at ranks
    /// `0..=k` stays within sampling error of `cdf(k)` at several
    /// quantile points.
    #[test]
    fn zipf_frequencies_match_analytic_cdf(
        seed in any::<u64>(),
        flows in 16u64..2_000,
        zipf_x1000 in 0u32..2_000,
    ) {
        const SAMPLES: u64 = 2_048;
        let w = Workload::new(plain_spec(seed, flows, zipf_x1000, 0));
        let mut slots = Vec::with_capacity(SAMPLES as usize);
        for seq in 0..SAMPLES {
            match w.plan(seq) {
                FramePlan::Normal { slot, .. } => slots.push(slot),
                other => prop_assert!(false, "no attacks configured, got {other:?}"),
            }
        }
        for k in [0, flows / 4, flows / 2, flows - 1] {
            let analytic = w.zipf().cdf(k as usize);
            let observed = slots.iter().filter(|&&s| s <= k).count() as f64
                / SAMPLES as f64;
            // Binomial standard error at n=2048 is <= 0.011; 6 sigma.
            prop_assert!(
                (observed - analytic).abs() < 0.07,
                "rank {k}/{flows} alpha {}: observed {observed:.4} vs cdf {analytic:.4}",
                zipf_x1000 as f64 / 1000.0,
            );
        }
    }

    /// The churn identity `arrivals - expiries == live` holds for any
    /// lifetime and window, stats are monotone in the window, and the
    /// same spec always produces the same accounting (pure hashing).
    #[test]
    fn churn_conserves_over_arbitrary_windows(
        seed in any::<u64>(),
        flows in 1u64..300,
        life in 0u64..200,
        n in 1u64..2_000,
    ) {
        let w = Workload::new(plain_spec(seed, flows, 800, life));
        let s = w.stats(n);
        prop_assert!(s.conserves(), "n={n}: {s:?}");
        prop_assert_eq!(s.live, flows);
        prop_assert_eq!(s.normal_frames + s.syn_frames + s.scan_frames, n);
        if life == 0 {
            prop_assert_eq!(s.arrivals, flows, "static population");
            prop_assert_eq!(s.expiries, 0u64);
        } else {
            // Each slot rotates at most ceil(n / life) times in n frames.
            let max_rotations = flows * n.div_ceil(life);
            prop_assert!(s.expiries <= max_rotations, "{s:?}");
        }
        let wider = w.stats(n + life + 1);
        prop_assert!(wider.arrivals >= s.arrivals, "arrivals monotone");
        prop_assert!(wider.expiries >= s.expiries, "expiries monotone");
        prop_assert_eq!(w.stats(n), s, "pure hash: stats reproduce");
    }

    /// `to_spec` round-trips through `parse` for arbitrary well-formed
    /// specs, including attack windows and open-ended ranges.
    #[test]
    fn spec_round_trips_through_canonical_form(
        seed in any::<u64>(),
        flows in 1u64..50_000_000,
        zipf_x1000 in 0u32..=4_000,
        life in 0u64..1_000_000,
        frames in 0u64..=4_000_000,
        fixed in any::<bool>(),
        size in 64u16..=1_500,
        syn_rate in 0u32..=1_000_000,
        scan_from in 0u64..1_000_000,
        scan_len in 1u64..1_000_000,
        open_ended in any::<bool>(),
    ) {
        let spec = WorkloadSpec {
            seed,
            flows,
            zipf_x1000,
            life,
            frames,
            size: if fixed { SizeModel::Fixed(size) } else { SizeModel::Campus },
            attacks: vec![
                AttackEvent {
                    kind: AttackKind::SynFlood,
                    from: 0,
                    until: u64::MAX,
                    rate_ppm: syn_rate,
                },
                AttackEvent {
                    kind: AttackKind::PortScan,
                    from: scan_from,
                    until: if open_ended { u64::MAX } else { scan_from + scan_len },
                    rate_ppm: 1_000,
                },
            ],
        };
        let parsed = WorkloadSpec::parse(&spec.to_spec());
        prop_assert_eq!(parsed, Ok(spec));
    }
}

/// The attack-heavy spec used by the engine-level tests below: Zipf
/// churned traffic with a SYN-flood burst and a background port scan.
const ATTACK_SPEC: &str = "seed=0xA77AC4;flows=4000;zipf=1.1;life=1500;frames=6000;\
     syn@1000..4000:rate=0.25;scan@..:rate=0.05";

fn attack_builder() -> ExperimentBuilder {
    let spec = WorkloadSpec::parse(ATTACK_SPEC).expect("valid workload spec");
    ExperimentBuilder::new(Nf::NatScale(10_000))
        .metadata_model(MetadataModel::XChange)
        .optimization(OptLevel::AllSource)
        .packets(if cfg!(debug_assertions) { 2_000 } else { 8_000 })
        .workload(spec)
}

/// A workload-driven sweep produces byte-identical artifacts at 1, 2,
/// and 8 worker threads: every per-frame decision is a pure hash of the
/// spec, so scheduling order cannot leak into the JSON.
#[test]
fn workload_sweep_is_byte_identical_across_thread_counts() {
    let spec = || {
        let mut s = SweepSpec::new();
        for flows in [1_000u64, 5_000] {
            for huge in [false, true] {
                s.push(
                    format!("flows={flows} huge={huge}"),
                    attack_builder()
                        .workload(WorkloadSpec {
                            flows,
                            ..WorkloadSpec::parse(ATTACK_SPEC).expect("valid")
                        })
                        .hugepage_tables(huge),
                );
            }
        }
        s
    };
    let docs: Vec<String> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let results = spec().run_with_threads(threads);
            assert_eq!(results.failures(), 0, "threads={threads}");
            artifact_document(vec![results.to_json("workload-threads")]).to_pretty()
        })
        .collect();
    assert_eq!(docs[0], docs[1], "1 vs 2 workers");
    assert_eq!(docs[0], docs[2], "1 vs 8 workers");
}

/// An attack mix under an active fault plan still satisfies both
/// conservation identities: the workload's churn accounting and the
/// engine's packet ledger (asserted inside `Engine::run`), with the
/// per-table counters recording the insertion pressure.
#[test]
fn attack_mix_under_faults_keeps_ledgers_balanced() {
    let plan = packetmill::FaultPlan::parse(
        "seed=0xFA17;bitflip@..:rate=3000ppm;drop@..:rate=1000ppm;flap@100us..140us",
    )
    .expect("valid fault plan");
    let (m, report) = attack_builder()
        .fault_plan(plan)
        .run_with_report()
        .expect("faulted attack run completes");
    assert!(m.tx_packets > 0, "traffic still flows under faults");

    let w = report.workload.as_ref().expect("workload section present");
    assert!(w.stats.conserves(), "churn identity: {:?}", w.stats);
    assert!(w.stats.syn_frames > 0, "SYN flood present in the mix");
    assert!(w.stats.scan_frames > 0, "port scan present in the mix");
    assert_eq!(
        w.stats.syn_frames + w.stats.scan_frames + w.stats.normal_frames,
        w.frames,
    );
    assert_eq!(
        w.spec,
        WorkloadSpec::parse(&w.spec).expect("round-trips").to_spec()
    );

    let f = report.faults.as_ref().expect("fault section present");
    assert!(f.ledger.balances(), "packet ledger: {:?}", f.ledger);

    let nat = w
        .tables
        .iter()
        .find(|t| t.kind == "cuckoo")
        .expect("NAT reports its flow table");
    assert!(nat.insertions > 0, "SYN flood forces insertions");
    assert!(nat.lookups >= nat.insertions);
    assert!(nat.occupancy <= nat.capacity);
}

/// The workload section only appears for workload-driven runs, and its
/// spec string is the canonical form of what the builder was given.
#[test]
fn workload_report_carries_canonical_spec() {
    let (_, plain) = ExperimentBuilder::new(Nf::Forwarder)
        .packets(1_000)
        .run_with_report()
        .expect("plain run");
    assert!(plain.workload.is_none(), "no workload unless configured");

    let spec = WorkloadSpec::parse(ATTACK_SPEC).expect("valid");
    let (_, driven) = attack_builder().run_with_report().expect("workload run");
    let w = driven.workload.expect("workload section");
    assert_eq!(w.spec, spec.to_spec());
    assert_eq!(w.frames, 6_000);
}
