//! Million-entry table stress: the cuckoo flow table against a
//! `HashMap` oracle at 1M entries, the displacement-chain bound, the
//! LPM trie against a masked-prefix oracle at 1M routes, and expiry
//! determinism for the scaled NAT under churn.
//!
//! The full-size populations only run under `--release` (CI); debug
//! builds scale down to keep `cargo test` quick.

use pm_elements::configs::buckets_for;
use pm_elements::cuckoo::{CuckooHash, InsertOutcome};
use pm_elements::trie::{RadixTrie, Route};
use pm_sim::SplitMix64;
use std::collections::HashMap;

/// Table population for the oracle tests: 1M released, 50k in debug.
const N: u64 = if cfg!(debug_assertions) {
    50_000
} else {
    1_000_000
};

#[test]
fn cuckoo_matches_hashmap_oracle_at_scale() {
    let mut c: CuckooHash<u64, u64> = CuckooHash::new(buckets_for(N) as usize);
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    let mut rng = SplitMix64::new(0x7AB1E);

    // Fill to the full population; the table is sized by `buckets_for`,
    // so no insert may fail.
    for i in 0..N {
        let k = rng.next_u64();
        let outcome = c.insert(k, i);
        assert_ne!(outcome, InsertOutcome::Full, "insert {i} of {N}");
        oracle.insert(k, i);
    }
    assert_eq!(c.len(), oracle.len());
    assert!(c.len() <= c.capacity());

    // Interleaved lookups, overwrites, and removals stay in lock-step.
    let keys: Vec<u64> = oracle.keys().copied().collect();
    let mut rng = SplitMix64::new(0x5EED5);
    for round in 0..(N / 2) {
        let k = keys[(rng.next_u64() % keys.len() as u64) as usize];
        match rng.next_u64() % 3 {
            0 => assert_eq!(c.lookup(&k), oracle.get(&k).copied(), "round {round}"),
            1 => {
                assert_ne!(c.insert(k, round), InsertOutcome::Full);
                oracle.insert(k, round);
            }
            _ => assert_eq!(c.remove(&k), oracle.remove(&k), "round {round}"),
        }
    }
    assert_eq!(c.len(), oracle.len(), "after mixed operations");

    // Misses are misses: keys never inserted are absent from both.
    let mut rng = SplitMix64::new(0xAB5E17);
    for _ in 0..10_000 {
        let k = rng.next_u64() | 1 << 63; // disjoint high-bit namespace
        if !oracle.contains_key(&k) {
            assert_eq!(c.lookup(&k), None);
        }
    }
}

#[test]
fn displacement_chains_stay_bounded() {
    // An undersized table driven to rejection: every insert walks at
    // most the kick budget (64 displacements) before giving up, and the
    // counters stay consistent with the outcomes.
    let mut c: CuckooHash<u64, u64> = CuckooHash::new(16); // 64 slots
    let mut rng = SplitMix64::new(0xD15B);
    let mut full = 0u64;
    for i in 0..10_000 {
        if c.insert(rng.next_u64(), i) == InsertOutcome::Full {
            full += 1;
        }
    }
    assert!(full > 0, "an overdriven table must reject");
    assert!(
        c.max_chain() <= 64,
        "chain {} exceeds the kick budget",
        c.max_chain()
    );
    assert_eq!(c.evictions(), full, "one dropped victim per Full outcome");
    assert!(c.displacements() >= c.max_chain());
    assert_eq!(
        c.len(),
        c.capacity(),
        "rejections keep the table exactly full"
    );
}

/// Masked-prefix oracle: longest-prefix match by probing a
/// `(prefix & mask, len)` map from /32 down to /0 — O(33) per lookup,
/// which is what makes a 1M-route oracle tractable.
struct LpmOracle {
    map: HashMap<(u32, u8), u16>,
}

impl LpmOracle {
    fn new() -> Self {
        LpmOracle {
            map: HashMap::new(),
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    fn insert(&mut self, prefix: u32, len: u8, port: u16) {
        self.map.insert((prefix & Self::mask(len), len), port);
    }

    fn lookup(&self, ip: u32) -> Option<u16> {
        (0..=32u8)
            .rev()
            .find_map(|len| self.map.get(&(ip & Self::mask(len), len)).copied())
    }
}

#[test]
fn trie_matches_masked_prefix_oracle_at_scale() {
    let mut t = RadixTrie::new();
    let mut oracle = LpmOracle::new();
    let mut rng = SplitMix64::new(0x717E);
    for i in 0..N {
        // Clustered prefixes (skewed lengths, shared high bits) so the
        // trie sees deep shared paths, not just a sparse random spray.
        let h = rng.next_u64();
        let len = 8 + (h % 25) as u8; // /8..=/32
        let prefix = ((h >> 8) as u32) & LpmOracle::mask(len);
        let port = (h >> 48) as u16;
        t.insert(prefix, len, Route { port, gateway: 0 });
        oracle.insert(prefix, len, port);
        if i < 4 {
            // A few broad defaults exercise the short-prefix fallback.
            t.insert(
                0,
                0,
                Route {
                    port: 9_999,
                    gateway: 0,
                },
            );
            oracle.insert(0, 0, 9_999);
        }
    }

    let mut rng = SplitMix64::new(0x100C); // lookup stream
    for i in 0..20_000u32 {
        let ip = rng.next_u32();
        assert_eq!(
            t.lookup(ip).map(|r| r.port),
            oracle.lookup(ip),
            "lookup {i}: ip {ip:#010x}"
        );
    }
}

#[test]
fn synthesized_fib_is_deterministic_at_scale() {
    use pm_click::Element;
    use pm_elements::route::LookupIpRoute;
    let routes = if cfg!(debug_assertions) {
        20_000
    } else {
        1_000_000
    };
    let build = || {
        let mut rt = LookupIpRoute::default();
        rt.add_route(
            0,
            0,
            Route {
                port: 0,
                gateway: 0,
            },
        );
        rt.synthesize(routes, 0xF1B, 4);
        rt
    };
    let a = build();
    let b = build();
    assert_eq!(a.routes, routes + 1);
    assert_eq!(a.routes, b.routes, "same seed, same FIB");
    assert_eq!(a.table_stats(), b.table_stats(), "same trie shape");
}

/// Two identical workload-driven NAT runs report identical expiry,
/// eviction, and occupancy counters: idle-timeout decisions depend only
/// on virtual time, never on host scheduling.
#[test]
fn nat_expiry_accounting_is_deterministic() {
    use packetmill::{ExperimentBuilder, Nf, WorkloadSpec};
    if cfg!(debug_assertions) {
        // Two 40k-packet engine runs take ~30 s unoptimized; the
        // release CI job runs the real thing.
        eprintln!("skipping nat_expiry_accounting_is_deterministic in debug");
        return;
    }
    // The trace cycle (frames=16k, ~1.4 ms of virtual time) must outlast
    // the NAT's 1000-us idle timeout, or no binding can ever sit idle
    // long enough to expire; two cycles give every once-per-cycle flow
    // an idle gap past the timeout.
    let spec = WorkloadSpec::parse("seed=0xE59;flows=20k;zipf=1.1;life=2000;frames=16000")
        .expect("valid workload spec");
    let run = || {
        let (m, r) = ExperimentBuilder::new(Nf::NatScale(20_000))
            .packets(40_000)
            .workload(spec.clone())
            .run_with_report()
            .expect("NAT churn run");
        (m, r.workload.expect("workload section").tables)
    };
    let (m1, t1) = run();
    let (m2, t2) = run();
    assert_eq!(m1, m2, "measurements identical");
    assert_eq!(t1, t2, "table counters identical");
    let nat = t1.iter().find(|t| t.kind == "cuckoo").expect("NAT table");
    assert!(nat.expiries > 0, "churn past IDLE_US must expire bindings");
    assert!(nat.occupancy <= nat.capacity);
}
