//! Golden-artifact regression for the simulator fast path.
//!
//! The committed fixtures under `tests/golden/` are the Figure 7 N = 1
//! surface and Table 1 — stdout table and profiled `--json` artifact —
//! captured
//! before the move-to-front caches, page-cached TLB, range-batched
//! charging, and calendar queue landed. Re-running the sweep must
//! reproduce them **byte for byte**: every optimization in the
//! simulator hot path is required to be semantically invisible, so any
//! diff here is a correctness bug, not a tolerance question.
//!
//! The sweep is full-size (50 runs × 40 000 packets), so the test
//! no-ops in debug builds; CI exercises it via `cargo test --release`
//! in the perf-smoke step.

use packetmill::sweep::{artifact_document, set_default_profile};

/// Reports the first differing line instead of dumping two ~300-KiB
/// strings through `assert_eq!`.
fn assert_same(actual: &str, expected: &str, what: &str) {
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(a, e, "{what}: first divergence at line {}", i + 1);
    }
    panic!(
        "{what}: lengths differ ({} vs {} bytes) with a common prefix",
        actual.len(),
        expected.len()
    );
}

#[test]
fn fig7_n1_artifact_matches_committed_fixture() {
    if cfg!(debug_assertions) {
        eprintln!("skipping full fig7 golden sweep in debug builds (runs under --release)");
        return;
    }
    set_default_profile(true);
    let a = pm_bench::figures::fig7(1);

    let stdout = format!("== N = 1 ==\n\n{}\n", a.table);
    assert_same(
        &stdout,
        include_str!("../golden/fig7-n1.txt"),
        "stdout table",
    );

    let json = artifact_document(vec![a.results.to_json("fig7-n1")]).to_pretty() + "\n";
    assert_same(
        &json,
        include_str!("../golden/fig7-n1.json"),
        "json artifact",
    );
}

/// The fault plan baked into the faulted fig7 fixture: always-on wire
/// damage plus a link flap and a mempool-exhaustion window, expressed in
/// `--faults` spec syntax so the fixture also pins the spec grammar.
const FAULT_SPEC: &str = "seed=0xF417;bitflip@..:rate=5000ppm;trunc@..:rate=5000ppm;\
                          drop@..:rate=2000ppm;flap@40us..60us;pool@100us..140us";

#[test]
fn fig7_n1_faulted_artifact_matches_committed_fixture() {
    if cfg!(debug_assertions) {
        eprintln!("skipping faulted fig7 golden sweep in debug builds (runs under --release)");
        return;
    }
    set_default_profile(true);
    let plan = packetmill::FaultPlan::parse(FAULT_SPEC).expect("valid fault spec");
    let a = pm_bench::figures::fig7_with(1, Some(plan));

    let stdout = format!("== N = 1 (faulted) ==\n\n{}\n", a.table);
    let json = artifact_document(vec![a.results.to_json("fig7-n1-faulted")]).to_pretty() + "\n";

    // PM_WRITE_GOLDEN=1 regenerates the fixture instead of comparing.
    if std::env::var("PM_WRITE_GOLDEN").is_ok_and(|v| v != "0") {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/golden");
        std::fs::write(format!("{dir}/fig7-n1-faulted.txt"), &stdout).unwrap();
        std::fs::write(format!("{dir}/fig7-n1-faulted.json"), &json).unwrap();
        eprintln!("wrote faulted fig7 fixtures to {dir}");
        return;
    }

    assert_same(
        &stdout,
        include_str!("../golden/fig7-n1-faulted.txt"),
        "stdout table",
    );
    assert_same(
        &json,
        include_str!("../golden/fig7-n1-faulted.json"),
        "json artifact",
    );
}

/// The multi-core scaling sweep, cores = 2 — PR 6 pinned only the stdout
/// table (`tests/tests/multicore.rs`); this pins the profiled `--json`
/// artifact too, so per-stage cycle/miss attribution across the shared
/// LLC/DDIO path is also locked byte-for-byte.
#[test]
fn fig_multicore_c2_profiled_artifact_matches_committed_fixture() {
    if cfg!(debug_assertions) {
        eprintln!("skipping fig_multicore golden sweep in debug builds (runs under --release)");
        return;
    }
    set_default_profile(true);
    let a = pm_bench::figures::fig_multicore(2);
    let json = artifact_document(vec![a.results.to_json("fig-multicore")]).to_pretty() + "\n";

    // PM_WRITE_GOLDEN=1 regenerates the fixture instead of comparing.
    if std::env::var("PM_WRITE_GOLDEN").is_ok_and(|v| v != "0") {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/golden");
        std::fs::write(format!("{dir}/fig-multicore-c2.json"), &json).unwrap();
        eprintln!("wrote fig_multicore profiled fixture to {dir}");
        return;
    }

    assert_same(
        &json,
        include_str!("../golden/fig-multicore-c2.json"),
        "json artifact",
    );
}

/// The flight-recorder showcase: pins the per-window time series, the
/// sampled packet lifecycles, and the link-flap dip/recovery summary —
/// table and `--json` artifact — byte for byte. Any change to recorder
/// bucketing, sampling hashes, or span attribution shows up here.
#[test]
fn fig_timeline_artifact_matches_committed_fixture() {
    if cfg!(debug_assertions) {
        eprintln!("skipping fig_timeline golden sweep in debug builds (runs under --release)");
        return;
    }
    set_default_profile(true);
    let a = pm_bench::figures::fig_timeline();

    let stdout = format!("{}\n", a.table);
    let json = artifact_document(vec![a.results.to_json("fig-timeline")]).to_pretty() + "\n";

    // PM_WRITE_GOLDEN=1 regenerates the fixture instead of comparing.
    if std::env::var("PM_WRITE_GOLDEN").is_ok_and(|v| v != "0") {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/golden");
        std::fs::write(format!("{dir}/fig-timeline.txt"), &stdout).unwrap();
        std::fs::write(format!("{dir}/fig-timeline.json"), &json).unwrap();
        eprintln!("wrote fig_timeline fixtures to {dir}");
        return;
    }

    assert_same(
        &stdout,
        include_str!("../golden/fig-timeline.txt"),
        "stdout table",
    );
    assert_same(
        &json,
        include_str!("../golden/fig-timeline.json"),
        "json artifact",
    );

    // The fixture really carries the claim: a dip window with zero
    // throughput during the flap and a recovery back to line rate.
    assert!(stdout.contains("dip"), "summary rows present");
    assert!(stdout.contains("recovered"), "recovery row present");
    assert!(json.contains("\"link_down\""), "drop series by cause");
}

/// The flow-scale sweep at the 10k rung of the ladder (1k and 10k flows
/// × 3 stateful NF presets × 4-KiB vs hugepage tables): pins the
/// workload-driven trace synthesis, the scaled-table presets, the
/// per-table counters in the artifact, and the hugepage table placement
/// byte for byte. Any change to the flow-population hashing or the
/// cuckoo/trie/conntrack charging shows up here.
#[test]
fn fig_flowscale_artifact_matches_committed_fixture() {
    if cfg!(debug_assertions) {
        eprintln!("skipping fig_flowscale golden sweep in debug builds (runs under --release)");
        return;
    }
    set_default_profile(true);
    let a = pm_bench::figures::fig_flowscale(10_000);

    let stdout = format!("{}\n", a.table);
    let json = artifact_document(vec![a.results.to_json("fig-flowscale")]).to_pretty() + "\n";

    // PM_WRITE_GOLDEN=1 regenerates the fixture instead of comparing.
    if std::env::var("PM_WRITE_GOLDEN").is_ok_and(|v| v != "0") {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/golden");
        std::fs::write(format!("{dir}/fig-flowscale.txt"), &stdout).unwrap();
        std::fs::write(format!("{dir}/fig-flowscale.json"), &json).unwrap();
        eprintln!("wrote fig_flowscale fixtures to {dir}");
        return;
    }

    assert_same(
        &stdout,
        include_str!("../golden/fig-flowscale.txt"),
        "stdout table",
    );
    assert_same(
        &json,
        include_str!("../golden/fig-flowscale.json"),
        "json artifact",
    );

    // The fixture carries the workload section: canonical spec, churn
    // accounting, and the per-table counters.
    assert!(json.contains("\"workload\""), "workload section present");
    assert!(json.contains("\"tables\""), "per-table counters present");
    assert!(
        json.contains("\"hugepage_tables\": true"),
        "hugepage runs present"
    );
}

#[test]
fn table1_artifact_matches_committed_fixture() {
    if cfg!(debug_assertions) {
        eprintln!("skipping table1 golden sweep in debug builds (runs under --release)");
        return;
    }
    set_default_profile(true);
    let a = pm_bench::figures::table1();

    let stdout = format!("{}\n", a.table);
    assert_same(
        &stdout,
        include_str!("../golden/table1.txt"),
        "stdout table",
    );

    let json = artifact_document(vec![a.results.to_json("table1")]).to_pretty() + "\n";
    assert_same(
        &json,
        include_str!("../golden/table1.json"),
        "json artifact",
    );
}
