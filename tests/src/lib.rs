//! integration placeholder
