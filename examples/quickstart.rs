//! Quickstart: run the paper's headline comparison on the simulated
//! testbed — a single 2.3-GHz core forwarding 100-Gbps campus-mix
//! traffic through the IP router, vanilla FastClick vs PacketMill.
//!
//! Run with: `cargo run --release --example quickstart`

use packetmill::{ExperimentBuilder, MetadataModel, Nf, OptLevel, Table};

fn main() {
    let mut table = Table::new(vec![
        "configuration",
        "Gbps",
        "Mpps",
        "p50 lat (us)",
        "p99 lat (us)",
        "IPC",
        "LLC loads/100ms",
    ]);

    for (label, model, opt) in [
        (
            "Vanilla (Copying)",
            MetadataModel::Copying,
            OptLevel::Vanilla,
        ),
        (
            "PacketMill (X-Change + source opts)",
            MetadataModel::XChange,
            OptLevel::AllSource,
        ),
    ] {
        let m = ExperimentBuilder::new(Nf::Router)
            .metadata_model(model)
            .optimization(opt)
            .frequency_ghz(2.3)
            .packets(60_000)
            .run()
            .expect("experiment runs");
        table.row(vec![
            label.to_string(),
            format!("{:.1}", m.throughput_gbps),
            format!("{:.2}", m.mpps),
            format!("{:.0}", m.median_latency_us),
            format!("{:.0}", m.p99_latency_us),
            format!("{:.2}", m.ipc),
            format!("{:.0}k", m.llc_loads_per_100ms / 1e3),
        ]);
    }

    println!("IP router, 1 core @ 2.3 GHz, 100 Gbps offered, campus-mix traffic\n");
    println!("{table}");
}
