//! Extend the framework with a user-defined element and run it through
//! the whole PacketMill pipeline: write an element, register it, compose
//! it in a Click-language configuration, optimize, and measure.
//!
//! The element (`Ttl64`) normalizes every forwarded packet's TTL to 64 —
//! a privacy middlebox trick that hides hop counts from observers.
//!
//! Run with: `cargo run --release --example custom_element`

use packetmill::{standard_registry, ClickDataplane, ExecPlan, Graph, MetadataModel};
use pm_click::{Action, ConfigGraph, Ctx, Element, GraphRuntime, Pkt};
use pm_mem::{AddressSpace, MemoryHierarchy};
use pm_packet::builder::PacketBuilder;
use pm_packet::checksum::update16;
use pm_packet::ether::ETHER_LEN;
use pm_packet::ipv4::{Ipv4Header, CHECKSUM_OFFSET, TTL_OFFSET};

/// A user element: rewrite the TTL to 64 (incremental checksum patch).
#[derive(Debug, Default)]
struct Ttl64;

impl Element for Ttl64 {
    fn class_name(&self) -> &'static str {
        "TTL64"
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < ETHER_LEN + 20 {
            return Action::Drop;
        }
        let f = pkt.frame_mut();
        let ip = &mut f[ETHER_LEN..];
        let old_word = u16::from_be_bytes([ip[TTL_OFFSET], ip[TTL_OFFSET + 1]]);
        ip[TTL_OFFSET] = 64;
        let new_word = u16::from_be_bytes([ip[TTL_OFFSET], ip[TTL_OFFSET + 1]]);
        let sum = u16::from_be_bytes([ip[CHECKSUM_OFFSET], ip[CHECKSUM_OFFSET + 1]]);
        let patched = update16(sum, old_word, new_word);
        ip[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 2].copy_from_slice(&patched.to_be_bytes());
        // Charge what we touched: the TTL/checksum words + a few ALU ops.
        ctx.write_data(pkt, (ETHER_LEN + TTL_OFFSET) as u64, 4);
        ctx.compute(12);
        Action::Forward(0)
    }
}

fn main() {
    // 1. Register the custom element alongside the standard library.
    let mut registry = standard_registry();
    registry.register("TTL64", || Box::new(Ttl64));

    // 2. Compose it in Click syntax.
    let config = "\
        input :: FromDPDKDevice(PORT 0, BURST 32);\n\
        output :: ToDPDKDevice(PORT 0, BURST 32);\n\
        input -> TTL64 -> EtherMirror -> output;\n";
    let parsed = ConfigGraph::parse(config).expect("parse");
    let graph = Graph::build(&parsed, &registry).expect("build");

    // 3. Run packets through it.
    let mut space = AddressSpace::new();
    let rt = GraphRuntime::new(graph, ExecPlan::vanilla(MetadataModel::Copying), &mut space);
    let mut dp = ClickDataplane::new(rt, 0, "ttl64-forwarder");
    let mut mem = MemoryHierarchy::skylake(1);

    let mut frame = PacketBuilder::tcp().ttl(7).frame_len(128).build();
    let desc = pm_dpdk::RxDesc {
        buf_id: 0,
        len: 128,
        rss_hash: 0,
        arrival: pm_sim::SimTime::ZERO,
        gen: pm_sim::SimTime::ZERO,
        seq: 0,
        data_addr: 0x10_0000,
        meta_addr: 0x20_0000,
        xslot: None,
    };
    let before = Ipv4Header::parse(&frame[14..]).unwrap();
    let result = pm_frameworks::Dataplane::process(&mut dp, 0, &mut mem, &desc, &mut frame);
    let after = Ipv4Header::parse(&frame[14..]).unwrap();

    println!("TTL before: {}   TTL after: {}", before.ttl, after.ttl);
    println!(
        "checksum still valid: {}",
        after.verify_checksum(&frame[14..])
    );
    println!("forwarded: {}", result.tx_len.is_some());
    println!(
        "charged: {} instructions, {:.1} core cycles, {:.1} ns uncore",
        result.cost.instructions, result.cost.cycles, result.cost.uncore_ns
    );
    assert_eq!(after.ttl, 64);
    assert!(after.verify_checksum(&frame[14..]));
}
