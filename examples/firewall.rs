//! Run the extension firewall NF (ACL rules + router) and show both the
//! security behaviour (denied flows) and the PacketMill speedup.
//!
//! Run with: `cargo run --release --example firewall`

use packetmill::{ExperimentBuilder, MetadataModel, Nf, OptLevel, Table};

fn main() {
    let mut table = Table::new(vec![
        "configuration",
        "Gbps",
        "Mpps",
        "denied (NF drops)",
        "p99 (us)",
    ]);
    for (label, model, opt) in [
        (
            "Vanilla (Copying)",
            MetadataModel::Copying,
            OptLevel::Vanilla,
        ),
        (
            "PacketMill (X-Change + all)",
            MetadataModel::XChange,
            OptLevel::AllSource,
        ),
    ] {
        let m = ExperimentBuilder::new(Nf::Firewall)
            .metadata_model(model)
            .optimization(opt)
            .frequency_ghz(2.3)
            .packets(40_000)
            .run()
            .expect("firewall run");
        table.row(vec![
            label.to_string(),
            format!("{:.1}", m.throughput_gbps),
            format!("{:.2}", m.mpps),
            format!("{}", m.nf_dropped),
            format!("{:.0}", m.p99_latency_us),
        ]);
    }
    println!("ACL firewall + router, one core @ 2.3 GHz, campus-mix traffic\n");
    println!("{table}");
    println!("Denied packets are flows outside the allow rules (web/DNS/ICMP).");
}
