//! Compare the three metadata-management models of paper §2.2/§3.1 on
//! the simple forwarder (Fig. 5a), and show the optimizer's emitted
//! specialized source for the X-Change configuration.
//!
//! Run with: `cargo run --release --example xchange_forwarder`

use packetmill::{emit_specialized_source, ExperimentBuilder, MetadataModel, Nf, OptLevel, Table};

fn main() {
    let mut table = Table::new(vec!["freq (GHz)", "copying", "overlaying", "x-change"]);
    for freq in [1.2, 1.8, 2.3, 3.0] {
        let gbps: Vec<f64> = [
            MetadataModel::Copying,
            MetadataModel::Overlaying,
            MetadataModel::XChange,
        ]
        .iter()
        .map(|&model| {
            ExperimentBuilder::new(Nf::Forwarder)
                .metadata_model(model)
                .frequency_ghz(freq)
                .packets(30_000)
                .run()
                .expect("forwarder run")
                .throughput_gbps
        })
        .collect();
        table.row_f64(format!("{freq:.1}"), &gbps, 1);
    }
    println!("Simple forwarder, one core, campus-mix traffic (paper Fig. 5a)\n");
    println!("{table}");

    // Show what the optimizer actually does to the configuration.
    let ir = ExperimentBuilder::new(Nf::Forwarder)
        .metadata_model(MetadataModel::XChange)
        .optimization(OptLevel::AllSource)
        .build_ir()
        .expect("optimizer runs");
    println!("--- specialized source emitted by the optimizer ---\n");
    println!("{}", emit_specialized_source(&ir));
}
