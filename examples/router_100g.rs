//! Reproduce the paper's headline experiment (Fig. 1): a standard IP
//! router on a single 2.3-GHz core, offered-load sweep at up to
//! 100 Gbps, vanilla FastClick vs full PacketMill — showing how
//! PacketMill shifts the tail-latency/throughput knee.
//!
//! The ten (offered, variant) points are independent experiments, so
//! they run on the parallel sweep runner: one run per core, results
//! collected in input order (identical to a serial sweep).
//!
//! Run with: `cargo run --release --example router_100g [-- --threads N]`

use packetmill::{ExperimentBuilder, MetadataModel, Nf, OptLevel, SweepSpec, Table};

fn main() {
    let threads = packetmill::sweep::configure_threads_from_args();
    const OFFERED: [f64; 5] = [20.0, 40.0, 60.0, 80.0, 100.0];

    let mut spec = SweepSpec::new().progress(true);
    for offered in OFFERED {
        spec.push(
            format!("{offered:.0}G vanilla"),
            ExperimentBuilder::new(Nf::Router)
                .metadata_model(MetadataModel::Copying)
                .optimization(OptLevel::Vanilla)
                .frequency_ghz(2.3)
                .offered_gbps(offered)
                .packets(40_000),
        );
        spec.push(
            format!("{offered:.0}G packetmill"),
            ExperimentBuilder::new(Nf::Router)
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .frequency_ghz(2.3)
                .offered_gbps(offered)
                .packets(40_000),
        );
    }
    let results = spec.run_with_threads(threads);
    let ms = results.expect_all();

    let mut table = Table::new(vec![
        "offered (Gbps)",
        "vanilla Gbps",
        "vanilla p99 (us)",
        "packetmill Gbps",
        "packetmill p99 (us)",
    ]);
    for (offered, pair) in OFFERED.iter().zip(ms.chunks_exact(2)) {
        let (vanilla, packetmill) = (&pair[0], &pair[1]);
        table.row(vec![
            format!("{offered:.0}"),
            format!("{:.1}", vanilla.throughput_gbps),
            format!("{:.0}", vanilla.p99_latency_us),
            format!("{:.1}", packetmill.throughput_gbps),
            format!("{:.0}", packetmill.p99_latency_us),
        ]);
    }
    println!("IP router, one core @ 2.3 GHz, campus-mix traffic (paper Fig. 1)\n");
    println!("{table}");
    println!("PacketMill sustains the offered load with flat tail latency while");
    println!("vanilla FastClick saturates and its p99 explodes — the shifted knee.");
    eprintln!("{}", results.report());
}
