//! Reproduce the paper's headline experiment (Fig. 1): a standard IP
//! router on a single 2.3-GHz core, offered-load sweep at up to
//! 100 Gbps, vanilla FastClick vs full PacketMill — showing how
//! PacketMill shifts the tail-latency/throughput knee.
//!
//! Run with: `cargo run --release --example router_100g`

use packetmill::{ExperimentBuilder, MetadataModel, Nf, OptLevel, Table};

fn main() {
    let mut table = Table::new(vec![
        "offered (Gbps)",
        "vanilla Gbps",
        "vanilla p99 (us)",
        "packetmill Gbps",
        "packetmill p99 (us)",
    ]);
    for offered in [20.0, 40.0, 60.0, 80.0, 100.0] {
        let vanilla = ExperimentBuilder::new(Nf::Router)
            .metadata_model(MetadataModel::Copying)
            .optimization(OptLevel::Vanilla)
            .frequency_ghz(2.3)
            .offered_gbps(offered)
            .packets(40_000)
            .run()
            .expect("vanilla run");
        let packetmill = ExperimentBuilder::new(Nf::Router)
            .metadata_model(MetadataModel::XChange)
            .optimization(OptLevel::AllSource)
            .frequency_ghz(2.3)
            .offered_gbps(offered)
            .packets(40_000)
            .run()
            .expect("packetmill run");
        table.row(vec![
            format!("{offered:.0}"),
            format!("{:.1}", vanilla.throughput_gbps),
            format!("{:.0}", vanilla.p99_latency_us),
            format!("{:.1}", packetmill.throughput_gbps),
            format!("{:.0}", packetmill.p99_latency_us),
        ]);
    }
    println!("IP router, one core @ 2.3 GHz, campus-mix traffic (paper Fig. 1)\n");
    println!("{table}");
    println!("PacketMill sustains the offered load with flat tail latency while");
    println!("vanilla FastClick saturates and its p99 explodes — the shifted knee.");
}
