//! The multicore NAT experiment (paper Fig. 10): RSS spreads flows over
//! 1–4 cores; the stateful NAT (cuckoo flow table) scales, and
//! PacketMill's gains persist across core counts.
//!
//! The eight (cores, variant) configurations are independent, so they
//! run on the parallel sweep runner — parallelism across experiments,
//! never inside one, so each simulated run stays deterministic.
//!
//! Run with: `cargo run --release --example nat_multicore [-- --threads N]`

use packetmill::{ExperimentBuilder, MetadataModel, Nf, OptLevel, SweepSpec, Table};

fn main() {
    let threads = packetmill::sweep::configure_threads_from_args();

    let mut spec = SweepSpec::new().progress(true);
    for cores in 1..=4usize {
        spec.push(
            format!("{cores}c vanilla"),
            ExperimentBuilder::new(Nf::Nat)
                .metadata_model(MetadataModel::Copying)
                .optimization(OptLevel::Vanilla)
                .cores(cores)
                .frequency_ghz(2.3)
                .packets(40_000),
        );
        spec.push(
            format!("{cores}c packetmill"),
            ExperimentBuilder::new(Nf::Nat)
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .cores(cores)
                .frequency_ghz(2.3)
                .packets(40_000),
        );
    }
    let results = spec.run_with_threads(threads);
    let ms = results.expect_all();

    let mut table = Table::new(vec!["cores", "vanilla Gbps", "packetmill Gbps", "speedup"]);
    for (cores, pair) in (1..=4usize).zip(ms.chunks_exact(2)) {
        let (vanilla, packetmill) = (&pair[0], &pair[1]);
        table.row(vec![
            format!("{cores}"),
            format!("{:.1}", vanilla.throughput_gbps),
            format!("{:.1}", packetmill.throughput_gbps),
            format!(
                "{:.2}x",
                packetmill.throughput_gbps / vanilla.throughput_gbps
            ),
        ]);
    }
    println!("Stateful NAT @2.3 GHz, RSS over cores (paper Fig. 10)\n");
    println!("{table}");
    eprintln!("{}", results.report());
}
