//! The multicore NAT experiment (paper Fig. 10): RSS spreads flows over
//! 1–4 cores; the stateful NAT (cuckoo flow table) scales, and
//! PacketMill's gains persist across core counts.
//!
//! Run with: `cargo run --release --example nat_multicore`

use packetmill::{ExperimentBuilder, MetadataModel, Nf, OptLevel, Table};

fn main() {
    let mut table = Table::new(vec![
        "cores",
        "vanilla Gbps",
        "packetmill Gbps",
        "speedup",
    ]);
    for cores in 1..=4usize {
        let vanilla = ExperimentBuilder::new(Nf::Nat)
            .metadata_model(MetadataModel::Copying)
            .optimization(OptLevel::Vanilla)
            .cores(cores)
            .frequency_ghz(2.3)
            .packets(40_000)
            .run()
            .expect("vanilla run");
        let packetmill = ExperimentBuilder::new(Nf::Nat)
            .metadata_model(MetadataModel::XChange)
            .optimization(OptLevel::AllSource)
            .cores(cores)
            .frequency_ghz(2.3)
            .packets(40_000)
            .run()
            .expect("packetmill run");
        table.row(vec![
            format!("{cores}"),
            format!("{:.1}", vanilla.throughput_gbps),
            format!("{:.1}", packetmill.throughput_gbps),
            format!(
                "{:.2}x",
                packetmill.throughput_gbps / vanilla.throughput_gbps
            ),
        ]);
    }
    println!("Stateful NAT @2.3 GHz, RSS over cores (paper Fig. 10)\n");
    println!("{table}");
}
