//! Deterministic discrete-event queues.
//!
//! [`EventQueue`] is a bucketed **calendar queue**: events hash by
//! timestamp into a power-of-two ring of day buckets, where one "day" is
//! a fixed power-of-two span of simulated picoseconds sized to the link
//! pacing cadence (a 64-B frame at 100 Gbps arrives every ~6.7 ns; the
//! default 8.2-ns day puts consecutive pacing events in neighboring
//! buckets). Scheduling is O(1); popping scans the current day's bucket
//! and advances day by day, falling back to a full scan only across long
//! idle gaps. Ordering is identical to a binary heap keyed by
//! `(time, seq)`: earliest timestamp first, FIFO within equal
//! timestamps, so multi-actor simulations (multiple cores polling queues
//! fed by multiple NICs) stay fully deterministic.
//!
//! [`HeapEventQueue`] is the original `BinaryHeap` implementation, kept
//! as the reference model: the proptest suite drives both lock-step over
//! arbitrary schedule/pop interleavings (including time ties) to prove
//! pop-order equivalence, and `benches/simcore.rs` compares their
//! events/sec.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Default day width as a power-of-two picosecond shift: 2^13 ps ≈
/// 8.2 ns, on the order of one minimum-size-frame slot at 100 Gbps.
const DEFAULT_DAY_SHIFT: u32 = 13;

/// Number of day buckets in the ring (power of two). With the default
/// day width the ring covers a ~2.1-µs window before the rare
/// full-scan fallback engages.
const BUCKETS: usize = 256;

/// An event queue ordered by time, FIFO within equal timestamps.
///
/// # Examples
///
/// ```
/// use pm_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ns(10.0), "second");
/// q.schedule(SimTime::from_ns(5.0), "first");
/// q.schedule(SimTime::from_ns(10.0), "third"); // same time as "second"
///
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5.0), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10.0), "second")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10.0), "third")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `BUCKETS` unsorted day buckets; an event for time `t` lives in
    /// bucket `(t >> shift) & mask`.
    buckets: Vec<Vec<Entry<E>>>,
    mask: u64,
    shift: u32,
    /// The day the pop cursor is currently serving. All pending events
    /// have `day >= cur_day` (schedule lowers the cursor on past-time
    /// inserts).
    cur_day: u64,
    len: usize,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default day width.
    pub fn new() -> Self {
        Self::with_day_shift(DEFAULT_DAY_SHIFT)
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        let per_bucket = cap / BUCKETS + 1;
        for b in &mut q.buckets {
            b.reserve(per_bucket);
        }
        q
    }

    /// Creates an empty queue whose day width matches `spacing`, the
    /// typical gap between consecutive events (e.g. the link's per-frame
    /// pacing interval): the day becomes the largest power of two not
    /// exceeding `spacing`, so each bucket scan sees O(1) events.
    pub fn with_pacing(spacing: SimTime) -> Self {
        let ps = spacing.as_ps().max(1);
        Self::with_day_shift((63 - ps.leading_zeros()).clamp(4, 40))
    }

    fn with_day_shift(shift: u32) -> Self {
        EventQueue {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            mask: (BUCKETS - 1) as u64,
            shift,
            cur_day: 0,
            len: 0,
            seq: 0,
        }
    }

    #[inline]
    fn day_of(&self, time: SimTime) -> u64 {
        time.as_ps() >> self.shift
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let day = self.day_of(time);
        if self.len == 0 || day < self.cur_day {
            self.cur_day = day;
        }
        let slot = (day & self.mask) as usize;
        self.buckets[slot].push(Entry { time, seq, event });
        self.len += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let mut probes = 0;
        loop {
            if probes >= BUCKETS {
                // Nothing within a full ring revolution of the cursor: a
                // long idle gap. Jump straight to the earliest populated
                // day (O(len), rare).
                self.cur_day = self
                    .buckets
                    .iter()
                    .flatten()
                    .map(|e| self.day_of(e.time))
                    .min()
                    .expect("len > 0");
                probes = 0;
            }
            let slot = (self.cur_day & self.mask) as usize;
            let mut best: Option<(SimTime, u64, usize)> = None;
            for (i, e) in self.buckets[slot].iter().enumerate() {
                if self.day_of(e.time) != self.cur_day {
                    continue; // a later ring revolution shares this slot
                }
                if best.is_none_or(|(t, s, _)| (e.time, e.seq) < (t, s)) {
                    best = Some((e.time, e.seq, i));
                }
            }
            if let Some((_, _, i)) = best {
                let e = self.buckets[slot].swap_remove(i);
                self.len -= 1;
                return Some((e.time, e.event));
            }
            self.cur_day += 1;
            probes += 1;
        }
    }

    /// Returns the timestamp of the earliest event without removing it.
    /// O(pending events); intended for inspection, not hot loops.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.buckets.iter().flatten().map(|e| e.time).min()
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.cur_day = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The original binary-min-heap event queue, kept as the ordering
/// reference for [`EventQueue`] (same API, same `(time, seq)` pop
/// order).
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapEventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(30), 3);
        q.schedule(SimTime::from_ps(10), 1);
        q.schedule(SimTime::from_ps(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ps(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(10), "a");
        q.schedule(SimTime::from_ps(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_ps(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn past_time_insert_after_cursor_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(5.0), "late");
        assert_eq!(q.pop().unwrap().1, "late"); // cursor now far ahead
        q.schedule(SimTime::from_ps(1), "early");
        q.schedule(SimTime::from_us(9.0), "later");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn long_idle_gap_falls_back_to_scan() {
        // A gap much larger than the ring window (256 buckets x 8.2 ns ≈
        // 2.1 µs) forces the full-scan cursor jump.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(3), 0);
        q.schedule(SimTime::from_ms(50.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn colliding_ring_slots_stay_ordered() {
        // Two times exactly one ring revolution apart share a bucket;
        // the day check must keep the later one pending.
        let window_ps = (BUCKETS as u64) << DEFAULT_DAY_SHIFT;
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(40 + window_ps), "next-revolution");
        q.schedule(SimTime::from_ps(40), "now");
        assert_eq!(q.pop().unwrap().1, "now");
        assert_eq!(q.pop().unwrap().1, "next-revolution");
        assert!(q.pop().is_none());
    }

    #[test]
    fn with_pacing_matches_event_spacing() {
        // ~6.7 ns per 64-B frame at 100 Gbps.
        let mut q = EventQueue::with_pacing(SimTime::from_ns(6.7));
        for i in (0..1000u64).rev() {
            q.schedule(SimTime::from_ps(i * 6700), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn heap_queue_reference_semantics() {
        let mut q = HeapEventQueue::new();
        q.schedule(SimTime::from_ps(30), 3);
        q.schedule(SimTime::from_ps(10), 1);
        q.schedule(SimTime::from_ps(10), 2); // FIFO tie
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(10)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 0);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.pop().is_none());
    }
}
