//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] is a binary min-heap keyed by [`SimTime`] with a
//! monotonically increasing sequence number as tiebreaker, so two events
//! scheduled for the same instant are delivered in the order they were
//! scheduled. This makes multi-actor simulations (multiple cores polling
//! queues fed by multiple NICs) fully deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue ordered by time, FIFO within equal timestamps.
///
/// # Examples
///
/// ```
/// use pm_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ns(10.0), "second");
/// q.schedule(SimTime::from_ns(5.0), "first");
/// q.schedule(SimTime::from_ns(10.0), "third"); // same time as "second"
///
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5.0), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10.0), "second")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10.0), "third")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(30), 3);
        q.schedule(SimTime::from_ps(10), 1);
        q.schedule(SimTime::from_ps(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ps(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ps(10), "a");
        q.schedule(SimTime::from_ps(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_ps(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
