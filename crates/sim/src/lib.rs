//! Discrete-event simulation kernel for PacketMill-rs.
//!
//! This crate provides the shared time base, frequency arithmetic, event
//! queue, and deterministic random-number generation used by every other
//! simulation crate in the workspace.
//!
//! # Design notes
//!
//! * Simulated time is kept in integer **picoseconds** ([`SimTime`]) so that
//!   event ordering is exact and runs are bit-for-bit reproducible.
//! * CPU core frequency and uncore frequency are first-class values
//!   ([`Frequency`]); converting cycle counts to wall time is explicit.
//! * The event queue ([`EventQueue`]) is a bucketed calendar queue sized
//!   to the link-pacing cadence, with a sequence tiebreaker so events
//!   scheduled for the same instant pop in scheduling order
//!   (deterministic FIFO semantics, identical to the reference
//!   [`HeapEventQueue`] min-heap).
//! * Hot-path randomness uses a from-scratch [`rng::SplitMix64`]; workload
//!   synthesis elsewhere in the workspace uses seeded `rand` generators.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod events;
pub mod fault;
pub mod freq;
pub mod rng;
pub mod time;

pub use events::{EventQueue, HeapEventQueue};
pub use fault::{DropCause, FaultEvent, FaultKind, FaultPlan, FaultSpecError, Ledger, WireFault};
pub use freq::Frequency;
pub use rng::SplitMix64;
pub use time::SimTime;
