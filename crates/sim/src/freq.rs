//! Clock-frequency arithmetic.
//!
//! The PacketMill evaluation sweeps the DUT core frequency from 1.2 to
//! 3.0 GHz while pinning the *uncore* (LLC / memory controller) clock at
//! 2.4 GHz. Splitting costs into core-clock cycles and uncore/wall-clock
//! nanoseconds — and converting between them explicitly — is what produces
//! the paper's frequency-dependent throughput curves, so the conversion
//! lives here as a small, well-tested primitive.

use crate::time::SimTime;
use std::fmt;

/// A clock frequency, stored in kHz so common GHz values are exact.
///
/// # Examples
///
/// ```
/// use pm_sim::{Frequency, SimTime};
///
/// let f = Frequency::from_ghz(2.3);
/// // 230 cycles at 2.3 GHz take exactly 100 ns.
/// assert_eq!(f.cycles_to_time(230), SimTime::from_ns(100.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency {
    khz: u64,
}

impl Frequency {
    /// Creates a frequency from GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive, got {ghz}");
        Frequency {
            khz: (ghz * 1_000_000.0).round() as u64,
        }
    }

    /// Creates a frequency from MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz > 0.0, "frequency must be positive, got {mhz}");
        Frequency {
            khz: (mhz * 1_000.0).round() as u64,
        }
    }

    /// Returns the frequency in GHz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.khz as f64 / 1_000_000.0
    }

    /// Returns the frequency in Hz.
    #[inline]
    pub fn as_hz(self) -> f64 {
        self.khz as f64 * 1_000.0
    }

    /// Converts a cycle count at this frequency into simulated time.
    #[inline]
    pub fn cycles_to_time(self, cycles: u64) -> SimTime {
        // ps = cycles * 1e12 / Hz = cycles * 1e9 / kHz
        SimTime::from_ps(cycles * 1_000_000_000 / self.khz)
    }

    /// Converts fractional cycles at this frequency into simulated time.
    #[inline]
    pub fn cycles_f64_to_time(self, cycles: f64) -> SimTime {
        SimTime::from_ps((cycles * 1e9 / self.khz as f64).round().max(0.0) as u64)
    }

    /// Converts a duration into (fractional) cycles at this frequency.
    #[inline]
    pub fn time_to_cycles(self, t: SimTime) -> f64 {
        t.as_ns() * self.as_ghz()
    }

    /// The period of one cycle.
    #[inline]
    pub fn period(self) -> SimTime {
        self.cycles_to_time(1)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GHz", self.as_ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_round_trip() {
        for ghz in [1.2, 1.4, 2.3, 2.4, 3.0] {
            let f = Frequency::from_ghz(ghz);
            assert!((f.as_ghz() - ghz).abs() < 1e-9, "{ghz}");
        }
    }

    #[test]
    fn cycles_to_time_exact_values() {
        let f = Frequency::from_ghz(2.0);
        assert_eq!(f.cycles_to_time(1), SimTime::from_ps(500));
        assert_eq!(f.cycles_to_time(4), SimTime::from_ns(2.0));
    }

    #[test]
    fn time_to_cycles_inverse() {
        let f = Frequency::from_ghz(2.4);
        let t = SimTime::from_ns(100.0);
        assert!((f.time_to_cycles(t) - 240.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_cycles() {
        let f = Frequency::from_ghz(1.0);
        assert_eq!(f.cycles_f64_to_time(2.5), SimTime::from_ns(2.5));
    }

    #[test]
    fn mhz_constructor() {
        assert_eq!(Frequency::from_mhz(2_300.0), Frequency::from_ghz(2.3));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_ghz(0.0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Frequency::from_ghz(2.3)), "2.300 GHz");
    }
}
