//! Deterministic random-number generation for simulation hot paths.
//!
//! The WorkPackage synthetic element (paper §A.4) performs per-packet
//! pseudo-random memory accesses and per-packet pseudo-random number
//! generation; at simulated 100-Gbps rates that is tens of millions of
//! draws per run, so the generator must be both fast and reproducible.
//! [`SplitMix64`] is a tiny, well-studied 64-bit generator that fits.

/// A SplitMix64 pseudo-random generator.
///
/// Deterministic, seedable, and allocation-free. Not cryptographically
/// secure — it exists purely for reproducible workload synthesis.
///
/// # Examples
///
/// ```
/// use pm_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire); slightly biased for
    /// enormous bounds, which is irrelevant for workload synthesis.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(0xDEAD_BEEF);
        let mut b = SplitMix64::new(0xDEAD_BEEF);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_reference_values() {
        // Reference values for SplitMix64 seeded with 0 (from the public
        // domain reference implementation by Sebastiano Vigna).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(97) < 97);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
