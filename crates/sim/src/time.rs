//! Simulated time: an integer picosecond time base.
//!
//! All simulation crates share [`SimTime`] so that event ordering is exact
//! (no floating-point drift) while still being fine-grained enough to
//! represent sub-nanosecond quantities such as the serialization time of a
//! single byte at 100 Gbps (80 ps).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in integer picoseconds.
///
/// `SimTime` is used both as an absolute timestamp (picoseconds since the
/// start of the simulation) and as a duration; the arithmetic operators
/// treat it uniformly.
///
/// # Examples
///
/// ```
/// use pm_sim::SimTime;
///
/// let t = SimTime::from_ns(6.72); // 64-B frame slot at 100 Gbps
/// assert_eq!(t.as_ps(), 6720);
/// assert!((t.as_ns() - 6.72).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero timestamp (start of simulation).
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable time (used as an "infinite" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from integer picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from (possibly fractional) nanoseconds.
    ///
    /// Negative inputs saturate to zero.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        SimTime((ns.max(0.0) * 1_000.0).round() as u64)
    }

    /// Creates a time from (possibly fractional) microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1_000.0)
    }

    /// Creates a time from (possibly fractional) milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_ns(ms * 1_000_000.0)
    }

    /// Creates a time from whole seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        Self::from_ns(s * 1_000_000_000.0)
    }

    /// Returns the raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the time in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the time in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: returns `self - rhs`, or zero if `rhs > self`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns true if this is the zero timestamp.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The index of the recording window containing this instant, for a
    /// given window length: window `i` covers
    /// `[i * window, (i + 1) * window)`. The flight recorder keys all of
    /// its per-window accumulation off this, so checkpoint boundaries
    /// are exact integer arithmetic on the clock — no float drift.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[inline]
    pub const fn window_index(self, window: SimTime) -> u64 {
        assert!(window.0 > 0, "window length must be positive");
        self.0 / window.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.as_ns();
        if ns < 1_000.0 {
            write!(f, "{ns:.2} ns")
        } else if ns < 1_000_000.0 {
            write!(f, "{:.2} us", ns / 1_000.0)
        } else if ns < 1_000_000_000.0 {
            write!(f, "{:.2} ms", ns / 1_000_000.0)
        } else {
            write!(f, "{:.3} s", ns / 1_000_000_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ns(123.456);
        assert_eq!(t.as_ps(), 123_456);
        assert!((t.as_ns() - 123.456).abs() < 1e-9);
        assert!((t.as_us() - 0.123_456).abs() < 1e-12);
    }

    #[test]
    fn from_units_agree() {
        assert_eq!(SimTime::from_us(1.0), SimTime::from_ns(1_000.0));
        assert_eq!(SimTime::from_ms(1.0), SimTime::from_us(1_000.0));
        assert_eq!(SimTime::from_secs(1.0), SimTime::from_ms(1_000.0));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ps(100);
        let b = SimTime::from_ps(40);
        assert_eq!((a + b).as_ps(), 140);
        assert_eq!((a - b).as_ps(), 60);
        assert_eq!((a * 3).as_ps(), 300);
        assert_eq!((a / 4).as_ps(), 25);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn negative_ns_saturates_to_zero() {
        assert_eq!(SimTime::from_ns(-5.0), SimTime::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_ns(1.0);
        let b = SimTime::from_ns(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(5.0)), "5.00 ns");
        assert_eq!(format!("{}", SimTime::from_us(5.0)), "5.00 us");
        assert_eq!(format!("{}", SimTime::from_ms(5.0)), "5.00 ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_ps).sum();
        assert_eq!(total.as_ps(), 10);
    }

    #[test]
    fn window_index_boundaries_are_half_open() {
        let w = SimTime::from_us(100.0);
        assert_eq!(SimTime::ZERO.window_index(w), 0);
        assert_eq!((w - SimTime::from_ps(1)).window_index(w), 0);
        // The boundary instant belongs to the *next* window.
        assert_eq!(w.window_index(w), 1);
        assert_eq!((w * 7 + SimTime::from_ps(1)).window_index(w), 7);
    }

    #[test]
    fn wire_slot_at_100g() {
        // A 64-B frame + 20 B preamble/IFG at 100 Gbps takes 6.72 ns.
        let bits = (64u64 + 20) * 8;
        let t = SimTime::from_ns(bits as f64 / 100.0);
        assert_eq!(t.as_ps(), 6_720);
    }
}
