//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded schedule of fault events — wire bit-flips
//! and truncation, descriptor-drop episodes, link flaps, mempool
//! exhaustion windows, per-element slow-downs — that the engine, NIC,
//! PMD, and Click runtime consult at well-defined points. Every decision
//! is a **pure function** of `(plan seed, event index, stream, packet
//! sequence number)`: no mutable RNG state is threaded through the hot
//! path, so the same plan produces bit-identical behaviour regardless of
//! sweep thread count, poll order, or how many other runs share the
//! process.
//!
//! The empty plan is the zero-cost baseline: a run configured with
//! `FaultPlan::new(seed)` (no events) is required to be byte-identical
//! to a run with no plan at all — the golden-fixture gate in
//! `tests/tests/golden.rs` enforces this.
//!
//! The companion [`Ledger`] is the always-on packet-conservation
//! account: every generated packet must be explained by exactly one of
//! the categorized outcomes (`tx_sent` or one of the drop counters), and
//! the engine asserts the balance at the end of every run.

use crate::rng::SplitMix64;
use crate::time::SimTime;
use std::fmt;

/// Probabilities are stored in parts-per-million so plans are `Eq`,
/// hashable, and free of float-comparison hazards.
pub const PPM: u64 = 1_000_000;

/// What kind of fault an event injects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// A wire bit error: the frame arrives with a corrupted payload and
    /// fails the NIC's FCS check (counted, dropped before consuming a
    /// posted buffer — like `rx_crc_errors` on a real device).
    BitFlip {
        /// Per-packet corruption probability, parts per million.
        rate_ppm: u32,
    },
    /// Wire truncation: the frame is cut short but its (recomputed) FCS
    /// is valid, so the shortened bytes travel all the way into the NF —
    /// the parser-robustness case.
    Truncate {
        /// Per-packet truncation probability, parts per million.
        rate_ppm: u32,
    },
    /// A descriptor-processing drop episode: the NIC misses the frame
    /// entirely (microburst overrun), counted separately from ring
    /// overflow.
    DescDrop {
        /// Per-packet drop probability, parts per million.
        rate_ppm: u32,
    },
    /// Link down for the whole window: arriving frames are lost (and
    /// counted) and TX serialization pauses until the window closes.
    LinkFlap,
    /// Mempool exhaustion for the whole window: PMD replenish
    /// allocations are denied (counted), so the RX ring drains and
    /// overflow drops follow — no panic anywhere.
    PoolExhaust,
    /// Multiplies the charged cost of one element's `process` by
    /// `factor_x1000 / 1000` for packets arriving inside the window.
    Slowdown {
        /// Element class (`Null`) or instance name to slow down.
        element: String,
        /// Cost multiplier, thousandths (3000 = 3×; must be ≥ 1000).
        factor_x1000: u32,
    },
}

impl FaultKind {
    /// Per-kind hash salt, so co-scheduled events decide independently.
    fn salt(&self) -> u64 {
        match self {
            FaultKind::BitFlip { .. } => 0xB17_F11B,
            FaultKind::Truncate { .. } => 0x7121_C473,
            FaultKind::DescDrop { .. } => 0xDE5C_D120,
            FaultKind::LinkFlap => 0xF1A9,
            FaultKind::PoolExhaust => 0x9001_EA57,
            FaultKind::Slowdown { .. } => 0x510_3D0,
        }
    }
}

/// One scheduled fault: a kind active on `[from, until)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); [`SimTime::MAX`] = until the run ends.
    pub until: SimTime,
}

impl FaultEvent {
    /// Whether the window covers instant `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// The wire-level verdict for one delivered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Corrupted in flight: the NIC's FCS check must reject it.
    BitFlip,
    /// Truncated to `new_len` bytes (FCS valid — reaches the NF).
    Truncate {
        /// Surviving frame length, `1 ..= original - 1`.
        new_len: usize,
    },
    /// Lost in a descriptor-processing episode.
    DescDrop,
}

/// Error from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// A seeded, schedulable plan of fault events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for all per-packet fault decisions.
    pub seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// True when the plan schedules no events — behaviourally identical
    /// to running with no plan at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in decision-priority order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Appends an event (builder style).
    #[must_use]
    pub fn with(mut self, kind: FaultKind, from: SimTime, until: SimTime) -> Self {
        self.push(kind, from, until);
        self
    }

    /// Appends an event.
    pub fn push(&mut self, kind: FaultKind, from: SimTime, until: SimTime) {
        self.events.push(FaultEvent { kind, from, until });
    }

    /// The wire fault (if any) hitting packet `seq` of stream `nic`
    /// arriving at `at` with `frame_len` bytes. Pure: the same
    /// arguments always yield the same verdict. The first matching
    /// event in plan order wins.
    pub fn wire_fault(
        &self,
        nic: u64,
        seq: u64,
        at: SimTime,
        frame_len: usize,
    ) -> Option<WireFault> {
        for (i, ev) in self.events.iter().enumerate() {
            if !ev.active_at(at) {
                continue;
            }
            let rate = match &ev.kind {
                FaultKind::BitFlip { rate_ppm }
                | FaultKind::Truncate { rate_ppm }
                | FaultKind::DescDrop { rate_ppm } => u64::from(*rate_ppm),
                _ => continue,
            };
            let h = self.decision(ev.kind.salt() ^ i as u64, nic, seq);
            if h % PPM >= rate {
                continue;
            }
            return Some(match ev.kind {
                FaultKind::BitFlip { .. } => WireFault::BitFlip,
                FaultKind::DescDrop { .. } => WireFault::DescDrop,
                FaultKind::Truncate { .. } => {
                    if frame_len < 2 {
                        continue; // nothing left to cut
                    }
                    // Keep 1 ..= len-1 bytes, uniformly.
                    let keep = 1 + ((h >> 32) as usize % (frame_len - 1));
                    WireFault::Truncate { new_len: keep }
                }
                _ => unreachable!("rate kinds only"),
            });
        }
        None
    }

    /// One 64-bit decision hash for `(event, stream, seq)`.
    fn decision(&self, event_salt: u64, stream: u64, seq: u64) -> u64 {
        SplitMix64::new(
            self.seed
                ^ event_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ stream.rotate_left(24)
                ^ seq.wrapping_mul(0xBF58_476D_1CE4_E5B9),
        )
        .next_u64()
    }

    /// Windows during which the link is down, in plan order.
    pub fn link_down_windows(&self) -> Vec<(SimTime, SimTime)> {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::LinkFlap)
            .map(|e| (e.from, e.until))
            .collect()
    }

    /// Windows during which mempool allocations are denied.
    pub fn pool_exhaust_windows(&self) -> Vec<(SimTime, SimTime)> {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::PoolExhaust)
            .map(|e| (e.from, e.until))
            .collect()
    }

    /// Slow-down windows `(from, until, factor_x1000)` applying to an
    /// element with the given class and instance name.
    pub fn slowdown_windows(&self, class: &str, name: &str) -> Vec<(SimTime, SimTime, u32)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                FaultKind::Slowdown {
                    element,
                    factor_x1000,
                } if element == class || element == name => Some((e.from, e.until, *factor_x1000)),
                _ => None,
            })
            .collect()
    }

    /// Parses a fault spec (the `--faults` CLI syntax): `;`-separated
    /// clauses, each `seed=N` or `kind@from..until[:key=value,…]`.
    ///
    /// * times: a number with a unit — `ns`, `us`, `ms`, `s` (or `ps`);
    ///   an empty endpoint means 0 / run end (`flap@1ms..2ms`,
    ///   `bitflip@..`).
    /// * kinds: `bitflip`, `trunc`, `drop` (take `rate=`, a probability
    ///   or `Nppm`), `flap`, `pool` (no parameters), `slow` (takes
    ///   `element=` and `factor=`).
    ///
    /// Example:
    /// `seed=7;bitflip@..:rate=0.001;flap@1ms..1.5ms;slow@..:element=Null,factor=3`
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::new(0);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = clause.strip_prefix("seed=") {
                plan.seed =
                    parse_u64(v).ok_or_else(|| FaultSpecError(format!("bad seed '{v}'")))?;
                continue;
            }
            let (head, params) = match clause.split_once(':') {
                Some((h, p)) => (h, Some(p)),
                None => (clause, None),
            };
            let (kind_name, window) = head
                .split_once('@')
                .ok_or_else(|| FaultSpecError(format!("clause '{clause}' needs '@window'")))?;
            let (from_s, until_s) = window
                .split_once("..")
                .ok_or_else(|| FaultSpecError(format!("window '{window}' needs '..'")))?;
            let from = parse_time(from_s, SimTime::ZERO)?;
            let until = parse_time(until_s, SimTime::MAX)?;
            if until <= from {
                return Err(FaultSpecError(format!("empty window '{window}'")));
            }
            let params = parse_params(params.unwrap_or(""))?;
            let get = |key: &str| {
                params
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.as_str())
            };
            let known = |allowed: &[&str]| -> Result<(), FaultSpecError> {
                for (k, _) in &params {
                    if !allowed.contains(&k.as_str()) {
                        return Err(FaultSpecError(format!(
                            "unknown parameter '{k}' for '{kind_name}'"
                        )));
                    }
                }
                Ok(())
            };
            let rate = || -> Result<u32, FaultSpecError> {
                let v = get("rate")
                    .ok_or_else(|| FaultSpecError(format!("'{kind_name}' needs rate=")))?;
                parse_rate(v).ok_or_else(|| FaultSpecError(format!("bad rate '{v}'")))
            };
            let kind = match kind_name {
                "bitflip" => {
                    known(&["rate"])?;
                    FaultKind::BitFlip { rate_ppm: rate()? }
                }
                "trunc" => {
                    known(&["rate"])?;
                    FaultKind::Truncate { rate_ppm: rate()? }
                }
                "drop" => {
                    known(&["rate"])?;
                    FaultKind::DescDrop { rate_ppm: rate()? }
                }
                "flap" => {
                    known(&[])?;
                    FaultKind::LinkFlap
                }
                "pool" => {
                    known(&[])?;
                    FaultKind::PoolExhaust
                }
                "slow" => {
                    known(&["element", "factor"])?;
                    let element = get("element")
                        .ok_or_else(|| FaultSpecError("'slow' needs element=".into()))?
                        .to_string();
                    let f = get("factor")
                        .ok_or_else(|| FaultSpecError("'slow' needs factor=".into()))?;
                    let factor: f64 =
                        f.parse().ok().filter(|&f| f >= 1.0).ok_or_else(|| {
                            FaultSpecError(format!("bad factor '{f}' (must be ≥ 1)"))
                        })?;
                    FaultKind::Slowdown {
                        element,
                        factor_x1000: (factor * 1000.0).round() as u32,
                    }
                }
                other => return Err(FaultSpecError(format!("unknown fault kind '{other}'"))),
            };
            plan.push(kind, from, until);
        }
        Ok(plan)
    }

    /// The canonical spec string ([`Self::parse`] round-trips it).
    pub fn to_spec(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for e in &self.events {
            let window = format!("{}..{}", fmt_time(e.from), fmt_until(e.until));
            let clause = match &e.kind {
                FaultKind::BitFlip { rate_ppm } => format!("bitflip@{window}:rate={rate_ppm}ppm"),
                FaultKind::Truncate { rate_ppm } => format!("trunc@{window}:rate={rate_ppm}ppm"),
                FaultKind::DescDrop { rate_ppm } => format!("drop@{window}:rate={rate_ppm}ppm"),
                FaultKind::LinkFlap => format!("flap@{window}"),
                FaultKind::PoolExhaust => format!("pool@{window}"),
                FaultKind::Slowdown {
                    element,
                    factor_x1000,
                } => format!(
                    "slow@{window}:element={element},factor={}",
                    *factor_x1000 as f64 / 1000.0
                ),
            };
            out.push(';');
            out.push_str(&clause);
        }
        out
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// `0.01` (probability) or `1500ppm`.
fn parse_rate(s: &str) -> Option<u32> {
    if let Some(p) = s.strip_suffix("ppm") {
        return p.parse::<u32>().ok().filter(|&p| u64::from(p) <= PPM);
    }
    let f: f64 = s.parse().ok()?;
    (0.0..=1.0)
        .contains(&f)
        .then(|| (f * PPM as f64).round() as u32)
}

fn parse_time(s: &str, default: SimTime) -> Result<SimTime, FaultSpecError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(default);
    }
    let (num, mul_ps) = if let Some(v) = s.strip_suffix("ns") {
        (v, 1_000.0)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, 1_000_000.0)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1_000_000_000.0)
    } else if let Some(v) = s.strip_suffix("ps") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1e12)
    } else {
        return Err(FaultSpecError(format!(
            "time '{s}' needs a unit (ps/ns/us/ms/s)"
        )));
    };
    let f: f64 = num
        .parse()
        .ok()
        .filter(|f| *f >= 0.0)
        .ok_or_else(|| FaultSpecError(format!("bad time '{s}'")))?;
    Ok(SimTime::from_ps((f * mul_ps).round() as u64))
}

fn fmt_time(t: SimTime) -> String {
    if t == SimTime::ZERO {
        String::new()
    } else {
        format!("{}ns", t.as_ps() as f64 / 1e3)
    }
}

fn fmt_until(t: SimTime) -> String {
    if t == SimTime::MAX {
        String::new()
    } else {
        fmt_time(t)
    }
}

fn parse_params(s: &str) -> Result<Vec<(String, String)>, FaultSpecError> {
    let mut out = Vec::new();
    for p in s.split(',') {
        let p = p.trim();
        if p.is_empty() {
            continue;
        }
        let (k, v) = p
            .split_once('=')
            .ok_or_else(|| FaultSpecError(format!("parameter '{p}' needs '='")))?;
        out.push((k.trim().to_string(), v.trim().to_string()));
    }
    Ok(out)
}

/// The shared drop-cause taxonomy: every packet that does not make it
/// onto the wire is charged to exactly one of these causes. The
/// conservation [`Ledger`], the per-queue ledgers, the timeline drop
/// series, and the trace `fate` field all use the same set, and the
/// string form ([`DropCause::as_str`]) is pinned by a test — it appears
/// verbatim in committed JSON artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropCause {
    /// Rejected at the NIC's FCS check (wire bit-flip).
    Fcs,
    /// Arrived while the link was down (flap window).
    LinkDown,
    /// Lost in a descriptor-processing episode.
    Desc,
    /// No posted RX buffer (ring overflow).
    RxRing,
    /// Dropped by the NF (error paths included).
    Nf,
    /// Dropped at a full TX ring.
    TxRing,
}

impl DropCause {
    /// Every cause, in ledger/serialization order.
    pub const ALL: [DropCause; 6] = [
        DropCause::Fcs,
        DropCause::LinkDown,
        DropCause::Desc,
        DropCause::RxRing,
        DropCause::Nf,
        DropCause::TxRing,
    ];

    /// The stable string form used in JSON artifacts and trace fates.
    pub const fn as_str(self) -> &'static str {
        match self {
            DropCause::Fcs => "fcs",
            DropCause::LinkDown => "link_down",
            DropCause::Desc => "desc",
            DropCause::RxRing => "rx_ring",
            DropCause::Nf => "nf",
            DropCause::TxRing => "tx_ring",
        }
    }
}

impl fmt::Display for DropCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The whole-run packet-conservation account. Always computed and
/// asserted by the engine — with an empty plan all fault counters are
/// zero and the identity reduces to the passive drop accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Packets the generator offered (per run, all NICs).
    pub generated: u64,
    /// Frames the NIC rejected at the FCS check (wire bit-flips).
    pub fcs_dropped: u64,
    /// Frames lost because they arrived while the link was down.
    pub link_down_dropped: u64,
    /// Frames lost to descriptor-drop episodes.
    pub desc_dropped: u64,
    /// Frames dropped for lack of a posted RX buffer (ring overflow).
    pub rx_ring_dropped: u64,
    /// Packets the NF dropped (error paths included), whole run.
    pub nf_dropped: u64,
    /// Frames dropped at a full TX ring.
    pub tx_ring_dropped: u64,
    /// Frames serialized onto the wire.
    pub tx_sent: u64,
    /// Truncated frames that were still delivered (informational — these
    /// continue through the pipeline and end up in another category).
    pub truncated_delivered: u64,
    /// PMD replenish allocations denied by an exhaustion window
    /// (informational — the resulting losses surface as ring overflow).
    pub pool_denials: u64,
}

impl Ledger {
    /// The drop counter for one cause.
    pub fn count(&self, cause: DropCause) -> u64 {
        match cause {
            DropCause::Fcs => self.fcs_dropped,
            DropCause::LinkDown => self.link_down_dropped,
            DropCause::Desc => self.desc_dropped,
            DropCause::RxRing => self.rx_ring_dropped,
            DropCause::Nf => self.nf_dropped,
            DropCause::TxRing => self.tx_ring_dropped,
        }
    }

    /// Packets explained by a categorized outcome.
    pub fn accounted(&self) -> u64 {
        DropCause::ALL.iter().map(|&c| self.count(c)).sum::<u64>() + self.tx_sent
    }

    /// The conservation identity:
    /// `generated == tx_sent + Σ categorized drops`.
    pub fn balances(&self) -> bool {
        self.generated == self.accounted()
    }
}

impl fmt::Display for Ledger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "generated {} = tx {} + fcs {} + link-down {} + desc {} + rx-ring {} + nf {} + tx-ring {}{}",
            self.generated,
            self.tx_sent,
            self.fcs_dropped,
            self.link_down_dropped,
            self.desc_dropped,
            self.rx_ring_dropped,
            self.nf_dropped,
            self.tx_ring_dropped,
            if self.balances() { "" } else { "  (UNBALANCED)" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(f: f64) -> SimTime {
        SimTime::from_ms(f)
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new(42);
        assert!(p.is_empty());
        for seq in 0..1000 {
            assert_eq!(p.wire_fault(0, seq, ms(1.0), 64), None);
        }
        assert!(p.link_down_windows().is_empty());
        assert!(p.pool_exhaust_windows().is_empty());
    }

    #[test]
    fn decisions_are_pure_and_windowed() {
        let p = FaultPlan::new(7).with(FaultKind::BitFlip { rate_ppm: 500_000 }, ms(1.0), ms(2.0));
        let inside: Vec<_> = (0..64).map(|s| p.wire_fault(0, s, ms(1.5), 64)).collect();
        // Pure: same inputs, same verdicts.
        let again: Vec<_> = (0..64).map(|s| p.wire_fault(0, s, ms(1.5), 64)).collect();
        assert_eq!(inside, again);
        // Roughly half hit at 50 %.
        let hits = inside.iter().filter(|v| v.is_some()).count();
        assert!((10..=54).contains(&hits), "got {hits}/64 at 50%");
        // Outside the window nothing hits.
        assert!((0..64).all(|s| p.wire_fault(0, s, ms(0.5), 64).is_none()));
        assert!((0..64).all(|s| p.wire_fault(0, s, ms(2.0), 64).is_none()));
    }

    #[test]
    fn truncation_always_shortens() {
        let p = FaultPlan::new(3).with(
            FaultKind::Truncate {
                rate_ppm: 1_000_000,
            },
            SimTime::ZERO,
            SimTime::MAX,
        );
        for seq in 0..256 {
            match p.wire_fault(1, seq, ms(0.1), 90) {
                Some(WireFault::Truncate { new_len }) => {
                    assert!((1..90).contains(&new_len), "bad len {new_len}")
                }
                other => panic!("expected truncation, got {other:?}"),
            }
        }
        // A 1-byte frame cannot be truncated further.
        assert_eq!(p.wire_fault(1, 0, ms(0.1), 1), None);
    }

    #[test]
    fn streams_decide_independently() {
        let p = FaultPlan::new(11).with(
            FaultKind::DescDrop { rate_ppm: 500_000 },
            SimTime::ZERO,
            SimTime::MAX,
        );
        let a: Vec<_> = (0..128).map(|s| p.wire_fault(0, s, ms(0.1), 64)).collect();
        let b: Vec<_> = (0..128).map(|s| p.wire_fault(1, s, ms(0.1), 64)).collect();
        assert_ne!(a, b, "per-NIC streams must not mirror each other");
    }

    #[test]
    fn spec_parses_and_round_trips() {
        let spec = "seed=0xCAFE;bitflip@..:rate=0.001;trunc@1ms..2ms:rate=250ppm;\
                    drop@..1ms:rate=0.02;flap@1.5ms..1.6ms;pool@2ms..;\
                    slow@..:element=Null,factor=2.5";
        let p = FaultPlan::parse(spec).expect("parses");
        assert_eq!(p.seed, 0xCAFE);
        assert_eq!(p.events().len(), 6);
        assert_eq!(p.events()[0].kind, FaultKind::BitFlip { rate_ppm: 1000 });
        assert_eq!(p.events()[1].from, ms(1.0));
        assert_eq!(p.events()[1].until, ms(2.0));
        assert_eq!(p.events()[2].until, ms(1.0));
        assert_eq!(p.events()[4].until, SimTime::MAX);
        assert_eq!(
            p.events()[5].kind,
            FaultKind::Slowdown {
                element: "Null".into(),
                factor_x1000: 2500
            }
        );
        let round = FaultPlan::parse(&p.to_spec()).expect("canonical form parses");
        assert_eq!(round, p);
    }

    #[test]
    fn spec_errors_are_reported() {
        for bad in [
            "bitflip@..",                      // missing rate
            "bitflip@..:rate=2.0",             // rate > 1
            "warp@..:rate=0.1",                // unknown kind
            "flap@2ms..1ms",                   // empty window
            "flap@..:rate=0.5",                // parameter not accepted
            "slow@..:factor=3",                // missing element
            "slow@..:element=Null,factor=0.5", // factor < 1
            "pool@1q..2q",                     // bad time unit
            "bitflip",                         // no window
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should fail");
        }
    }

    #[test]
    fn slowdown_matches_class_or_name() {
        let p = FaultPlan::new(0).with(
            FaultKind::Slowdown {
                element: "Null".into(),
                factor_x1000: 3000,
            },
            SimTime::ZERO,
            ms(1.0),
        );
        assert_eq!(p.slowdown_windows("Null", "Null@3").len(), 1);
        assert_eq!(p.slowdown_windows("Classifier", "Null").len(), 1);
        assert!(p.slowdown_windows("Classifier", "cls").is_empty());
    }

    #[test]
    fn drop_cause_strings_are_pinned() {
        // These strings appear verbatim in committed JSON artifacts
        // (ledger sections, timeline drop series, trace fates); changing
        // one is a schema break, so the whole set is pinned here.
        let strs: Vec<&str> = DropCause::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(
            strs,
            ["fcs", "link_down", "desc", "rx_ring", "nf", "tx_ring"]
        );
        for c in DropCause::ALL {
            assert_eq!(c.to_string(), c.as_str());
        }
    }

    #[test]
    fn ledger_counts_match_fields() {
        let l = Ledger {
            generated: 21,
            fcs_dropped: 1,
            link_down_dropped: 2,
            desc_dropped: 3,
            rx_ring_dropped: 4,
            nf_dropped: 5,
            tx_ring_dropped: 6,
            tx_sent: 0,
            truncated_delivered: 0,
            pool_denials: 0,
        };
        let by_cause: Vec<u64> = DropCause::ALL.iter().map(|&c| l.count(c)).collect();
        assert_eq!(by_cause, [1, 2, 3, 4, 5, 6]);
        assert!(l.balances());
    }

    #[test]
    fn ledger_balance() {
        let mut l = Ledger {
            generated: 100,
            fcs_dropped: 3,
            link_down_dropped: 2,
            desc_dropped: 1,
            rx_ring_dropped: 4,
            nf_dropped: 5,
            tx_ring_dropped: 0,
            tx_sent: 85,
            truncated_delivered: 7,
            pool_denials: 9,
        };
        assert!(l.balances(), "{l}");
        l.tx_sent -= 1;
        assert!(!l.balances());
        assert!(l.to_string().contains("UNBALANCED"));
    }
}
