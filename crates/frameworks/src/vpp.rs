//! A VPP-style dataplane.
//!
//! VPP overlays `vlib_buffer_t` on the mbuf "but does not use it.
//! Instead, it copies/converts some fields from the DPDK data structure
//! into the `vlib_buffer_t`, as it needs to make the metadata format fit
//! for SSE instructions" (paper §2.2 ②bis) — i.e. Copying *and*
//! Overlaying at once. Its strength is vector processing: per-node
//! dispatch is amortized over the whole vector, so the per-batch cost is
//! low and the per-packet conversion is what remains.

use crate::dataplane::{Dataplane, ProcessResult};
use pm_dpdk::{MetadataModel, RxDesc};
use pm_mem::{AccessKind, Cost, MemoryHierarchy};
use pm_packet::ether;

/// The VPP-style engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct VppEngine;

impl Dataplane for VppEngine {
    fn label(&self) -> String {
        "VPP".to_string()
    }

    fn metadata_model(&self) -> MetadataModel {
        // The PMD side behaves like Overlaying (vlib_buffer_t sits with
        // the mbuf); the extra copy happens here in the framework.
        MetadataModel::Overlaying
    }

    fn process(
        &mut self,
        core: usize,
        mem: &mut MemoryHierarchy,
        desc: &RxDesc,
        data: &mut [u8],
    ) -> ProcessResult {
        let mut cost = Cost::ZERO;
        // Convert mbuf → vlib_buffer_t: load the mbuf fields and store
        // the vlib metadata right after them (the ②bis copy).
        cost += mem.access(core, desc.meta_addr, 32, AccessKind::Load);
        cost += mem.access(core, desc.meta_addr + 128, 64, AccessKind::Store);
        if desc.len >= 14 {
            ether::mirror_in_place(&mut data[..desc.len as usize]);
            cost += mem.access(core, desc.data_addr, 12, AccessKind::Store);
        }
        // Node-graph work per packet: VPP's full ethernet-input →
        // l2-learn/l2-fwd → interface-output node chain does far more
        // per-packet bookkeeping than a raw l2fwd loop (sw_if_index
        // lookups, feature arcs, trace hooks); the paper measures it at
        // FastClick-Copying's level (Fig. 11b), which this models.
        cost += Cost::compute(520);
        ProcessResult {
            tx_len: Some(desc.len),
            cost,
        }
    }

    fn per_batch_cost(&self, n: usize) -> Cost {
        // Vector dispatch: two graph nodes per vector regardless of n.
        let _ = n;
        Cost::compute(80)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_packet::builder::PacketBuilder;

    #[test]
    fn copies_into_vlib_area() {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut data = PacketBuilder::udp().frame_len(512).build();
        let desc = RxDesc {
            buf_id: 0,
            len: 512,
            rss_hash: 0,
            arrival: pm_sim::SimTime::ZERO,
            gen: pm_sim::SimTime::ZERO,
            seq: 0,
            data_addr: 0x10_000,
            meta_addr: 0x20_000,
            xslot: None,
        };
        let r = VppEngine.process(0, &mut mem, &desc, &mut data);
        assert_eq!(r.tx_len, Some(512));
        // Both a load (mbuf) and a store (vlib) happened.
        assert!(mem.counters().loads >= 1);
        assert!(mem.counters().stores >= 2);
    }

    #[test]
    fn vector_dispatch_amortizes() {
        let per32 = VppEngine.per_batch_cost(32);
        let per1 = VppEngine.per_batch_cost(1);
        assert_eq!(per32, per1, "vector dispatch is batch-size independent");
    }
}
