//! A BESS-style dataplane.
//!
//! BESS (SoftNIC) overlays its `Packet` descriptor on the `rte_mbuf`
//! (paper §2.2 "Overlaying"): no copy, but the descriptor extends the
//! mbuf with static/dynamic metadata fields that travel through a
//! module graph. The forwarding pipeline here is two modules
//! (`PortInc → PortOut` around the MAC update), matching the simple
//! forwarding comparison of Fig. 11b.

use crate::dataplane::{Dataplane, ProcessResult};
use pm_dpdk::{MetadataModel, RxDesc};
use pm_mem::{AccessKind, Cost, MemoryHierarchy};
use pm_packet::ether;

/// The BESS-style engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct BessEngine;

impl Dataplane for BessEngine {
    fn label(&self) -> String {
        "BESS".to_string()
    }

    fn metadata_model(&self) -> MetadataModel {
        MetadataModel::Overlaying
    }

    fn process(
        &mut self,
        core: usize,
        mem: &mut MemoryHierarchy,
        desc: &RxDesc,
        data: &mut [u8],
    ) -> ProcessResult {
        let mut cost = Cost::ZERO;
        // Cast-over-mbuf: read the rte_mbuf fields in place…
        cost += mem.access(core, desc.meta_addr, 16, AccessKind::Load);
        // …and write BESS's dynamic metadata attrs after them
        // (sn_buff/Packet: metadata fields following the mbuf, §2.2).
        cost += mem.access(core, desc.meta_addr + 128, 32, AccessKind::Store);
        if desc.len >= 14 {
            ether::mirror_in_place(&mut data[..desc.len as usize]);
            cost += mem.access(core, desc.data_addr, 12, AccessKind::Store);
        }
        // Two-module graph traversal: BESS modules are leaner than Click
        // elements (no per-packet virtual call in the run-to-completion
        // loop, but per-module gate bookkeeping remains).
        cost += Cost::compute(135);
        ProcessResult {
            tx_len: Some(desc.len),
            cost,
        }
    }

    fn per_batch_cost(&self, n: usize) -> Cost {
        // Task scheduler pass per batch.
        let _ = n;
        Cost::compute(50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_packet::builder::PacketBuilder;

    #[test]
    fn forwards_with_overlay_writes() {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut data = PacketBuilder::udp().frame_len(256).build();
        let desc = RxDesc {
            buf_id: 0,
            len: 256,
            rss_hash: 0,
            arrival: pm_sim::SimTime::ZERO,
            gen: pm_sim::SimTime::ZERO,
            seq: 0,
            data_addr: 0x10_000,
            meta_addr: 0x20_000,
            xslot: None,
        };
        let before_stores = mem.counters().stores;
        let r = BessEngine.process(0, &mut mem, &desc, &mut data);
        assert_eq!(r.tx_len, Some(256));
        assert!(
            mem.counters().stores > before_stores,
            "overlay attrs written"
        );
        assert_eq!(BessEngine.metadata_model(), MetadataModel::Overlaying);
    }
}
