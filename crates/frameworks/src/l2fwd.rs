//! `l2fwd` and `l2fwd-xchg`: DPDK's L2-forwarding sample application.
//!
//! `l2fwd` is "a simple forwarding application with minimal features &
//! footprint" (paper §4.6): it reads the mbuf it was handed, rewrites the
//! Ethernet addresses, and transmits. `l2fwd-xchg` is the paper's
//! modified version where "the metadata is reduced to two simple fields
//! (the buffer address and packet length) instead of the 128-B
//! `rte_mbuf`" — here, the same application code running over the
//! X-Change PMD with the minimal [`pm_dpdk::MetadataSpec`].

use crate::dataplane::{Dataplane, ProcessResult};
use pm_dpdk::{MetadataModel, RxDesc};
use pm_mem::{AccessKind, Cost, MemoryHierarchy};
use pm_packet::ether;

/// The l2fwd application over a chosen metadata model.
#[derive(Debug, Clone, Copy)]
pub struct L2Fwd {
    xchg: bool,
}

impl L2Fwd {
    /// Plain DPDK `l2fwd` (direct `rte_mbuf` use — the Overlaying
    /// extreme: no framework descriptor at all).
    pub fn plain() -> Self {
        L2Fwd { xchg: false }
    }

    /// The paper's `l2fwd-xchg` sample (X-Change, two-field metadata).
    pub fn xchg() -> Self {
        L2Fwd { xchg: true }
    }
}

impl Dataplane for L2Fwd {
    fn label(&self) -> String {
        if self.xchg { "l2fwd-xchg" } else { "l2fwd" }.to_string()
    }

    fn metadata_model(&self) -> MetadataModel {
        if self.xchg {
            MetadataModel::XChange
        } else {
            MetadataModel::Overlaying
        }
    }

    fn process(
        &mut self,
        core: usize,
        mem: &mut MemoryHierarchy,
        desc: &RxDesc,
        data: &mut [u8],
    ) -> ProcessResult {
        let mut cost = Cost::ZERO;
        // Read the length + address fields from the descriptor the PMD
        // wrote (mbuf header line or tiny xchg slot — both one line, but
        // the mbuf line cycles a big pool while the slot stays hot).
        cost += mem.access(core, desc.meta_addr, 16, AccessKind::Load);
        // Rewrite both MAC addresses (the real l2fwd dst/src update).
        if desc.len >= 14 {
            ether::mirror_in_place(&mut data[..desc.len as usize]);
            cost += mem.access(core, desc.data_addr, 12, AccessKind::Store);
        }
        // Port stats + loop bookkeeping; the plain app also re-reads
        // mbuf fields for the TX prep that X-Change folds away.
        cost += Cost::compute(if self.xchg { 60 } else { 135 });
        ProcessResult {
            tx_len: Some(desc.len),
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_packet::builder::PacketBuilder;
    use pm_packet::ether::EtherHeader;

    fn desc(len: u32) -> RxDesc {
        RxDesc {
            buf_id: 0,
            len,
            rss_hash: 0,
            arrival: pm_sim::SimTime::ZERO,
            gen: pm_sim::SimTime::ZERO,
            seq: 0,
            data_addr: 0x10_000,
            meta_addr: 0x20_000,
            xslot: None,
        }
    }

    #[test]
    fn swaps_macs_and_forwards() {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut data = PacketBuilder::udp().frame_len(128).build();
        let before = EtherHeader::parse(&data).unwrap();
        let r = L2Fwd::plain().process(0, &mut mem, &desc(128), &mut data);
        assert_eq!(r.tx_len, Some(128));
        let after = EtherHeader::parse(&data).unwrap();
        assert_eq!(after.src, before.dst);
        assert_eq!(after.dst, before.src);
    }

    #[test]
    fn xchg_variant_cheaper_compute() {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut d1 = PacketBuilder::udp().frame_len(64).build();
        let mut d2 = d1.clone();
        let plain = L2Fwd::plain().process(0, &mut mem, &desc(64), &mut d1);
        let x = L2Fwd::xchg().process(0, &mut mem, &desc(64), &mut d2);
        assert!(x.cost.instructions < plain.cost.instructions);
    }

    #[test]
    fn models() {
        assert_eq!(L2Fwd::plain().metadata_model(), MetadataModel::Overlaying);
        assert_eq!(L2Fwd::xchg().metadata_model(), MetadataModel::XChange);
        assert_eq!(L2Fwd::xchg().label(), "l2fwd-xchg");
    }
}
