//! Comparator packet-processing engines for the framework comparison of
//! paper §4.6 (Fig. 11): `l2fwd`, `l2fwd-xchg`, BESS-style, and
//! VPP-style dataplanes, all expressed against the same [`Dataplane`]
//! abstraction the FastClick runtime plugs into.
//!
//! These are deliberately *minimal* engines: Fig. 11 compares metadata
//! models plus per-packet framework overhead on a simple forwarding
//! workload, not full feature sets — so each comparator reproduces
//! exactly (i) its framework's metadata-management behaviour and (ii) its
//! characteristic per-packet overhead structure, and performs the real
//! MAC-swap on real bytes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bess;
pub mod dataplane;
pub mod l2fwd;
pub mod vpp;

pub use bess::BessEngine;
pub use dataplane::{Dataplane, ProcessResult};
pub use l2fwd::L2Fwd;
pub use vpp::VppEngine;
