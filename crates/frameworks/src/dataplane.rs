//! The dataplane abstraction the experiment engine drives.
//!
//! A [`Dataplane`] is everything between `rx_burst` and `tx_burst`: it
//! receives a packet's descriptor and real bytes, does its processing,
//! charges the cost, and says whether (and at what length) to transmit.
//! The FastClick graph runtime (in the `packetmill` facade crate) and the
//! comparator engines in this crate all implement it.

use pm_click::FieldProfile;
use pm_dpdk::{MetadataModel, RxDesc};
use pm_mem::{Cost, MemoryHierarchy};

/// The outcome of processing one packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessResult {
    /// `Some(len)` to transmit `len` bytes; `None` to drop.
    pub tx_len: Option<u32>,
    /// Cost charged for the processing.
    pub cost: Cost,
}

/// A packet-processing engine.
pub trait Dataplane {
    /// Human-readable name for tables ("FastClick (Copying)", "BESS", …).
    fn label(&self) -> String;

    /// The metadata model this dataplane expects the PMD to run.
    fn metadata_model(&self) -> MetadataModel;

    /// Processes one packet: `data` holds the buffer's data area and
    /// `desc.len` valid bytes.
    fn process(
        &mut self,
        core: usize,
        mem: &mut MemoryHierarchy,
        desc: &RxDesc,
        data: &mut [u8],
    ) -> ProcessResult;

    /// Cost charged once per burst of `n` packets (framework scheduler /
    /// vector overhead). Defaults to zero.
    fn per_batch_cost(&self, n: usize) -> Cost {
        let _ = n;
        Cost::ZERO
    }

    /// Enables metadata-field profiling (FastClick only).
    fn set_profiling(&mut self, on: bool) {
        let _ = on;
    }

    /// Takes the collected profile, if any.
    fn take_profile(&mut self) -> Option<FieldProfile> {
        None
    }

    /// Per-element `(name, packets, drops)` statistics, when the
    /// dataplane has an element graph (Click read handlers).
    fn element_stats(&self) -> Vec<(String, u64, u64)> {
        Vec::new()
    }

    /// Occupancy/policy counters for element-owned lookup tables, when
    /// the dataplane has any (flow tables, route tries, conntrack).
    fn table_stats(&self) -> Vec<pm_click::TableStats> {
        Vec::new()
    }

    /// The simulated regions backing element tables, so the engine can
    /// remap them onto hugepages when the experiment asks for it.
    fn table_regions(&self) -> Vec<pm_mem::Region> {
        Vec::new()
    }

    /// Enables per-packet element-span recording for the flight
    /// recorder's lifecycle trace. Dataplanes without an element graph
    /// (the comparator engines) ignore it — their sampled packets simply
    /// record no spans.
    fn set_span_recording(&mut self, on: bool) {
        let _ = on;
    }

    /// Drains the element spans of the **last processed packet** into
    /// `out` as `(element label, cost delta)` hops in graph order.
    /// Only meaningful right after [`Self::process`] with span recording
    /// on; the default is a no-op.
    fn take_spans(&mut self, out: &mut Vec<(String, Cost)>) {
        let _ = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Dataplane for Nop {
        fn label(&self) -> String {
            "nop".into()
        }
        fn metadata_model(&self) -> MetadataModel {
            MetadataModel::Overlaying
        }
        fn process(
            &mut self,
            _core: usize,
            _mem: &mut MemoryHierarchy,
            desc: &RxDesc,
            _data: &mut [u8],
        ) -> ProcessResult {
            ProcessResult {
                tx_len: Some(desc.len),
                cost: Cost::compute(1),
            }
        }
    }

    #[test]
    fn default_hooks() {
        let mut n = Nop;
        assert_eq!(n.per_batch_cost(32), Cost::ZERO);
        assert!(n.take_profile().is_none());
        n.set_profiling(true); // no-op
    }
}
