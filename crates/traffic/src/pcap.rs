//! Minimal libpcap-format reader/writer (no dependencies).
//!
//! The paper's campus trace cannot be shipped, but *your* traces can:
//! this module loads standard `.pcap` capture files into a [`Trace`] for
//! replay through the simulated testbed, and saves synthesized traces as
//! `.pcap` for inspection with standard tools (tcpdump/wireshark).
//!
//! Supports the classic pcap format (magic `0xa1b2c3d4` / `0xd4c3b2a1`,
//! microsecond or nanosecond variants, Ethernet link type), both byte
//! orders. Pcapng is out of scope.

use crate::synth::Trace;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Classic pcap magic (microsecond timestamps, writer's native order).
const MAGIC_USEC: u32 = 0xa1b2_c3d4;
/// Nanosecond-timestamp variant.
const MAGIC_NSEC: u32 = 0xa1b2_3c4d;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// Errors loading or saving pcap files.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a classic pcap file, or an unsupported variant.
    Format(String),
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap i/o error: {e}"),
            PcapError::Format(m) => write!(f, "pcap format error: {m}"),
        }
    }
}

impl Error for PcapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PcapError::Io(e) => Some(e),
            PcapError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PcapError {
    fn from(e: std::io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Maximum frame length accepted when loading (larger records are
/// skipped — jumbo frames don't fit the simulator's 2-KiB buffers).
pub const MAX_FRAME: usize = 2048;

/// Reads a classic pcap file into frames.
///
/// Frames longer than [`MAX_FRAME`] or truncated captures
/// (`incl_len < orig_len`) are skipped; the skip count is returned with
/// the frames.
pub fn read_pcap(path: &Path) -> Result<(Vec<Vec<u8>>, usize), PcapError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut hdr = [0u8; 24];
    r.read_exact(&mut hdr)?;

    let magic_le = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
    let magic_be = u32::from_be_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
    let little = match (magic_le, magic_be) {
        (MAGIC_USEC | MAGIC_NSEC, _) => true,
        (_, MAGIC_USEC | MAGIC_NSEC) => false,
        _ => {
            return Err(PcapError::Format(format!(
                "bad magic {magic_le:#010x} (not classic pcap)"
            )))
        }
    };
    let u32_at = |b: &[u8], off: usize| {
        let w = [b[off], b[off + 1], b[off + 2], b[off + 3]];
        if little {
            u32::from_le_bytes(w)
        } else {
            u32::from_be_bytes(w)
        }
    };
    let linktype = u32_at(&hdr, 20);
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::Format(format!(
            "unsupported link type {linktype} (need Ethernet = 1)"
        )));
    }

    let mut frames = Vec::new();
    let mut skipped = 0usize;
    loop {
        let mut rec = [0u8; 16];
        match r.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let incl = u32_at(&rec, 8) as usize;
        let orig = u32_at(&rec, 12) as usize;
        let mut data = vec![0u8; incl];
        r.read_exact(&mut data)?;
        if incl != orig || !(14..=MAX_FRAME).contains(&incl) {
            skipped += 1;
            continue;
        }
        frames.push(data);
    }
    Ok((frames, skipped))
}

/// Writes frames as a classic little-endian microsecond pcap, spacing
/// timestamps by `gap_us` microseconds.
pub fn write_pcap(path: &Path, frames: &[&[u8]], gap_us: u32) -> Result<(), PcapError> {
    let mut w = BufWriter::new(File::create(path)?);
    // Global header.
    w.write_all(&MAGIC_USEC.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&(MAX_FRAME as u32).to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;

    let mut ts_sec = 0u32;
    let mut ts_usec = 0u32;
    for f in frames {
        w.write_all(&ts_sec.to_le_bytes())?;
        w.write_all(&ts_usec.to_le_bytes())?;
        w.write_all(&(f.len() as u32).to_le_bytes())?;
        w.write_all(&(f.len() as u32).to_le_bytes())?;
        w.write_all(f)?;
        ts_usec += gap_us;
        if ts_usec >= 1_000_000 {
            ts_sec += ts_usec / 1_000_000;
            ts_usec %= 1_000_000;
        }
    }
    w.flush()?;
    Ok(())
}

impl Trace {
    /// Loads a trace from a classic pcap capture file.
    ///
    /// Over-long or truncated records are silently skipped (they would
    /// not fit the simulated NIC's buffers anyway).
    pub fn from_pcap(path: &Path) -> Result<Trace, PcapError> {
        let (frames, _skipped) = read_pcap(path)?;
        if frames.is_empty() {
            return Err(PcapError::Format("capture holds no usable frames".into()));
        }
        Ok(Trace::from_frames(frames))
    }

    /// Saves the trace as a classic pcap file (microsecond timestamps,
    /// 1-µs spacing — the timing is cosmetic; replay paces by offered
    /// load).
    pub fn to_pcap(&self, path: &Path) -> Result<(), PcapError> {
        let frames: Vec<&[u8]> = (0..self.len()).map(|i| self.frame(i)).collect();
        write_pcap(path, &frames, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{TraceConfig, TrafficProfile};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pm_pcap_test_{name}_{}.pcap", std::process::id()));
        p
    }

    #[test]
    fn round_trip_synthesized_trace() {
        let t = Trace::synthesize(&TraceConfig {
            packets: 200,
            ..TraceConfig::default()
        });
        let path = tmp("round_trip");
        t.to_pcap(&path).unwrap();
        let t2 = Trace::from_pcap(&path).unwrap();
        assert_eq!(t.len(), t2.len());
        for i in 0..t.len() {
            assert_eq!(t.frame(i), t2.frame(i), "frame {i}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn big_endian_capture_readable() {
        // Hand-build a big-endian pcap with one 60-byte frame.
        let path = tmp("big_endian");
        let mut bytes = Vec::new();
        bytes.extend(MAGIC_USEC.to_be_bytes());
        bytes.extend(2u16.to_be_bytes());
        bytes.extend(4u16.to_be_bytes());
        bytes.extend(0u32.to_be_bytes());
        bytes.extend(0u32.to_be_bytes());
        bytes.extend(65535u32.to_be_bytes());
        bytes.extend(LINKTYPE_ETHERNET.to_be_bytes());
        bytes.extend(0u32.to_be_bytes()); // ts_sec
        bytes.extend(0u32.to_be_bytes()); // ts_usec
        bytes.extend(60u32.to_be_bytes()); // incl
        bytes.extend(60u32.to_be_bytes()); // orig
        bytes.extend(std::iter::repeat_n(0xAB, 60));
        std::fs::write(&path, &bytes).unwrap();

        let (frames, skipped) = read_pcap(&path).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(skipped, 0);
        assert_eq!(frames[0].len(), 60);
        assert!(frames[0].iter().all(|&b| b == 0xAB));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_records_skipped() {
        let path = tmp("truncated");
        let mut bytes = Vec::new();
        bytes.extend(MAGIC_USEC.to_le_bytes());
        bytes.extend(2u16.to_le_bytes());
        bytes.extend(4u16.to_le_bytes());
        bytes.extend([0u8; 8]);
        bytes.extend(96u32.to_le_bytes());
        bytes.extend(LINKTYPE_ETHERNET.to_le_bytes());
        // Record captured short: incl 96 < orig 1500.
        bytes.extend([0u8; 8]);
        bytes.extend(96u32.to_le_bytes());
        bytes.extend(1500u32.to_le_bytes());
        bytes.extend(std::iter::repeat_n(0u8, 96));
        // A good record.
        bytes.extend([0u8; 8]);
        bytes.extend(64u32.to_le_bytes());
        bytes.extend(64u32.to_le_bytes());
        bytes.extend(std::iter::repeat_n(1u8, 64));
        std::fs::write(&path, &bytes).unwrap();

        let (frames, skipped) = read_pcap(&path).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(skipped, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_non_pcap() {
        let path = tmp("not_pcap");
        std::fs::write(&path, b"definitely not a capture file....").unwrap();
        let err = read_pcap(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_non_ethernet() {
        let path = tmp("linktype");
        let mut bytes = Vec::new();
        bytes.extend(MAGIC_USEC.to_le_bytes());
        bytes.extend([0u8; 16]);
        bytes.extend(101u32.to_le_bytes()); // LINKTYPE_RAW
        std::fs::write(&path, &bytes).unwrap();
        let err = read_pcap(&path).unwrap_err();
        assert!(err.to_string().contains("link type"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fixed_size_trace_survives_pcap() {
        let t = Trace::synthesize(&TraceConfig {
            packets: 64,
            profile: TrafficProfile::FixedSize(512),
            ..TraceConfig::default()
        });
        let path = tmp("fixed");
        t.to_pcap(&path).unwrap();
        let t2 = Trace::from_pcap(&path).unwrap();
        assert_eq!(t2.mean_frame_len(), 512.0);
        std::fs::remove_file(&path).ok();
    }
}
