//! Trace synthesis and paced replay.

use crate::zipf::Zipf;
use pm_packet::builder::PacketBuilder;
use pm_sim::{SimTime, SplitMix64};
use std::sync::{Arc, Mutex};

/// What kind of traffic to synthesize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficProfile {
    /// Campus-like mixture: mean frame ≈ 981 B, Zipf flows,
    /// TCP/UDP/ICMP/ARP mix.
    CampusMix,
    /// All frames exactly this many bytes (UDP flows).
    FixedSize(usize),
}

/// Trace-synthesis parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of distinct frames to synthesize (the engine replays the
    /// trace cyclically, like the paper replays its trace 25×).
    pub packets: usize,
    /// Number of distinct flows.
    pub flows: usize,
    /// Zipf popularity exponent across flows (0 = uniform). Campus
    /// aggregates measure ≈ 0.8.
    pub zipf_alpha: f64,
    /// Traffic profile.
    pub profile: TrafficProfile,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            packets: 8192,
            flows: 4096,
            zipf_alpha: 0.8,
            profile: TrafficProfile::CampusMix,
            seed: 0xCAFE,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Flow {
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    proto: FlowProto,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowProto {
    Tcp,
    Udp,
    Icmp,
}

/// A synthesized trace of complete Ethernet frames.
///
/// Frames are shared behind an [`Arc`], so cloning a trace (one clone
/// per engine build) is O(1) rather than a deep copy of several
/// megabytes of packet bytes.
#[derive(Debug, Clone)]
pub struct Trace {
    frames: Arc<[Box<[u8]>]>,
    total_bytes: u64,
}

/// Destination prefixes the synthesizer draws from; these match the
/// router preset's route table so every packet is routable.
const DST_PREFIXES: [([u8; 2], u8); 4] = [
    ([10, 0], 1),    // 10.0.x.x
    ([10, 200], 1),  // deeper in 10/8
    ([172, 16], 2),  // 172.16/12
    ([192, 168], 3), // 192.168/16
];

impl Trace {
    /// Synthesizes a trace.
    ///
    /// # Panics
    ///
    /// Panics if `packets` or `flows` is zero, or a fixed size is below
    /// 64 bytes.
    pub fn synthesize(cfg: &TraceConfig) -> Trace {
        assert!(cfg.packets > 0, "empty trace");
        assert!(cfg.flows > 0, "no flows");
        if let TrafficProfile::FixedSize(s) = cfg.profile {
            assert!((64..=1500).contains(&s), "fixed size {s} out of 64..=1500");
        }
        let mut rng = SplitMix64::new(cfg.seed);
        let zipf = Zipf::new(cfg.flows, cfg.zipf_alpha);

        // Flow table.
        let flows: Vec<Flow> = (0..cfg.flows)
            .map(|i| {
                let (p, _) = DST_PREFIXES[(rng.next_u64() % 4) as usize];
                let proto = match cfg.profile {
                    TrafficProfile::FixedSize(_) => FlowProto::Udp,
                    TrafficProfile::CampusMix => match rng.next_u64() % 100 {
                        0..=84 => FlowProto::Tcp,
                        85..=96 => FlowProto::Udp,
                        _ => FlowProto::Icmp,
                    },
                };
                Flow {
                    src_ip: [10, 1, (i >> 8) as u8, i as u8],
                    dst_ip: [p[0], p[1], rng.next_u32() as u8, rng.next_u32() as u8],
                    src_port: 1024 + (rng.next_u64() % 60_000) as u16,
                    dst_port: [80u16, 443, 53, 123, 8080][(rng.next_u64() % 5) as usize],
                    proto,
                }
            })
            .collect();

        let mut frames = Vec::with_capacity(cfg.packets);
        let mut total_bytes = 0u64;
        for seq in 0..cfg.packets {
            let flow = &flows[zipf.sample(&mut rng)];
            let frame = match cfg.profile {
                TrafficProfile::FixedSize(size) => PacketBuilder::udp()
                    .src_ip(flow.src_ip)
                    .dst_ip(flow.dst_ip)
                    .src_port(flow.src_port)
                    .dst_port(flow.dst_port)
                    .seq(seq as u32)
                    .frame_len(size)
                    .build(),
                TrafficProfile::CampusMix => {
                    // Occasional ARP keeps the router's ARP path warm
                    // (≈0.5% of packets).
                    if rng.next_u64().is_multiple_of(200) {
                        PacketBuilder::arp()
                            .src_ip(flow.src_ip)
                            .dst_ip([10, 0, 0, 254])
                            .build()
                    } else {
                        let size = campus_frame_size(&mut rng);
                        let b = match flow.proto {
                            FlowProto::Tcp => PacketBuilder::tcp(),
                            FlowProto::Udp => PacketBuilder::udp(),
                            FlowProto::Icmp => PacketBuilder::icmp(),
                        };
                        b.src_ip(flow.src_ip)
                            .dst_ip(flow.dst_ip)
                            .src_port(flow.src_port)
                            .dst_port(flow.dst_port)
                            .ttl(64)
                            .seq(seq as u32)
                            .frame_len(size)
                            .build()
                    }
                }
            };
            total_bytes += frame.len() as u64;
            frames.push(frame.into_boxed_slice());
        }
        Trace {
            frames: frames.into(),
            total_bytes,
        }
    }

    /// Like [`Self::synthesize`], but memoizes recent results in a
    /// small process-wide cache. Synthesis is deterministic in `cfg`,
    /// so a cached trace is indistinguishable from a fresh one; sweeps
    /// that rebuild an engine per experiment with the same seed (the
    /// common case — every figure shares one default seed) pay for
    /// synthesis once instead of once per run.
    pub fn synthesize_cached(cfg: &TraceConfig) -> Trace {
        let key = TraceKey::of(cfg);
        {
            let cache = trace_cache().lock().expect("trace cache poisoned");
            if let Some((_, t)) = cache.iter().find(|(k, _)| *k == key) {
                return t.clone();
            }
        } // synthesize outside the lock
        let t = Trace::synthesize(cfg);
        let mut cache = trace_cache().lock().expect("trace cache poisoned");
        if cache.len() >= TRACE_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((key, t.clone()));
        t
    }

    /// Synthesizes a trace from a flow-population [`Workload`]: one
    /// frame per sequence `0..workload.frames()`, each a pure function
    /// of the spec (see `crate::workload`).
    pub fn from_workload(w: &crate::workload::Workload) -> Trace {
        let n = w.frames();
        assert!(n > 0, "empty workload trace");
        let mut frames = Vec::with_capacity(n);
        let mut total_bytes = 0u64;
        for seq in 0..n {
            let frame = w.build_frame(seq as u64);
            total_bytes += frame.len() as u64;
            frames.push(frame.into_boxed_slice());
        }
        Trace {
            frames: frames.into(),
            total_bytes,
        }
    }

    /// Like [`Self::from_workload`], but memoized in the same
    /// process-wide cache as [`Self::synthesize_cached`] (a flow-scale
    /// sweep re-runs the same workload spec for several NF presets and
    /// page modes; the Zipf CDF build and frame synthesis are paid
    /// once). Keyed by the canonical spec string.
    pub fn from_workload_spec_cached(spec: &crate::workload::WorkloadSpec) -> Trace {
        let key = TraceKey {
            packets: 0,
            flows: 0,
            zipf_alpha_bits: 0,
            fixed_size: None,
            workload: Some(spec.to_spec()),
            seed: spec.seed,
        };
        {
            let cache = trace_cache().lock().expect("trace cache poisoned");
            if let Some((_, t)) = cache.iter().find(|(k, _)| *k == key) {
                return t.clone();
            }
        } // synthesize outside the lock
        let t = Trace::from_workload(&crate::workload::Workload::new(spec.clone()));
        let mut cache = trace_cache().lock().expect("trace cache poisoned");
        if cache.len() >= TRACE_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((key, t.clone()));
        t
    }

    /// Builds a trace directly from raw Ethernet frames (e.g. loaded
    /// from a pcap capture).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn from_frames(frames: Vec<Vec<u8>>) -> Trace {
        assert!(!frames.is_empty(), "empty trace");
        let total_bytes = frames.iter().map(|f| f.len() as u64).sum();
        Trace {
            frames: frames
                .into_iter()
                .map(Vec::into_boxed_slice)
                .collect::<Vec<_>>()
                .into(),
            total_bytes,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if the trace has no frames (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Mean frame length in bytes.
    pub fn mean_frame_len(&self) -> f64 {
        self.total_bytes as f64 / self.frames.len() as f64
    }

    /// Frame `i` (indices wrap, so the trace can be replayed cyclically).
    pub fn frame(&self, i: usize) -> &[u8] {
        &self.frames[i % self.frames.len()]
    }

    /// Iterates over `(arrival_time, frame)` replaying the trace
    /// cyclically at `offered_gbps` for `total_packets` packets.
    ///
    /// Arrivals are spaced by each frame's wire time at the offered rate
    /// (back-to-back at 100 Gbps means line rate, like the paper's
    /// generator).
    pub fn replay(
        &self,
        offered_gbps: f64,
        total_packets: usize,
    ) -> impl Iterator<Item = (SimTime, &[u8])> + '_ {
        assert!(offered_gbps > 0.0, "offered load must be positive");
        let mut now_ps: u64 = 0;
        (0..total_packets).map(move |i| {
            let f: &[u8] = self.frame(i);
            let t = SimTime::from_ps(now_ps);
            let wire_bits = (f.len() as u64 + 20) * 8;
            now_ps += (wire_bits as f64 * 1000.0 / offered_gbps).round() as u64;
            (t, f)
        })
    }
}

/// Cache key for [`Trace::synthesize_cached`] and
/// [`Trace::from_workload_spec_cached`]: every field synthesis depends
/// on, with the float exponent taken by bit pattern and workload traces
/// keyed by their canonical spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TraceKey {
    packets: usize,
    flows: usize,
    zipf_alpha_bits: u64,
    fixed_size: Option<usize>,
    workload: Option<String>,
    seed: u64,
}

impl TraceKey {
    fn of(cfg: &TraceConfig) -> TraceKey {
        TraceKey {
            packets: cfg.packets,
            flows: cfg.flows,
            zipf_alpha_bits: cfg.zipf_alpha.to_bits(),
            fixed_size: match cfg.profile {
                TrafficProfile::CampusMix => None,
                TrafficProfile::FixedSize(s) => Some(s),
            },
            workload: None,
            seed: cfg.seed,
        }
    }
}

/// Bounded FIFO of (key, trace): a sweep touches only a handful of
/// distinct configs, and each cached trace holds several MB of frames,
/// so a short list beats an unbounded map.
const TRACE_CACHE_CAP: usize = 8;

fn trace_cache() -> &'static Mutex<Vec<(TraceKey, Trace)>> {
    static CACHE: Mutex<Vec<(TraceKey, Trace)>> = Mutex::new(Vec::new());
    &CACHE
}

/// Samples a campus-like frame size: a small/medium/large mixture with
/// mean ≈ 981 B (the paper's published trace mean).
fn campus_frame_size(rng: &mut SplitMix64) -> usize {
    match rng.next_u64() % 100 {
        // 30%: small control/ACK frames, 64–120 B.
        0..=29 => 64 + rng.next_below(57) as usize,
        // 10%: medium, 400–800 B.
        30..=39 => 400 + rng.next_below(401) as usize,
        // 60%: near-MTU data, 1400–1500 B.
        _ => 1400 + rng.next_below(101) as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_packet::ether::{EtherHeader, EtherType};
    use pm_packet::ipv4::Ipv4Header;

    #[test]
    fn campus_mean_near_981() {
        let t = Trace::synthesize(&TraceConfig {
            packets: 20_000,
            ..TraceConfig::default()
        });
        let mean = t.mean_frame_len();
        assert!(
            (920.0..1040.0).contains(&mean),
            "mean {mean} should approximate the paper's 981 B"
        );
    }

    #[test]
    fn fixed_size_is_exact() {
        let t = Trace::synthesize(&TraceConfig {
            packets: 100,
            profile: TrafficProfile::FixedSize(256),
            ..TraceConfig::default()
        });
        assert!(t.frames.iter().all(|f| f.len() == 256));
        assert_eq!(t.mean_frame_len(), 256.0);
    }

    #[test]
    fn frames_are_valid_packets() {
        let t = Trace::synthesize(&TraceConfig {
            packets: 2_000,
            ..TraceConfig::default()
        });
        let mut ip_count = 0;
        for i in 0..t.len() {
            let f = t.frame(i);
            let eth = EtherHeader::parse(f).unwrap();
            if eth.ethertype == EtherType::IPV4 {
                let ip = Ipv4Header::parse(&f[14..]).unwrap();
                assert!(ip.verify_checksum(&f[14..]), "frame {i} bad checksum");
                ip_count += 1;
            }
        }
        assert!(ip_count > 1_900, "almost all frames are IPv4");
    }

    #[test]
    fn destinations_cover_routable_prefixes() {
        let t = Trace::synthesize(&TraceConfig {
            packets: 4_000,
            ..TraceConfig::default()
        });
        let mut seen = [false; 3];
        for i in 0..t.len() {
            let f = t.frame(i);
            if EtherHeader::parse(f).unwrap().ethertype != EtherType::IPV4 {
                continue;
            }
            let dst = Ipv4Header::parse(&f[14..]).unwrap().dst;
            match dst[0] {
                10 => seen[0] = true,
                172 => seen[1] = true,
                192 => seen[2] = true,
                _ => {}
            }
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn replay_paces_at_offered_rate() {
        let t = Trace::synthesize(&TraceConfig {
            packets: 1_000,
            profile: TrafficProfile::FixedSize(1000),
            ..TraceConfig::default()
        });
        let arrivals: Vec<SimTime> = t.replay(50.0, 1_000).map(|(t, _)| t).collect();
        // 1020 wire bytes at 50 Gbps = 163.2 ns between arrivals.
        let gap = (arrivals[999] - arrivals[0]).as_ns() / 999.0;
        assert!((162.0..165.0).contains(&gap), "gap {gap}");
        // Monotone non-decreasing.
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn replay_wraps_cyclically() {
        let t = Trace::synthesize(&TraceConfig {
            packets: 10,
            profile: TrafficProfile::FixedSize(128),
            ..TraceConfig::default()
        });
        let n = t.replay(100.0, 35).count();
        assert_eq!(n, 35);
        assert_eq!(t.frame(3), t.frame(13), "wrapped frames identical");
    }

    #[test]
    fn deterministic_synthesis() {
        let cfg = TraceConfig::default();
        let a = Trace::synthesize(&cfg);
        let b = Trace::synthesize(&cfg);
        assert_eq!(a.frame(123), b.frame(123));
        assert_eq!(a.mean_frame_len(), b.mean_frame_len());
    }

    #[test]
    #[should_panic(expected = "out of 64..=1500")]
    fn tiny_fixed_size_rejected() {
        let _ = Trace::synthesize(&TraceConfig {
            profile: TrafficProfile::FixedSize(32),
            ..TraceConfig::default()
        });
    }
}
