//! Deterministic flow-population model: Zipf popularity, flow churn,
//! and attack mixes.
//!
//! A [`WorkloadSpec`] describes a traffic *population* — how many flows
//! exist, how skewed their popularity is, how fast they churn, and which
//! adversarial mixes (SYN floods, port-scan storms) ride on top — in a
//! compact `--workload` spec string with a canonical
//! [`WorkloadSpec::parse`]/[`WorkloadSpec::to_spec`] round-trip, in the
//! same grammar family as `--faults` (`pm_sim::fault::FaultPlan`).
//!
//! Every decision a [`Workload`] makes — which flow a frame belongs to,
//! when a flow's generation rotates, whether a frame is an attack
//! frame — is a **pure hash** of `(spec seed, salt, sequence number)`:
//! no mutable RNG state is threaded anywhere, so the same spec produces
//! byte-identical traces regardless of sweep thread count or build
//! order, and churn accounting can be computed analytically.
//!
//! The churn model is a phased-generation scheduler: flow slot `s` gets
//! a hash-derived phase `phase(s) ∈ [0, life)`, and the flow living in
//! slot `s` at frame `seq` is generation `(seq + phase(s)) / life`. One
//! generation per slot is live at any instant, so over any window the
//! identity `arrivals − expiries == live` holds exactly — the
//! conservation property pinned by `tests/tests/workloads.rs`.

use crate::zipf::Zipf;
use pm_sim::SplitMix64;
use std::fmt;

/// Probabilities are parts-per-million, like fault-plan rates.
pub const PPM: u64 = 1_000_000;

/// Parse-level cap on the flow population (a `Zipf` table costs 8 B per
/// flow, so an unbounded spec would let a fuzzed string allocate
/// arbitrary memory).
pub const MAX_FLOWS: u64 = 50_000_000;

/// Parse-level cap on distinct synthesized frames.
pub const MAX_FRAMES: u64 = 4_000_000;

/// Frame-size model for normal (non-attack) traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeModel {
    /// The campus mixture (mean ≈ 981 B, bimodal ACK/MTU).
    Campus,
    /// Every normal frame exactly this many bytes.
    Fixed(u16),
}

/// An adversarial traffic mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// SYN flood: every attack frame is a unique spoofed-source TCP SYN
    /// to one victim service — maximal flow-table insertion pressure.
    SynFlood,
    /// Port-scan storm: one scanner source sweeps destination ports
    /// sequentially — maximal rule-scan / conntrack-miss pressure.
    PortScan,
}

impl AttackKind {
    /// Per-kind hash salt so co-scheduled mixes decide independently.
    fn salt(self) -> u64 {
        match self {
            AttackKind::SynFlood => 0x5F1_F100D,
            AttackKind::PortScan => 0x0005_CA25_7012,
        }
    }

    /// The spec keyword.
    pub const fn keyword(self) -> &'static str {
        match self {
            AttackKind::SynFlood => "syn",
            AttackKind::PortScan => "scan",
        }
    }
}

/// One scheduled attack mix: a kind active on frame sequences
/// `[from, until)` at `rate_ppm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackEvent {
    /// What kind of attack traffic.
    pub kind: AttackKind,
    /// First frame sequence covered (inclusive).
    pub from: u64,
    /// End of the window (exclusive); `u64::MAX` = until the trace ends.
    pub until: u64,
    /// Per-frame probability, parts per million.
    pub rate_ppm: u32,
}

impl AttackEvent {
    /// Whether the window covers frame `seq`.
    pub fn active_at(&self, seq: u64) -> bool {
        self.from <= seq && seq < self.until
    }
}

/// Error from [`WorkloadSpec::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpecError(String);

impl fmt::Display for WorkloadSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad workload spec: {}", self.0)
    }
}

impl std::error::Error for WorkloadSpecError {}

/// A parsed `--workload` spec: the full flow-population description.
///
/// The float-free representation (`zipf_x1000` thousandths, ppm rates)
/// keeps the spec `Eq`/hashable and round-trippable without float
/// hazards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Seed for every per-frame and per-flow hash decision.
    pub seed: u64,
    /// Number of flow slots in the population.
    pub flows: u64,
    /// Zipf popularity exponent, thousandths (800 = α 0.8; 0 = uniform).
    pub zipf_x1000: u32,
    /// Flow lifetime in frame sequences (one generation per slot lives
    /// this long before rotating); 0 = static population, no churn.
    pub life: u64,
    /// Distinct frames to synthesize; 0 = derived from `flows`.
    pub frames: u64,
    /// Frame-size model for normal traffic.
    pub size: SizeModel,
    /// Scheduled attack mixes, in decision-priority order.
    pub attacks: Vec<AttackEvent>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 0xF10E5,
            flows: 4096,
            zipf_x1000: 800,
            life: 0,
            frames: 0,
            size: SizeModel::Campus,
            attacks: Vec::new(),
        }
    }
}

/// `1000`, `64k`, `10M` (k = 1000, M = 1000000), hex with `0x`.
fn parse_count(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    let (num, mul) = if let Some(v) = s.strip_suffix(['k', 'K']) {
        (v, 1_000u64)
    } else if let Some(v) = s.strip_suffix('M') {
        (v, 1_000_000)
    } else {
        (s, 1)
    };
    num.parse::<u64>().ok()?.checked_mul(mul)
}

/// `0.01` (probability) or `1500ppm`.
fn parse_rate(s: &str) -> Option<u32> {
    if let Some(p) = s.strip_suffix("ppm") {
        return p.parse::<u32>().ok().filter(|&p| u64::from(p) <= PPM);
    }
    let f: f64 = s.parse().ok()?;
    (0.0..=1.0)
        .contains(&f)
        .then(|| (f * PPM as f64).round() as u32)
}

impl WorkloadSpec {
    /// Parses a workload spec (the `--workload` CLI syntax):
    /// `;`-separated clauses.
    ///
    /// * scalars: `seed=N`, `flows=N`, `zipf=0.8`, `life=N`, `frames=N`,
    ///   `size=campus` or `size=<bytes>`; counts accept `k`/`M`
    ///   suffixes (`flows=10M`) and `0x` hex.
    /// * attacks: `syn@from..until:rate=R` and `scan@from..until:rate=R`
    ///   with windows in frame-sequence space (empty endpoint = 0 / end)
    ///   and rates as a probability or `Nppm`.
    ///
    /// Example:
    /// `flows=1M;zipf=1.1;life=64k;syn@10k..200k:rate=0.2;scan@..:rate=5000ppm`
    pub fn parse(spec: &str) -> Result<WorkloadSpec, WorkloadSpecError> {
        let mut w = WorkloadSpec::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some((key, v)) = clause.split_once('=') {
                if !clause.contains('@') {
                    match key.trim() {
                        "seed" => {
                            w.seed = parse_count(v)
                                .ok_or_else(|| WorkloadSpecError(format!("bad seed '{v}'")))?;
                        }
                        "flows" => {
                            w.flows = parse_count(v)
                                .filter(|&n| (1..=MAX_FLOWS).contains(&n))
                                .ok_or_else(|| {
                                    WorkloadSpecError(format!("bad flows '{v}' (1..={MAX_FLOWS})"))
                                })?;
                        }
                        "zipf" => {
                            let a: f64 = v
                                .parse()
                                .ok()
                                .filter(|a| (0.0..=4.0).contains(a))
                                .ok_or_else(|| {
                                    WorkloadSpecError(format!("bad zipf '{v}' (0..=4)"))
                                })?;
                            w.zipf_x1000 = (a * 1000.0).round() as u32;
                        }
                        "life" => {
                            w.life = parse_count(v)
                                .ok_or_else(|| WorkloadSpecError(format!("bad life '{v}'")))?;
                        }
                        "frames" => {
                            w.frames =
                                parse_count(v).filter(|&n| n <= MAX_FRAMES).ok_or_else(|| {
                                    WorkloadSpecError(format!(
                                        "bad frames '{v}' (0..={MAX_FRAMES})"
                                    ))
                                })?;
                        }
                        "size" => {
                            w.size = if v.trim() == "campus" {
                                SizeModel::Campus
                            } else {
                                let b = v
                                    .trim()
                                    .parse::<u16>()
                                    .ok()
                                    .filter(|b| (64..=1500).contains(b))
                                    .ok_or_else(|| {
                                        WorkloadSpecError(format!(
                                            "bad size '{v}' (campus or 64..=1500)"
                                        ))
                                    })?;
                                SizeModel::Fixed(b)
                            };
                        }
                        other => {
                            return Err(WorkloadSpecError(format!("unknown key '{other}'")));
                        }
                    }
                    continue;
                }
            }
            // Attack clause: kind@from..until:rate=R.
            let (head, params) = match clause.split_once(':') {
                Some((h, p)) => (h, p),
                None => (clause, ""),
            };
            let (kind_name, window) = head
                .split_once('@')
                .ok_or_else(|| WorkloadSpecError(format!("clause '{clause}' needs '@window'")))?;
            let kind = match kind_name.trim() {
                "syn" => AttackKind::SynFlood,
                "scan" => AttackKind::PortScan,
                other => {
                    return Err(WorkloadSpecError(format!("unknown attack kind '{other}'")));
                }
            };
            let (from_s, until_s) = window
                .split_once("..")
                .ok_or_else(|| WorkloadSpecError(format!("window '{window}' needs '..'")))?;
            let from = if from_s.trim().is_empty() {
                0
            } else {
                parse_count(from_s.trim())
                    .ok_or_else(|| WorkloadSpecError(format!("bad window start '{from_s}'")))?
            };
            let until = if until_s.trim().is_empty() {
                u64::MAX
            } else {
                parse_count(until_s.trim())
                    .ok_or_else(|| WorkloadSpecError(format!("bad window end '{until_s}'")))?
            };
            if until <= from {
                return Err(WorkloadSpecError(format!("empty window '{window}'")));
            }
            let mut rate = None;
            for p in params.split(',') {
                let p = p.trim();
                if p.is_empty() {
                    continue;
                }
                let (k, v) = p
                    .split_once('=')
                    .ok_or_else(|| WorkloadSpecError(format!("parameter '{p}' needs '='")))?;
                match k.trim() {
                    "rate" => {
                        rate = Some(
                            parse_rate(v.trim())
                                .ok_or_else(|| WorkloadSpecError(format!("bad rate '{v}'")))?,
                        );
                    }
                    other => {
                        return Err(WorkloadSpecError(format!(
                            "unknown parameter '{other}' for '{kind_name}'"
                        )));
                    }
                }
            }
            let rate_ppm =
                rate.ok_or_else(|| WorkloadSpecError(format!("'{kind_name}' needs rate=")))?;
            w.attacks.push(AttackEvent {
                kind,
                from,
                until,
                rate_ppm,
            });
        }
        Ok(w)
    }

    /// The canonical spec string ([`Self::parse`] round-trips it).
    pub fn to_spec(&self) -> String {
        let mut out = format!(
            "seed={};flows={};zipf={};life={};frames={};size={}",
            self.seed,
            self.flows,
            self.zipf_x1000 as f64 / 1000.0,
            self.life,
            self.frames,
            match self.size {
                SizeModel::Campus => "campus".to_string(),
                SizeModel::Fixed(b) => b.to_string(),
            },
        );
        for a in &self.attacks {
            let from = if a.from == 0 {
                String::new()
            } else {
                a.from.to_string()
            };
            let until = if a.until == u64::MAX {
                String::new()
            } else {
                a.until.to_string()
            };
            out.push_str(&format!(
                ";{}@{from}..{until}:rate={}ppm",
                a.kind.keyword(),
                a.rate_ppm
            ));
        }
        out
    }
}

/// What one frame of the trace carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramePlan {
    /// A normal flow frame: population slot and churn generation.
    Normal {
        /// Flow slot (Zipf rank; 0 is the most popular).
        slot: u64,
        /// Churn generation living in that slot at this sequence.
        generation: u64,
    },
    /// A SYN-flood frame (unique spoofed source per sequence).
    Syn,
    /// A port-scan frame (fixed scanner, swept destination port).
    Scan,
}

/// The 5-tuple of one live flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowTuple {
    /// Source address.
    pub src_ip: [u8; 4],
    /// Destination address (always inside a routable prefix).
    pub dst_ip: [u8; 4],
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// 6 = TCP, 17 = UDP, 1 = ICMP.
    pub proto: u8,
}

/// Churn and mix accounting over a frame window (see
/// [`Workload::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Flow generations that started inside the window (every slot's
    /// initial generation counts as an arrival).
    pub arrivals: u64,
    /// Flow generations that ended inside the window.
    pub expiries: u64,
    /// Flows live at the end of the window (always the slot count: one
    /// generation per slot).
    pub live: u64,
    /// SYN-flood frames in the window.
    pub syn_frames: u64,
    /// Port-scan frames in the window.
    pub scan_frames: u64,
    /// Normal flow frames in the window.
    pub normal_frames: u64,
}

impl WorkloadStats {
    /// The churn conservation identity: `arrivals − expiries == live`.
    pub fn conserves(&self) -> bool {
        self.arrivals - self.expiries == self.live
    }
}

/// Routable destination prefixes (match the router presets' tables).
const DST_PREFIXES: [([u8; 2], u8); 4] = [
    ([10, 0], 8),
    ([10, 200], 8),
    ([172, 16], 12),
    ([192, 168], 16),
];

const SALT_PHASE: u64 = 0x9A5E_0F5E7;
const SALT_PICK: u64 = 0x21C_0FFEE;
const SALT_FLOW: u64 = 0xF10_0D1E5;
const SALT_SIZE: u64 = 0x517E_0B17;

/// A realized workload: the spec plus its built Zipf table.
#[derive(Debug, Clone)]
pub struct Workload {
    spec: WorkloadSpec,
    zipf: Zipf,
}

impl Workload {
    /// Builds the workload (constructs the Zipf CDF once — O(flows)).
    pub fn new(spec: WorkloadSpec) -> Workload {
        let zipf = Zipf::new(spec.flows as usize, spec.zipf_x1000 as f64 / 1000.0);
        Workload { spec, zipf }
    }

    /// The spec this workload realizes.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The popularity sampler (for analytic-CDF checks).
    pub fn zipf(&self) -> &Zipf {
        &self.zipf
    }

    /// Distinct frames to synthesize: the spec's `frames`, or a
    /// flow-scaled default that keeps the touched working set
    /// representative without unbounded trace memory.
    pub fn frames(&self) -> usize {
        if self.spec.frames != 0 {
            self.spec.frames as usize
        } else {
            self.spec.flows.clamp(1024, 131_072) as usize
        }
    }

    /// One 64-bit decision hash for `(salt, a, b)` — the fault-plan
    /// pure-hash discipline.
    fn h(&self, salt: u64, a: u64, b: u64) -> u64 {
        SplitMix64::new(
            self.spec.seed
                ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ a.rotate_left(24)
                ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9),
        )
        .next_u64()
    }

    /// The churn phase of flow slot `s` (uniform in `[0, life)`).
    fn phase(&self, slot: u64) -> u64 {
        debug_assert!(self.spec.life > 0);
        self.h(SALT_PHASE, slot, 0) % self.spec.life
    }

    /// The generation living in `slot` at frame `seq`.
    pub fn generation(&self, slot: u64, seq: u64) -> u64 {
        // `phase()` itself reduces modulo `life`, so the numerator must
        // not be evaluated for immortal flows — `checked_div` can't
        // express that.
        match self.spec.life {
            0 => 0,
            life => (seq + self.phase(slot)) / life,
        }
    }

    /// What frame `seq` carries. Pure in `(spec, seq)`.
    pub fn plan(&self, seq: u64) -> FramePlan {
        for (i, a) in self.spec.attacks.iter().enumerate() {
            if !a.active_at(seq) {
                continue;
            }
            let h = self.h(a.kind.salt() ^ i as u64, seq, 1);
            if h % PPM < u64::from(a.rate_ppm) {
                return match a.kind {
                    AttackKind::SynFlood => FramePlan::Syn,
                    AttackKind::PortScan => FramePlan::Scan,
                };
            }
        }
        let mut r = SplitMix64::new(self.h(SALT_PICK, seq, 2));
        let slot = self.zipf.sample(&mut r) as u64;
        FramePlan::Normal {
            slot,
            generation: self.generation(slot, seq),
        }
    }

    /// The 5-tuple of `(slot, generation)` — a pure hash, so a flow's
    /// identity is stable for its whole lifetime and every generation
    /// rotation yields a brand-new tuple (new table entry downstream).
    pub fn flow(&self, slot: u64, generation: u64) -> FlowTuple {
        let mut r = SplitMix64::new(self.h(SALT_FLOW, slot, generation));
        let (p, plen) = DST_PREFIXES[(r.next_u64() % 4) as usize];
        let d = r.next_u32();
        let dst_ip = match plen {
            8 => [p[0], (d >> 16) as u8, (d >> 8) as u8, d as u8],
            12 => [p[0], 16 + ((d >> 16) as u8 & 0x0f), (d >> 8) as u8, d as u8],
            _ => [p[0], p[1], (d >> 8) as u8, d as u8],
        };
        let s = r.next_u32();
        let proto = match r.next_u64() % 100 {
            0..=84 => 6,
            85..=96 => 17,
            _ => 1,
        };
        FlowTuple {
            src_ip: [10, 1 + (s >> 16) as u8 % 128, (s >> 8) as u8, s as u8],
            dst_ip,
            src_port: 1024 + (r.next_u64() % 60_000) as u16,
            dst_port: [80u16, 443, 53, 123, 8080][(r.next_u64() % 5) as usize],
            proto,
        }
    }

    /// A normal frame's size under the spec's size model.
    fn frame_size(&self, seq: u64) -> usize {
        match self.spec.size {
            SizeModel::Fixed(b) => b as usize,
            SizeModel::Campus => {
                let mut r = SplitMix64::new(self.h(SALT_SIZE, seq, 3));
                match r.next_u64() % 100 {
                    0..=29 => 64 + r.next_below(57) as usize,
                    30..=39 => 400 + r.next_below(401) as usize,
                    _ => 1400 + r.next_below(101) as usize,
                }
            }
        }
    }

    /// Builds the complete Ethernet frame for sequence `seq`.
    pub fn build_frame(&self, seq: u64) -> Vec<u8> {
        use pm_packet::builder::PacketBuilder;
        match self.plan(seq) {
            FramePlan::Syn => {
                // Unique spoofed source per frame: every SYN is a brand-
                // new flow aimed at one victim service.
                let h = self.h(AttackKind::SynFlood.salt(), seq, 4);
                PacketBuilder::tcp()
                    .syn()
                    .src_ip([203, (h >> 16) as u8, (h >> 8) as u8, h as u8])
                    .src_port(1024 + (h >> 24) as u16 % 60_000)
                    .dst_ip([10, 0, 0, 80])
                    .dst_port(80)
                    .seq(seq as u32)
                    .frame_len(64)
                    .build()
            }
            FramePlan::Scan => {
                // One scanner walking the port space sequentially.
                let h = self.h(AttackKind::PortScan.salt(), seq, 5);
                PacketBuilder::tcp()
                    .syn()
                    .src_ip([198, 18, 0, 99])
                    .src_port(31_337)
                    .dst_ip([192, 168, (h >> 8) as u8, h as u8])
                    .dst_port((seq % 65_536) as u16)
                    .seq(seq as u32)
                    .frame_len(64)
                    .build()
            }
            FramePlan::Normal { slot, generation } => {
                let f = self.flow(slot, generation);
                let b = match f.proto {
                    6 => PacketBuilder::tcp(),
                    17 => PacketBuilder::udp(),
                    _ => PacketBuilder::icmp(),
                };
                b.src_ip(f.src_ip)
                    .dst_ip(f.dst_ip)
                    .src_port(f.src_port)
                    .dst_port(f.dst_port)
                    .ttl(64)
                    .seq(seq as u32)
                    .frame_len(self.frame_size(seq))
                    .build()
            }
        }
    }

    /// Churn and mix accounting over frames `[0, n)`.
    ///
    /// Churn is analytic (per-slot phase arithmetic, no trace walk);
    /// the mix counts replay the per-frame plan decisions.
    pub fn stats(&self, n: u64) -> WorkloadStats {
        let mut s = WorkloadStats {
            live: self.spec.flows,
            ..WorkloadStats::default()
        };
        if n == 0 {
            return WorkloadStats::default();
        }
        if self.spec.life == 0 {
            s.arrivals = self.spec.flows;
        } else {
            for slot in 0..self.spec.flows {
                let rotations = self.generation(slot, n - 1) - self.generation(slot, 0);
                s.arrivals += 1 + rotations;
                s.expiries += rotations;
            }
        }
        for seq in 0..n {
            match self.plan(seq) {
                FramePlan::Syn => s.syn_frames += 1,
                FramePlan::Scan => s.scan_frames += 1,
                FramePlan::Normal { .. } => s.normal_frames += 1,
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_round_trips() {
        let w = WorkloadSpec::default();
        assert_eq!(WorkloadSpec::parse(&w.to_spec()), Ok(w));
    }

    #[test]
    fn spec_parses_suffixes_and_attacks() {
        let w = WorkloadSpec::parse(
            "flows=1M;zipf=1.1;life=64k;frames=128k;size=256;\
             syn@10k..200k:rate=0.2;scan@..:rate=5000ppm;seed=0xBEEF",
        )
        .expect("parses");
        assert_eq!(w.flows, 1_000_000);
        assert_eq!(w.zipf_x1000, 1100);
        assert_eq!(w.life, 64_000);
        assert_eq!(w.frames, 128_000);
        assert_eq!(w.size, SizeModel::Fixed(256));
        assert_eq!(w.seed, 0xBEEF);
        assert_eq!(
            w.attacks,
            vec![
                AttackEvent {
                    kind: AttackKind::SynFlood,
                    from: 10_000,
                    until: 200_000,
                    rate_ppm: 200_000,
                },
                AttackEvent {
                    kind: AttackKind::PortScan,
                    from: 0,
                    until: u64::MAX,
                    rate_ppm: 5_000,
                },
            ]
        );
        let round = WorkloadSpec::parse(&w.to_spec()).expect("canonical form parses");
        assert_eq!(round, w);
    }

    #[test]
    fn spec_errors_are_reported() {
        for bad in [
            "flows=0",           // below minimum
            "flows=999999M",     // over the cap
            "zipf=9",            // exponent out of range
            "size=12",           // fixed size below 64
            "size=jumbo",        // unknown size model
            "warp=1",            // unknown key
            "syn@..",            // missing rate
            "syn@..:rate=2.0",   // rate > 1
            "syn@5..5:rate=0.1", // empty window
            "scan@..:burst=9",   // unknown parameter
            "flood@..:rate=0.1", // unknown attack kind
            "syn:rate=0.1",      // no window
            "frames=1x",         // malformed count
        ] {
            assert!(WorkloadSpec::parse(bad).is_err(), "'{bad}' should fail");
        }
    }

    #[test]
    fn churn_conserves_analytically_and_by_iteration() {
        let w = Workload::new(WorkloadSpec {
            flows: 64,
            life: 37,
            ..WorkloadSpec::default()
        });
        for n in [1u64, 36, 37, 38, 200, 1000] {
            let s = w.stats(n);
            assert!(s.conserves(), "n={n}: {s:?}");
            // Brute-force oracle: walk every (slot, seq) generation.
            let mut arrivals = 0u64;
            let mut expiries = 0u64;
            for slot in 0..64 {
                let mut last = None;
                for seq in 0..n {
                    let g = w.generation(slot, seq);
                    match last {
                        None => arrivals += 1,
                        Some(prev) if prev != g => {
                            arrivals += 1;
                            expiries += 1;
                        }
                        _ => {}
                    }
                    last = Some(g);
                }
            }
            assert_eq!((s.arrivals, s.expiries), (arrivals, expiries), "n={n}");
        }
    }

    #[test]
    fn static_population_never_churns() {
        let w = Workload::new(WorkloadSpec {
            flows: 100,
            life: 0,
            ..WorkloadSpec::default()
        });
        let s = w.stats(10_000);
        assert_eq!(s.arrivals, 100);
        assert_eq!(s.expiries, 0);
        assert_eq!(s.live, 100);
        assert!(s.conserves());
    }

    #[test]
    fn generation_rotation_changes_the_tuple() {
        let w = Workload::new(WorkloadSpec {
            flows: 16,
            life: 10,
            ..WorkloadSpec::default()
        });
        for slot in 0..16 {
            assert_ne!(w.flow(slot, 0), w.flow(slot, 1), "slot {slot}");
            assert_eq!(w.flow(slot, 1), w.flow(slot, 1), "pure hash");
        }
    }

    #[test]
    fn attack_rates_approximate_ppm() {
        let w = Workload::new(WorkloadSpec {
            attacks: vec![AttackEvent {
                kind: AttackKind::SynFlood,
                from: 0,
                until: u64::MAX,
                rate_ppm: 250_000,
            }],
            ..WorkloadSpec::default()
        });
        let s = w.stats(8_192);
        let frac = s.syn_frames as f64 / 8_192.0;
        assert!((0.2..0.3).contains(&frac), "syn fraction {frac}");
        assert_eq!(s.syn_frames + s.normal_frames, 8_192);
    }

    #[test]
    fn attack_windows_bound_the_mix() {
        let w = Workload::new(WorkloadSpec {
            attacks: vec![AttackEvent {
                kind: AttackKind::PortScan,
                from: 100,
                until: 200,
                rate_ppm: 1_000_000,
            }],
            ..WorkloadSpec::default()
        });
        for seq in 0..100 {
            assert!(matches!(w.plan(seq), FramePlan::Normal { .. }));
        }
        for seq in 100..200 {
            assert_eq!(w.plan(seq), FramePlan::Scan);
        }
        for seq in 200..300 {
            assert!(matches!(w.plan(seq), FramePlan::Normal { .. }));
        }
    }

    #[test]
    fn frames_are_valid_and_deterministic() {
        use pm_packet::ether::{EtherHeader, EtherType};
        use pm_packet::ipv4::Ipv4Header;
        let w = Workload::new(WorkloadSpec {
            flows: 512,
            life: 100,
            attacks: vec![AttackEvent {
                kind: AttackKind::SynFlood,
                from: 0,
                until: u64::MAX,
                rate_ppm: 100_000,
            }],
            ..WorkloadSpec::default()
        });
        for seq in 0..512 {
            let f = w.build_frame(seq);
            assert_eq!(f, w.build_frame(seq), "seq {seq} deterministic");
            let eth = EtherHeader::parse(&f).unwrap();
            assert_eq!(eth.ethertype, EtherType::IPV4);
            let ip = Ipv4Header::parse(&f[14..]).unwrap();
            assert!(ip.verify_checksum(&f[14..]), "seq {seq} checksum");
        }
    }

    #[test]
    fn zipf_skew_shows_in_slot_picks() {
        let w = Workload::new(WorkloadSpec {
            flows: 1000,
            zipf_x1000: 1000,
            ..WorkloadSpec::default()
        });
        let mut head = 0u64;
        for seq in 0..4096 {
            if let FramePlan::Normal { slot, .. } = w.plan(seq) {
                if slot < 10 {
                    head += 1;
                }
            }
        }
        // Zipf(1) over 1000 ranks: top-10 mass ≈ 39%.
        let frac = head as f64 / 4096.0;
        assert!((0.3..0.5).contains(&frac), "top-10 fraction {frac}");
    }
}
