//! Zipf-distributed sampling over a finite universe.
//!
//! Flow popularity in campus/ISP traces is heavy-tailed; a Zipf law with
//! exponent near 1 is the standard model. Implemented as an inverse-CDF
//! table for O(log n) deterministic sampling.

use pm_sim::SplitMix64;

/// A Zipf(α) sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "empty universe");
        assert!(alpha >= 0.0, "negative exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there is only the trivial rank (never: `n >= 1`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (0 is the most popular).
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The analytic CDF at `rank`: the probability mass of ranks
    /// `0..=rank` (used by the workload property tests to compare
    /// empirical sample frequencies against the closed form).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n`.
    pub fn cdf(&self, rank: usize) -> f64 {
        self.cdf[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_zero_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SplitMix64::new(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[99]);
        // Zipf(1): rank 0 ≈ 10× rank 9.
        let ratio = counts[0] as f64 / counts[9] as f64;
        assert!((5.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SplitMix64::new(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 1.2);
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn deterministic() {
        let z = Zipf::new(50, 0.9);
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn zero_n_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
