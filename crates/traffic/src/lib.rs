//! Traffic synthesis and replay for PacketMill-rs.
//!
//! The paper evaluates with (i) a 28-minute campus trace (mean packet
//! size 981 B, replayed at line rate) that GDPR keeps private — even the
//! authors' artifact substitutes synthetic traffic — and (ii) fixed-size
//! synthetic traces. This crate synthesizes both:
//!
//! * [`TrafficProfile::CampusMix`] — a flow-structured mixture calibrated
//!   to the trace's two published properties: **mean frame size ≈ 981 B**
//!   (bimodal small-ACK / MTU-data mixture) and **flow diversity**
//!   (Zipf-popular TCP/UDP/ICMP/ARP flows over routable prefixes), which
//!   is what the router's LPM, the NAT's flow table, and RSS care about.
//! * [`TrafficProfile::FixedSize`] — fixed-size frames for the packet-size
//!   sweeps (Figs. 6 and 11).
//!
//! [`Trace::replay`] paces arrivals at an offered load, modelling the
//! generator server of the paper's testbed. [`pcap`] loads standard
//! `.pcap` captures for replaying *your own* traces through the
//! simulated testbed, and saves synthesized ones for wireshark/tcpdump.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pcap;
pub mod synth;
pub mod workload;
pub mod zipf;

pub use pcap::{read_pcap, write_pcap, PcapError};
pub use synth::{Trace, TraceConfig, TrafficProfile};
pub use workload::{
    AttackEvent, AttackKind, FramePlan, SizeModel, Workload, WorkloadSpec, WorkloadSpecError,
    WorkloadStats,
};
pub use zipf::Zipf;
