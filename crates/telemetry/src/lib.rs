//! Measurement primitives for PacketMill-rs: counters, latency histograms,
//! percentile estimation, windowed perf-counter sampling, and plain-text
//! table/CSV rendering.
//!
//! This crate is dependency-free and usable both by the simulator (to
//! collect the metrics the paper reports — throughput, median/99th
//! percentile latency, LLC loads & misses, IPC) and by the benchmark
//! harnesses (to print paper-style tables).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counters;
pub mod histogram;
pub mod json;
pub mod profile;
pub mod series;
pub mod table;
pub mod timeline;
pub mod trace;

pub use counters::CounterSet;
pub use histogram::LatencyHistogram;
pub use json::{Json, JsonError};
pub use profile::{ProfileRecord, ProfileReport};
pub use series::{Sample, WindowSampler};
pub use table::Table;
pub use timeline::{CoreSeries, TimelineRecorder, TimelineReport};
pub use trace::{chrome_trace, PacketTrace, TraceRecorder, TraceReport, TraceSpec};
