//! Minimal, dependency-free JSON tree, writer, and parser.
//!
//! DESIGN.md forbids serde: run artifacts are small and their schema is
//! ours, so a hand-rolled value tree keeps the workspace dependency-free
//! and — crucially for the profiling artifacts — **deterministic**:
//! object members are kept in insertion order, floats are rendered with
//! Rust's shortest-round-trip `Display`, and no map randomization exists
//! anywhere. Serializing the same [`Json`] twice yields byte-identical
//! text.

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map), which
/// makes serialization deterministic and keeps the artifact schema stable
/// across runs and thread counts.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer (used by the parser for negative values).
    I64(i64),
    /// A finite float. Non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: members in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a member of an object by key; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation, one member per line.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::I64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's Display for f64 is shortest-round-trip decimal
                    // (never exponent notation), i.e. valid JSON.
                    let _ = fmt::Write::write_fmt(out, format_args!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parses JSON text into a tree.
    ///
    /// Numbers without `.`/`e` parse as `U64`/`I64`; everything else
    /// numeric parses as `F64`. Trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                pos,
                what: "trailing characters after value",
            });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub pos: usize,
    /// What was expected or went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for JsonError {}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &'static str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError {
            pos: *pos,
            what: "unexpected token",
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError {
            pos: *pos,
            what: "unexpected end of input",
        }),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            what: "expected ',' or ']'",
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError {
                        pos: *pos,
                        what: "expected ':'",
                    });
                }
                *pos += 1;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            what: "expected ',' or '}'",
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            pos: *pos,
            what: "expected '\"'",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    pos: *pos,
                    what: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or(JsonError {
                    pos: *pos,
                    what: "unterminated escape",
                })?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(JsonError {
                            pos: *pos,
                            what: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                            pos: *pos,
                            what: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            pos: *pos,
                            what: "invalid \\u escape",
                        })?;
                        // Surrogates are not produced by our writer; map
                        // them (and any invalid scalar) to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            what: "unknown escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so byte
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    pos: *pos,
                    what: "invalid utf-8",
                })?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    if text.is_empty() {
        return Err(JsonError {
            pos: start,
            what: "expected a value",
        });
    }
    let integral = !text.contains(['.', 'e', 'E']);
    if integral {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>().map(Json::F64).map_err(|_| JsonError {
        pos: start,
        what: "malformed number",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (v, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (
                Json::U64(18_446_744_073_709_551_615),
                "18446744073709551615",
            ),
            (Json::I64(-42), "-42"),
            (Json::F64(1.5), "1.5"),
            (Json::Str("hi".into()), "\"hi\""),
        ] {
            assert_eq!(v.to_compact(), text);
            assert_eq!(Json::parse(text).unwrap(), v);
        }
    }

    #[test]
    fn float_formatting_is_shortest_round_trip() {
        let v = Json::F64(0.1 + 0.2);
        let text = v.to_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::F64(f64::NAN).to_compact(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_compact(), "null");
        // Whole floats keep their ".0" so the type survives a round trip.
        assert_eq!(Json::F64(3.0).to_compact(), "3.0");
    }

    #[test]
    fn string_escaping() {
        let s = "quote \" backslash \\ newline \n tab \t bell \u{7} unicode é";
        let v = Json::Str(s.into());
        let text = v.to_compact();
        assert!(text.contains("\\\"") && text.contains("\\\\"));
        assert!(text.contains("\\n") && text.contains("\\t"));
        assert!(text.contains("\\u0007"));
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn nested_objects_round_trip_preserving_order() {
        let v = Json::obj(vec![
            ("zeta", Json::U64(1)),
            (
                "alpha",
                Json::Arr(vec![
                    Json::obj(vec![("k", Json::Str("v".into()))]),
                    Json::Null,
                    Json::F64(-0.25),
                ]),
            ),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let compact = v.to_compact();
        assert_eq!(
            compact,
            "{\"zeta\":1,\"alpha\":[{\"k\":\"v\"},null,-0.25],\
             \"empty_obj\":{},\"empty_arr\":[]}"
        );
        assert_eq!(Json::parse(&compact).unwrap(), v);
        // Pretty output parses back to the same tree.
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn get_and_as_f64() {
        let v = Json::obj(vec![("x", Json::F64(2.5)), ("n", Json::U64(7))]);
        assert_eq!(v.get("x").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(7.0));
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "{} extra",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_negative_exponents() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.0e-3 , -7 ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::U64(1), Json::F64(0.002), Json::I64(-7),])
        );
    }
}
