//! The windowed time-series half of the flight recorder.
//!
//! A [`TimelineRecorder`] accumulates per-window, per-lane series driven
//! entirely by **virtual time**: every observation carries a simulated
//! picosecond timestamp and lands in window `t / window` — exact integer
//! arithmetic, no wall-clock anywhere — so the finished
//! [`TimelineReport`] is byte-identical regardless of sweep threading or
//! host speed. Cumulative counters (LLC misses, drops by cause) flow
//! through [`WindowSampler`], reproducing the paper's
//! sample-every-100-ms `perf` methodology; per-event series (tx/rx
//! packets, per-window latency percentiles, ring/mempool occupancy) are
//! bucketed directly by event timestamp.
//!
//! Recording is **measurement-neutral** by construction: the recorder
//! only ever reads values handed to it and charges no simulated cost.

use crate::histogram::LatencyHistogram;
use crate::json::Json;
use crate::series::WindowSampler;

/// A running sum/count pair for per-window occupancy means.
#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    sum: u64,
    n: u64,
}

impl Acc {
    fn mean(self) -> Option<f64> {
        (self.n > 0).then(|| self.sum as f64 / self.n as f64)
    }
}

/// Per-lane (per-core) event-bucketed series.
#[derive(Debug, Clone, Default)]
struct Lane {
    tx: Vec<u64>,
    tx_bytes: Vec<u64>,
    rx: Vec<u64>,
    lat: Vec<Option<LatencyHistogram>>,
    rx_backlog: Vec<Acc>,
    tx_in_flight: Vec<Acc>,
    pool_free: Vec<Acc>,
}

fn at<T: Default + Clone>(v: &mut Vec<T>, idx: usize) -> &mut T {
    if v.len() <= idx {
        v.resize(idx + 1, T::default());
    }
    &mut v[idx]
}

/// Accumulates the windowed time series of one run.
#[derive(Debug, Clone)]
pub struct TimelineRecorder {
    window_ps: u64,
    drop_labels: Vec<&'static str>,
    llc: WindowSampler,
    llc_cum: u64,
    drops: Vec<WindowSampler>,
    drops_cum: Vec<u64>,
    lanes: Vec<Lane>,
}

impl TimelineRecorder {
    /// Creates a recorder with the given virtual-time window (ps), one
    /// lane per core, and one cumulative drop series per label.
    ///
    /// # Panics
    ///
    /// Panics if `window_ps` is zero or `lanes` is zero.
    pub fn new(window_ps: u64, lanes: usize, drop_labels: Vec<&'static str>) -> Self {
        assert!(window_ps > 0, "window must be positive");
        assert!(lanes > 0, "need at least one lane");
        let window_ns = window_ps as f64 / 1e3;
        TimelineRecorder {
            window_ps,
            drops: drop_labels
                .iter()
                .map(|_| WindowSampler::new(window_ns))
                .collect(),
            drops_cum: vec![0; drop_labels.len()],
            drop_labels,
            llc: WindowSampler::new(window_ns),
            llc_cum: 0,
            lanes: vec![Lane::default(); lanes],
        }
    }

    /// The recording window, in picoseconds.
    pub fn window_ps(&self) -> u64 {
        self.window_ps
    }

    fn idx(&self, at_ps: u64) -> usize {
        (at_ps / self.window_ps) as usize
    }

    /// Reports the cumulative LLC-miss counter at a checkpoint.
    pub fn observe_llc(&mut self, now_ps: u64, cumulative: u64) {
        self.llc.observe(now_ps as f64 / 1e3, cumulative);
        self.llc_cum = cumulative;
    }

    /// Reports the cumulative drop counters (one per label, in label
    /// order) at a checkpoint.
    pub fn observe_drops(&mut self, now_ps: u64, cumulative: &[u64]) {
        debug_assert_eq!(cumulative.len(), self.drops.len());
        let now_ns = now_ps as f64 / 1e3;
        for ((s, cum), &v) in self
            .drops
            .iter_mut()
            .zip(&mut self.drops_cum)
            .zip(cumulative)
        {
            s.observe(now_ns, v);
            *cum = v;
        }
    }

    /// Records `count` packets delivered into lane `lane`'s RX queues at
    /// virtual time `at_ps`.
    pub fn on_rx(&mut self, lane: usize, at_ps: u64, count: u64) {
        let i = self.idx(at_ps);
        *at(&mut self.lanes[lane].rx, i) += count;
    }

    /// Records one packet leaving lane `lane` on the wire at `at_ps`,
    /// with its frame length and end-to-end latency.
    pub fn on_tx(&mut self, lane: usize, at_ps: u64, bytes: u64, latency_ns: u64) {
        let i = self.idx(at_ps);
        *at(&mut self.lanes[lane].tx, i) += 1;
        *at(&mut self.lanes[lane].tx_bytes, i) += bytes;
        at(&mut self.lanes[lane].lat, i)
            .get_or_insert_with(LatencyHistogram::new)
            .record(latency_ns);
    }

    /// Samples ring and mempool occupancy for lane `lane` at `at_ps`.
    pub fn on_occupancy(
        &mut self,
        lane: usize,
        at_ps: u64,
        rx_backlog: u64,
        tx_in_flight: u64,
        pool_free: u64,
    ) {
        let i = self.idx(at_ps);
        let l = &mut self.lanes[lane];
        let add = |acc: &mut Acc, v: u64| {
            acc.sum += v;
            acc.n += 1;
        };
        add(at(&mut l.rx_backlog, i), rx_backlog);
        add(at(&mut l.tx_in_flight, i), tx_in_flight);
        add(at(&mut l.pool_free, i), pool_free);
    }

    /// Closes the recorder at the end of the run (`end_ps` = final
    /// virtual time) and renders every series to a uniform window count.
    pub fn finish(self, end_ps: u64) -> TimelineReport {
        let w = self.window_ps;
        let full = (end_ps / w) as usize;
        let partial = !end_ps.is_multiple_of(w);
        let lane_max = self
            .lanes
            .iter()
            .flat_map(|l| {
                [
                    l.tx.len(),
                    l.tx_bytes.len(),
                    l.rx.len(),
                    l.lat.len(),
                    l.rx_backlog.len(),
                    l.tx_in_flight.len(),
                    l.pool_free.len(),
                ]
            })
            .max()
            .unwrap_or(0);
        let windows = (full + usize::from(partial)).max(lane_max);

        let end_us = end_ps as f64 / 1e6;
        let window_end_us: Vec<f64> = (0..windows)
            .map(|i| (((i + 1) as u64 * w) as f64 / 1e6).min(end_us))
            .collect();

        let end_ns = end_ps as f64 / 1e3;
        let pad = |mut deltas: Vec<u64>| {
            deltas.resize(windows, 0);
            deltas
        };
        let series = |s: WindowSampler, last: u64| {
            pad(s
                .finish(end_ns, last)
                .into_iter()
                .map(|x| x.delta)
                .collect())
        };
        // Finishing with the latest observed cumulative value closes
        // remaining boundaries and flushes any mid-window tail.
        let llc_misses = series(self.llc, self.llc_cum);
        let drops = self
            .drop_labels
            .iter()
            .zip(self.drops)
            .zip(self.drops_cum)
            .map(|((&label, s), cum)| (label, series(s, cum)))
            .collect();

        let cores = self
            .lanes
            .into_iter()
            .map(|l| {
                let percentile = |hists: &[Option<LatencyHistogram>], p: f64| {
                    (0..windows)
                        .map(|i| {
                            hists
                                .get(i)
                                .and_then(|h| h.as_ref())
                                .map(|h| h.percentile(p) as f64 / 1e3)
                        })
                        .collect::<Vec<Option<f64>>>()
                };
                let means = |accs: &[Acc]| {
                    (0..windows)
                        .map(|i| accs.get(i).copied().unwrap_or_default().mean())
                        .collect::<Vec<Option<f64>>>()
                };
                CoreSeries {
                    p50_us: percentile(&l.lat, 50.0),
                    p99_us: percentile(&l.lat, 99.0),
                    rx_backlog: means(&l.rx_backlog),
                    tx_in_flight: means(&l.tx_in_flight),
                    pool_free: means(&l.pool_free),
                    tx: pad(l.tx),
                    tx_bytes: pad(l.tx_bytes),
                    rx: pad(l.rx),
                }
            })
            .collect();

        TimelineReport {
            window_us: w as f64 / 1e6,
            window_end_us,
            llc_misses,
            drops,
            cores,
        }
    }
}

/// One core's finished per-window series (all of equal length).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSeries {
    /// Packets serialized onto the wire per window.
    pub tx: Vec<u64>,
    /// Frame bytes serialized per window.
    pub tx_bytes: Vec<u64>,
    /// Packets delivered into this core's RX queues per window.
    pub rx: Vec<u64>,
    /// Median latency (µs) of packets departing in each window, `None`
    /// for windows with no departures.
    pub p50_us: Vec<Option<f64>>,
    /// 99th-percentile latency (µs) per window, `None` when empty.
    pub p99_us: Vec<Option<f64>>,
    /// Mean RX-ring backlog (DMA-complete, not yet polled) per window,
    /// `None` for windows with no occupancy samples.
    pub rx_backlog: Vec<Option<f64>>,
    /// Mean TX-ring in-flight descriptors per window.
    pub tx_in_flight: Vec<Option<f64>>,
    /// Mean free mempool buffers per window.
    pub pool_free: Vec<Option<f64>>,
}

/// The finished windowed time series of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// The recording window, in microseconds.
    pub window_us: f64,
    /// End of each window (µs); the last entry is clamped to the run end.
    pub window_end_us: Vec<f64>,
    /// LLC load misses per window (whole run, all cores).
    pub llc_misses: Vec<u64>,
    /// Drops per window by cause, in [`DropCause::ALL`] order
    /// (`pm_sim::DropCause` — labels are its pinned string forms).
    pub drops: Vec<(&'static str, Vec<u64>)>,
    /// Per-core series, indexed by core id.
    pub cores: Vec<CoreSeries>,
}

impl TimelineReport {
    /// The `timeline` section of the run-report JSON. Key order is fixed
    /// and every key is always present, so the artifact schema does not
    /// vary with the data.
    pub fn to_json(&self) -> Json {
        let u64s = |v: &[u64]| Json::Arr(v.iter().map(|&x| Json::U64(x)).collect());
        let opts = |v: &[Option<f64>]| {
            Json::Arr(v.iter().map(|x| x.map_or(Json::Null, Json::F64)).collect())
        };
        Json::obj(vec![
            ("window_us", Json::F64(self.window_us)),
            ("windows", Json::U64(self.window_end_us.len() as u64)),
            (
                "window_end_us",
                Json::Arr(self.window_end_us.iter().map(|&x| Json::F64(x)).collect()),
            ),
            ("llc_misses", u64s(&self.llc_misses)),
            (
                "drops",
                Json::Obj(
                    self.drops
                        .iter()
                        .map(|(label, v)| ((*label).to_string(), u64s(v)))
                        .collect(),
                ),
            ),
            (
                "cores",
                Json::Arr(
                    self.cores
                        .iter()
                        .enumerate()
                        .map(|(i, c)| {
                            Json::obj(vec![
                                ("core", Json::U64(i as u64)),
                                ("tx", u64s(&c.tx)),
                                ("tx_bytes", u64s(&c.tx_bytes)),
                                ("rx", u64s(&c.rx)),
                                ("p50_us", opts(&c.p50_us)),
                                ("p99_us", opts(&c.p99_us)),
                                ("rx_backlog", opts(&c.rx_backlog)),
                                ("tx_in_flight", opts(&c.tx_in_flight)),
                                ("pool_free", opts(&c.pool_free)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Throughput (Gbps) per window for one core: frame bytes (plus the
    /// 20 B/packet preamble+IFG the wire also carries) over the window.
    pub fn gbps(&self, core: usize) -> Vec<f64> {
        let c = &self.cores[core];
        let mut prev_end = 0.0;
        self.window_end_us
            .iter()
            .enumerate()
            .map(|(i, &end)| {
                let span_us = end - prev_end;
                prev_end = end;
                if span_us <= 0.0 {
                    return 0.0;
                }
                let bits = (c.tx_bytes[i] + 20 * c.tx[i]) as f64 * 8.0;
                bits / (span_us * 1e3) // bits per ns = Gbps
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1_000_000; // ps

    fn recorder() -> TimelineRecorder {
        TimelineRecorder::new(100 * US, 2, vec!["fcs", "nf"])
    }

    #[test]
    fn events_bucket_by_virtual_time() {
        let mut r = recorder();
        r.on_tx(0, 50 * US, 1500, 4_000);
        r.on_tx(0, 150 * US, 1500, 8_000);
        r.on_tx(1, 150 * US, 500, 2_000);
        r.on_rx(0, 99 * US, 32);
        let t = r.finish(200 * US);
        assert_eq!(t.window_end_us, vec![100.0, 200.0]);
        assert_eq!(t.cores[0].tx, vec![1, 1]);
        assert_eq!(t.cores[0].rx, vec![32, 0]);
        assert_eq!(t.cores[1].tx, vec![0, 1]);
        assert_eq!(t.cores[1].tx_bytes, vec![0, 500]);
        // p50 recorded only where departures happened.
        assert!(t.cores[1].p50_us[0].is_none());
        assert!(t.cores[1].p50_us[1].is_some());
    }

    #[test]
    fn boundary_event_lands_in_next_window() {
        let mut r = recorder();
        r.on_tx(0, 100 * US, 64, 1_000); // exactly on the boundary
        let t = r.finish(200 * US);
        assert_eq!(t.cores[0].tx, vec![0, 1]);
    }

    #[test]
    fn cumulative_series_and_padding() {
        let mut r = recorder();
        r.observe_llc(80 * US, 10);
        r.observe_drops(80 * US, &[2, 0]);
        r.observe_llc(120 * US, 25);
        r.observe_drops(120 * US, &[2, 3]);
        let t = r.finish(250 * US);
        assert_eq!(t.window_end_us, vec![100.0, 200.0, 250.0]);
        // Window 0 closes at the 120 µs observation with the full delta.
        assert_eq!(t.llc_misses, vec![25, 0, 0]);
        assert_eq!(t.drops[0], ("fcs", vec![2, 0, 0]));
        assert_eq!(t.drops[1], ("nf", vec![3, 0, 0]));
    }

    #[test]
    fn occupancy_means_per_window() {
        let mut r = recorder();
        r.on_occupancy(0, 10 * US, 4, 0, 100);
        r.on_occupancy(0, 20 * US, 8, 2, 50);
        r.on_occupancy(0, 150 * US, 1, 1, 10);
        let t = r.finish(200 * US);
        assert_eq!(t.cores[0].rx_backlog, vec![Some(6.0), Some(1.0)]);
        assert_eq!(t.cores[0].tx_in_flight, vec![Some(1.0), Some(1.0)]);
        assert_eq!(t.cores[0].pool_free, vec![Some(75.0), Some(10.0)]);
        assert_eq!(t.cores[1].rx_backlog, vec![None, None]);
    }

    #[test]
    fn json_has_fixed_keys() {
        let mut r = recorder();
        r.on_tx(0, 10 * US, 64, 500);
        let j = r.finish(100 * US).to_json();
        for key in [
            "window_us",
            "windows",
            "window_end_us",
            "llc_misses",
            "drops",
            "cores",
        ] {
            assert!(j.get(key).is_some(), "missing key {key}");
        }
        let core = match j.get("cores") {
            Some(Json::Arr(cores)) => &cores[0],
            other => panic!("bad cores: {other:?}"),
        };
        for key in [
            "core",
            "tx",
            "tx_bytes",
            "rx",
            "p50_us",
            "p99_us",
            "rx_backlog",
            "tx_in_flight",
            "pool_free",
        ] {
            assert!(core.get(key).is_some(), "missing core key {key}");
        }
    }

    #[test]
    fn gbps_per_window() {
        let mut r = recorder();
        // 1000 frames of 1230 B in window 0: (1230+20)*8*1000 bits
        // over 100 µs = 0.1 Gbps * 1000 = 100 Gbps.
        for i in 0..1000u64 {
            r.on_tx(0, i * 50_000_000 / 1000, 1230, 1_000);
        }
        let t = r.finish(200 * US);
        let g = t.gbps(0);
        assert!((g[0] - 100.0).abs() < 1e-9, "got {}", g[0]);
        assert_eq!(g[1], 0.0);
    }
}
