//! Plain-text table and CSV rendering for benchmark output.
//!
//! Every figure/table harness in `pm-bench` prints its series through this
//! module so that `bench_output.txt` contains consistently formatted,
//! paper-style rows.

use std::fmt;

/// A simple column-aligned text table that can also render as CSV.
///
/// # Examples
///
/// ```
/// use pm_telemetry::Table;
///
/// let mut t = Table::new(vec!["freq (GHz)", "vanilla", "packetmill"]);
/// t.row(vec!["1.2".into(), "33.9".into(), "37.0".into()]);
/// t.row(vec!["3.0".into(), "74.4".into(), "88.9".into()]);
/// let text = t.to_string();
/// assert!(text.contains("freq (GHz)"));
/// assert!(t.to_csv().starts_with("freq (GHz),vanilla,packetmill"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Appends a row of formatted floats with `prec` decimals, prefixed by a label.
    pub fn row_f64(&mut self, label: impl Into<String>, values: &[f64], prec: usize) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.prec$}")));
        self.row(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (header row first).
    ///
    /// Cells containing a comma, double quote, or line break are quoted
    /// per RFC 4180 (embedded quotes doubled); plain cells are emitted
    /// verbatim.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(&self.rows) {
            let mut first = true;
            for cell in row {
                if !first {
                    out.push(',');
                }
                first = false;
                push_csv_cell(&mut out, cell);
            }
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

/// Appends one CSV cell to `out`, quoting per RFC 4180 only when the cell
/// contains a comma, a double quote, or a line break.
fn push_csv_cell(out: &mut String, cell: &str) {
    if cell.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for c in cell.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(cell);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (i, c) in cells.iter().enumerate() {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                write!(f, "{c:>width$}", width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["123456".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["name", "note"]);
        t.row(vec!["a,b".into(), "plain".into()]);
        t.row(vec!["say \"hi\"".into(), "line\nbreak".into()]);
        assert_eq!(
            t.to_csv(),
            "name,note\n\"a,b\",plain\n\"say \"\"hi\"\"\",\"line\nbreak\"\n"
        );
    }

    #[test]
    fn csv_quotes_headers_too() {
        let mut t = Table::new(vec!["freq, GHz", "gbps"]);
        t.row(vec!["1.2".into(), "33.9".into()]);
        assert_eq!(t.to_csv(), "\"freq, GHz\",gbps\n1.2,33.9\n");
    }

    #[test]
    fn row_f64_formats() {
        let mut t = Table::new(vec!["label", "v1", "v2"]);
        t.row_f64("r", &[1.23456, 2.0], 2);
        assert!(t.to_csv().contains("r,1.23,2.00"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new(vec!["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_rejected() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["c"]);
        assert!(t.is_empty());
        t.row(vec!["v".into()]);
        assert_eq!(t.len(), 1);
    }
}
