//! Named monotonic counters, in the spirit of `perf stat`.
//!
//! The simulator increments counters for the same events the paper
//! measures (`llc-loads`, `llc-load-misses`, `instructions`, `cycles`, …);
//! harnesses snapshot and difference them per measurement window.

use std::collections::BTreeMap;
use std::fmt;

/// A set of named monotonic `u64` counters.
///
/// Counter names are interned as `&'static str` for zero-cost increments
/// on hot paths. A `BTreeMap` keeps rendering deterministic.
///
/// # Examples
///
/// ```
/// use pm_telemetry::CounterSet;
///
/// let mut c = CounterSet::new();
/// c.add("llc-loads", 3);
/// c.incr("llc-loads");
/// assert_eq!(c.get("llc-loads"), 4);
/// assert_eq!(c.get("never-touched"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counters: BTreeMap<&'static str, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name` (creating it at zero if absent).
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increments counter `name` by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Returns the value of `name`, or 0 if it was never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Returns a snapshot that can later be differenced with [`Self::delta_since`].
    pub fn snapshot(&self) -> CounterSet {
        self.clone()
    }

    /// Returns `self - earlier` as a new counter set (per-window deltas).
    ///
    /// Counters absent from `earlier` are treated as zero there.
    pub fn delta_since(&self, earlier: &CounterSet) -> CounterSet {
        let mut out = CounterSet::new();
        for (&name, &v) in &self.counters {
            let before = earlier.get(name);
            out.counters.insert(name, v.saturating_sub(before));
        }
        out
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another counter set into this one by addition.
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, v) in other.iter() {
            self.add(name, v);
        }
    }

    /// True if no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Resets all counters to zero (keeps names).
    pub fn clear(&mut self) {
        for v in self.counters.values_mut() {
            *v = 0;
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in self.iter() {
            writeln!(f, "{name:>24}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = CounterSet::new();
        c.add("x", 5);
        c.incr("x");
        assert_eq!(c.get("x"), 6);
    }

    #[test]
    fn missing_counter_reads_zero() {
        assert_eq!(CounterSet::new().get("nope"), 0);
    }

    #[test]
    fn delta_since_snapshot() {
        let mut c = CounterSet::new();
        c.add("a", 10);
        let snap = c.snapshot();
        c.add("a", 7);
        c.add("b", 3);
        let d = c.delta_since(&snap);
        assert_eq!(d.get("a"), 7);
        assert_eq!(d.get("b"), 3);
    }

    #[test]
    fn merge_adds() {
        let mut a = CounterSet::new();
        let mut b = CounterSet::new();
        a.add("k", 1);
        b.add("k", 2);
        b.add("j", 9);
        a.merge(&b);
        assert_eq!(a.get("k"), 3);
        assert_eq!(a.get("j"), 9);
    }

    #[test]
    fn display_is_deterministic() {
        let mut c = CounterSet::new();
        c.add("zeta", 1);
        c.add("alpha", 2);
        let s = format!("{c}");
        let alpha = s.find("alpha").unwrap();
        let zeta = s.find("zeta").unwrap();
        assert!(alpha < zeta, "names should render sorted");
    }

    #[test]
    fn iter_and_snapshot_order_is_stable_and_sorted() {
        // Counters back serialized artifacts, so iteration order must be
        // deterministic regardless of insertion order. The BTreeMap key
        // guarantees it; this pins the contract.
        let mut a = CounterSet::new();
        for name in ["zeta", "alpha", "mid", "beta"] {
            a.add(name, 1);
        }
        let mut b = CounterSet::new();
        for name in ["beta", "mid", "zeta", "alpha"] {
            b.add(name, 1);
        }
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "beta", "mid", "zeta"]);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "iter() must yield sorted names");
        // Same counters inserted in a different order: identical
        // iteration and snapshot.
        assert_eq!(names, b.iter().map(|(n, _)| n).collect::<Vec<_>>());
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(
            a.snapshot().iter().collect::<Vec<_>>(),
            a.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn clear_zeroes_but_keeps_names() {
        let mut c = CounterSet::new();
        c.add("x", 4);
        c.clear();
        assert_eq!(c.get("x"), 0);
        assert!(!c.is_empty());
    }
}
