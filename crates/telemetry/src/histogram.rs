//! Log-bucketed latency histogram with percentile queries.
//!
//! An HDR-histogram-style structure: values are bucketed with a fixed
//! number of significant bits, giving a bounded relative error (< 1/64
//! with the default 6 sub-bucket bits) over an arbitrary dynamic range.
//! Recording is O(1) and allocation-free after construction, which matters
//! because the simulator records one latency sample per forwarded packet.

/// A log-bucketed histogram of `u64` values (we use nanoseconds).
///
/// # Examples
///
/// ```
/// use pm_telemetry::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((480..=520).contains(&p50), "p50 was {p50}");
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.max(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Number of low-order "sub-bucket" bits kept at full precision.
    sub_bits: u32,
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const DEFAULT_SUB_BITS: u32 = 6;

impl LatencyHistogram {
    /// Creates an empty histogram with default precision (~1.6% max error).
    pub fn new() -> Self {
        Self::with_precision(DEFAULT_SUB_BITS)
    }

    /// Creates an empty histogram keeping `sub_bits` significant bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= sub_bits <= 16`.
    pub fn with_precision(sub_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&sub_bits),
            "sub_bits must be in 1..=16, got {sub_bits}"
        );
        // One linear region of 2^(sub_bits+1) slots, then one region of
        // 2^sub_bits slots per power of two above that: 64 regions covers u64.
        let regions = 64 - sub_bits;
        let slots = (1usize << (sub_bits + 1)) + (regions as usize - 1) * (1usize << sub_bits);
        LatencyHistogram {
            sub_bits,
            buckets: vec![0; slots],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(&self, value: u64) -> usize {
        let sb = self.sub_bits;
        let v = value;
        let msb = 63u32.saturating_sub(v.leading_zeros()); // 0 for v in {0,1}
        if msb <= sb {
            // Linear region: exact.
            v as usize
        } else {
            let region = msb - sb; // >= 1
            let shifted = (v >> (msb - sb)) as usize; // in [2^sb, 2^(sb+1))
            let base = (1usize << (sb + 1)) + (region as usize - 1) * (1usize << sb);
            base + (shifted - (1usize << sb))
        }
    }

    fn value_of(&self, index: usize) -> u64 {
        let sb = self.sub_bits;
        let linear = 1usize << (sb + 1);
        if index < linear {
            index as u64
        } else {
            let region = (index - linear) / (1usize << sb) + 1;
            let slot = (index - linear) % (1usize << sb);
            // Midpoint-ish representative: top of the bucket. Saturate for
            // buckets whose upper bound exceeds u64::MAX.
            let low = ((1u64 << sb) + slot as u64).checked_shl(region as u32);
            match low {
                Some(lo) => lo.saturating_add((1u64 << region) - 1),
                None => u64::MAX,
            }
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = self.index_of(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index_of(value);
        self.buckets[idx] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns the value at percentile `p`, or 0 for an empty histogram.
    ///
    /// `p` is clamped to `0.0..=100.0` (a NaN is treated as 0). The
    /// returned value is the representative (upper bound) of the bucket
    /// containing the `p`-th percentile sample, clamped to the observed max.
    pub fn percentile(&self, p: f64) -> u64 {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.value_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Convenience: median (p50).
    pub fn median(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Convenience: 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Convenience: 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Merges another histogram into this one.
    ///
    /// Histograms of equal precision merge bucket-for-bucket. When the
    /// precisions differ, `other`'s buckets are renormalized through this
    /// histogram's bucketing (each bucket is re-recorded at its
    /// representative value, clamped to `other`'s observed max), so the
    /// result is well-formed at this histogram's precision; count, sum,
    /// min, and max remain exact.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.sub_bits == other.sub_bits {
            for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                *a += b;
            }
        } else {
            for (i, &c) in other.buckets.iter().enumerate() {
                if c > 0 {
                    let idx = self.index_of(other.value_of(i).min(other.max));
                    self.buckets[idx] += c;
                }
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets the histogram to empty.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = LatencyHistogram::new();
        h.record(12_345);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 12_345);
        assert_eq!(h.max(), 12_345);
        let p50 = h.median();
        assert!(relative_error(p50, 12_345) < 0.02, "p50={p50}");
    }

    #[test]
    fn small_values_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..100 {
            h.record(v);
        }
        // Values below 2^(sub_bits+1)=128 are stored exactly.
        assert_eq!(h.percentile(100.0), 99);
        assert_eq!(h.percentile(1.0), 0);
    }

    #[test]
    fn percentiles_bounded_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (p, expect) in [(50.0, 50_000u64), (90.0, 90_000), (99.0, 99_000)] {
            let got = h.percentile(p);
            assert!(
                relative_error(got, expect) < 0.02,
                "p{p}: got {got}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..57 {
            a.record(999);
        }
        b.record_n(999, 57);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.median(), b.median());
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn mean_exact() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(5);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0) >= u64::MAX / 2);
    }

    #[test]
    fn out_of_range_percentile_clamps() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.percentile(101.0), h.percentile(100.0));
        assert_eq!(h.percentile(f64::INFINITY), h.max());
        assert_eq!(h.percentile(-5.0), h.percentile(0.0));
        assert_eq!(h.percentile(f64::NAN), h.percentile(0.0));
        // Empty histograms return 0 at any percentile.
        assert_eq!(LatencyHistogram::new().percentile(250.0), 0);
    }

    #[test]
    fn p999_tracks_tail() {
        let mut h = LatencyHistogram::new();
        h.record_n(100, 9_990);
        h.record_n(10_000, 10);
        assert!(relative_error(h.p99(), 100) < 0.02, "p99={}", h.p99());
        assert!(relative_error(h.p999(), 10_000) < 0.02, "p999={}", h.p999());
    }

    #[test]
    fn merge_differing_precision_renormalizes() {
        let mut coarse = LatencyHistogram::with_precision(2);
        let mut fine = LatencyHistogram::with_precision(8);
        for v in 1..=10_000u64 {
            fine.record(v);
        }
        coarse.record(5);
        coarse.merge(&fine);
        // Count/sum/min/max are exact.
        assert_eq!(coarse.count(), 10_001);
        assert_eq!(coarse.min(), 1);
        assert_eq!(coarse.max(), 10_000);
        assert!((coarse.mean() - (5.0 + 50_005_000.0) / 10_001.0).abs() < 1e-6);
        // Percentiles stay within the coarse histogram's error bound
        // (sub_bits=2 -> <= 1/4 relative error) and never exceed max.
        let p50 = coarse.median();
        assert!(relative_error(p50, 5_000) < 0.25, "p50={p50}");
        assert!(coarse.percentile(100.0) <= 10_000);

        // Merging an empty histogram of different precision is a no-op.
        let empty = LatencyHistogram::with_precision(4);
        let before = coarse.count();
        coarse.merge(&empty);
        assert_eq!(coarse.count(), before);
    }

    fn relative_error(got: u64, expect: u64) -> f64 {
        (got as f64 - expect as f64).abs() / expect as f64
    }
}
