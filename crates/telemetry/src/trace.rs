//! The sampled per-packet lifecycle half of the flight recorder.
//!
//! A deterministic head/hash-sampled subset of packets records its full
//! lifecycle: wire arrival, DMA completion into the RX ring, PMD poll,
//! per-element processing spans, TX-ring residency, and the final fate
//! (`"tx"` or a categorized drop cause). Whether a packet is sampled is
//! a **pure function** of `(trace seed, nic, sequence number)` — the
//! same idiom as the fault plan's per-packet decisions — so the selected
//! set is identical at any sweep thread count and independent of poll
//! order. All timestamps are virtual picoseconds.
//!
//! The finished [`TraceReport`] serializes into the run-report JSON and
//! can also be rendered as a Chrome `trace_event` document
//! ([`chrome_trace`]) that Perfetto and `chrome://tracing` open
//! directly.

use crate::json::Json;

/// Which packets the trace samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Seed for the per-packet sampling hash.
    pub seed: u64,
    /// Hash-sample one in `rate` packets (0 disables hash sampling).
    pub rate: u64,
    /// Always sample the first `head` packets of every NIC's stream.
    pub head: u64,
    /// Stop recording new packets past this count (the report notes the
    /// truncation); keeps worst-case artifact size bounded.
    pub max_packets: usize,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            seed: 0,
            rate: 64,
            head: 32,
            max_packets: 256,
        }
    }
}

/// SplitMix64's finalizer — re-derived here (pm-telemetry is
/// dependency-free) so sampling decisions mix the same way the fault
/// plan's do.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TraceSpec {
    /// Whether packet `seq` of stream `nic` is in the sampled set. Pure:
    /// the same arguments always yield the same verdict.
    pub fn sampled(&self, nic: u64, seq: u64) -> bool {
        if seq < self.head {
            return true;
        }
        self.rate > 0
            && mix(self.seed ^ nic.rotate_left(24) ^ seq.wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .is_multiple_of(self.rate)
    }
}

/// One element's processing span within a sampled packet's lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Element label (class name, or instance name for anonymous ones).
    pub element: String,
    /// Span start, virtual picoseconds.
    pub start_ps: u64,
    /// Span end, virtual picoseconds.
    pub end_ps: u64,
}

/// The recorded lifecycle of one sampled packet. Stages a packet never
/// reached stay `None`; the JSON emits every key regardless (as `null`),
/// so the artifact's key paths do not vary with the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketTrace {
    /// Source NIC index.
    pub nic: u32,
    /// RX queue the packet was steered to (`None` if dropped on the wire).
    pub queue: Option<u32>,
    /// Core that polled the packet (`None` before the poll).
    pub core: Option<u32>,
    /// Per-NIC generator sequence number.
    pub seq: u64,
    /// Wire arrival, virtual picoseconds.
    pub gen_ps: u64,
    /// DMA completion into the RX ring (`None` if dropped earlier).
    pub arrival_ps: Option<u64>,
    /// Picked up by the PMD's RX burst.
    pub poll_ps: Option<u64>,
    /// Element processing spans, in graph order.
    pub spans: Vec<Span>,
    /// Enqueued on the TX ring.
    pub tx_enqueue_ps: Option<u64>,
    /// Serialized onto the wire, or dropped, at this instant.
    pub done_ps: Option<u64>,
    /// `"tx"` or a `DropCause` string; `None` if the run ended with the
    /// packet still in flight.
    pub fate: Option<&'static str>,
}

impl PacketTrace {
    fn new(nic: u32, seq: u64, gen_ps: u64) -> Self {
        PacketTrace {
            nic,
            queue: None,
            core: None,
            seq,
            gen_ps,
            arrival_ps: None,
            poll_ps: None,
            spans: Vec::new(),
            tx_enqueue_ps: None,
            done_ps: None,
            fate: None,
        }
    }

    fn to_json(&self) -> Json {
        let opt_u64 = |v: Option<u64>| v.map_or(Json::Null, Json::U64);
        let opt_u32 = |v: Option<u32>| v.map_or(Json::Null, |x| Json::U64(u64::from(x)));
        Json::obj(vec![
            ("nic", Json::U64(u64::from(self.nic))),
            ("queue", opt_u32(self.queue)),
            ("core", opt_u32(self.core)),
            ("seq", Json::U64(self.seq)),
            ("gen_ps", Json::U64(self.gen_ps)),
            ("arrival_ps", opt_u64(self.arrival_ps)),
            ("poll_ps", opt_u64(self.poll_ps)),
            (
                "spans",
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("element", Json::Str(s.element.clone())),
                                ("start_ps", Json::U64(s.start_ps)),
                                ("end_ps", Json::U64(s.end_ps)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("tx_enqueue_ps", opt_u64(self.tx_enqueue_ps)),
            ("done_ps", opt_u64(self.done_ps)),
            (
                "fate",
                self.fate.map_or(Json::Null, |f| Json::Str(f.to_string())),
            ),
        ])
    }
}

/// Accumulates sampled packet lifecycles during a run.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    spec: TraceSpec,
    packets: Vec<PacketTrace>,
    index: std::collections::BTreeMap<(u32, u64), usize>,
    sampled_seen: u64,
    truncated: bool,
}

impl TraceRecorder {
    /// Creates a recorder for the given sampling spec.
    pub fn new(spec: TraceSpec) -> Self {
        TraceRecorder {
            spec,
            packets: Vec::new(),
            index: std::collections::BTreeMap::new(),
            sampled_seen: 0,
            truncated: false,
        }
    }

    /// Whether `(nic, seq)` is in the sampled set (pure; callers use
    /// this to skip recording work for unsampled packets).
    pub fn wants(&self, nic: u32, seq: u64) -> bool {
        self.spec.sampled(u64::from(nic), seq)
    }

    /// Begins a sampled packet's record at wire arrival. Returns false
    /// (and records nothing) once `max_packets` is reached.
    pub fn begin(&mut self, nic: u32, seq: u64, gen_ps: u64) -> bool {
        self.sampled_seen += 1;
        if self.packets.len() >= self.spec.max_packets {
            self.truncated = true;
            return false;
        }
        let idx = self.packets.len();
        self.packets.push(PacketTrace::new(nic, seq, gen_ps));
        self.index.insert((nic, seq), idx);
        true
    }

    fn get(&mut self, nic: u32, seq: u64) -> Option<&mut PacketTrace> {
        let idx = *self.index.get(&(nic, seq))?;
        Some(&mut self.packets[idx])
    }

    /// Records DMA completion into RX queue `queue` at `arrival_ps`.
    pub fn on_delivered(&mut self, nic: u32, seq: u64, queue: u32, arrival_ps: u64) {
        if let Some(p) = self.get(nic, seq) {
            p.queue = Some(queue);
            p.arrival_ps = Some(arrival_ps);
        }
    }

    /// Records the PMD poll picking the packet up on `core`.
    pub fn on_poll(&mut self, nic: u32, seq: u64, core: u32, poll_ps: u64) {
        if let Some(p) = self.get(nic, seq) {
            p.core = Some(core);
            p.poll_ps = Some(poll_ps);
        }
    }

    /// Appends one element processing span.
    pub fn on_span(&mut self, nic: u32, seq: u64, element: String, start_ps: u64, end_ps: u64) {
        if let Some(p) = self.get(nic, seq) {
            p.spans.push(Span {
                element,
                start_ps,
                end_ps,
            });
        }
    }

    /// Records the TX-ring enqueue.
    pub fn on_tx_enqueue(&mut self, nic: u32, seq: u64, at_ps: u64) {
        if let Some(p) = self.get(nic, seq) {
            p.tx_enqueue_ps = Some(at_ps);
        }
    }

    /// Seals the packet's fate (`"tx"` or a drop-cause string) at `at_ps`.
    pub fn on_fate(&mut self, nic: u32, seq: u64, at_ps: u64, fate: &'static str) {
        if let Some(p) = self.get(nic, seq) {
            p.done_ps = Some(at_ps);
            p.fate = Some(fate);
        }
    }

    /// Finishes the trace: packets sorted by `(nic, seq)`.
    pub fn finish(self) -> TraceReport {
        let mut packets = self.packets;
        packets.sort_by_key(|p| (p.nic, p.seq));
        TraceReport {
            spec: self.spec,
            sampled_seen: self.sampled_seen,
            truncated: self.truncated,
            packets,
        }
    }
}

/// The finished lifecycle trace of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// The sampling spec the trace was recorded under.
    pub spec: TraceSpec,
    /// Sampled packets observed (recorded + truncated-away).
    pub sampled_seen: u64,
    /// True when `max_packets` cut the record short.
    pub truncated: bool,
    /// Recorded lifecycles, sorted by `(nic, seq)`.
    pub packets: Vec<PacketTrace>,
}

impl TraceReport {
    /// The `trace` section of the run-report JSON. Fixed key order;
    /// every packet emits every key (null for unreached stages).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::U64(self.spec.seed)),
            ("rate", Json::U64(self.spec.rate)),
            ("head", Json::U64(self.spec.head)),
            ("max_packets", Json::U64(self.spec.max_packets as u64)),
            ("sampled", Json::U64(self.sampled_seen)),
            ("recorded", Json::U64(self.packets.len() as u64)),
            ("truncated", Json::Bool(self.truncated)),
            (
                "packets",
                Json::Arr(self.packets.iter().map(|p| p.to_json()).collect()),
            ),
        ])
    }
}

/// Renders one or more finished traces as a Chrome `trace_event` JSON
/// document (the `--trace <path>` output): one process per run, one
/// thread per core, `X` complete events for RX-ring residency / element
/// spans / TX-ring residency, and `i` instant events for drops. Open it
/// in Perfetto (ui.perfetto.dev) or `chrome://tracing`.
pub fn chrome_trace(runs: &[(&str, &TraceReport)]) -> Json {
    let us = |ps: u64| ps as f64 / 1e6;
    let mut events = Vec::new();
    for (pid, (label, _)) in runs.iter().enumerate() {
        events.push(Json::obj(vec![
            ("ph", Json::Str("M".into())),
            ("pid", Json::U64(pid as u64)),
            ("name", Json::Str("process_name".into())),
            (
                "args",
                Json::obj(vec![("name", Json::Str((*label).into()))]),
            ),
        ]));
    }
    for (pid, (_, report)) in runs.iter().enumerate() {
        for p in &report.packets {
            let tid = u64::from(p.core.unwrap_or(0));
            let name = format!("nic{} seq{}", p.nic, p.seq);
            let complete = |evs: &mut Vec<Json>, cat: &str, what: &str, start: u64, end: u64| {
                evs.push(Json::obj(vec![
                    ("ph", Json::Str("X".into())),
                    ("pid", Json::U64(pid as u64)),
                    ("tid", Json::U64(tid)),
                    ("cat", Json::Str(cat.into())),
                    ("name", Json::Str(what.into())),
                    ("ts", Json::F64(us(start))),
                    ("dur", Json::F64(us(end.saturating_sub(start)))),
                    ("args", Json::obj(vec![("packet", Json::Str(name.clone()))])),
                ]));
            };
            if let (Some(arrival), Some(poll)) = (p.arrival_ps, p.poll_ps) {
                complete(&mut events, "rx", &format!("{name} rx-ring"), arrival, poll);
            }
            for s in &p.spans {
                complete(
                    &mut events,
                    "element",
                    &format!("{name} {}", s.element),
                    s.start_ps,
                    s.end_ps,
                );
            }
            if let (Some(enq), Some(done), Some("tx")) = (p.tx_enqueue_ps, p.done_ps, p.fate) {
                complete(&mut events, "tx", &format!("{name} tx-ring"), enq, done);
            }
            if let (Some(done), Some(fate)) = (p.done_ps, p.fate) {
                if fate != "tx" {
                    events.push(Json::obj(vec![
                        ("ph", Json::Str("i".into())),
                        ("pid", Json::U64(pid as u64)),
                        ("tid", Json::U64(tid)),
                        ("cat", Json::Str("drop".into())),
                        ("name", Json::Str(format!("{name} drop:{fate}"))),
                        ("ts", Json::F64(us(done))),
                        ("s", Json::Str("t".into())),
                    ]));
                }
            }
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_pure_and_head_biased() {
        let spec = TraceSpec {
            seed: 7,
            ..TraceSpec::default()
        };
        // Head packets always sampled.
        assert!((0..spec.head).all(|s| spec.sampled(0, s)));
        // Pure: repeated queries agree.
        let a: Vec<bool> = (0..4096).map(|s| spec.sampled(1, s)).collect();
        let b: Vec<bool> = (0..4096).map(|s| spec.sampled(1, s)).collect();
        assert_eq!(a, b);
        // Roughly 1/64 of the tail hits.
        let hits = (spec.head..4096).filter(|&s| spec.sampled(1, s)).count();
        assert!((20..=110).contains(&hits), "got {hits} hits at 1/64");
        // Different streams sample different sets.
        let c: Vec<bool> = (0..4096).map(|s| spec.sampled(2, s)).collect();
        assert_ne!(a, c);
        // rate = 0 means head-only.
        let head_only = TraceSpec { rate: 0, ..spec };
        assert!((head_only.head..4096).all(|s| !head_only.sampled(0, s)));
    }

    #[test]
    fn lifecycle_round_trip() {
        let mut r = TraceRecorder::new(TraceSpec::default());
        assert!(r.wants(0, 3));
        assert!(r.begin(0, 3, 100));
        r.on_delivered(0, 3, 1, 250);
        r.on_poll(0, 3, 1, 400);
        r.on_span(0, 3, "Classifier".into(), 400, 500);
        r.on_span(0, 3, "Null".into(), 500, 520);
        r.on_tx_enqueue(0, 3, 560);
        r.on_fate(0, 3, 900, "tx");
        // A wire-dropped packet: begun, immediately fated.
        assert!(r.begin(0, 5, 130));
        r.on_fate(0, 5, 130, "fcs");
        let t = r.finish();
        assert_eq!(t.packets.len(), 2);
        let p = &t.packets[0];
        assert_eq!((p.nic, p.seq), (0, 3));
        assert_eq!(p.queue, Some(1));
        assert_eq!(p.spans.len(), 2);
        assert_eq!(p.fate, Some("tx"));
        assert_eq!(t.packets[1].fate, Some("fcs"));
        assert_eq!(t.packets[1].arrival_ps, None);
        assert!(!t.truncated);
        assert_eq!(t.sampled_seen, 2);
    }

    #[test]
    fn max_packets_truncates() {
        let mut r = TraceRecorder::new(TraceSpec {
            max_packets: 1,
            ..TraceSpec::default()
        });
        assert!(r.begin(0, 0, 10));
        assert!(!r.begin(0, 1, 20));
        let t = r.finish();
        assert!(t.truncated);
        assert_eq!(t.sampled_seen, 2);
        assert_eq!(t.packets.len(), 1);
    }

    #[test]
    fn packets_sorted_by_nic_then_seq() {
        let mut r = TraceRecorder::new(TraceSpec::default());
        r.begin(1, 0, 30);
        r.begin(0, 2, 20);
        r.begin(0, 1, 10);
        let t = r.finish();
        let order: Vec<(u32, u64)> = t.packets.iter().map(|p| (p.nic, p.seq)).collect();
        assert_eq!(order, vec![(0, 1), (0, 2), (1, 0)]);
    }

    #[test]
    fn json_emits_every_key_even_when_null() {
        let mut r = TraceRecorder::new(TraceSpec::default());
        r.begin(0, 0, 10);
        let j = r.finish().to_json();
        let packets = match j.get("packets") {
            Some(Json::Arr(ps)) => ps,
            other => panic!("bad packets: {other:?}"),
        };
        for key in [
            "nic",
            "queue",
            "core",
            "seq",
            "gen_ps",
            "arrival_ps",
            "poll_ps",
            "spans",
            "tx_enqueue_ps",
            "done_ps",
            "fate",
        ] {
            assert!(packets[0].get(key).is_some(), "missing key {key}");
        }
        assert_eq!(packets[0].get("fate"), Some(&Json::Null));
    }

    #[test]
    fn chrome_trace_renders_spans_and_drops() {
        let mut r = TraceRecorder::new(TraceSpec::default());
        r.begin(0, 0, 0);
        r.on_delivered(0, 0, 0, 1_000_000);
        r.on_poll(0, 0, 2, 2_000_000);
        r.on_span(0, 0, "Null".into(), 2_000_000, 2_500_000);
        r.on_tx_enqueue(0, 0, 2_600_000);
        r.on_fate(0, 0, 3_000_000, "tx");
        r.begin(0, 1, 500_000);
        r.on_fate(0, 1, 500_000, "link_down");
        let t = r.finish();
        let doc = chrome_trace(&[("run-a", &t)]);
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(e)) => e,
            other => panic!("bad traceEvents: {other:?}"),
        };
        // Metadata + rx-ring + element + tx-ring + drop instant.
        assert_eq!(events.len(), 5);
        let phases: Vec<&Json> = events.iter().filter_map(|e| e.get("ph")).collect();
        assert_eq!(
            phases,
            [
                &Json::Str("M".into()),
                &Json::Str("X".into()),
                &Json::Str("X".into()),
                &Json::Str("X".into()),
                &Json::Str("i".into()),
            ]
        );
        // Timestamps are µs: the rx-ring span starts at 1 µs.
        assert_eq!(events[1].get("ts"), Some(&Json::F64(1.0)));
    }
}
