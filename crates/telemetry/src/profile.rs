//! Per-element profile records and a `perf report`-style renderer.
//!
//! The simulator's attribution layer (pm-mem) tags every charged cost and
//! cache event with the executing element or pipeline stage; this module
//! holds the framework-agnostic result — one [`ProfileRecord`] per scope —
//! and renders it the way `perf report` would: rows sorted by time share,
//! heaviest first.

use crate::json::Json;
use crate::table::Table;

/// Everything attributed to one element or pipeline stage over the
/// measured window of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileRecord {
    /// Element name (e.g. `LookupIPRoute`) or synthetic stage
    /// (`rx/pmd`, `tx`, `mempool`, `metadata`, `scheduler`).
    pub name: String,
    /// Core-domain cycles charged to this scope.
    pub cycles: f64,
    /// Uncore/memory stall time charged to this scope (ns).
    pub stall_ns: f64,
    /// Retired instructions charged to this scope.
    pub instructions: u64,
    /// Demand loads issued while this scope was executing.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Loads that missed L1D (= loads reaching L2).
    pub l2_loads: u64,
    /// Loads that reached the LLC (`perf`'s `LLC-loads`).
    pub llc_loads: u64,
    /// Loads that missed the LLC (`perf`'s `LLC-load-misses`).
    pub llc_load_misses: u64,
    /// Stores that reached the LLC.
    pub llc_stores: u64,
    /// DTLB misses.
    pub dtlb_misses: u64,
    /// Packets handled by this scope (hops for elements; received/sent
    /// packets for the rx/tx stages).
    pub packets: u64,
    /// Batch-size histogram as sorted `(batch size, bursts)` pairs.
    /// Populated only for the stage that batches (rx/pmd).
    pub batches: Vec<(u64, u64)>,
}

impl ProfileRecord {
    /// Wall time attributed to this scope at core frequency `freq_ghz`.
    pub fn time_ns(&self, freq_ghz: f64) -> f64 {
        self.cycles / freq_ghz + self.stall_ns
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("cycles", Json::F64(self.cycles)),
            ("stall_ns", Json::F64(self.stall_ns)),
            ("instructions", Json::U64(self.instructions)),
            ("loads", Json::U64(self.loads)),
            ("stores", Json::U64(self.stores)),
            ("l2_loads", Json::U64(self.l2_loads)),
            ("llc_loads", Json::U64(self.llc_loads)),
            ("llc_load_misses", Json::U64(self.llc_load_misses)),
            ("llc_stores", Json::U64(self.llc_stores)),
            ("dtlb_misses", Json::U64(self.dtlb_misses)),
            ("packets", Json::U64(self.packets)),
            (
                "batches",
                Json::Arr(
                    self.batches
                        .iter()
                        .map(|&(size, n)| Json::Arr(vec![Json::U64(size), Json::U64(n)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A full per-element profile for one run: the simulator's answer to
/// `perf report`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Core frequency the run executed at (GHz) — needed to combine
    /// core-domain cycles and uncore nanoseconds into one time share.
    pub freq_ghz: f64,
    /// One record per scope, in attribution-registration order (built-in
    /// stages first, then elements in graph order).
    pub records: Vec<ProfileRecord>,
}

impl ProfileReport {
    /// Total attributed wall time (ns).
    pub fn total_time_ns(&self) -> f64 {
        self.records.iter().map(|r| r.time_ns(self.freq_ghz)).sum()
    }

    /// Records sorted for display: time share descending, name ascending
    /// as the tiebreak (deterministic).
    pub fn sorted_records(&self) -> Vec<&ProfileRecord> {
        let mut v: Vec<&ProfileRecord> = self.records.iter().collect();
        v.sort_by(|a, b| {
            b.time_ns(self.freq_ghz)
                .partial_cmp(&a.time_ns(self.freq_ghz))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        v
    }

    /// Renders the `perf report`-style table: one row per scope, heaviest
    /// first, with overhead percentage, cycles, memory stall, the LLC
    /// load/miss pair Table 1 is built on, and per-packet cycles.
    pub fn to_table(&self) -> Table {
        let total = self.total_time_ns();
        let mut t = Table::new(vec![
            "overhead",
            "scope",
            "cycles",
            "stall (ns)",
            "instrs",
            "llc-loads",
            "llc-misses",
            "dtlb-miss",
            "packets",
            "cyc/pkt",
        ]);
        for r in self.sorted_records() {
            let share = if total > 0.0 {
                100.0 * r.time_ns(self.freq_ghz) / total
            } else {
                0.0
            };
            let cyc_pkt = if r.packets > 0 {
                r.cycles / r.packets as f64
            } else {
                0.0
            };
            t.row(vec![
                format!("{share:6.2}%"),
                r.name.clone(),
                format!("{:.0}", r.cycles),
                format!("{:.0}", r.stall_ns),
                r.instructions.to_string(),
                r.llc_loads.to_string(),
                r.llc_load_misses.to_string(),
                r.dtlb_misses.to_string(),
                r.packets.to_string(),
                format!("{cyc_pkt:.1}"),
            ]);
        }
        t
    }

    /// Serializes to a JSON object (records in sorted display order, so
    /// the artifact reads like the table).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("freq_ghz", Json::F64(self.freq_ghz)),
            ("total_time_ns", Json::F64(self.total_time_ns())),
            (
                "records",
                Json::Arr(self.sorted_records().iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, cycles: f64, stall_ns: f64, packets: u64) -> ProfileRecord {
        ProfileRecord {
            name: name.into(),
            cycles,
            stall_ns,
            instructions: (cycles * 2.0) as u64,
            packets,
            ..ProfileRecord::default()
        }
    }

    fn report() -> ProfileReport {
        ProfileReport {
            freq_ghz: 2.0,
            records: vec![
                rec("light", 100.0, 0.0, 10),
                rec("heavy", 1000.0, 500.0, 10),
                rec("rx/pmd", 400.0, 100.0, 20),
            ],
        }
    }

    #[test]
    fn time_combines_domains() {
        // 1000 cycles @ 2 GHz = 500 ns, + 500 ns stall.
        assert_eq!(rec("x", 1000.0, 500.0, 1).time_ns(2.0), 1000.0);
    }

    #[test]
    fn table_sorted_heaviest_first() {
        let r = report();
        let names: Vec<&str> = r.sorted_records().iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, ["heavy", "rx/pmd", "light"]);
        let table = r.to_table().to_string();
        let heavy = table.find("heavy").unwrap();
        let light = table.find("light").unwrap();
        assert!(heavy < light, "rows must be sorted by time share:\n{table}");
    }

    #[test]
    fn overhead_sums_to_100() {
        let r = report();
        let total = r.total_time_ns();
        let sum: f64 = r
            .records
            .iter()
            .map(|x| 100.0 * x.time_ns(r.freq_ghz) / total)
            .sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn json_shape() {
        let j = report().to_json();
        assert_eq!(j.get("freq_ghz").unwrap().as_f64(), Some(2.0));
        let records = match j.get("records").unwrap() {
            crate::json::Json::Arr(v) => v,
            other => panic!("records not an array: {other:?}"),
        };
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].get("name").unwrap(), &Json::Str("heavy".into()));
        // Byte-identical on re-serialization.
        assert_eq!(j.to_compact(), report().to_json().to_compact());
    }
}
