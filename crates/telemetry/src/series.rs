//! Windowed sampling of counters over simulated time.
//!
//! The paper samples `perf` counters every 100 ms and reports the average
//! over the run (Table 1, Figure 9). [`WindowSampler`] reproduces that
//! methodology: the simulation reports counter totals at time checkpoints
//! and the sampler converts them into fixed-width per-window deltas.

/// One per-window sample: `(window_end_ns, value_delta)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// End of the window, in simulated nanoseconds.
    pub end_ns: f64,
    /// Counter delta observed in this window.
    pub delta: u64,
}

/// Converts cumulative counter observations into fixed-width window deltas.
///
/// # Examples
///
/// ```
/// use pm_telemetry::WindowSampler;
///
/// // 100 ms windows (in ns).
/// let mut s = WindowSampler::new(100_000_000.0);
/// s.observe(50_000_000.0, 10);   // mid-window: no sample yet
/// s.observe(100_000_000.0, 40);  // window closes: delta = 40
/// s.observe(250_000_000.0, 100); // crosses another boundary
/// let windows = s.finish(250_000_000.0, 100);
/// assert_eq!(windows[0].delta, 40);
/// ```
#[derive(Debug, Clone)]
pub struct WindowSampler {
    window_ns: f64,
    next_boundary: f64,
    last_value: u64,
    samples: Vec<Sample>,
}

impl WindowSampler {
    /// Creates a sampler with the given window width in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is not strictly positive.
    pub fn new(window_ns: f64) -> Self {
        assert!(window_ns > 0.0, "window must be positive");
        WindowSampler {
            window_ns,
            next_boundary: window_ns,
            last_value: 0,
            samples: Vec::new(),
        }
    }

    /// Reports that the cumulative counter reads `value` at time `now_ns`.
    ///
    /// Closes every window boundary passed since the previous observation,
    /// attributing the delta to the window in which it was observed.
    pub fn observe(&mut self, now_ns: f64, value: u64) {
        while now_ns >= self.next_boundary {
            self.samples.push(Sample {
                end_ns: self.next_boundary,
                delta: value.saturating_sub(self.last_value),
            });
            self.last_value = value;
            self.next_boundary += self.window_ns;
        }
    }

    /// Closes any partial final window and returns all samples.
    pub fn finish(mut self, now_ns: f64, value: u64) -> Vec<Sample> {
        self.observe(now_ns, value);
        let tail = value.saturating_sub(self.last_value);
        if tail > 0 {
            self.samples.push(Sample {
                end_ns: now_ns,
                delta: tail,
            });
        }
        self.samples
    }

    /// The window width, in nanoseconds.
    pub fn window_ns(&self) -> f64 {
        self.window_ns
    }

    /// Mean per-window delta over complete windows, or `None` if no window
    /// has closed yet.
    pub fn mean_delta(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(
                self.samples.iter().map(|s| s.delta as f64).sum::<f64>()
                    / self.samples.len() as f64,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_per_window() {
        let mut s = WindowSampler::new(100.0);
        s.observe(100.0, 10);
        s.observe(200.0, 30);
        s.observe(300.0, 60);
        assert_eq!(
            s.samples.iter().map(|s| s.delta).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn skipped_windows_attribute_to_first_closed() {
        let mut s = WindowSampler::new(100.0);
        s.observe(250.0, 50); // crosses boundaries at 100 and 200
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.samples[0].delta, 50);
        assert_eq!(s.samples[1].delta, 0);
    }

    #[test]
    fn finish_includes_tail() {
        let mut s = WindowSampler::new(100.0);
        s.observe(100.0, 7);
        let all = s.finish(150.0, 12);
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].delta, 5);
        assert_eq!(all[1].end_ns, 150.0);
    }

    #[test]
    fn mean_delta() {
        let mut s = WindowSampler::new(10.0);
        s.observe(10.0, 4);
        s.observe(20.0, 10);
        assert_eq!(s.mean_delta(), Some(5.0));
    }

    #[test]
    fn no_windows_no_mean() {
        let s = WindowSampler::new(10.0);
        assert_eq!(s.mean_delta(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = WindowSampler::new(0.0);
    }

    #[test]
    fn observation_exactly_on_boundary_closes_that_window() {
        let mut s = WindowSampler::new(100.0);
        s.observe(100.0, 7); // exactly on the first boundary
        assert_eq!(s.samples.len(), 1);
        assert_eq!(
            s.samples[0],
            Sample {
                end_ns: 100.0,
                delta: 7
            }
        );
        // The next boundary has advanced: a later mid-window observation
        // does not re-close it.
        s.observe(150.0, 9);
        assert_eq!(s.samples.len(), 1);
    }

    #[test]
    fn finish_on_boundary_adds_no_empty_trailing_window() {
        let mut s = WindowSampler::new(100.0);
        s.observe(50.0, 3);
        let all = s.finish(200.0, 10);
        // Windows at 100 and 200 close; no zero-delta tail after.
        assert_eq!(all.len(), 2);
        assert_eq!(
            all[0],
            Sample {
                end_ns: 100.0,
                delta: 10
            }
        );
        assert_eq!(
            all[1],
            Sample {
                end_ns: 200.0,
                delta: 0
            }
        );
    }

    #[test]
    fn finish_past_last_boundary_emits_partial_tail_only_if_nonzero() {
        // A delta spanning the last boundary is attributed to that
        // boundary's window; only a change observed strictly after every
        // closed boundary materializes as a partial tail at `now`.
        let mut s = WindowSampler::new(100.0);
        s.observe(100.0, 4);
        let all = s.finish(260.0, 9);
        assert_eq!(all.len(), 2);
        assert_eq!(
            all[1],
            Sample {
                end_ns: 200.0,
                delta: 5
            }
        );
        // Finish mid-window with a fresh delta: partial tail at `now`.
        let mut s = WindowSampler::new(100.0);
        s.observe(100.0, 4);
        let all = s.finish(150.0, 9);
        assert_eq!(all.len(), 2);
        assert_eq!(
            all[1],
            Sample {
                end_ns: 150.0,
                delta: 5
            }
        );
        // Finish mid-window with no delta: the partial window is omitted.
        let mut s = WindowSampler::new(100.0);
        s.observe(100.0, 4);
        let all = s.finish(150.0, 4);
        assert_eq!(all.len(), 1);
        assert_eq!(all.last().unwrap().end_ns, 100.0);
    }

    #[test]
    fn window_ns_accessor() {
        assert_eq!(WindowSampler::new(250.0).window_ns(), 250.0);
    }
}
