//! The original timestamp-LRU cache model, kept as a differential-testing
//! reference.
//!
//! [`SetAssocCache`](crate::SetAssocCache) used to implement LRU with a
//! per-way `stamps` array and a global `tick` counter; it now uses
//! move-to-front recency order instead (positional LRU). The two are
//! behaviorally identical — same hits, misses, and evictions for any
//! access sequence — and the proptest suite in `tests/` drives both
//! lock-step over arbitrary access/way-range/invalidate/flush sequences
//! to prove it. Keep this model byte-for-byte faithful to the original
//! semantics; it exists so the fast path can never drift silently.
//!
//! The one deliberate difference from the historical code: `flush`
//! resets `tick`, so a flushed cache is indistinguishable from a fresh
//! one (the old code leaked the pre-flush tick value — harmless, since
//! only *relative* stamp order matters, but untidy).

use crate::cache::{CacheParams, FillOutcome};

const EMPTY: u64 = u64::MAX;

/// A set-associative cache with timestamp-based LRU replacement (the
/// reference model; use [`SetAssocCache`](crate::SetAssocCache) in real
/// code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicSetAssocCache {
    assoc: usize,
    set_shift: u32,
    set_mask: u64,
    /// `sets * assoc` tags (line addresses), row-major by set.
    tags: Vec<u64>,
    /// LRU timestamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
}

impl ClassicSetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(p: CacheParams) -> Self {
        let sets = p.sets();
        ClassicSetAssocCache {
            assoc: p.assoc,
            set_shift: p.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            tags: vec![EMPTY; sets * p.assoc],
            stamps: vec![0; sets * p.assoc],
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, addr: u64) -> (u64, usize) {
        let line = addr >> self.set_shift;
        let set = (line & self.set_mask) as usize;
        (line, set)
    }

    /// Accesses the line containing `addr`, allocating over the full
    /// associativity on a miss.
    #[inline]
    pub fn access(&mut self, addr: u64) -> FillOutcome {
        self.access_ways(addr, self.assoc)
    }

    /// Accesses with allocation restricted to the first `ways` ways.
    pub fn access_ways(&mut self, addr: u64, ways: usize) -> FillOutcome {
        self.access_way_range(addr, 0, ways)
    }

    /// Accesses with allocation restricted to ways `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the associativity.
    pub fn access_way_range(&mut self, addr: u64, lo: usize, hi: usize) -> FillOutcome {
        assert!(lo < hi && hi <= self.assoc, "bad way restriction");
        let (line, set) = self.set_of(addr);
        let base = set * self.assoc;
        self.tick += 1;

        // Hit path: scan the whole set.
        for w in 0..self.assoc {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.tick;
                return FillOutcome {
                    hit: true,
                    evicted: None,
                };
            }
        }

        // Miss: pick the LRU way within the allowed range.
        let mut victim = lo;
        let mut oldest = u64::MAX;
        for w in lo..hi {
            let idx = base + w;
            if self.tags[idx] == EMPTY {
                victim = w;
                break;
            }
            if self.stamps[idx] < oldest {
                oldest = self.stamps[idx];
                victim = w;
            }
        }
        let idx = base + victim;
        let evicted = if self.tags[idx] == EMPTY {
            None
        } else {
            Some(self.tags[idx] << self.set_shift)
        };
        self.tags[idx] = line;
        self.stamps[idx] = self.tick;
        FillOutcome {
            hit: false,
            evicted,
        }
    }

    /// Returns true if the line containing `addr` is resident.
    pub fn probe(&self, addr: u64) -> bool {
        let (line, set) = self.set_of(addr);
        let base = set * self.assoc;
        (0..self.assoc).any(|w| self.tags[base + w] == line)
    }

    /// Invalidates the line containing `addr` if present. Returns whether
    /// it was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (line, set) = self.set_of(addr);
        let base = set * self.assoc;
        for w in 0..self.assoc {
            if self.tags[base + w] == line {
                self.tags[base + w] = EMPTY;
                self.stamps[base + w] = 0;
                return true;
            }
        }
        false
    }

    /// Empties the cache, restoring the pristine just-constructed state
    /// (including the tick counter — see the module docs).
    pub fn flush(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = EMPTY);
        self.stamps.iter_mut().for_each(|s| *s = 0);
        self.tick = 0;
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }

    /// The cache's associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClassicSetAssocCache {
        ClassicSetAssocCache::new(CacheParams::new(512, 2, 64))
    }

    #[test]
    fn classic_lru_semantics_hold() {
        let mut c = small();
        c.access(0x0000);
        c.access(0x0100);
        c.access(0x0000);
        let out = c.access(0x0200);
        assert_eq!(out.evicted, Some(0x0100));
    }

    #[test]
    fn flush_restores_pristine_state() {
        let mut c = small();
        for i in 0..37u64 {
            c.access(i * 64);
        }
        c.flush();
        assert_eq!(c, small(), "flushed classic cache must equal a fresh one");
    }
}
