//! Cache & memory-hierarchy simulator and cycle cost model for
//! PacketMill-rs.
//!
//! The PacketMill paper's results are, at bottom, cache-locality results:
//! metadata-management models differ in *which simulated addresses* the
//! driver and the framework touch per packet, and the code optimizations
//! differ in *how many* dispatch/state/pool lines the per-packet path
//! touches. This crate provides the machinery that turns those address
//! streams into latency:
//!
//! * [`cache::SetAssocCache`] — a set-associative LRU cache with optional
//!   way-restricted allocation (used to model Intel DDIO, which confines
//!   DMA fills to a subset of LLC ways).
//! * [`tlb::Tlb`] — DTLB/STLB models (static-graph arena allocation vs.
//!   heap-scattered element state shows up here).
//! * [`hierarchy::MemoryHierarchy`] — per-core L1/L2, shared inclusive
//!   LLC, DMA-write path, and `perf`-style counters (`llc-loads`,
//!   `llc-load-misses`, …).
//! * [`cost::Cost`] — the accumulator that splits work into core-clock
//!   cycles and uncore/wall-clock nanoseconds; dividing only the former
//!   by the core frequency is what yields the paper's frequency curves.
//! * [`address::AddressSpace`] — simulated virtual address-region
//!   allocation, with both arena (contiguous) and scattered (heap-like)
//!   placement.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod address;
pub mod cache;
pub mod classic;
pub mod cost;
pub mod hierarchy;
pub mod profile;
pub mod program;
pub(crate) mod resident;
pub mod tlb;

pub use address::{AddressSpace, Region, ScatterAlloc};
pub use cache::{CacheParams, SetAssocCache};
pub use classic::ClassicSetAssocCache;
pub use cost::{Cost, LatencyModel};
pub use hierarchy::{AccessKind, HierarchyParams, Level, MemCounters, MemoryHierarchy};
pub use profile::{
    ScopeId, ScopeProfile, SCOPE_MEMPOOL, SCOPE_METADATA, SCOPE_RX, SCOPE_SCHEDULER, SCOPE_TX,
};
pub use program::{AccessProgram, ProgramBuilder, StepOp};
pub use tlb::Tlb;

/// Cache-line size used throughout the simulator (bytes).
pub const LINE: u64 = 64;

/// Returns the number of cache lines spanned by `len` bytes at `addr`.
///
/// # Examples
///
/// ```
/// assert_eq!(pm_mem::lines_spanned(0, 64), 1);
/// assert_eq!(pm_mem::lines_spanned(60, 8), 2); // straddles a boundary
/// assert_eq!(pm_mem::lines_spanned(128, 0), 0);
/// ```
pub fn lines_spanned(addr: u64, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = addr / LINE;
    let last = (addr + len - 1) / LINE;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_spanned_cases() {
        assert_eq!(lines_spanned(0, 1), 1);
        assert_eq!(lines_spanned(63, 1), 1);
        assert_eq!(lines_spanned(63, 2), 2);
        assert_eq!(lines_spanned(0, 128), 2);
        assert_eq!(lines_spanned(1, 128), 3);
    }
}
