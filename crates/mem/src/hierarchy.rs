//! The full memory hierarchy: per-core L1D/L2 + shared inclusive LLC with
//! DDIO, per-core TLBs, DRAM, and `perf`-style counters.
//!
//! Counter semantics follow the paper's `perf` events:
//!
//! * `llc-loads` — demand **loads** that miss L2 and reach the LLC;
//! * `llc-load-misses` — the subset that miss the LLC and go to DRAM;
//! * stores are tracked separately (`llc-stores`), matching the fact that
//!   Table 1 counts only load events.
//!
//! DMA writes model DDIO: they allocate directly into a restricted subset
//! of LLC ways without costing core time, invalidating any stale copies
//! in core-private caches.
//!
//! # Core-index invariant
//!
//! Every method that takes a `core` argument charges **that** core's
//! private L1/L2/TLB state: the `core` argument is always the executing
//! core, never a constant. Callers that run work on behalf of core `c`
//! (a PMD polling queue `q`, a dataplane element, mempool cache traffic)
//! must thread `c` all the way down — hardcoding core 0 silently warms
//! the wrong private caches and only shows up as a perf skew, not a
//! functional failure. The multicore battery pins this with a regression
//! test that a queue set up on core 1 leaves core 0's L1 untouched.

use crate::cache::{CacheParams, SetAssocCache};
use crate::cost::{Cost, LatencyModel};
use crate::profile::{Attribution, ScopeId, ScopeProfile};
use crate::program::{AccessProgram, StepOp};
use crate::resident::ResidentFilter;
use crate::tlb::{Tlb, TlbOutcome};
use crate::{lines_spanned, LINE};

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand data load.
    Load,
    /// A store (write-allocate, RFO on miss).
    Store,
}

/// The level that satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// L1 data cache.
    L1,
    /// Unified per-core L2.
    L2,
    /// Shared last-level cache.
    Llc,
    /// Main memory.
    Dram,
}

/// Geometry and latencies of the whole hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyParams {
    /// Number of cores sharing the LLC.
    pub cores: usize,
    /// L1D geometry.
    pub l1: CacheParams,
    /// L2 geometry.
    pub l2: CacheParams,
    /// Shared LLC geometry.
    pub llc: CacheParams,
    /// LLC ways DMA fills may allocate into (DDIO). Must be
    /// `1..=llc.assoc`.
    pub ddio_ways: usize,
    /// Stall model.
    pub lat: LatencyModel,
}

impl HierarchyParams {
    /// Skylake Xeon Gold 6140-like geometry (the paper's DUT):
    /// 32-KiB 8-way L1D, 1-MiB 16-way L2, ~23-MiB 11-way shared LLC
    /// (32768 sets; the real part has 24.75 MiB but a power-of-two set
    /// count keeps the model fast), DDIO limited to 8 ways as in the
    /// paper's `IIO LLC WAYS = 0x7F8` configuration.
    pub fn skylake(cores: usize) -> Self {
        HierarchyParams {
            cores,
            l1: CacheParams::new(32 * 1024, 8, 64),
            l2: CacheParams::new(1024 * 1024, 16, 64),
            llc: CacheParams::new(32768 * 11 * 64, 11, 64),
            // DMA fills take 4 ways (~8.4 MiB — comfortably holds the
            // in-flight buffer stream, so DDIO is not a bottleneck, the
            // paper's §4 configuration goal); demand data keeps 7 ways
            // (~14.7 MiB), which is where Fig. 9's "out of LLC"
            // threshold comes from.
            ddio_ways: 4,
            lat: LatencyModel::default(),
        }
    }
}

/// Aggregate event counts, named after their `perf` equivalents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Demand loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Loads missing L1D.
    pub l1d_load_misses: u64,
    /// Loads reaching the LLC (i.e., missing L2) — `perf`'s `LLC-loads`.
    pub llc_loads: u64,
    /// Loads missing the LLC — `perf`'s `LLC-load-misses`.
    pub llc_load_misses: u64,
    /// Stores reaching the LLC (RFO after L2 miss).
    pub llc_stores: u64,
    /// Stores missing the LLC.
    pub llc_store_misses: u64,
    /// Cache lines written by DMA (DDIO fills).
    pub dma_write_lines: u64,
    /// Cache lines read by DMA (TX path).
    pub dma_read_lines: u64,
    /// DTLB misses (STLB hits + walks).
    pub dtlb_misses: u64,
    /// Full page walks.
    pub page_walks: u64,
    /// Prefetches that had to go to DRAM (DDIO overflow).
    pub prefetch_misses: u64,
}

impl MemCounters {
    /// Difference `self - earlier`, for windowed sampling.
    pub fn delta_since(&self, earlier: &MemCounters) -> MemCounters {
        MemCounters {
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            l1d_load_misses: self.l1d_load_misses - earlier.l1d_load_misses,
            llc_loads: self.llc_loads - earlier.llc_loads,
            llc_load_misses: self.llc_load_misses - earlier.llc_load_misses,
            llc_stores: self.llc_stores - earlier.llc_stores,
            llc_store_misses: self.llc_store_misses - earlier.llc_store_misses,
            dma_write_lines: self.dma_write_lines - earlier.dma_write_lines,
            dma_read_lines: self.dma_read_lines - earlier.dma_read_lines,
            dtlb_misses: self.dtlb_misses - earlier.dtlb_misses,
            page_walks: self.page_walks - earlier.page_walks,
            prefetch_misses: self.prefetch_misses - earlier.prefetch_misses,
        }
    }
}

/// Sentinel for the per-core last-line / last-page memo slots. Never a
/// real line or page identifier.
const NONE64: u64 = u64::MAX;

/// Access-signature cache sizing. Entries are small and copied by value;
/// the table is a per-core scratchpad for the handful of touch-site
/// programs that are hot at any moment (poll word, dispatch loads,
/// element state), not an LRU cache of everything ever armed.
const ARMED_SLOTS: usize = 8;
/// Programs with more steps than this are never memoized (the hot
/// replayable shapes are 1–6 steps; bigger programs still get the
/// batched walk).
const ARMED_MAX_STEPS: usize = 12;
/// Programs with more base registers than this are never memoized.
const ARMED_MAX_BASES: usize = 4;
/// Line-count cap for memoization: larger charge sets rarely stay
/// wholly L1-MRU-resident, so the arming probe would be wasted work.
const ARMED_MAX_LINES: u64 = 12;
/// Distinct-consecutive 4-KiB page groups a memoized walk may span
/// (dispatch programs load a vtable page and a state page; anything
/// wider is not a hot replay shape).
const ARMED_MAX_PAGES: usize = 4;

/// Steady-state fast-forward memo: the full TLB trajectory of one
/// proven replay, lifted to a closed form. Recorded after a successful
/// slow-path replay; applied — skipping the residency probes and the
/// trajectory recomputation entirely — when three equalities prove the
/// recorded fixed point still holds: the DTLB fill generation is
/// unchanged (no membership change, so every page proven resident then
/// is resident now), and the core's `(last_vpage, last_page)` memo pair
/// equals the recorded start state (the trajectory is a pure function of
/// the entry's pages, keys, and that start state, so its outputs are the
/// recorded ones). Any DMA, fault, or cold access that fills a TLB entry
/// or disturbs a covered cache set drops back to the slow path
/// automatically — via the generation bump or the entry's death.
#[derive(Clone, Copy)]
struct FfMemo {
    valid: bool,
    /// [`Tlb::generation`] at record time.
    gen: u64,
    /// The core's last-vpage memo at trajectory start.
    start_vpage: u64,
    /// The TLB's last-page slot at trajectory start.
    start_page: u64,
    /// Trajectory outputs: the memo state a replay from the recorded
    /// start leaves behind.
    end_vpage: u64,
    end_page: u64,
    /// Pages the trajectory promotes via real DTLB touches, in order.
    touched: [u64; ARMED_MAX_PAGES],
    n_touched: u8,
}

impl FfMemo {
    const INVALID: FfMemo = FfMemo {
        valid: false,
        gen: 0,
        start_vpage: 0,
        start_page: 0,
        end_vpage: 0,
        end_page: 0,
        touched: [0; ARMED_MAX_PAGES],
        n_touched: 0,
    };
}

/// A recorded access signature: the full outcome of one program run,
/// valid while the signature's **hit-state class** provably still holds —
/// every line L1-MRU-resident, every page translation a free DTLB hit.
/// Replaying adds the recorded per-step costs and counter deltas,
/// applies the DTLB hits' real recency promotions, and restores the same
/// memo state the walk would have left, bit-for-bit.
///
/// A signature is keyed on `(program id, base-delta class)`, not on the
/// exact bases alone: a run whose bases differ but whose per-step spans
/// cover the same number of lines (`step_lines`) charges exactly the
/// recorded per-step costs and counters, so it can replay — after
/// re-proving residency for the lines the new bases actually touch — and
/// the entry is then re-keyed in place onto the new bases. This is what
/// makes strided ring shapes (WQE slots, TX descriptors) replayable even
/// though their bases advance every invocation.
#[derive(Clone, Copy)]
struct ArmedEntry {
    prog_id: u64,
    bases: [u64; ARMED_MAX_BASES],
    /// The walk's 4-KiB virtual pages, grouped distinct-consecutive in
    /// walk order (page A, A, B, B, A records as A, B, A).
    vpages: [u64; ARMED_MAX_PAGES],
    /// TLB page keys for `vpages` (hugepage-aware).
    keys: [u64; ARMED_MAX_PAGES],
    /// The walk's line addresses in order (duplicates kept). A touch of
    /// one of these lines while the entry is valid is an MRU re-hit that
    /// moves nothing, so it does not invalidate the signature.
    lines: [u64; ARMED_MAX_LINES as usize],
    /// Conflict summary: bit `set & 63` for every L1 set the program's
    /// lines occupy. Any foreign touch or invalidation landing on a
    /// covered set conservatively invalidates the entry.
    mask: u64,
    /// Line the walk leaves in the core's last-line memo.
    last_line: u64,
    /// TLB accesses the walk performs (one per memory-step line).
    tlb_hits: u64,
    loads: u64,
    stores: u64,
    n_steps: u8,
    n_bases: u8,
    n_pages: u8,
    n_lines: u8,
    valid: bool,
    /// The entry's base-delta class: lines spanned per program step (0
    /// for compute/charge steps). A run with different bases replays iff
    /// its per-step spans cover the same counts — then every per-step
    /// cost (count × the all-L1-hit constant, summed in walk order) and
    /// counter delta is bit-identical, because the span count is the only
    /// thing the all-hit outcome depends on. The count already encodes
    /// the offset-within-line class: `lines_spanned(a, len)` depends on
    /// `a` only through `a & 63`.
    step_lines: [u8; ARMED_MAX_STEPS],
    /// Per-step cost deltas in program order (the all-L1-hit constants).
    costs: [Cost; ARMED_MAX_STEPS],
    /// Steady-state fast-forward memo (see [`FfMemo`]).
    ff: FfMemo,
}

/// Per-core table of armed signatures plus the OR of their conflict
/// masks, so the hot touch path pays one AND to know nothing is armed
/// on the set it is about to disturb.
struct ArmedTable {
    entries: Vec<ArmedEntry>,
    /// `entries[i].prog_id` when slot `i` holds a valid entry, else 0
    /// (never a real program id). Lookups scan this compact array —
    /// one or two host cache lines — instead of striding through the
    /// ~half-KiB entries.
    ids: [u64; ARMED_SLOTS],
    /// `entries[i].mask` when slot `i` holds a valid entry, else 0.
    /// The invalidation hooks scan this one-cache-line mirror and only
    /// dereference an entry (for the own-line exemption) when its mask
    /// actually overlaps the disturbed set — the entries themselves
    /// grew past half a KiB with the delta-class and fast-forward
    /// payloads, so striding through them on every covered touch would
    /// put the whole table in the host's cache shadow.
    masks: [u64; ARMED_SLOTS],
    mask: u64,
    next: usize,
}

impl ArmedTable {
    fn new() -> Self {
        ArmedTable {
            entries: Vec::with_capacity(ARMED_SLOTS),
            ids: [0; ARMED_SLOTS],
            masks: [0; ARMED_SLOTS],
            mask: 0,
            next: 0,
        }
    }

    /// Invalidation hook: a line was invalidated (or flushed) on the L1
    /// set summarized by `bit`. Conservatively kills every armed entry
    /// whose line set overlaps it. Returns the number of entries killed
    /// (the hierarchy's `sig_kills` diagnostic — the PMD's steady-state
    /// witness counts consecutive kill-free batches with it).
    #[inline]
    fn on_conflict(&mut self, bit: u64) -> u64 {
        if self.mask & bit == 0 {
            return 0;
        }
        let mut kills = 0;
        self.mask = 0;
        for i in 0..self.entries.len() {
            let m = self.masks[i];
            if m & bit != 0 {
                self.entries[i].valid = false;
                self.ids[i] = 0;
                self.masks[i] = 0;
                kills += 1;
            } else {
                self.mask |= m;
            }
        }
        kills
    }

    /// Demand-touch hook: `line` is being accessed on the L1 set
    /// summarized by `bit`. Kills overlapping entries **except** when the
    /// touched line is one of the entry's own lines: while the entry is
    /// valid every one of its lines is the MRU of its (distinct) set, so
    /// re-touching it is a slot-0 hit that displaces nothing — without
    /// this exemption, an element reading its own state each packet
    /// would kill its dispatch signature every time.
    #[inline]
    fn on_touch(&mut self, bit: u64, line: u64) -> u64 {
        if self.mask & bit == 0 {
            return 0;
        }
        let mut kills = 0;
        self.mask = 0;
        for i in 0..self.entries.len() {
            let m = self.masks[i];
            if m & bit != 0 {
                let e = &mut self.entries[i];
                if !e.lines[..usize::from(e.n_lines)].contains(&line) {
                    e.valid = false;
                    self.ids[i] = 0;
                    self.masks[i] = 0;
                    kills += 1;
                    continue;
                }
            }
            self.mask |= m;
        }
        kills
    }

    /// Looks up the valid signature slot for a program id (entries are
    /// half a KiB — callers borrow in place rather than copy). At most
    /// one slot ever holds a given program (`install` replaces
    /// same-program slots), so the id scan has a single candidate. The
    /// caller decides between exact-base replay and delta-class replay
    /// by comparing the entry's bases itself.
    #[inline]
    fn slot_for(&self, prog_id: u64) -> Option<usize> {
        if self.mask == 0 {
            return None;
        }
        self.ids.iter().position(|&id| id == prog_id)
    }

    /// Test hook: the slot holding a valid signature for exactly
    /// (program, bases), if any.
    #[cfg(test)]
    fn find_idx(&self, prog_id: u64, n_bases: u8, bases: &[u64]) -> Option<usize> {
        let i = self.slot_for(prog_id)?;
        let e = &self.entries[i];
        let n = usize::from(n_bases);
        (e.valid && e.n_bases == n_bases && e.bases[..n] == bases[..n]).then_some(i)
    }

    /// Installs `e`, replacing any entry for the same program (stale
    /// bases) or an invalid slot, else round-robin.
    fn install(&mut self, e: ArmedEntry) {
        let slot = self
            .entries
            .iter()
            .position(|x| x.prog_id == e.prog_id)
            .or_else(|| self.entries.iter().position(|x| !x.valid));
        let id = e.prog_id;
        let m = e.mask;
        let i = match slot {
            Some(i) => {
                self.entries[i] = e;
                i
            }
            None if self.entries.len() < ARMED_SLOTS => {
                self.entries.push(e);
                self.entries.len() - 1
            }
            None => {
                let i = self.next;
                self.entries[i] = e;
                self.next = (self.next + 1) % ARMED_SLOTS;
                i
            }
        };
        self.ids[i] = id;
        self.masks[i] = m;
        self.mask = self.masks.iter().fold(0, |a, &x| a | x);
    }

    fn clear(&mut self) -> u64 {
        let mut kills = 0;
        for e in &mut self.entries {
            if e.valid {
                e.valid = false;
                kills += 1;
            }
        }
        self.ids = [0; ARMED_SLOTS];
        self.masks = [0; ARMED_SLOTS];
        self.mask = 0;
        kills
    }
}

struct CoreCaches {
    l1: SetAssocCache,
    l2: SetAssocCache,
    tlb: Tlb,
    /// Line address of this core's most recent demand touch. Invariant:
    /// when set, that line is L1-resident and the MRU of its set, and its
    /// page is the TLB's last-page slot — so a repeat access collapses to
    /// counter bumps plus the L1-hit cost. Cleared whenever the line is
    /// invalidated out from under the core (DMA write, LLC
    /// back-invalidation).
    last_line: u64,
    /// 4-KiB virtual page number of this core's most recent translation
    /// (pre-`page_key`, so a hugepage remapping must clear it).
    last_vpage: u64,
}

/// The simulated memory hierarchy shared by all cores of the DUT.
pub struct MemoryHierarchy {
    cores: Vec<CoreCaches>,
    llc: SetAssocCache,
    llc_assoc: usize,
    ddio_ways: usize,
    lat: LatencyModel,
    counters: MemCounters,
    /// Sorted, disjoint `(start, end)` ranges backed by 2-MiB hugepages
    /// (DPDK mempools, rings, and DMA memory — as in a real deployment).
    huge_ranges: Vec<(u64, u64)>,
    /// Most recent hugepage range matched by `page_key`. Ranges are only
    /// ever added, so a previously matched range stays valid; the memo
    /// skips the binary search for the common case of successive
    /// translations inside one DPDK region.
    last_huge: (u64, u64),
    /// Host-side direct-mapped memo of `page_key` results, indexed by
    /// `vpage & (len - 1)`: (vpage, key) pairs, invalidated wholesale
    /// when a hugepage range is added. Purely a lookup cache — the
    /// mapping itself is deterministic per hugepage configuration.
    key_memo: Box<[(u64, u64)]>,
    /// Per-scope attribution table; `None` unless profiling is enabled.
    attribution: Option<Attribution>,
    /// Over-approximation of all lines held by any core's L1/L2 — lets
    /// the DMA/back-invalidation paths skip per-core scans for lines no
    /// core ever touched. See [`crate::resident`].
    resident: ResidentFilter,
    /// Per-core access-signature tables (memoized program outcomes).
    armed: Vec<ArmedTable>,
    /// Armed signatures killed by any invalidation path since
    /// construction (host-side diagnostic, never simulated state). The
    /// PMD watches this to detect the steady-state fixed point: K
    /// consecutive batches with no kills means the working set's
    /// signatures are stable and fast-forward replays dominate.
    sig_kills: u64,
    /// Successful signature replays (exact, delta-class, or
    /// fast-forward).
    sig_replays: u64,
    /// The subset of `sig_replays` resolved by the steady-state
    /// fast-forward memo — closed-form, no residency probes, no
    /// trajectory recomputation.
    sig_ff: u64,
    /// False in reference mode: every program resolves through the
    /// original per-call walk, invalidation scans always run, nothing is
    /// memoized. The lock-step oracle for the batched resolver, kept the
    /// way `ClassicSetAssocCache` is.
    fast: bool,
}

impl std::fmt::Debug for MemoryHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryHierarchy")
            .field("cores", &self.cores.len())
            .field("ddio_ways", &self.ddio_ways)
            .field("counters", &self.counters)
            .finish()
    }
}

impl MemoryHierarchy {
    /// Builds the hierarchy from parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `ddio_ways` is out of range.
    pub fn new(p: &HierarchyParams) -> Self {
        assert!(p.cores > 0, "need at least one core");
        assert!(
            p.ddio_ways >= 1 && p.ddio_ways < p.llc.assoc,
            "ddio_ways out of range (cores need at least one way)"
        );
        MemoryHierarchy {
            cores: (0..p.cores)
                .map(|_| CoreCaches {
                    l1: SetAssocCache::new(p.l1),
                    l2: SetAssocCache::new(p.l2),
                    tlb: Tlb::skylake(),
                    last_line: NONE64,
                    last_vpage: NONE64,
                })
                .collect(),
            llc: SetAssocCache::new(p.llc),
            llc_assoc: p.llc.assoc,
            ddio_ways: p.ddio_ways,
            lat: p.lat,
            counters: MemCounters::default(),
            huge_ranges: Vec::new(),
            last_huge: (NONE64, 0),
            key_memo: vec![(NONE64, 0); 4096].into_boxed_slice(),
            attribution: None,
            resident: ResidentFilter::new(),
            armed: (0..p.cores).map(|_| ArmedTable::new()).collect(),
            sig_kills: 0,
            sig_replays: 0,
            sig_ff: 0,
            fast: true,
        }
    }

    /// Builds a hierarchy that resolves every access program through the
    /// original per-call sequence (`access_range`/`prefetch` per step),
    /// with no signature memoization and no invalidation-scan elision.
    /// Semantically identical to the default fast resolver — the
    /// lock-step property tests drive both and assert exactly that.
    pub fn with_reference_walk(p: &HierarchyParams) -> Self {
        let mut m = Self::new(p);
        m.fast = false;
        m
    }

    /// Marks a region as 2-MiB-hugepage-backed for TLB purposes (DPDK
    /// allocates its mempools, rings, and DMA memory from hugepages).
    pub fn mark_hugepages(&mut self, region: crate::Region) {
        self.huge_ranges
            .push((region.base, region.base + region.size));
        self.huge_ranges.sort_unstable();
        // The vpage → page-key mapping just changed; drop the memos and
        // every armed signature (their recorded page keys are stale).
        for c in &mut self.cores {
            c.last_vpage = NONE64;
        }
        let mut kills = 0;
        for t in &mut self.armed {
            kills += t.clear();
        }
        self.sig_kills += kills;
        self.key_memo.fill((NONE64, 0));
    }

    #[inline]
    fn page_key(&mut self, addr: u64) -> u64 {
        let vpage = addr >> 12;
        let slot = (vpage & (self.key_memo.len() as u64 - 1)) as usize;
        let (v, k) = self.key_memo[slot];
        if v == vpage {
            return k;
        }
        let k = self.page_key_slow(addr);
        self.key_memo[slot] = (vpage, k);
        k
    }

    #[cold]
    fn page_key_slow(&mut self, addr: u64) -> u64 {
        // The huge-page marker bit must stay clear of any real 4-KiB key:
        // simulated addresses come from the bump allocator (base 0x1_0000,
        // spans of at most tens of MiB), so `addr >> 12` is far below
        // 2^30. Keeping keys under 2^31 lets the TLB's packed tag words
        // hold them (see the tag layout in `pm_mem::cache`).
        debug_assert!(addr < 1 << 40, "simulated address out of range");
        if addr >= self.last_huge.0 && addr < self.last_huge.1 {
            return (addr >> 21) | (1 << 30);
        }
        if self.huge_ranges.is_empty() {
            return addr >> 12;
        }
        let i = self.huge_ranges.partition_point(|&(s, _)| s <= addr);
        if i > 0 && addr < self.huge_ranges[i - 1].1 {
            self.last_huge = self.huge_ranges[i - 1];
            (addr >> 21) | (1 << 30)
        } else {
            addr >> 12
        }
    }

    /// Convenience constructor with Skylake defaults.
    pub fn skylake(cores: usize) -> Self {
        Self::new(&HierarchyParams::skylake(cores))
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The current latency model.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.lat
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> MemCounters {
        self.counters
    }

    /// Performs one data access of `len` bytes at `addr` from `core`.
    ///
    /// Returns the exposed stall cost. Every cache line spanned is
    /// accessed; the TLB is consulted per line (same-page lines hit).
    /// Equivalent to [`Self::access_range`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[inline]
    pub fn access(&mut self, core: usize, addr: u64, len: u64, kind: AccessKind) -> Cost {
        self.access_range(core, addr, len, kind)
    }

    /// Charges a multi-line sequential touch in one batched call: every
    /// spanned line is accessed exactly as [`Self::access_line`] would,
    /// but the page-key lookup and TLB structure are consulted only once
    /// per 4-KiB page (subsequent same-page lines take the free MRU-slot
    /// hit they are guaranteed to be), and the attribution ledger is
    /// updated once per call instead of once per line. Access-for-access
    /// identical to a loop of single-line accesses: same costs, same
    /// counters, same cache and TLB state.
    pub fn access_range(&mut self, core: usize, addr: u64, len: u64, kind: AccessKind) -> Cost {
        let n = lines_spanned(addr, len);
        if n == 0 {
            return Cost::ZERO;
        }
        let before = self.attribution.is_some().then_some(self.counters);
        let mut cost = Cost::ZERO;
        let mut line_addr = addr & !(LINE - 1);
        for _ in 0..n {
            cost += self.access_line_raw(core, line_addr, kind);
            line_addr += LINE;
        }
        if let Some(before) = before {
            let delta = self.counters.delta_since(&before);
            if let Some(attr) = &mut self.attribution {
                attr.add_counters(&delta);
            }
        }
        cost
    }

    /// Accesses a single line. Prefer [`Self::access`] for ranged data.
    pub fn access_line(&mut self, core: usize, addr: u64, kind: AccessKind) -> Cost {
        let before = self.attribution.is_some().then_some(self.counters);
        let cost = self.access_line_raw(core, addr, kind);
        if let Some(before) = before {
            let delta = self.counters.delta_since(&before);
            if let Some(attr) = &mut self.attribution {
                attr.add_counters(&delta);
            }
        }
        cost
    }

    /// One line access without the attribution snapshot (callers batch
    /// it). The last-line filter short-circuits the dominant pattern —
    /// re-touching the line the core touched last — to two counter bumps
    /// and the L1-hit cost; see the invariant on [`CoreCaches::last_line`].
    #[inline]
    fn access_line_raw(&mut self, core: usize, addr: u64, kind: AccessKind) -> Cost {
        let line = addr & !(LINE - 1);
        let c = &mut self.cores[core];
        if c.last_line == line {
            c.tlb.repeat_last();
            let factor = if kind == AccessKind::Load {
                self.counters.loads += 1;
                1.0
            } else {
                self.counters.stores += 1;
                self.lat.store_stall_factor
            };
            return Cost::stall_cycles(self.lat.l1_hit_cy * factor);
        }
        let mut cost = self.translate::<true>(core, addr);
        let (level, stall) = self.touch::<true>(core, addr, kind);
        cost += stall;
        // Bookkeeping only; `level` is also useful to callers via counters.
        let _ = level;
        self.cores[core].last_line = line;
        cost
    }

    /// Returns which level served a hypothetical access (no state change).
    pub fn probe_level(&self, core: usize, addr: u64) -> Level {
        let c = &self.cores[core];
        if c.l1.probe(addr) {
            Level::L1
        } else if c.l2.probe(addr) {
            Level::L2
        } else if self.llc.probe(addr) {
            Level::Llc
        } else {
            Level::Dram
        }
    }

    #[inline]
    fn translate<const COUNT: bool>(&mut self, core: usize, addr: u64) -> Cost {
        // Same 4-KiB vpage as the previous translation ⇒ same page key ⇒
        // a guaranteed free DTLB hit: skip the range search entirely.
        let vpage = addr >> 12;
        if self.cores[core].last_vpage == vpage {
            self.cores[core].tlb.repeat_last();
            return Cost::ZERO;
        }
        self.cores[core].last_vpage = vpage;
        let key = self.page_key(addr);
        match self.cores[core].tlb.translate_page(key) {
            TlbOutcome::Dtlb => Cost::ZERO,
            TlbOutcome::Stlb => {
                if COUNT {
                    self.counters.dtlb_misses += 1;
                }
                Cost::stall_cycles(self.lat.stlb_hit_cy)
            }
            TlbOutcome::Walk => {
                if COUNT {
                    self.counters.dtlb_misses += 1;
                    self.counters.page_walks += 1;
                }
                Cost {
                    instructions: 0,
                    cycles: self.lat.walk_cy,
                    uncore_ns: self.lat.walk_ns,
                }
            }
        }
    }

    #[inline]
    fn touch<const COUNT: bool>(
        &mut self,
        core: usize,
        addr: u64,
        kind: AccessKind,
    ) -> (Level, Cost) {
        let (level, raw) = self.touch_raw::<COUNT>(core, addr, kind);
        if kind == AccessKind::Store {
            // Store buffers hide most of a store miss's latency.
            let f = self.lat.store_stall_factor;
            (
                level,
                Cost {
                    instructions: raw.instructions,
                    cycles: raw.cycles * f,
                    uncore_ns: raw.uncore_ns * f,
                },
            )
        } else {
            (level, raw)
        }
    }

    fn touch_raw<const COUNT: bool>(
        &mut self,
        core: usize,
        addr: u64,
        kind: AccessKind,
    ) -> (Level, Cost) {
        // Signature invalidation: this touch may displace the MRU of its
        // L1 set, so any armed program whose line set covers that set can
        // no longer prove residency (unless the touch IS one of the
        // program's own lines — see `on_touch`). One AND in the common
        // (nothing armed / no overlap) case.
        if self.armed[core].mask != 0 {
            let bit = 1u64 << (self.cores[core].l1.set_index(addr) & 63);
            let kills = self.armed[core].on_touch(bit, addr & !(LINE - 1));
            self.sig_kills += kills;
        }
        let is_load = kind == AccessKind::Load;
        if COUNT {
            if is_load {
                self.counters.loads += 1;
            } else {
                self.counters.stores += 1;
            }
        }

        let line = addr & !(LINE - 1);
        if self.fast && !self.resident.contains(line) {
            // The resident filter proves this line sits in no core's
            // L1/L2 (every private fill inserts it), so the hit scans
            // cannot succeed: allocate straight away. Streaming lines —
            // fresh DMA payload, wrapped ring slots — take this path
            // every packet.
            if COUNT && is_load {
                self.counters.l1d_load_misses += 1;
            }
            self.resident.insert(line);
            // Host-side overlap: the LLC slot array is the one structure
            // too big for the host's near caches, so start its row load
            // now and let it ride out the private-cache fills.
            self.llc.prefetch_row(addr);
            let c = &mut self.cores[core];
            // L1/L2 victims vanish silently (inclusive LLC still holds
            // them), exactly as on the scan path below.
            c.l1.alloc_absent(addr);
            c.l2.alloc_absent(addr);
            return self.touch_llc::<COUNT>(addr, is_load);
        }

        if self.cores[core].l1.access(addr).hit {
            return (Level::L1, Cost::stall_cycles(self.lat.l1_hit_cy));
        }
        if COUNT && is_load {
            self.counters.l1d_load_misses += 1;
        }
        // The line is about to be filled into this core's L1 (and
        // possibly L2): record it as possibly-core-resident so future
        // DMA/back-invalidations know to scan.
        if self.fast {
            self.resident.insert(line);
        }
        // Host-side overlap (see above).
        self.llc.prefetch_row(addr);

        // Note on fills: `access` allocates on miss, so by this point the
        // line is already resident (and MRU) in L1, and likewise in L2
        // below — no separate fill step is needed on the hit paths.
        if self.cores[core].l2.access(addr).hit {
            return (Level::L2, Cost::stall_cycles(self.lat.l2_hit_cy));
        }
        self.touch_llc::<COUNT>(addr, is_load)
    }

    /// The shared tail of a demand touch that missed both private
    /// levels: LLC lookup in the demand ways, then DRAM.
    fn touch_llc<const COUNT: bool>(&mut self, addr: u64, is_load: bool) -> (Level, Cost) {
        if COUNT {
            if is_load {
                self.counters.llc_loads += 1;
            } else {
                self.counters.llc_stores += 1;
            }
        }

        // Demand fills take the non-DDIO ways: the NIC's write stream
        // cannot evict the application's reused lines (way partition).
        let out = self
            .llc
            .access_way_range(addr, self.ddio_ways, self.llc_assoc);
        if out.hit {
            return (Level::Llc, Cost::stall_ns(self.lat.llc_hit_ns));
        }

        // DRAM. Fill all levels; back-invalidate on LLC eviction.
        if COUNT {
            if is_load {
                self.counters.llc_load_misses += 1;
            } else {
                self.counters.llc_store_misses += 1;
            }
        }
        if let Some(evicted) = out.evicted {
            self.back_invalidate(evicted);
        }
        (Level::Dram, Cost::stall_ns(self.lat.dram_ns))
    }

    fn back_invalidate(&mut self, line: u64) {
        // A line absent from the resident filter is provably in no
        // core's L1/L2, matches no last-line memo (memo lines are
        // L1-resident by invariant) and belongs to no armed signature
        // (armed lines are L1-resident while valid) — the scan would be
        // a no-op, so skip it. Present lines are removed: the scan below
        // purges every private copy.
        if self.fast && !self.resident.remove(line) {
            return;
        }
        let bit = 1u64 << (self.cores[0].l1.set_index(line) & 63);
        let mut kills = 0;
        for (c, t) in self.cores.iter_mut().zip(self.armed.iter_mut()) {
            c.l1.invalidate(line);
            c.l2.invalidate(line);
            if c.last_line == line {
                c.last_line = NONE64;
            }
            // Cross-core LLC evictions must also break signatures armed
            // on other cores (the line may be one of theirs).
            kills += t.on_conflict(bit);
        }
        self.sig_kills += kills;
    }

    /// Models a NIC DMA write of `len` bytes at `addr` (RX path).
    ///
    /// Lines are allocated into the LLC restricted to the DDIO ways; any
    /// stale copies in core caches are invalidated. Costs no core time.
    pub fn dma_write(&mut self, addr: u64, len: u64) {
        let n = lines_spanned(addr, len);
        self.counters.dma_write_lines += n;
        let mut line = addr & !(LINE - 1);
        for i in 0..n {
            // Host-side overlap: fetch the next line's slot row while
            // this line's allocation runs.
            if i + 1 < n {
                self.llc.prefetch_row(line + LINE);
            }
            let out = self.llc.access_ways(line, self.ddio_ways);
            if out.hit {
                // Core caches are inclusive in the LLC (every fill goes
                // through it, every LLC eviction back-invalidates), so
                // stale core copies can exist only when the LLC held the
                // line — and only when some core actually demand-filled
                // it (resident filter). Skip the per-core scans
                // otherwise.
                if !self.fast || self.resident.remove(line) {
                    let bit = 1u64 << (self.cores[0].l1.set_index(line) & 63);
                    let mut kills = 0;
                    for (c, t) in self.cores.iter_mut().zip(self.armed.iter_mut()) {
                        c.l1.invalidate(line);
                        c.l2.invalidate(line);
                        if c.last_line == line {
                            c.last_line = NONE64;
                        }
                        kills += t.on_conflict(bit);
                    }
                    self.sig_kills += kills;
                }
            } else if let Some(evicted) = out.evicted {
                self.back_invalidate(evicted);
            }
            line += LINE;
        }
    }

    /// Charges a heterogeneous DMA-write charge set — several disjoint
    /// spans delivered by one NIC event (payload plus descriptor) — in
    /// one call. Exactly equivalent to calling [`Self::dma_write`] on
    /// each span in order.
    pub fn dma_write_set(&mut self, spans: &[(u64, u64)]) {
        for &(addr, len) in spans {
            self.dma_write(addr, len);
        }
    }

    /// Models a NIC DMA read of `len` bytes at `addr` (TX path).
    ///
    /// Reads are served from the LLC when resident and do not allocate.
    pub fn dma_read(&mut self, addr: u64, len: u64) {
        self.counters.dma_read_lines += lines_spanned(addr, len);
    }

    /// Software/hardware prefetch: brings a range into this core's caches
    /// without counting demand events. A prefetch that finds its line in
    /// the LLC (the DDIO-resident case) is fully hidden; one that must go
    /// to DRAM (DDIO overflow) cannot be issued early enough and exposes
    /// part of the memory latency.
    pub fn prefetch(&mut self, core: usize, addr: u64, len: u64) -> Cost {
        let before = self.attribution.is_some().then_some(self.counters);
        let cost = self.prefetch_raw(core, addr, len);
        if let Some(before) = before {
            let delta = self.counters.delta_since(&before);
            if let Some(attr) = &mut self.attribution {
                attr.add_counters(&delta);
            }
        }
        cost
    }

    /// [`Self::prefetch`] without the attribution update (program
    /// resolution batches one update over the whole charge set). The only
    /// counter a prefetch can move is `prefetch_misses`, so the caller's
    /// windowed delta attributes exactly what the inline update did.
    fn prefetch_raw(&mut self, core: usize, addr: u64, len: u64) -> Cost {
        let mut cost = Cost::ZERO;
        let n = lines_spanned(addr, len);
        let mut line = addr & !(LINE - 1);
        if n <= 8 {
            // Small-range fast path (the common shapes: descriptor and
            // packet-header prefetches). Probing every level and then
            // warming would scan each cache row twice; instead do the
            // warm touch directly — it reports where the line was found,
            // and "filled from DRAM" is exactly "resident nowhere", the
            // probes' miss condition. Interleaving warm and probe per
            // line is sound for short runs: consecutive lines index
            // distinct sets in every cache (n ≤ 8 < the smallest set
            // count), so warming line i can neither insert nor evict a
            // later line j — allocations land in other sets, and any
            // back-invalidated LLC victim shares its set with line i,
            // not j. The later probe therefore sees exactly the state
            // the probe-first ordering would.
            for _ in 0..n {
                // Quiet variants: a prefetch moves cache/TLB state but
                // counts no demand events (the save/restore of the whole
                // counter block this replaces was two 96-byte copies per
                // line).
                let (level, _) = self.touch::<false>(core, line, AccessKind::Load);
                let _ = self.translate::<false>(core, line);
                self.cores[core].last_line = line;
                if level == Level::Dram {
                    cost += Cost::stall_ns(self.lat.dram_ns * 0.3);
                    self.counters.prefetch_misses += 1;
                }
                line += LINE;
            }
            return cost;
        }
        for _ in 0..n {
            if !self.llc.probe(line)
                && !self.cores[core].l2.probe(line)
                && !self.cores[core].l1.probe(line)
            {
                cost += Cost::stall_ns(self.lat.dram_ns * 0.3);
                self.counters.prefetch_misses += 1;
            }
            line += LINE;
        }
        self.warm(core, addr, len);
        cost
    }

    /// Warms a range into the LLC + core caches without counting events
    /// (used for initialization state like routing tables).
    pub fn warm(&mut self, core: usize, addr: u64, len: u64) {
        let saved = self.counters;
        let n = lines_spanned(addr, len);
        let mut line = addr & !(LINE - 1);
        for _ in 0..n {
            let _ = self.touch::<true>(core, line, AccessKind::Load);
            let _ = self.translate::<true>(core, line);
            // Maintain the last-line invariant: `line` is now this
            // core's most recent touch and sits MRU in its L1 set.
            self.cores[core].last_line = line;
            line += LINE;
        }
        self.counters = saved;
    }

    // ----- batched access programs + signature memoization --------------

    /// Resolves a precompiled [`AccessProgram`] against the hierarchy:
    /// the whole heterogeneous charge set of one touch site in one call.
    ///
    /// Semantically **identical** to executing the program's step
    /// sequence through [`Self::access_range`] / [`Self::prefetch`] /
    /// [`Cost::compute`] one call at a time — same costs to the same
    /// `f64` bit, same counters, same cache/TLB state — but resolved in
    /// one tight loop with a single attribution update, and memoized
    /// outright when the program's access signature is armed: if every
    /// line was left L1-MRU-resident by a previous run in the same
    /// base-delta class and nothing has disturbed those sets since, the
    /// recorded per-step deltas are replayed with no per-line work at
    /// all — exact-base matches skip even the residency probes when the
    /// steady-state fast-forward memo's preconditions hold, and
    /// strided-base matches re-prove residency for the new lines and
    /// re-key the signature in place. Signatures are invalidated exactly
    /// (conservatively by L1 set) on any overlapping touch, DMA
    /// invalidation, cross-core LLC back-invalidation, private-cache
    /// flush, or hugepage remap.
    ///
    /// `bases` supplies the program's base registers; cost is
    /// accumulated into `acc` step by step (the caller's accumulation
    /// order is part of the contract — `f64` addition is not
    /// associative).
    pub fn run_program(
        &mut self,
        core: usize,
        prog: &AccessProgram,
        bases: &[u64],
        acc: &mut Cost,
    ) {
        debug_assert!(bases.len() >= prog.base_count(), "missing base registers");
        if !self.fast {
            self.run_program_reference(core, prog, bases, acc);
            return;
        }
        let before = self.attribution.is_some().then_some(self.counters);
        if self.try_replay(core, prog, bases, acc) {
            self.sig_replays += 1;
        } else {
            self.walk_program(core, prog, bases, acc);
        }
        if let Some(before) = before {
            let delta = self.counters.delta_since(&before);
            if let Some(attr) = &mut self.attribution {
                attr.add_counters(&delta);
            }
        }
    }

    /// Resolves one program for each row of `rows` (a batch sharing one
    /// program — the PMD's 32-packet rx loop), with a **single**
    /// attribution update for the whole batch. Bit-identical to calling
    /// [`Self::run_program`] once per row: per-row costs still
    /// accumulate into `acc` in row order (`f64` order is part of the
    /// contract), and hoisting the attribution snapshot is sound because
    /// counter deltas are `u64` sums — associative — and every row
    /// charges the same current scope. Batch arming falls out of the
    /// per-row resolution: the first row walks and arms, later rows
    /// delta-replay against the armed signature, and any mid-batch
    /// invalidation (a DMA landing inside the batch's sets, a cold line)
    /// simply makes that row fail verification and walk — per-packet
    /// fallback by construction, no special case.
    ///
    /// Returns how many rows replayed (host-side diagnostic; the PMD's
    /// steady-state witness).
    pub fn run_program_batch<const N: usize>(
        &mut self,
        core: usize,
        prog: &AccessProgram,
        rows: &[[u64; N]],
        acc: &mut Cost,
    ) -> u32 {
        debug_assert!(N >= prog.base_count(), "missing base registers");
        if !self.fast {
            for row in rows {
                self.run_program_reference(core, prog, row, acc);
            }
            return 0;
        }
        let before = self.attribution.is_some().then_some(self.counters);
        let mut replayed = 0u32;
        for row in rows {
            if self.try_replay(core, prog, row, acc) {
                replayed += 1;
            } else {
                self.walk_program(core, prog, row, acc);
            }
        }
        self.sig_replays += u64::from(replayed);
        if let Some(before) = before {
            let delta = self.counters.delta_since(&before);
            if let Some(attr) = &mut self.attribution {
                attr.add_counters(&delta);
            }
        }
        replayed
    }

    /// The non-replay resolution path: step walk (without per-call
    /// attribution — callers batch it) followed by an arming attempt.
    fn walk_program(&mut self, core: usize, prog: &AccessProgram, bases: &[u64], acc: &mut Cost) {
        for step in &prog.steps {
            match step.op {
                StepOp::Compute(n) => *acc += Cost::compute(u64::from(n)),
                StepOp::Charge(c) => *acc += c,
                StepOp::Prefetch => {
                    let a = step.addr(bases);
                    *acc += self.prefetch_raw(core, a, u64::from(step.len));
                }
                StepOp::Load | StepOp::Store => {
                    let kind = if matches!(step.op, StepOp::Load) {
                        AccessKind::Load
                    } else {
                        AccessKind::Store
                    };
                    let a = step.addr(bases);
                    let n = lines_spanned(a, u64::from(step.len));
                    let mut span = Cost::ZERO;
                    let mut line = a & !(LINE - 1);
                    for _ in 0..n {
                        span += self.access_line_raw(core, line, kind);
                        line += LINE;
                    }
                    *acc += span;
                }
            }
        }
        self.try_arm(core, prog, bases);
    }

    /// Reference resolver: the original unbatched per-call sequence.
    fn run_program_reference(
        &mut self,
        core: usize,
        prog: &AccessProgram,
        bases: &[u64],
        acc: &mut Cost,
    ) {
        for step in &prog.steps {
            match step.op {
                StepOp::Compute(n) => *acc += Cost::compute(u64::from(n)),
                StepOp::Charge(c) => *acc += c,
                StepOp::Prefetch => {
                    *acc += self.prefetch(core, step.addr(bases), u64::from(step.len));
                }
                StepOp::Load => {
                    *acc += self.access_range(
                        core,
                        step.addr(bases),
                        u64::from(step.len),
                        AccessKind::Load,
                    );
                }
                StepOp::Store => {
                    *acc += self.access_range(
                        core,
                        step.addr(bases),
                        u64::from(step.len),
                        AccessKind::Store,
                    );
                }
            }
        }
    }

    /// Replays an armed signature if its hit-state class provably still
    /// holds. Returns false (and changes nothing) otherwise. Dispatch:
    /// the table is keyed on program id alone; an entry whose recorded
    /// bases equal the run's bases replays exactly (with the
    /// fast-forward memo skipping even the trajectory work when its
    /// preconditions hold), and one whose bases differ attempts a
    /// delta-class replay that re-proves residency for the new lines.
    fn try_replay(
        &mut self,
        core: usize,
        prog: &AccessProgram,
        bases: &[u64],
        acc: &mut Cost,
    ) -> bool {
        if !prog.memoize {
            // Never armed, so never in the table: skip the scan.
            return false;
        }
        let Some(i) = self.armed[core].slot_for(prog.id) else {
            return false;
        };
        let exact = {
            let e = &self.armed[core].entries[i];
            debug_assert!(e.valid, "ids[i] != 0 implies a valid entry");
            debug_assert_eq!(e.n_bases, prog.n_bases, "one id, one program");
            let n = usize::from(prog.n_bases);
            e.bases[..n] == bases[..n]
        };
        if exact {
            self.replay_exact(core, i, acc)
        } else {
            self.replay_delta(core, i, prog, bases, acc)
        }
    }

    /// Exact-base replay: the recorded bases match, so line residency is
    /// guaranteed by the entry's validity (any disturbance of a covered
    /// L1 set kills it); every page translation must additionally still
    /// be a free DTLB hit.
    ///
    /// When the entry's fast-forward memo is valid, its generation
    /// matches the TLB's fill generation, and the core's
    /// `(last_vpage, last_page)` memo pair equals the recorded start
    /// state, the whole trajectory below is skipped: an unchanged
    /// generation proves DTLB membership is unchanged (hits only reorder
    /// recency), so every `dtlb_resident` probe would return what it
    /// returned at record time, and the trajectory — a pure function of
    /// the entry's page sequence, its keys, and the start state — would
    /// recompute exactly the recorded outputs. The memo applies those
    /// outputs directly: same costs, same counters, same real DTLB
    /// promotions, same end memos, bit-for-bit.
    fn replay_exact(&mut self, core: usize, i: usize, acc: &mut Cost) -> bool {
        // Split-borrow the table apart from cores/counters so the
        // half-KiB entry is read in place, never copied.
        let MemoryHierarchy {
            armed,
            cores,
            counters,
            sig_ff,
            ..
        } = self;
        let c = &mut cores[core];
        let e = &mut armed[core].entries[i];
        if e.ff.valid
            && e.ff.gen == c.tlb.generation()
            && e.ff.start_vpage == c.last_vpage
            && e.ff.start_page == c.tlb.last_page()
        {
            for cost in &e.costs[..usize::from(e.n_steps)] {
                *acc += *cost;
            }
            counters.loads += e.loads;
            counters.stores += e.stores;
            for &k in &e.ff.touched[..usize::from(e.ff.n_touched)] {
                c.tlb.dtlb_touch(k);
            }
            c.tlb.replay_hits(e.tlb_hits, e.ff.end_page);
            c.last_vpage = e.ff.end_vpage;
            c.last_line = e.last_line;
            *sig_ff += 1;
            return true;
        }
        // Simulate the walk's TLB trajectory over the recorded
        // distinct-consecutive page groups: `cur_v` tracks the core's
        // last-vpage memo, `cur_k` the TLB's last-page slot. A group
        // matching `cur_v` repeats the memo; one matching `cur_k`
        // early-returns inside the TLB; anything else must be
        // DTLB-resident, and is collected so the replay can apply the
        // hit's real recency promotion (hits never evict, so checking
        // all pages against the entry-time DTLB stays exact even though
        // the promotions land afterwards).
        let start_v = c.last_vpage;
        let start_k = c.tlb.last_page();
        let gen = c.tlb.generation();
        let mut touched = [0u64; ARMED_MAX_PAGES];
        let mut n_touched = 0usize;
        let mut cur_v = start_v;
        let mut cur_k = start_k;
        for j in 0..usize::from(e.n_pages) {
            let v = e.vpages[j];
            if v == cur_v {
                continue;
            }
            cur_v = v;
            let k = e.keys[j];
            if k == cur_k {
                continue;
            }
            if !c.tlb.dtlb_resident(k) {
                return false;
            }
            touched[n_touched] = k;
            n_touched += 1;
            cur_k = k;
        }
        for cost in &e.costs[..usize::from(e.n_steps)] {
            *acc += *cost;
        }
        counters.loads += e.loads;
        counters.stores += e.stores;
        for &k in &touched[..n_touched] {
            c.tlb.dtlb_touch(k);
        }
        c.tlb.replay_hits(e.tlb_hits, cur_k);
        c.last_vpage = cur_v;
        c.last_line = e.last_line;
        // Lift this trajectory to the fast-forward memo: the promotions
        // above changed only DTLB recency, never membership, so the
        // generation captured before them still witnesses the resident
        // set the probes saw.
        e.ff = FfMemo {
            valid: true,
            gen,
            start_vpage: start_v,
            start_page: start_k,
            end_vpage: cur_v,
            end_page: cur_k,
            touched,
            n_touched: n_touched as u8,
        };
        true
    }

    /// Delta-class replay: the armed entry's bases differ from the
    /// run's, but if every memory step spans the **same number of
    /// lines** (the base-delta class, see [`ArmedEntry::step_lines`])
    /// and every line the new bases address is provably L1-MRU-resident,
    /// the recorded per-step costs and counter deltas are exactly what a
    /// walk would charge — replay them and re-key the entry in place
    /// onto the new bases. This is what lets ring shapes (16-byte WQE
    /// slots, 64-byte TX descriptors) replay while their bases stride.
    ///
    /// Residency is proven per line: a line among the entry's own
    /// recorded lines is MRU by the entry's validity invariant; any
    /// other line takes a resident-filter fast-fail (absence proves no
    /// private copy anywhere) and then a real `is_mru` probe. Skipping
    /// the walk's `on_touch` scans is sound: every touched line is MRU
    /// of its L1 set, and while an entry is valid each of its lines is
    /// the MRU of its set — so any other valid entry covering a touched
    /// set holds that very line and `on_touch` would have spared it;
    /// entries covering the set's mask bit via a *different* set are
    /// spared only conservatively, and leaving them alive preserves
    /// their validity invariant (their actual lines were not displaced).
    fn replay_delta(
        &mut self,
        core: usize,
        i: usize,
        prog: &AccessProgram,
        bases: &[u64],
        acc: &mut Cost,
    ) -> bool {
        debug_assert!(self.fast, "replay only runs in fast mode");
        // Phase 1 (read-only): verify the delta class and line
        // residency, collecting the new line set and page groups.
        let mut new_lines = [0u64; ARMED_MAX_LINES as usize];
        let mut new_vpages = [0u64; ARMED_MAX_PAGES];
        let mut n_lines = 0usize;
        let mut n_pages = 0usize;
        let mut mask = 0u64;
        let mut last_line = NONE64;
        {
            let e = &self.armed[core].entries[i];
            let c = &self.cores[core];
            for (si, step) in prog.steps.iter().enumerate() {
                if !step.is_mem() {
                    continue;
                }
                let a = step.addr(bases);
                let n = lines_spanned(a, u64::from(step.len));
                if n != u64::from(e.step_lines[si]) {
                    return false;
                }
                let mut line = a & !(LINE - 1);
                for _ in 0..n {
                    let vp = line >> 12;
                    if n_pages == 0 || new_vpages[n_pages - 1] != vp {
                        if n_pages == ARMED_MAX_PAGES {
                            return false;
                        }
                        new_vpages[n_pages] = vp;
                        n_pages += 1;
                    }
                    if !e.lines[..usize::from(e.n_lines)].contains(&line)
                        && (!self.resident.contains(line) || !c.l1.is_mru(line))
                    {
                        return false;
                    }
                    new_lines[n_lines] = line;
                    n_lines += 1;
                    mask |= 1u64 << (c.l1.set_index(line) & 63);
                    last_line = line;
                    line += LINE;
                }
            }
            debug_assert_eq!(
                n_lines,
                usize::from(e.n_lines),
                "matching per-step spans must sum to the recorded line count"
            );
        }
        // Phase 2: page keys (mutates only the host-side key memo).
        let mut new_keys = [0u64; ARMED_MAX_PAGES];
        for j in 0..n_pages {
            new_keys[j] = self.page_key(new_vpages[j] << 12);
        }
        // Phase 3: TLB trajectory over the new page groups (same
        // algorithm as exact replay), then commit + re-key.
        let MemoryHierarchy {
            armed,
            cores,
            counters,
            ..
        } = self;
        let t = &mut armed[core];
        let c = &mut cores[core];
        let start_v = c.last_vpage;
        let start_k = c.tlb.last_page();
        let gen = c.tlb.generation();
        let mut touched = [0u64; ARMED_MAX_PAGES];
        let mut n_touched = 0usize;
        let mut cur_v = start_v;
        let mut cur_k = start_k;
        for j in 0..n_pages {
            let v = new_vpages[j];
            if v == cur_v {
                continue;
            }
            cur_v = v;
            let k = new_keys[j];
            if k == cur_k {
                continue;
            }
            if !c.tlb.dtlb_resident(k) {
                return false;
            }
            touched[n_touched] = k;
            n_touched += 1;
            cur_k = k;
        }
        let e = &mut t.entries[i];
        for cost in &e.costs[..usize::from(e.n_steps)] {
            *acc += *cost;
        }
        counters.loads += e.loads;
        counters.stores += e.stores;
        for &k in &touched[..n_touched] {
            c.tlb.dtlb_touch(k);
        }
        c.tlb.replay_hits(e.tlb_hits, cur_k);
        c.last_vpage = cur_v;
        c.last_line = last_line;
        // Re-key the entry onto the new bases: costs, counters,
        // step_lines, and line/page counts are class invariants and stay.
        let n = usize::from(prog.n_bases);
        e.bases[..n].copy_from_slice(&bases[..n]);
        e.vpages = new_vpages;
        e.keys = new_keys;
        e.lines = new_lines;
        e.n_pages = n_pages as u8;
        e.last_line = last_line;
        e.ff = FfMemo {
            valid: true,
            gen,
            start_vpage: start_v,
            start_page: start_k,
            end_vpage: cur_v,
            end_page: cur_k,
            touched,
            n_touched: n_touched as u8,
        };
        let old_mask = e.mask;
        e.mask = mask;
        if mask != old_mask {
            t.masks[i] = mask;
            t.mask = t.masks.iter().fold(0, |a, &x| a | x);
        }
        true
    }

    /// After a walk: if every line of the program now sits L1-MRU and its
    /// pages form a short distinct-consecutive sequence, record the
    /// signature — the next run with the same bases replays it. The probe
    /// is pure arithmetic plus one slot-0 tag compare per line.
    fn try_arm(&mut self, core: usize, prog: &AccessProgram, bases: &[u64]) {
        if !prog.memoize
            || prog.steps.len() > ARMED_MAX_STEPS
            || usize::from(prog.n_bases) > ARMED_MAX_BASES
            || prog.mem_lines == 0
            || prog.mem_lines > ARMED_MAX_LINES
        {
            return;
        }
        let mut vpages = [0u64; ARMED_MAX_PAGES];
        let mut n_pages = 0usize;
        let mut lines = [0u64; ARMED_MAX_LINES as usize];
        let mut n_lines = 0usize;
        let mut step_lines = [0u8; ARMED_MAX_STEPS];
        let mut mask = 0u64;
        let mut last_line = NONE64;
        let (mut loads, mut stores, mut tlb_hits) = (0u64, 0u64, 0u64);
        let mut costs = [Cost::ZERO; ARMED_MAX_STEPS];
        // The all-L1-hit per-line constants. Both walk paths (last-line
        // filter and slot-0 touch) produce exactly these bits: the
        // filter path computes `l1_hit_cy * factor` directly, the touch
        // path computes `l1_hit_cy` then scales stores by the same
        // factor (and `0.0 * f == 0.0` for the untouched uncore field).
        let load_hit = Cost::stall_cycles(self.lat.l1_hit_cy);
        let store_hit = Cost::stall_cycles(self.lat.l1_hit_cy * self.lat.store_stall_factor);
        let c = &self.cores[core];
        for (i, step) in prog.steps.iter().enumerate() {
            match step.op {
                StepOp::Compute(n) => costs[i] = Cost::compute(u64::from(n)),
                StepOp::Charge(cost) => costs[i] = cost,
                _ => {
                    let a = step.addr(bases);
                    let n = lines_spanned(a, u64::from(step.len));
                    // Fits u8: the per-entry line cap is 12.
                    step_lines[i] = n as u8;
                    let mut line = a & !(LINE - 1);
                    let mut span = Cost::ZERO;
                    for _ in 0..n {
                        let vp = line >> 12;
                        if n_pages == 0 || vpages[n_pages - 1] != vp {
                            if n_pages == ARMED_MAX_PAGES {
                                return;
                            }
                            vpages[n_pages] = vp;
                            n_pages += 1;
                        }
                        if !c.l1.is_mru(line) {
                            return;
                        }
                        if n_lines == lines.len() {
                            return;
                        }
                        lines[n_lines] = line;
                        n_lines += 1;
                        mask |= 1u64 << (c.l1.set_index(line) & 63);
                        match step.op {
                            StepOp::Load => {
                                loads += 1;
                                span += load_hit;
                            }
                            StepOp::Store => {
                                stores += 1;
                                span += store_hit;
                            }
                            _ => span += Cost::ZERO,
                        }
                        tlb_hits += 1;
                        last_line = line;
                        line += LINE;
                    }
                    costs[i] = span;
                }
            }
        }
        let mut keys = [0u64; ARMED_MAX_PAGES];
        for j in 0..n_pages {
            keys[j] = self.page_key(vpages[j] << 12);
        }
        let mut entry_bases = [0u64; ARMED_MAX_BASES];
        entry_bases[..usize::from(prog.n_bases)]
            .copy_from_slice(&bases[..usize::from(prog.n_bases)]);
        self.armed[core].install(ArmedEntry {
            prog_id: prog.id,
            bases: entry_bases,
            vpages,
            keys,
            lines,
            mask,
            last_line,
            tlb_hits,
            loads,
            stores,
            n_steps: prog.steps.len() as u8,
            n_bases: prog.n_bases,
            n_pages: n_pages as u8,
            n_lines: n_lines as u8,
            valid: true,
            step_lines,
            costs,
            ff: FfMemo::INVALID,
        });
    }

    /// Flushes this core's private L1/L2 (the shared LLC and the TLB are
    /// untouched) and drops the core's memos and armed signatures.
    pub fn flush_private(&mut self, core: usize) {
        let c = &mut self.cores[core];
        c.l1.flush();
        c.l2.flush();
        c.last_line = NONE64;
        c.last_vpage = NONE64;
        let kills = self.armed[core].clear();
        self.sig_kills += kills;
    }

    /// Armed signatures killed by any invalidation path since
    /// construction — foreign set touches, DMA writes, cross-core LLC
    /// back-invalidation, private flushes, hugepage remaps. Host-side
    /// diagnostic: the PMD counts consecutive kill-free batches against
    /// this to witness the steady-state fixed point.
    pub fn signature_kills(&self) -> u64 {
        self.sig_kills
    }

    /// Successful signature replays (exact-base, delta-class, or
    /// fast-forward) since construction. Host-side diagnostic.
    pub fn signature_replays(&self) -> u64 {
        self.sig_replays
    }

    /// The subset of [`Self::signature_replays`] resolved through the
    /// steady-state fast-forward memo. Host-side diagnostic.
    pub fn signature_fast_forwards(&self) -> u64 {
        self.sig_ff
    }

    // ----- scoped attribution (profiling) -------------------------------
    //
    // All methods below are cheap no-ops until `enable_attribution` is
    // called; enabling them changes bookkeeping only, never cache state or
    // charged costs, so measurements are identical with or without
    // profiling.

    /// Turns on per-scope attribution. The built-in pipeline-stage scopes
    /// ([`crate::SCOPE_RX`], [`crate::SCOPE_TX`], [`crate::SCOPE_MEMPOOL`],
    /// [`crate::SCOPE_METADATA`], [`crate::SCOPE_SCHEDULER`]) are
    /// registered immediately; element scopes are added via
    /// [`Self::register_scope`]. Idempotent.
    pub fn enable_attribution(&mut self) {
        if self.attribution.is_none() {
            self.attribution = Some(Attribution::new());
        }
    }

    /// Whether attribution is currently enabled.
    pub fn attribution_enabled(&self) -> bool {
        self.attribution.is_some()
    }

    /// Registers (or looks up) a named scope. Idempotent by name, so
    /// several dataplanes sharing element names aggregate into the same
    /// record. Returns [`crate::SCOPE_SCHEDULER`] when attribution is off.
    pub fn register_scope(&mut self, name: &str) -> ScopeId {
        match &mut self.attribution {
            Some(attr) => attr.register(name),
            None => crate::SCOPE_SCHEDULER,
        }
    }

    /// Makes `id` the current scope for subsequent cache/TLB events and
    /// returns the previous scope (restore it when the scoped section
    /// ends). No-op returning `id` when attribution is off.
    pub fn set_scope(&mut self, id: ScopeId) -> ScopeId {
        match &mut self.attribution {
            Some(attr) => attr.set_current(id),
            None => id,
        }
    }

    /// Attributes `cost` to scope `id`.
    pub fn profile_charge_at(&mut self, id: ScopeId, cost: Cost) {
        if let Some(attr) = &mut self.attribution {
            attr.charge(id, cost);
        }
    }

    /// Adds `n` to scope `id`'s packet count.
    pub fn profile_packets_at(&mut self, id: ScopeId, n: u64) {
        if let Some(attr) = &mut self.attribution {
            attr.add_packets(id, n);
        }
    }

    /// Zeroes every scope's accumulated profile (start of the measured
    /// window). Registered scopes are kept.
    pub fn profile_reset(&mut self) {
        if let Some(attr) = &mut self.attribution {
            attr.reset();
        }
    }

    /// Snapshot of `(scope name, profile)` in registration order: the
    /// built-in stages first, then element scopes in the order they were
    /// registered. Empty when attribution is off.
    pub fn profile_records(&self) -> Vec<(String, ScopeProfile)> {
        self.attribution
            .as_ref()
            .map(|a| a.records())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small geometry so eviction paths are easy to exercise:
    // L1 512 B/2w, L2 2 KiB/2w, LLC 8 KiB/4w.
    fn tiny_params() -> HierarchyParams {
        HierarchyParams {
            cores: 2,
            l1: CacheParams::new(512, 2, 64),
            l2: CacheParams::new(2048, 2, 64),
            llc: CacheParams::new(8192, 4, 64),
            ddio_ways: 2,
            lat: LatencyModel::default(),
        }
    }

    fn tiny() -> MemoryHierarchy {
        MemoryHierarchy::new(&tiny_params())
    }

    #[test]
    fn first_access_goes_to_dram_then_l1() {
        let mut m = tiny();
        let c1 = m.access(0, 0x10_000, 8, AccessKind::Load);
        assert!(c1.uncore_ns >= LatencyModel::default().dram_ns);
        assert_eq!(m.probe_level(0, 0x10_000), Level::L1);
        let c2 = m.access(0, 0x10_000, 8, AccessKind::Load);
        assert!(c2.uncore_ns == 0.0, "second access is an L1 hit");
        assert_eq!(m.counters().llc_load_misses, 1);
        assert_eq!(m.counters().llc_loads, 1);
    }

    #[test]
    fn loads_and_stores_counted_separately() {
        let mut m = tiny();
        m.access(0, 0, 8, AccessKind::Store);
        assert_eq!(m.counters().llc_stores, 1);
        assert_eq!(m.counters().llc_loads, 0);
        assert_eq!(m.counters().stores, 1);
    }

    #[test]
    fn range_touches_every_line() {
        let mut m = tiny();
        m.access(0, 0, 256, AccessKind::Load);
        assert_eq!(m.counters().loads, 4);
    }

    #[test]
    fn dma_write_lands_in_llc_not_core_caches() {
        let mut m = tiny();
        // Warm the TLB for the page so the later cost is purely cache stall.
        m.access(0, 0x2fc0, 8, AccessKind::Load);
        m.dma_write(0x2000, 128);
        assert_eq!(m.counters().dma_write_lines, 2);
        assert_eq!(m.probe_level(0, 0x2000), Level::Llc);
        // Core read of DMA'd data: an LLC hit, not DRAM.
        let misses_before = m.counters().llc_load_misses;
        let c = m.access(0, 0x2000, 8, AccessKind::Load);
        assert_eq!(c.uncore_ns, LatencyModel::default().llc_hit_ns);
        assert_eq!(m.counters().llc_load_misses, misses_before);
    }

    #[test]
    fn dma_write_invalidates_core_copies() {
        let mut m = tiny();
        m.access(0, 0x3000, 8, AccessKind::Load); // line now in L1
        m.dma_write(0x3000, 64); // NIC overwrites the buffer
        assert_eq!(
            m.probe_level(0, 0x3000),
            Level::Llc,
            "stale L1 copy must be gone"
        );
    }

    #[test]
    fn ddio_way_restriction_limits_footprint() {
        let mut m = tiny();
        // LLC: 32 sets x 4 ways. DMA may only use 2 ways => 64 lines max.
        for i in 0..1024u64 {
            m.dma_write(0x100_000 + i * 64, 64);
        }
        // Count how many DMA'd lines are still resident.
        let resident = (0..1024u64)
            .filter(|i| m.probe_level(0, 0x100_000 + i * 64) == Level::Llc)
            .count();
        assert!(
            resident <= 64,
            "DDIO lines exceed restricted ways: {resident}"
        );
    }

    #[test]
    fn llc_eviction_back_invalidates() {
        let mut m = tiny();
        // Load a line on core 1, then stream enough lines through the same
        // LLC set to evict it.
        m.access(1, 0x0, 8, AccessKind::Load);
        // LLC has 32 sets (8192/4/64) => set stride 32*64 = 2048.
        for i in 1..=8u64 {
            m.access(0, i * 2048, 8, AccessKind::Load);
        }
        assert_eq!(
            m.probe_level(1, 0x0),
            Level::Dram,
            "inclusive LLC eviction must purge L1/L2 copies"
        );
    }

    #[test]
    fn per_core_privacy() {
        let mut m = tiny();
        m.access(0, 0x4000, 8, AccessKind::Load);
        // Core 1 sees it only in the shared LLC.
        assert_eq!(m.probe_level(1, 0x4000), Level::Llc);
    }

    #[test]
    fn warm_does_not_count() {
        let mut m = tiny();
        m.warm(0, 0x8000, 4096);
        assert_eq!(m.counters(), MemCounters::default());
        // But data is resident.
        assert_ne!(m.probe_level(0, 0x8000), Level::Dram);
    }

    #[test]
    fn tlb_charged_on_new_pages() {
        let mut m = tiny();
        let c = m.access(0, 0x100_000, 8, AccessKind::Load);
        assert!(c.cycles >= LatencyModel::default().walk_cy);
        assert_eq!(m.counters().page_walks, 1);
    }

    #[test]
    fn counters_delta() {
        let mut m = tiny();
        m.access(0, 0, 8, AccessKind::Load);
        let snap = m.counters();
        m.access(0, 0x40, 8, AccessKind::Load);
        let d = m.counters().delta_since(&snap);
        assert_eq!(d.loads, 1);
    }

    #[test]
    fn skylake_constructor() {
        let m = MemoryHierarchy::skylake(1);
        assert_eq!(m.core_count(), 1);
    }

    #[test]
    fn attribution_tags_events_by_scope() {
        let mut m = tiny();
        m.enable_attribution();
        let el = m.register_scope("CheckIPHeader");
        m.access(0, 0x10_000, 8, AccessKind::Load); // scheduler (default)
        let prev = m.set_scope(el);
        m.access(0, 0x20_000, 8, AccessKind::Load);
        m.access(0, 0x20_000, 8, AccessKind::Load); // L1 hit, still a load
        m.set_scope(prev);
        let recs = m.profile_records();
        let sched = &recs[crate::SCOPE_SCHEDULER.0];
        assert_eq!(sched.0, "scheduler");
        assert_eq!(sched.1.counters.loads, 1);
        assert_eq!(sched.1.counters.llc_load_misses, 1);
        let elem = recs.iter().find(|(n, _)| n == "CheckIPHeader").unwrap();
        assert_eq!(elem.1.counters.loads, 2);
        assert_eq!(elem.1.counters.llc_load_misses, 1);
        // Scope totals equal the aggregate counters.
        let total: u64 = recs.iter().map(|(_, p)| p.counters.loads).sum();
        assert_eq!(total, m.counters().loads);
    }

    #[test]
    fn attribution_is_pure_bookkeeping() {
        // Identical access streams, with and without attribution, must
        // produce identical costs and aggregate counters.
        let run = |profile: bool| {
            let mut m = tiny();
            if profile {
                m.enable_attribution();
            }
            let mut cost = Cost::ZERO;
            for i in 0..64u64 {
                cost += m.access(0, i * 192, 8, AccessKind::Load);
                cost += m.access(0, 0x40_000 + i * 64, 16, AccessKind::Store);
                cost += m.prefetch(0, i * 4096, 64);
            }
            (cost, m.counters())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn attribution_charge_reset_and_idempotent_register() {
        let mut m = tiny();
        assert!(!m.attribution_enabled());
        // Disabled: everything is a no-op.
        m.profile_charge_at(crate::SCOPE_RX, Cost::compute(10));
        assert!(m.profile_records().is_empty());

        m.enable_attribution();
        let a = m.register_scope("Discard");
        let b = m.register_scope("Discard");
        assert_eq!(a, b, "re-registering a name must return the same scope");
        m.profile_charge_at(a, Cost::compute(8));
        m.profile_packets_at(a, 3);
        let recs = m.profile_records();
        let p = &recs.iter().find(|(n, _)| n == "Discard").unwrap().1;
        assert_eq!(p.cost.instructions, 8);
        assert_eq!(p.packets, 3);
        m.profile_reset();
        let recs = m.profile_records();
        let p = &recs.iter().find(|(n, _)| n == "Discard").unwrap().1;
        assert_eq!(p.cost, Cost::ZERO);
        assert_eq!(p.packets, 0);
    }

    #[test]
    #[should_panic(expected = "ddio_ways")]
    fn bad_ddio_ways() {
        let mut p = HierarchyParams::skylake(1);
        p.ddio_ways = 99;
        let _ = MemoryHierarchy::new(&p);
    }

    use crate::program::ProgramBuilder;

    #[test]
    fn program_signature_arms_and_replays() {
        let mut m = tiny();
        // Two pages, lines in distinct L1 sets (the MRU arming
        // precondition), plus a compute step.
        let prog = ProgramBuilder::new()
            .load(0, 0, 8)
            .load(1, 0, 8)
            .compute(3)
            .build();
        let bases = [0x10_000, 0x11_040];
        let mut first = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut first);
        assert!(
            m.armed[0].find_idx(prog.id, prog.n_bases, &bases).is_some(),
            "the cold walk must arm the signature"
        );
        let walks = m.counters().page_walks;
        let mut second = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut second);
        assert_eq!(second.uncore_ns, 0.0, "replay is the all-L1-hit outcome");
        assert!(
            second.cycles < first.cycles,
            "no walk/miss stalls on replay"
        );
        assert_eq!(m.counters().page_walks, walks, "replay adds no page walks");
        assert_eq!(m.counters().loads, 4, "replay still counts demand loads");
        assert!(
            m.armed[0].find_idx(prog.id, prog.n_bases, &bases).is_some(),
            "replay leaves the signature armed"
        );
    }

    #[test]
    fn own_line_touch_keeps_signature_foreign_set_touch_kills_it() {
        let mut m = tiny();
        let prog = ProgramBuilder::new().load(0, 0, 8).build();
        let bases = [0x20_000];
        let mut c = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut c);
        assert!(m.armed[0].find_idx(prog.id, prog.n_bases, &bases).is_some());
        // Re-touching the program's own line is a slot-0 hit that
        // displaces nothing: the signature survives (an element reading
        // its own state every packet must not self-invalidate).
        m.access(0, 0x20_000, 8, AccessKind::Load);
        assert!(
            m.armed[0].find_idx(prog.id, prog.n_bases, &bases).is_some(),
            "own-line MRU re-hit must not invalidate"
        );
        // A different line on the same L1 set (tiny L1: 4 sets, stride
        // 256 B) disturbs the set and must kill it.
        m.access(0, 0x20_100, 8, AccessKind::Load);
        assert!(
            m.armed[0].find_idx(prog.id, prog.n_bases, &bases).is_none(),
            "foreign same-set touch must invalidate"
        );
    }

    /// The multi-core regression: a signature armed on one core must die
    /// when *another* core's traffic evicts its line from the inclusive
    /// LLC (the back-invalidation purges the owner's L1/L2 copy, so the
    /// recorded all-hit outcome no longer holds).
    #[test]
    fn cross_core_llc_eviction_invalidates_signature() {
        let mut m = tiny();
        let prog = ProgramBuilder::new().load(0, 0, 8).build();
        let bases = [0x0];
        let mut c = Cost::ZERO;
        m.run_program(1, &prog, &bases, &mut c);
        assert!(m.armed[1].find_idx(prog.id, prog.n_bases, &bases).is_some());
        // Core 0 streams through the same LLC set (32 sets, stride
        // 2048 B) until core 1's line is evicted.
        for i in 1..=8u64 {
            m.access(0, i * 2048, 8, AccessKind::Load);
        }
        assert_eq!(m.probe_level(1, 0x0), Level::Dram, "line must be gone");
        assert!(
            m.armed[1].find_idx(prog.id, prog.n_bases, &bases).is_none(),
            "cross-core LLC eviction must invalidate the signature"
        );
        // The next run walks again and pays DRAM, exactly like a cold
        // access would.
        let mut again = Cost::ZERO;
        m.run_program(1, &prog, &bases, &mut again);
        assert!(
            again.uncore_ns >= LatencyModel::default().dram_ns,
            "post-eviction run must miss to DRAM, not replay"
        );
    }

    #[test]
    fn dma_write_invalidates_signature() {
        let mut m = tiny();
        let prog = ProgramBuilder::new().load(0, 0, 8).build();
        let bases = [0x3000];
        let mut c = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut c);
        assert!(m.armed[0].find_idx(prog.id, prog.n_bases, &bases).is_some());
        m.dma_write(0x3000, 64);
        assert!(
            m.armed[0].find_idx(prog.id, prog.n_bases, &bases).is_none(),
            "DMA overwrite must invalidate the signature"
        );
    }

    #[test]
    fn hugepage_remap_drops_signatures() {
        let mut m = tiny();
        let prog = ProgramBuilder::new().load(0, 0, 8).build();
        let bases = [0x5000];
        let mut c = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut c);
        assert!(m.armed[0].find_idx(prog.id, prog.n_bases, &bases).is_some());
        // Remapping changes page keys: every recorded signature is stale.
        m.mark_hugepages(crate::Region {
            base: 0x100_000,
            size: 0x200_000,
        });
        assert!(
            m.armed[0].find_idx(prog.id, prog.n_bases, &bases).is_none(),
            "hugepage remap must drop all signatures"
        );
    }

    #[test]
    fn no_memoize_programs_never_arm() {
        let mut m = tiny();
        let prog = ProgramBuilder::new().no_memoize().load(0, 0, 8).build();
        let bases = [0x6000];
        let mut c = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut c);
        m.run_program(0, &prog, &bases, &mut c);
        assert!(
            m.armed[0].find_idx(prog.id, prog.n_bases, &bases).is_none(),
            "no_memoize programs must never be armed"
        );
    }

    /// The WQE shape: a 16-byte store striding through a ring. Four
    /// slots share one cache line, so after the first walk arms the
    /// signature, every later slot is a delta-class replay (same
    /// per-step span, lines still MRU) that re-keys the entry in place.
    #[test]
    fn strided_bases_delta_replay_rekeys() {
        let mut m = tiny();
        let mut r = MemoryHierarchy::with_reference_walk(&tiny_params());
        let prog = ProgramBuilder::new().store(0, 0, 16).compute(7).build();
        let stride_bases: Vec<[u64; 1]> = (0..4).map(|i| [0x30_000 + i * 16]).collect();
        for bases in &stride_bases {
            let (mut cf, mut cr) = (Cost::ZERO, Cost::ZERO);
            m.run_program(0, &prog, bases, &mut cf);
            r.run_program(0, &prog, bases, &mut cr);
            assert_eq!(cf, cr, "delta replay must match the reference walk");
        }
        assert_eq!(m.counters(), r.counters());
        assert_eq!(
            m.signature_replays(),
            3,
            "first slot walks and arms, the other three replay"
        );
        assert!(
            m.armed[0]
                .find_idx(prog.id, prog.n_bases, &stride_bases[3])
                .is_some(),
            "entry must be re-keyed onto the latest bases"
        );
        assert!(
            m.armed[0]
                .find_idx(prog.id, prog.n_bases, &stride_bases[0])
                .is_none(),
            "the original bases are no longer the key"
        );
    }

    /// Striding across cache lines: the new line is not among the
    /// entry's own, so delta replay must re-prove residency with the
    /// filter + MRU probe — succeeding over a warmed region, walking on
    /// a cold one.
    #[test]
    fn delta_replay_across_lines_matches_reference() {
        let mut m = tiny();
        let mut r = MemoryHierarchy::with_reference_walk(&tiny_params());
        m.warm(0, 0x40_000, 4 * 64);
        r.warm(0, 0x40_000, 4 * 64);
        let prog = ProgramBuilder::new().store(0, 0, 16).compute(7).build();
        for i in 0..4u64 {
            let bases = [0x40_000 + i * 64];
            let (mut cf, mut cr) = (Cost::ZERO, Cost::ZERO);
            m.run_program(0, &prog, &bases, &mut cf);
            r.run_program(0, &prog, &bases, &mut cr);
            assert_eq!(cf, cr);
        }
        assert_eq!(m.counters(), r.counters());
        assert_eq!(m.signature_replays(), 3, "warmed lines replay across lines");
        // A cold line fails the residency proof and walks instead.
        let replays = m.signature_replays();
        let (mut cf, mut cr) = (Cost::ZERO, Cost::ZERO);
        m.run_program(0, &prog, &[0x6F_000], &mut cf);
        r.run_program(0, &prog, &[0x6F_000], &mut cr);
        assert_eq!(cf, cr, "the fallback walk still matches the reference");
        assert_eq!(m.signature_replays(), replays, "cold line must not replay");
    }

    /// Exact-base repeats lift to the fast-forward memo: the second run
    /// records the trajectory, the third applies it closed-form. A DTLB
    /// fill (generation bump) exits fast-forward; the slow replay still
    /// succeeds and re-records.
    #[test]
    fn fast_forward_enters_and_exits_on_generation_bump() {
        let mut m = tiny();
        let prog = ProgramBuilder::new()
            .load(0, 0, 8)
            .load(1, 0, 8)
            .compute(3)
            .build();
        let bases = [0x10_000, 0x11_040];
        let mut c1 = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut c1);
        let mut c2 = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut c2);
        assert_eq!(m.signature_fast_forwards(), 0, "first replay is slow");
        let mut c3 = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut c3);
        assert_eq!(
            m.signature_fast_forwards(),
            1,
            "repeat from the recorded start state fast-forwards"
        );
        assert_eq!(c3, c2, "fast-forward replays the same bits");
        // A cold-page touch on a non-covered L1 set (set 2; the program
        // occupies sets 0 and 1) bumps the DTLB generation without
        // killing the entry.
        m.access(0, 0x80_080, 8, AccessKind::Load);
        let ff = m.signature_fast_forwards();
        let mut c4 = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut c4);
        assert_eq!(
            m.signature_fast_forwards(),
            ff,
            "a generation bump must force the slow replay path"
        );
        assert_eq!(c4, c2, "the slow replay still matches");
        assert_eq!(m.signature_replays(), 3);
        // Re-convergence takes two runs: the post-disturbance replay
        // recorded the *disturbed* start state, so the next run replays
        // slow and re-records the steady trajectory — and the one after
        // that fast-forwards again.
        let mut c5 = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut c5);
        assert_eq!(
            m.signature_fast_forwards(),
            ff,
            "start state not steady yet"
        );
        assert_eq!(c5, c2);
        let mut c6 = Cost::ZERO;
        m.run_program(0, &prog, &bases, &mut c6);
        assert_eq!(
            m.signature_fast_forwards(),
            ff + 1,
            "fast-forward re-enters"
        );
        assert_eq!(c6, c2);
    }

    /// Batch resolution over strided rows: one attribution window, the
    /// first row walks and arms, the rest replay — and a cold row in the
    /// middle falls back to the per-row walk without disturbing the
    /// rows after it.
    #[test]
    fn batch_resolution_matches_per_row_reference() {
        let mut m = tiny();
        let mut r = MemoryHierarchy::with_reference_walk(&tiny_params());
        m.warm(0, 0x50_000, 2 * 64);
        r.warm(0, 0x50_000, 2 * 64);
        let prog = ProgramBuilder::new().store(0, 0, 16).compute(7).build();
        let rows: Vec<[u64; 1]> = (0..8).map(|i| [0x50_000 + i * 16]).collect();
        let (mut cf, mut cr) = (Cost::ZERO, Cost::ZERO);
        let replayed = m.run_program_batch(0, &prog, &rows, &mut cf);
        for row in &rows {
            r.run_program(0, &prog, row, &mut cr);
        }
        assert_eq!(cf, cr, "batch must accumulate the same bits in row order");
        assert_eq!(m.counters(), r.counters());
        assert_eq!(replayed, 7, "row 0 walks and arms, rows 1..8 replay");
        // Mid-batch fallback: a cold row fails verification, walks, and
        // re-arms; the remaining rows replay against the new key.
        let mut rows2: Vec<[u64; 1]> = (0..4).map(|i| [0x50_000 + i * 16]).collect();
        rows2.insert(2, [0x6E_000]);
        let (mut cf2, mut cr2) = (Cost::ZERO, Cost::ZERO);
        let replayed2 = m.run_program_batch(0, &prog, &rows2, &mut cf2);
        for row in &rows2 {
            r.run_program(0, &prog, row, &mut cr2);
        }
        assert_eq!(cf2, cr2);
        assert_eq!(m.counters(), r.counters());
        assert_eq!(
            replayed2, 3,
            "the cold row and the re-arm row walk, the rest replay"
        );
    }

    /// The kill counter observes every invalidation path (the PMD's
    /// steady-state witness counts kill-free batches against it).
    #[test]
    fn signature_kills_count_invalidations() {
        let mut m = tiny();
        let prog = ProgramBuilder::new().load(0, 0, 8).build();
        let mut c = Cost::ZERO;
        m.run_program(0, &prog, &[0x20_000], &mut c);
        assert_eq!(m.signature_kills(), 0);
        // Foreign same-set touch.
        m.access(0, 0x20_100, 8, AccessKind::Load);
        assert_eq!(m.signature_kills(), 1);
        m.run_program(0, &prog, &[0x3000], &mut c);
        m.dma_write(0x3000, 64);
        assert_eq!(m.signature_kills(), 2, "DMA invalidation must count");
    }
}
