//! TLB models (DTLB + STLB).
//!
//! The paper argues that declaring the element graph statically lets the
//! elements live in a contiguous `.data`/arena segment, "potentially
//! resulting in a less fragmented access pattern and fewer translation
//! lookaside buffer (TLB) misses" (§3.2.1). The simulator therefore
//! tracks page translations: scattered heap allocations touch many pages;
//! an arena touches few.

use crate::cache::{CacheParams, SetAssocCache};

/// Sentinel for "no page translated yet" in the last-page MRU slot.
/// Never a real page identifier: hierarchy page keys are at most
/// `addr >> 12` or a 2-MiB key with bit 30 set, both far below the
/// all-ones value.
const NO_PAGE: u64 = u64::MAX;

/// A two-level TLB (per-core DTLB backed by a unified STLB).
///
/// Implemented as set-associative caches over page addresses, fronted by
/// a one-entry MRU slot holding the most recently translated page: the
/// dominant access pattern (consecutive touches inside one page) resolves
/// without consulting the DTLB structure at all. The slot is pure
/// memoization — after any translation the page is the DTLB's
/// most-recently-used entry, so a repeat is always a free DTLB hit and
/// skipping the lookup changes no state and no counter except the access
/// count, which the slot maintains itself.
#[derive(Debug, Clone)]
pub struct Tlb {
    page_shift: u32,
    dtlb: SetAssocCache,
    stlb: SetAssocCache,
    dtlb_misses: u64,
    stlb_misses: u64,
    accesses: u64,
    /// The page passed to the most recent [`Tlb::translate_page`] call.
    last_page: u64,
    /// DTLB fill generation: bumped whenever the DTLB's *contents* can
    /// change — a miss fills a new entry (possibly evicting one) and a
    /// reset empties the structure. Hits only reorder recency, never
    /// membership, so an unchanged generation proves that every page
    /// previously observed DTLB-resident is still resident. This is the
    /// witness the hierarchy's steady-state fast-forward uses to skip
    /// re-proving a recorded replay trajectory.
    gen: u64,
}

/// Where a translation was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// DTLB hit — free.
    Dtlb,
    /// DTLB miss, STLB hit — a few cycles.
    Stlb,
    /// Full page walk.
    Walk,
}

impl Tlb {
    /// Creates a TLB with Skylake-like geometry: 64-entry 4-way DTLB,
    /// 1536-entry 12-way STLB, 4-KiB pages.
    pub fn skylake() -> Self {
        Tlb::new(64, 4, 1536, 12, 12)
    }

    /// Creates a TLB with explicit geometry.
    ///
    /// # Panics
    ///
    /// Panics if entries/associativity do not form power-of-two set counts.
    pub fn new(
        dtlb_entries: usize,
        dtlb_assoc: usize,
        stlb_entries: usize,
        stlb_assoc: usize,
        page_shift: u32,
    ) -> Self {
        // Reuse the cache structure with a "line size" of one page-entry
        // (8 bytes, arbitrary — only the set math matters).
        let entry = 8;
        Tlb {
            page_shift,
            dtlb: SetAssocCache::new(CacheParams::new(dtlb_entries * entry, dtlb_assoc, entry)),
            stlb: SetAssocCache::new(CacheParams::new(stlb_entries * entry, stlb_assoc, entry)),
            dtlb_misses: 0,
            stlb_misses: 0,
            accesses: 0,
            last_page: NO_PAGE,
            gen: 0,
        }
    }

    /// Translates the page containing byte address `addr` (4-KiB pages).
    #[inline]
    pub fn translate(&mut self, addr: u64) -> TlbOutcome {
        self.translate_page(addr >> self.page_shift)
    }

    /// Translates a pre-computed page identifier (callers with mixed
    /// page sizes compute their own keys).
    #[inline]
    pub fn translate_page(&mut self, page: u64) -> TlbOutcome {
        self.accesses += 1;
        if page == self.last_page {
            // The previous translation left this page as the DTLB's MRU
            // entry; re-touching the MRU entry would change nothing.
            return TlbOutcome::Dtlb;
        }
        self.last_page = page;
        // Feed page numbers (shifted) as "addresses" to the entry caches;
        // multiply by the entry size so the set math sees distinct lines.
        let key = page * 8;
        if self.dtlb.access(key).hit {
            return TlbOutcome::Dtlb;
        }
        self.dtlb_misses += 1;
        // The miss fill below changes DTLB membership.
        self.gen += 1;
        if self.stlb.access(key).hit {
            return TlbOutcome::Stlb;
        }
        self.stlb_misses += 1;
        TlbOutcome::Walk
    }

    /// Fast path for a caller that already knows this translation targets
    /// the same page as the immediately preceding [`Tlb::translate_page`]
    /// call: counts the access and returns. Equivalent to re-translating
    /// that page (a guaranteed free DTLB hit).
    #[inline]
    pub fn repeat_last(&mut self) {
        debug_assert!(self.last_page != NO_PAGE, "no previous translation");
        self.accesses += 1;
    }

    /// Returns true if translating `page` right now would be a free DTLB
    /// hit that changes no replacement state: either it is the last-page
    /// memo, or it sits in the DTLB's MRU slot for its set. No state
    /// change — this is the residency proof the hierarchy's
    /// access-signature replay uses.
    #[inline]
    pub fn replay_class(&self, page: u64) -> bool {
        page == self.last_page || self.dtlb.is_mru(page * 8)
    }

    /// The page in the last-page memo slot (the hierarchy's replay
    /// simulation starts its walk from here).
    #[inline]
    pub(crate) fn last_page(&self) -> u64 {
        self.last_page
    }

    /// The DTLB fill generation (see the field doc). Host-side only: it
    /// gates which of two bit-identical resolution paths runs, never
    /// simulated state.
    #[inline]
    pub(crate) fn generation(&self) -> u64 {
        self.gen
    }

    /// Whether `page` is DTLB-resident in *any* way, so a translation
    /// would be a free hit — possibly reordering its set's recency
    /// state, which the hierarchy's signature replay applies for real
    /// via [`Tlb::dtlb_touch`]. Unlike [`Tlb::replay_class`] this
    /// ignores the last-page memo — the replay simulation tracks that
    /// separately as it walks. No state change.
    #[inline]
    pub(crate) fn dtlb_resident(&self, page: u64) -> bool {
        self.dtlb.probe(page * 8)
    }

    /// Applies the state effect of one real DTLB-hit translation of
    /// `page` (proven resident by [`Tlb::dtlb_resident`]): exactly the
    /// `dtlb.access` promotion [`Tlb::translate_page`] performs, minus
    /// the access count and last-page memo, which [`Tlb::replay_hits`]
    /// batches at the end of the replayed walk.
    #[inline]
    pub(crate) fn dtlb_touch(&mut self, page: u64) {
        let hit = self.dtlb.access(page * 8).hit;
        debug_assert!(hit, "replay touch of a non-resident page");
    }

    /// Replays `n` translations of `page`, all proven free DTLB hits by
    /// [`Tlb::replay_class`]: bumps the access count and installs `page`
    /// as the last-page memo — exactly the state a walk of `n` same-page
    /// lines would leave (the first translation either repeats the memo
    /// or MRU-hits the DTLB without reordering it; the rest repeat).
    #[inline]
    pub fn replay_hits(&mut self, n: u64, page: u64) {
        debug_assert!(self.replay_class(page), "replaying a non-resident page");
        self.accesses += n;
        self.last_page = page;
    }

    /// Total translations requested.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// DTLB misses (including those that hit STLB).
    pub fn dtlb_misses(&self) -> u64 {
        self.dtlb_misses
    }

    /// Full page walks.
    pub fn stlb_misses(&self) -> u64 {
        self.stlb_misses
    }

    /// Clears all entries and counters.
    pub fn reset(&mut self) {
        self.dtlb.flush();
        self.stlb.flush();
        self.dtlb_misses = 0;
        self.stlb_misses = 0;
        self.accesses = 0;
        self.last_page = NO_PAGE;
        // Membership changed (everything left); prior residency proofs
        // are void.
        self.gen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits_after_walk() {
        let mut t = Tlb::skylake();
        assert_eq!(t.translate(0x1_0000), TlbOutcome::Walk);
        assert_eq!(t.translate(0x1_0040), TlbOutcome::Dtlb);
        assert_eq!(t.translate(0x1_0fff), TlbOutcome::Dtlb);
        assert_eq!(t.translate(0x1_1000), TlbOutcome::Walk, "next page");
    }

    #[test]
    fn small_working_set_stays_in_dtlb() {
        let mut t = Tlb::skylake();
        for p in 0..16u64 {
            t.translate(p << 12);
        }
        let walks_before = t.stlb_misses();
        for _ in 0..100 {
            for p in 0..16u64 {
                assert_eq!(t.translate(p << 12), TlbOutcome::Dtlb);
            }
        }
        assert_eq!(t.stlb_misses(), walks_before);
    }

    #[test]
    fn dtlb_overflow_falls_back_to_stlb() {
        let mut t = Tlb::skylake();
        // Touch 256 pages: way more than the 64-entry DTLB, well within STLB.
        for p in 0..256u64 {
            t.translate(p << 12);
        }
        // Second sweep: DTLB thrashes but STLB holds every page.
        let mut stlb_hits = 0;
        for p in 0..256u64 {
            if t.translate(p << 12) == TlbOutcome::Stlb {
                stlb_hits += 1;
            }
        }
        assert!(stlb_hits > 150, "most should be STLB hits, got {stlb_hits}");
    }

    #[test]
    fn huge_working_set_walks() {
        let mut t = Tlb::skylake();
        for p in 0..8192u64 {
            t.translate(p << 12);
        }
        let walks = t.stlb_misses();
        for p in 0..8192u64 {
            t.translate(p << 12);
        }
        assert!(
            t.stlb_misses() > walks + 4000,
            "second sweep of 8k pages should still walk"
        );
    }

    #[test]
    fn repeat_last_counts_as_dtlb_hit() {
        let mut t = Tlb::skylake();
        assert_eq!(t.translate(0x5000), TlbOutcome::Walk);
        let misses = t.dtlb_misses();
        t.repeat_last();
        assert_eq!(t.accesses(), 2);
        assert_eq!(t.dtlb_misses(), misses, "repeat is a free DTLB hit");
        assert_eq!(t.translate(0x5001), TlbOutcome::Dtlb, "same page memoized");
    }

    #[test]
    fn reset_clears() {
        let mut t = Tlb::skylake();
        t.translate(0);
        t.reset();
        assert_eq!(t.accesses(), 0);
        assert_eq!(t.translate(0), TlbOutcome::Walk);
    }
}
