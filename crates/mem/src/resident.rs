//! An exact over-approximation of "lines possibly held by a core cache".
//!
//! DMA writes and inclusive-LLC evictions must invalidate stale copies in
//! every core's private L1/L2 — per-core scans that the DMA path pays for
//! every delivered line even though the vast majority of DMA'd lines were
//! never demand-touched by any core. This filter records every line that
//! is demand- or warm-filled into a private cache; a line absent from the
//! filter is therefore provably absent from every L1/L2 (and, via the
//! last-line invariant, from every memo and armed signature), so the
//! invalidation scan can be skipped with bit-identical simulated state.
//!
//! False positives are harmless (the scan runs and finds nothing); the
//! filter only ever skips work that would have been a no-op. Entries are
//! removed when an invalidation scan actually runs for a line, which
//! keeps the set tight around the live private-cache footprint.
//!
//! The same absence proof serves as the delta-class replay's fast-fail:
//! before paying an L1 `is_mru` probe for a line the armed signature has
//! not seen, the hierarchy asks the filter — a line in no private cache
//! cannot be L1-MRU-resident, so the miss is decided on one word test.
//! (The converse direction is the invariant that makes the probe order
//! sound: every L1-resident line was inserted by its fill, and removal
//! happens only through invalidations that also purge the L1 copy.)
//!
//! Implementation: a plain bitmap indexed by line number. Simulated
//! addresses come from a bump allocator and stay within a few hundred
//! MiB, so the bitmap tops out at a few hundred KiB — one host word
//! test/set per operation, no hashing, no rehash growth, no unsafe.

/// Bitmap of cache-line numbers (`addr >> 6`).
#[derive(Debug, Clone, Default)]
pub(crate) struct ResidentFilter {
    words: Vec<u64>,
}

impl ResidentFilter {
    pub(crate) fn new() -> Self {
        ResidentFilter { words: Vec::new() }
    }

    /// Inserts `line` (a 64-byte-aligned address; idempotent).
    #[inline]
    pub(crate) fn insert(&mut self, line: u64) {
        let idx = (line >> 12) as usize; // line number / 64
        let bit = 1u64 << ((line >> 6) & 63);
        if idx >= self.words.len() {
            self.words.resize(idx + 1 + idx / 2, 0);
        }
        self.words[idx] |= bit;
    }

    /// Whether `line` may be held by a private cache. `false` is a
    /// proof of absence (the insert paths cover every private fill);
    /// `true` only means "possibly".
    #[inline]
    pub(crate) fn contains(&self, line: u64) -> bool {
        let idx = (line >> 12) as usize;
        let bit = 1u64 << ((line >> 6) & 63);
        matches!(self.words.get(idx), Some(w) if w & bit != 0)
    }

    /// Removes `line` if present; returns whether it was present.
    #[inline]
    pub(crate) fn remove(&mut self, line: u64) -> bool {
        let idx = (line >> 12) as usize;
        let bit = 1u64 << ((line >> 6) & 63);
        match self.words.get_mut(idx) {
            Some(w) if *w & bit != 0 => {
                *w &= !bit;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_round_trip() {
        let mut f = ResidentFilter::new();
        for i in 0..1000u64 {
            f.insert(i * 64);
        }
        for i in 0..1000u64 {
            assert!(f.remove(i * 64), "line {i} missing");
        }
        for i in 0..1000u64 {
            assert!(!f.remove(i * 64), "line {i} still present");
        }
    }

    #[test]
    fn idempotent_insert() {
        let mut f = ResidentFilter::new();
        f.insert(0x1000);
        f.insert(0x1000);
        assert!(f.remove(0x1000));
        assert!(!f.remove(0x1000));
    }

    #[test]
    fn absent_lines_report_absent() {
        let mut f = ResidentFilter::new();
        assert!(!f.remove(0));
        f.insert(64 * 1024 * 1024);
        assert!(!f.remove(64 * 1024 * 1024 + 64));
        assert!(f.remove(64 * 1024 * 1024));
    }

    #[test]
    fn distinct_lines_do_not_alias() {
        let mut f = ResidentFilter::new();
        // Neighbouring lines and lines 4 KiB apart share words/indices in
        // ways that must not alias.
        for i in 0..256u64 {
            f.insert(i * 64);
        }
        for i in (0..256u64).step_by(2) {
            assert!(f.remove(i * 64));
        }
        for i in 0..256u64 {
            assert_eq!(f.remove(i * 64), i % 2 == 1, "line {i}");
        }
    }
}
