//! Precompiled per-touch-site **access programs**.
//!
//! The hot per-packet charging pattern is a fixed *shape*: the same
//! sequence of descriptor, metadata, and payload spans with the same
//! read/write kinds and the same interleaved compute charges, varying
//! only in a handful of base addresses (which descriptor slot, which
//! packet buffer). An [`AccessProgram`] captures that shape once — at
//! element/ring/queue construction time, the simulator's analogue of the
//! paper's "pay at compile time, not per packet" LLVM passes — as a flat
//! list of steps over numbered base registers. The hierarchy resolves a
//! program in one tight loop ([`crate::MemoryHierarchy::run_program`])
//! with a single attribution update, and can memoize the entire outcome
//! when the residency of every line is provably known (see the
//! access-signature cache in `hierarchy`).
//!
//! A program is *semantically defined* as the equivalent call sequence:
//!
//! ```text
//! for step in steps {
//!     Load/Store  =>  *cost += mem.access_range(core, base[b] + off, len, kind)
//!     Prefetch    =>  *cost += mem.prefetch(core, base[b] + off, len)
//!     Compute(n)  =>  *cost += Cost::compute(n)
//!     Charge(c)   =>  *cost += c
//! }
//! ```
//!
//! and every resolver path (tight walk, signature replay, reference
//! mode) must be bit-identical to that sequence — same `f64` operation
//! order, same counters, same cache/TLB state.

use crate::cost::Cost;
use crate::{lines_spanned, LINE};
use std::sync::atomic::{AtomicU64, Ordering};

/// Program identities only key memo tables; values never influence
/// simulated state, so a process-wide counter is fine.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// One step of an [`AccessProgram`].
#[derive(Debug, Clone, Copy)]
pub enum StepOp {
    /// Demand-load `len` bytes at `bases[base] + offset`.
    Load,
    /// Store `len` bytes at `bases[base] + offset`.
    Store,
    /// Software-prefetch `len` bytes at `bases[base] + offset`.
    Prefetch,
    /// Charge `n` computed instructions (no memory traffic).
    Compute(u32),
    /// Charge a fixed cost (dispatch penalties, stalls).
    Charge(Cost),
}

/// A single resolved step: operation + address operands.
#[derive(Debug, Clone, Copy)]
pub struct Step {
    /// What to do.
    pub op: StepOp,
    /// Index into the caller-supplied base array (memory ops only).
    pub base: u8,
    /// Byte offset from the base.
    pub offset: u32,
    /// Span length in bytes (memory ops only).
    pub len: u32,
}

impl Step {
    /// True for Load/Store/Prefetch.
    #[inline]
    pub(crate) fn is_mem(&self) -> bool {
        matches!(self.op, StepOp::Load | StepOp::Store | StepOp::Prefetch)
    }

    /// Absolute span start for the given base values.
    #[inline]
    pub(crate) fn addr(&self, bases: &[u64]) -> u64 {
        bases[self.base as usize] + u64::from(self.offset)
    }
}

/// A precompiled charge set for one (element, layout, stage) touch site.
#[derive(Debug, Clone)]
pub struct AccessProgram {
    pub(crate) steps: Vec<Step>,
    pub(crate) id: u64,
    pub(crate) n_bases: u8,
    /// Total lines spanned by Load + Store steps (prefetch excluded —
    /// prefetch touches count no demand events).
    pub(crate) load_lines: u64,
    pub(crate) store_lines: u64,
    /// Total lines spanned by all memory steps (every one consults the
    /// TLB once in the all-resident case).
    pub(crate) mem_lines: u64,
    /// Whether the hierarchy should ever try to memoize this program's
    /// access signature. Builders turn this off for touch sites whose
    /// bases cycle every invocation (per-completion descriptor/buffer
    /// programs), where the post-walk arming probe is pure waste.
    pub(crate) memoize: bool,
}

impl AccessProgram {
    /// The program's identity (keys the hierarchy's signature cache).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of base registers the caller must supply.
    pub fn base_count(&self) -> usize {
        usize::from(self.n_bases)
    }

    /// Number of steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Total cache lines spanned by demand (load/store) steps.
    pub fn demand_lines(&self) -> u64 {
        self.load_lines + self.store_lines
    }
}

/// Builder for [`AccessProgram`].
///
/// ```
/// use pm_mem::program::ProgramBuilder;
/// let prog = ProgramBuilder::new()
///     .prefetch(0, 0, 64)
///     .load(0, 0, 32)
///     .compute(18)
///     .store(1, 0, 64)
///     .build();
/// assert_eq!(prog.base_count(), 2);
/// assert_eq!(prog.demand_lines(), 2);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    steps: Vec<Step>,
    memoize: bool,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        ProgramBuilder {
            steps: Vec::new(),
            memoize: true,
        }
    }

    /// Declares that this program's bases cycle per invocation (ring
    /// slots, pool buffers), so the hierarchy should skip signature
    /// arming entirely: a signature keyed on ever-changing bases would
    /// never be replayed.
    pub fn no_memoize(mut self) -> Self {
        self.memoize = false;
        self
    }

    fn mem(mut self, op: StepOp, base: u8, offset: u32, len: u32) -> Self {
        assert!(len > 0, "zero-length memory step");
        self.steps.push(Step {
            op,
            base,
            offset,
            len,
        });
        self
    }

    /// Appends a demand load of `len` bytes at `bases[base] + offset`.
    pub fn load(self, base: u8, offset: u32, len: u32) -> Self {
        self.mem(StepOp::Load, base, offset, len)
    }

    /// Appends a store of `len` bytes at `bases[base] + offset`.
    pub fn store(self, base: u8, offset: u32, len: u32) -> Self {
        self.mem(StepOp::Store, base, offset, len)
    }

    /// Appends a software prefetch of `len` bytes.
    pub fn prefetch(self, base: u8, offset: u32, len: u32) -> Self {
        self.mem(StepOp::Prefetch, base, offset, len)
    }

    /// Appends an `n`-instruction compute charge.
    pub fn compute(mut self, n: u32) -> Self {
        self.steps.push(Step {
            op: StepOp::Compute(n),
            base: 0,
            offset: 0,
            len: 0,
        });
        self
    }

    /// Appends a fixed-cost charge.
    pub fn charge(mut self, c: Cost) -> Self {
        self.steps.push(Step {
            op: StepOp::Charge(c),
            base: 0,
            offset: 0,
            len: 0,
        });
        self
    }

    /// Finalizes the program.
    pub fn build(self) -> AccessProgram {
        let mut n_bases = 0u16;
        let (mut load_lines, mut store_lines, mut mem_lines) = (0u64, 0u64, 0u64);
        for s in &self.steps {
            if s.is_mem() {
                n_bases = n_bases.max(u16::from(s.base) + 1);
                // Worst-case line count (an unaligned base can add one
                // more line); exact counts are recomputed per resolve
                // from the live base values. These totals only size the
                // all-resident signature bookkeeping, which is rebuilt
                // per (program, bases) anyway — but with every simulated
                // allocator line-aligning bases, offset-relative counts
                // are exact in practice.
                let n = lines_spanned(u64::from(s.offset), u64::from(s.len));
                mem_lines += n;
                match s.op {
                    StepOp::Load => load_lines += n,
                    StepOp::Store => store_lines += n,
                    _ => {}
                }
            }
        }
        assert!(n_bases <= 16, "too many base registers");
        AccessProgram {
            steps: self.steps,
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            n_bases: n_bases as u8,
            load_lines,
            store_lines,
            mem_lines,
            memoize: self.memoize,
        }
    }
}

/// Returns the deduplicated, sorted list of line-offsets (in lines,
/// relative to a line-aligned base) covered by `(offset, len)` field
/// spans — the build-time analogue of the per-packet "compute the line
/// of every field, sort, dedup" loop the X-Change commit path used to
/// run. Exact when the base the program will run against is 64-byte
/// aligned, which every simulated allocator guarantees.
pub fn dedup_field_lines(fields: &[(u32, u32)]) -> Vec<u32> {
    let mut lines: Vec<u32> = Vec::new();
    for &(off, size) in fields {
        assert!(size > 0, "zero-sized field");
        let first = off / LINE as u32;
        let last = (off + size - 1) / LINE as u32;
        for l in first..=last {
            lines.push(l);
        }
    }
    lines.sort_unstable();
    lines.dedup();
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts_bases_and_lines() {
        let p = ProgramBuilder::new()
            .prefetch(0, 0, 64)
            .load(0, 0, 32)
            .compute(18)
            .prefetch(1, 0, 128)
            .compute(2)
            .store(2, 0, 64)
            .compute(16)
            .build();
        assert_eq!(p.base_count(), 3);
        assert_eq!(p.step_count(), 7);
        assert_eq!(p.load_lines, 1);
        assert_eq!(p.store_lines, 1);
        assert_eq!(p.mem_lines, 5); // 1 + 1 + 2 prefetch + 1 store
    }

    #[test]
    fn ids_are_unique() {
        let a = ProgramBuilder::new().load(0, 0, 8).build();
        let b = ProgramBuilder::new().load(0, 0, 8).build();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn dedup_field_lines_matches_per_packet_dedup() {
        // Two fields in line 0, one straddling lines 1-2.
        let lines = dedup_field_lines(&[(0, 8), (60, 2), (100, 30)]);
        assert_eq!(lines, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_len_step_rejected() {
        let _ = ProgramBuilder::new().load(0, 0, 0);
    }
}
