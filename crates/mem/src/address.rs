//! Simulated virtual-address-space management.
//!
//! Every simulated object (mbuf pools, packet data buffers, descriptor
//! rings, element state, the WorkPackage array) is assigned a region of a
//! synthetic virtual address space; the cache and TLB models then operate
//! on those addresses. Two placement policies matter to the paper:
//!
//! * [`AddressSpace::alloc`] — contiguous bump allocation (the *static
//!   graph* arena: element state packed into a few pages);
//! * [`ScatterAlloc`] — allocations spread pseudo-randomly across a large
//!   heap span with per-allocation jitter, emulating the fragmented
//!   layout of a long-running `malloc` heap (the *dynamic graph* case).

use pm_sim::SplitMix64;

/// A named, contiguous region of simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl Region {
    /// Address of byte `off` within the region.
    ///
    /// # Panics
    ///
    /// Panics if `off >= size`.
    #[inline]
    pub fn at(&self, off: u64) -> u64 {
        assert!(
            off < self.size,
            "offset {off} out of region (size {})",
            self.size
        );
        self.base + off
    }

    /// Splits the region into `n` equal chunks.
    ///
    /// # Panics
    ///
    /// Panics if the region does not divide evenly.
    pub fn chunks(&self, n: u64) -> Vec<Region> {
        assert!(
            n > 0 && self.size.is_multiple_of(n),
            "region does not split into {n}"
        );
        let sz = self.size / n;
        (0..n)
            .map(|i| Region {
                base: self.base + i * sz,
                size: sz,
            })
            .collect()
    }

    /// True if `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size
    }
}

/// A bump allocator over the simulated address space.
///
/// Regions never overlap; alignment is respected; a guard gap separates
/// regions so off-by-one charging bugs surface as distinct lines.
#[derive(Debug)]
pub struct AddressSpace {
    next: u64,
}

/// Default alignment for allocated regions (one cache line).
pub const DEFAULT_ALIGN: u64 = 64;
const GUARD: u64 = 4096;

impl AddressSpace {
    /// Creates an address space starting at a non-zero base (so address 0
    /// never aliases a real object).
    pub fn new() -> Self {
        AddressSpace { next: 0x1_0000 }
    }

    /// Allocates `size` bytes aligned to `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or `size` is zero.
    pub fn alloc_aligned(&mut self, size: u64, align: u64) -> Region {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(size > 0, "zero-sized region");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + size + GUARD;
        Region { base, size }
    }

    /// Allocates `size` bytes with cache-line alignment.
    pub fn alloc(&mut self, size: u64) -> Region {
        self.alloc_aligned(size, DEFAULT_ALIGN)
    }

    /// Allocates a page-aligned region (4 KiB).
    pub fn alloc_pages(&mut self, size: u64) -> Region {
        self.alloc_aligned(size, 4096)
    }

    /// Reserves a large span for use by a [`ScatterAlloc`].
    pub fn reserve_heap(&mut self, size: u64) -> Region {
        self.alloc_aligned(size, 4096)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// A fragmented-heap allocator: each allocation is placed at a
/// pseudo-random, cache-line-aligned offset progressing through a large
/// span, with random gaps between allocations.
///
/// This reproduces the access-pattern consequences of `malloc`-ing
/// element objects one by one on a long-lived heap: objects land on many
/// distinct pages, do not share cache lines, and have no spatial locality
/// with their graph neighbours.
#[derive(Debug)]
pub struct ScatterAlloc {
    span: Region,
    cursor: u64,
    rng: SplitMix64,
    /// Maximum random gap inserted between consecutive allocations.
    max_gap: u64,
}

impl ScatterAlloc {
    /// Creates a scatter allocator over `span` with the default gap
    /// distribution (0–16 KiB between objects).
    pub fn new(span: Region, seed: u64) -> Self {
        ScatterAlloc {
            span,
            cursor: 0,
            rng: SplitMix64::new(seed),
            max_gap: 16 * 1024,
        }
    }

    /// Allocates `size` bytes somewhere in the span.
    ///
    /// # Panics
    ///
    /// Panics if the span is exhausted.
    pub fn alloc(&mut self, size: u64) -> Region {
        let gap = self.rng.next_below(self.max_gap + 1) & !(DEFAULT_ALIGN - 1);
        let base_off = (self.cursor + gap + DEFAULT_ALIGN - 1) & !(DEFAULT_ALIGN - 1);
        assert!(
            base_off + size <= self.span.size,
            "scatter heap exhausted ({} + {} > {})",
            base_off,
            size,
            self.span.size
        );
        self.cursor = base_off + size;
        Region {
            base: self.span.base + base_off,
            size,
        }
    }

    /// Bytes remaining before exhaustion (ignoring future gaps).
    pub fn remaining(&self) -> u64 {
        self.span.size - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc(100);
        let r2 = a.alloc(100);
        assert!(r1.base + r1.size <= r2.base);
    }

    #[test]
    fn alignment_respected() {
        let mut a = AddressSpace::new();
        let r = a.alloc_aligned(10, 4096);
        assert_eq!(r.base % 4096, 0);
        let r = a.alloc(10);
        assert_eq!(r.base % 64, 0);
    }

    #[test]
    fn region_at_and_contains() {
        let r = Region {
            base: 0x1000,
            size: 64,
        };
        assert_eq!(r.at(0), 0x1000);
        assert_eq!(r.at(63), 0x103f);
        assert!(r.contains(0x1000));
        assert!(!r.contains(0x1040));
    }

    #[test]
    #[should_panic(expected = "out of region")]
    fn region_at_bounds_checked() {
        let r = Region { base: 0, size: 8 };
        let _ = r.at(8);
    }

    #[test]
    fn chunks_partition() {
        let r = Region {
            base: 0x2000,
            size: 256,
        };
        let cs = r.chunks(4);
        assert_eq!(cs.len(), 4);
        assert_eq!(cs[0].base, 0x2000);
        assert_eq!(cs[3].base, 0x2000 + 192);
        assert!(cs.iter().all(|c| c.size == 64));
    }

    #[test]
    fn scatter_spreads_allocations() {
        let mut a = AddressSpace::new();
        let heap = a.reserve_heap(64 * 1024 * 1024);
        let mut s = ScatterAlloc::new(heap, 42);
        let regions: Vec<Region> = (0..64).map(|_| s.alloc(128)).collect();
        // No overlaps, all within the span.
        for w in regions.windows(2) {
            assert!(w[0].base + w[0].size <= w[1].base);
        }
        assert!(regions.iter().all(|r| heap.contains(r.base)));
        // Spread across many pages (that's the point).
        let pages: std::collections::HashSet<u64> = regions.iter().map(|r| r.base >> 12).collect();
        assert!(
            pages.len() > 32,
            "expected scattered pages, got {}",
            pages.len()
        );
    }

    #[test]
    fn scatter_deterministic() {
        let heap = Region {
            base: 0,
            size: 1 << 20,
        };
        let mut a = ScatterAlloc::new(heap, 7);
        let mut b = ScatterAlloc::new(heap, 7);
        for _ in 0..16 {
            assert_eq!(a.alloc(64).base, b.alloc(64).base);
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn scatter_exhaustion_detected() {
        let heap = Region {
            base: 0,
            size: 4096,
        };
        let mut s = ScatterAlloc::new(heap, 1);
        for _ in 0..1000 {
            let _ = s.alloc(512);
        }
    }
}
