//! Scoped cost/event attribution — the simulator's "perf record".
//!
//! The hierarchy already maintains aggregate [`MemCounters`]; this module
//! adds an optional attribution layer that tags every counted cache/TLB
//! event and every explicitly charged [`Cost`] with the *currently
//! executing scope* — an element of the NF graph or one of the synthetic
//! pipeline stages (`rx/pmd`, `tx`, `mempool`, `metadata`, `scheduler`).
//!
//! Attribution is strictly bookkeeping: enabling it never changes cache
//! state, charged costs, or any measurement, so profiled and unprofiled
//! runs produce bit-identical [`Cost`] streams. When disabled (the
//! default) every hook is a no-op.
//!
//! [`MemCounters`]: crate::MemCounters
//! [`Cost`]: crate::Cost

use crate::cost::Cost;
use crate::hierarchy::MemCounters;

/// Handle to a registered attribution scope.
///
/// The built-in pipeline stages have fixed ids ([`SCOPE_RX`] …
/// [`SCOPE_SCHEDULER`]); element scopes are registered by name via
/// [`MemoryHierarchy::register_scope`](crate::MemoryHierarchy::register_scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeId(pub(crate) usize);

/// NIC receive path: PMD poll loop, CQE/descriptor handling, RX doorbell.
pub const SCOPE_RX: ScopeId = ScopeId(0);
/// NIC transmit path: WQE writes, completion reaping, TX doorbell.
pub const SCOPE_TX: ScopeId = ScopeId(1);
/// Buffer-pool ring traffic (alloc/free cycling through the mempool).
pub const SCOPE_MEMPOOL: ScopeId = ScopeId(2);
/// Per-packet metadata construction/teardown (`begin_packet`/`end_packet`).
pub const SCOPE_METADATA: ScopeId = ScopeId(3);
/// Engine overhead not tied to an element: batch amortization, scheduling.
pub const SCOPE_SCHEDULER: ScopeId = ScopeId(4);

/// Names of the built-in stages, indexed by their fixed [`ScopeId`].
pub(crate) const BUILTIN_SCOPES: [&str; 5] = ["rx/pmd", "tx", "mempool", "metadata", "scheduler"];

/// Everything attributed to one scope since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScopeProfile {
    /// Cache/TLB events that occurred while this scope was current.
    pub counters: MemCounters,
    /// Cost explicitly charged to this scope.
    pub cost: Cost,
    /// Packets processed by this scope (hops for elements, bursts' packet
    /// counts for the rx/tx stages).
    pub packets: u64,
}

/// The attribution table carried by a hierarchy when profiling is on.
#[derive(Debug, Clone)]
pub(crate) struct Attribution {
    /// `(name, profile)` in registration order: built-ins first, then
    /// element scopes in the order the runtime registered them.
    scopes: Vec<(String, ScopeProfile)>,
    current: usize,
}

impl Attribution {
    pub(crate) fn new() -> Self {
        Attribution {
            scopes: BUILTIN_SCOPES
                .iter()
                .map(|n| (n.to_string(), ScopeProfile::default()))
                .collect(),
            current: SCOPE_SCHEDULER.0,
        }
    }

    pub(crate) fn register(&mut self, name: &str) -> ScopeId {
        if let Some(i) = self.scopes.iter().position(|(n, _)| n == name) {
            return ScopeId(i);
        }
        self.scopes
            .push((name.to_string(), ScopeProfile::default()));
        ScopeId(self.scopes.len() - 1)
    }

    pub(crate) fn set_current(&mut self, id: ScopeId) -> ScopeId {
        let prev = ScopeId(self.current);
        self.current = id.0;
        prev
    }

    pub(crate) fn add_counters(&mut self, delta: &MemCounters) {
        let base = &mut self.scopes[self.current].1.counters;
        base.loads += delta.loads;
        base.stores += delta.stores;
        base.l1d_load_misses += delta.l1d_load_misses;
        base.llc_loads += delta.llc_loads;
        base.llc_load_misses += delta.llc_load_misses;
        base.llc_stores += delta.llc_stores;
        base.llc_store_misses += delta.llc_store_misses;
        base.dma_write_lines += delta.dma_write_lines;
        base.dma_read_lines += delta.dma_read_lines;
        base.dtlb_misses += delta.dtlb_misses;
        base.page_walks += delta.page_walks;
        base.prefetch_misses += delta.prefetch_misses;
    }

    pub(crate) fn charge(&mut self, id: ScopeId, cost: Cost) {
        if let Some((_, p)) = self.scopes.get_mut(id.0) {
            p.cost += cost;
        }
    }

    pub(crate) fn add_packets(&mut self, id: ScopeId, n: u64) {
        if let Some((_, p)) = self.scopes.get_mut(id.0) {
            p.packets += n;
        }
    }

    pub(crate) fn reset(&mut self) {
        for (_, p) in &mut self.scopes {
            *p = ScopeProfile::default();
        }
    }

    pub(crate) fn records(&self) -> Vec<(String, ScopeProfile)> {
        self.scopes.clone()
    }
}
