//! A set-associative LRU cache model.
//!
//! Tags are full line addresses; replacement is true LRU via per-way
//! timestamps. Allocation can be restricted to a prefix of the ways in
//! each set, which models Intel DDIO: DMA writes may only allocate into a
//! configurable subset of LLC ways (the paper sets `IIO LLC WAYS` to
//! eight bits, §4 *Testbed*).

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (64 everywhere in this workspace).
    pub line_bytes: usize,
}

impl CacheParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is a multiple of `assoc * line_bytes`
    /// and the resulting set count is a power of two.
    pub fn new(size_bytes: usize, assoc: usize, line_bytes: usize) -> Self {
        assert!(assoc > 0 && line_bytes > 0);
        assert_eq!(
            size_bytes % (assoc * line_bytes),
            0,
            "capacity must divide evenly into sets"
        );
        let sets = size_bytes / (assoc * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheParams {
            size_bytes,
            assoc,
            line_bytes,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }
}

const EMPTY: u64 = u64::MAX;

/// A set-associative cache with LRU replacement.
///
/// Addresses passed to the access methods are **byte addresses**; the
/// cache derives the line address internally.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    assoc: usize,
    set_shift: u32,
    set_mask: u64,
    /// `sets * assoc` tags (line addresses), row-major by set.
    tags: Vec<u64>,
    /// LRU timestamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
}

/// Result of a fill: whether it hit, and any line evicted to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// True if the line was already present.
    pub hit: bool,
    /// Line address (byte address of line start) evicted by this fill.
    pub evicted: Option<u64>,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(p: CacheParams) -> Self {
        let sets = p.sets();
        SetAssocCache {
            assoc: p.assoc,
            set_shift: p.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            tags: vec![EMPTY; sets * p.assoc],
            stamps: vec![0; sets * p.assoc],
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, addr: u64) -> (u64, usize) {
        let line = addr >> self.set_shift;
        let set = (line & self.set_mask) as usize;
        (line, set)
    }

    /// Accesses the line containing `addr`, allocating it on miss (over
    /// the full associativity). Returns the fill outcome.
    #[inline]
    pub fn access(&mut self, addr: u64) -> FillOutcome {
        self.access_ways(addr, self.assoc)
    }

    /// Accesses the line containing `addr`, but on a miss allocate only
    /// within the first `ways` ways of the set (the DDIO restriction).
    ///
    /// A hit in *any* way refreshes LRU normally.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds the associativity.
    pub fn access_ways(&mut self, addr: u64, ways: usize) -> FillOutcome {
        self.access_way_range(addr, 0, ways)
    }

    /// Accesses the line containing `addr`, allocating on miss only
    /// within ways `lo..hi` of the set. Way partitioning models DDIO:
    /// DMA fills take the low ways, demand fills the rest, so a
    /// streaming NIC cannot evict the application's reused lines.
    ///
    /// A hit in *any* way refreshes LRU normally.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the associativity.
    pub fn access_way_range(&mut self, addr: u64, lo: usize, hi: usize) -> FillOutcome {
        assert!(lo < hi && hi <= self.assoc, "bad way restriction");
        let (line, set) = self.set_of(addr);
        let base = set * self.assoc;
        self.tick += 1;

        // Hit path: scan the whole set.
        for w in 0..self.assoc {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.tick;
                return FillOutcome {
                    hit: true,
                    evicted: None,
                };
            }
        }

        // Miss: pick the LRU way within the allowed range.
        let mut victim = lo;
        let mut oldest = u64::MAX;
        for w in lo..hi {
            let idx = base + w;
            if self.tags[idx] == EMPTY {
                victim = w;
                break;
            }
            if self.stamps[idx] < oldest {
                oldest = self.stamps[idx];
                victim = w;
            }
        }
        let idx = base + victim;
        let evicted = if self.tags[idx] == EMPTY {
            None
        } else {
            Some(self.tags[idx] << self.set_shift)
        };
        self.tags[idx] = line;
        self.stamps[idx] = self.tick;
        FillOutcome {
            hit: false,
            evicted,
        }
    }

    /// Returns true if the line containing `addr` is resident (no LRU
    /// update, no allocation).
    pub fn probe(&self, addr: u64) -> bool {
        let (line, set) = self.set_of(addr);
        let base = set * self.assoc;
        (0..self.assoc).any(|w| self.tags[base + w] == line)
    }

    /// Invalidates the line containing `addr` if present. Returns whether
    /// it was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (line, set) = self.set_of(addr);
        let base = set * self.assoc;
        for w in 0..self.assoc {
            if self.tags[base + w] == line {
                self.tags[base + w] = EMPTY;
                self.stamps[base + w] = 0;
                return true;
            }
        }
        false
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = EMPTY);
        self.stamps.iter_mut().for_each(|s| *s = 0);
    }

    /// Number of resident lines (O(capacity); for tests/diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }

    /// The cache's associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64 B = 512 B.
        SetAssocCache::new(CacheParams::new(512, 2, 64))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x1000).hit);
        assert!(c.access(0x1000).hit);
        assert!(c.access(0x1038).hit, "same line, different byte");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 sets * 64 B = 256 B).
        c.access(0x0000);
        c.access(0x0100);
        c.access(0x0000); // refresh line 0
        let out = c.access(0x0200); // evicts 0x0100, the LRU
        assert_eq!(out.evicted, Some(0x0100));
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x0100));
    }

    #[test]
    fn way_restricted_allocation() {
        let mut c = small();
        // Fill way 0 (restricted) repeatedly: successive DDIO-like fills
        // into the same set must only churn way 0.
        c.access_ways(0x0000, 1);
        c.access_ways(0x0100, 1);
        assert!(!c.probe(0x0000), "restricted fill evicted way-0 line");
        // A full-assoc access may use the other way.
        c.access(0x0200);
        assert!(c.probe(0x0100), "way 1 line survived");
        assert!(c.probe(0x0200));
    }

    #[test]
    fn restricted_hit_refreshes_any_way() {
        let mut c = small();
        c.access(0x0000); // full-assoc fill (way 0)
        c.access(0x0100); // way 1
        let out = c.access_ways(0x0100, 1); // hit even though it sits in way 1
        assert!(out.hit);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.access(0x40);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn capacity_bounded() {
        let mut c = small();
        for i in 0..1_000 {
            c.access(i * 64);
        }
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        for i in 0..4 {
            c.access(i * 64); // four different sets
        }
        for i in 0..4 {
            assert!(c.probe(i * 64));
        }
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = CacheParams::new(3 * 64 * 2, 2, 64);
    }

    #[test]
    #[should_panic(expected = "bad way restriction")]
    fn zero_ways_rejected() {
        small().access_ways(0, 0);
    }
}
