//! A set-associative LRU cache model.
//!
//! Replacement is true LRU, implemented *positionally*: each set stores
//! its tags in move-to-front recency order (most-recent first), each
//! slot packing the tag with its physical way index. A hit rotates
//! its slot to the front; the LRU victim is simply the furthest-back
//! slot, so there is no timestamp array, no global tick counter, and no
//! per-miss victim scan over stamps. The common case — re-touching the
//! most recently used line — is a single compare, and the hit scan is a
//! branch-free sweep over contiguous tags. This is behaviorally
//! identical to the original per-way timestamp scheme, which is kept as
//! [`ClassicSetAssocCache`] and driven lock-step by the proptest suite
//! to prove it.
//!
//! Physical way indexes matter because allocation can be restricted to a
//! sub-range of the ways in each set, which models Intel DDIO: DMA
//! writes may only allocate into a configurable subset of LLC ways (the
//! paper sets `IIO LLC WAYS` to eight bits, §4 *Testbed*). A line never
//! changes ways over its lifetime — only its recency position moves.
//!
//! [`ClassicSetAssocCache`]: crate::ClassicSetAssocCache

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (64 everywhere in this workspace).
    pub line_bytes: usize,
}

impl CacheParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is a multiple of `assoc * line_bytes`
    /// and the resulting set count is a power of two.
    pub fn new(size_bytes: usize, assoc: usize, line_bytes: usize) -> Self {
        assert!(assoc > 0 && line_bytes > 0);
        assert_eq!(
            size_bytes % (assoc * line_bytes),
            0,
            "capacity must divide evenly into sets"
        );
        let sets = size_bytes / (assoc * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheParams {
            size_bytes,
            assoc,
            line_bytes,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }
}

/// Bits of a packed slot entry used for the physical way index.
const WAY_BITS: u32 = 4;
/// Sentinel tag marking an empty slot (all tag bits set; real tags are
/// derived from the small bump-allocated simulated address space and
/// never come close).
const EMPTY_TAG: u32 = (1 << (32 - WAY_BITS)) - 1;
/// Packs a set-local tag and a physical way index into one slot word.
#[inline]
fn pack(tag: u32, way: u32) -> u32 {
    (tag << WAY_BITS) | way
}

/// A set-associative cache with LRU replacement (move-to-front order).
///
/// Addresses passed to the access methods are **byte addresses**; the
/// cache derives the line address internally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetAssocCache {
    assoc: usize,
    set_shift: u32,
    set_mask: u64,
    /// Number of set-index bits (`set_mask.count_ones()`).
    set_bits: u32,
    /// `sets * assoc` packed slots, row-major by set, stored in recency
    /// order within each set: slot 0 is the MRU. Each slot packs the
    /// line's set-local tag (the line address with the set-index bits
    /// stripped) in the high 28 bits and its physical way index in the
    /// low 4 — one 32-bit word per slot, so an access touches a single
    /// compact row in the *host's* caches, and a rotation moves tag and
    /// way together (a line keeps its way while its recency position
    /// moves). The simulated address space is a small bump-allocated
    /// span, so tags never come near the 28-bit limit (debug-asserted
    /// on access).
    slots: Vec<u32>,
    /// Per-set count of non-empty slots; when a set is full the miss
    /// path skips the empty-way probe entirely.
    filled: Vec<u8>,
}

/// Result of a fill: whether it hit, and any line evicted to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// True if the line was already present.
    pub hit: bool,
    /// Line address (byte address of line start) evicted by this fill.
    pub evicted: Option<u64>,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds 16 (way indexes are packed
    /// into four bits of each slot word).
    pub fn new(p: CacheParams) -> Self {
        let sets = p.sets();
        assert!(
            p.assoc <= 1 << WAY_BITS,
            "associativity too large for packed way index"
        );
        SetAssocCache {
            assoc: p.assoc,
            set_shift: p.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            set_bits: (sets - 1).count_ones(),
            slots: (0..sets * p.assoc)
                .map(|i| pack(EMPTY_TAG, (i % p.assoc) as u32))
                .collect(),
            filled: vec![0; sets],
        }
    }

    /// Splits `addr` into its set index and set-local tag.
    #[inline]
    fn set_of(&self, addr: u64) -> (u32, usize) {
        let line = addr >> self.set_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_bits;
        debug_assert!(tag < u64::from(EMPTY_TAG), "address out of tag range");
        (tag as u32, set)
    }

    /// Reconstructs a line's byte address from its set and stored tag.
    #[inline]
    fn line_addr(&self, tag: u32, set: usize) -> u64 {
        ((u64::from(tag) << self.set_bits) | set as u64) << self.set_shift
    }

    /// Accesses the line containing `addr`, allocating it on miss (over
    /// the full associativity). Returns the fill outcome.
    #[inline]
    pub fn access(&mut self, addr: u64) -> FillOutcome {
        let (tag, set) = self.set_of(addr);
        // MRU fast path: the most recently used line sits in slot 0; the
        // runner-up sits in slot 1 and promotes with a single swap.
        let base = set * self.assoc;
        if self.slots[base] >> WAY_BITS == tag {
            return FillOutcome {
                hit: true,
                evicted: None,
            };
        }
        if self.assoc > 1 && self.slots[base + 1] >> WAY_BITS == tag {
            self.slots.swap(base, base + 1);
            return FillOutcome {
                hit: true,
                evicted: None,
            };
        }
        self.access_way_range_cold(tag, set, 0, self.assoc)
    }

    /// Accesses the line containing `addr`, but on a miss allocate only
    /// within the first `ways` ways of the set (the DDIO restriction).
    ///
    /// A hit in *any* way refreshes LRU normally.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds the associativity.
    pub fn access_ways(&mut self, addr: u64, ways: usize) -> FillOutcome {
        self.access_way_range(addr, 0, ways)
    }

    /// Accesses the line containing `addr`, allocating on miss only
    /// within ways `lo..hi` of the set. Way partitioning models DDIO:
    /// DMA fills take the low ways, demand fills the rest, so a
    /// streaming NIC cannot evict the application's reused lines.
    ///
    /// A hit in *any* way refreshes LRU normally.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the associativity.
    pub fn access_way_range(&mut self, addr: u64, lo: usize, hi: usize) -> FillOutcome {
        assert!(lo < hi && hi <= self.assoc, "bad way restriction");
        let (tag, set) = self.set_of(addr);
        // MRU fast path: the most recently used line sits in slot 0; the
        // runner-up sits in slot 1 and promotes with a single swap.
        let base = set * self.assoc;
        if self.slots[base] >> WAY_BITS == tag {
            return FillOutcome {
                hit: true,
                evicted: None,
            };
        }
        if self.assoc > 1 && self.slots[base + 1] >> WAY_BITS == tag {
            self.slots.swap(base, base + 1);
            return FillOutcome {
                hit: true,
                evicted: None,
            };
        }
        self.access_way_range_cold(tag, set, lo, hi)
    }

    /// The non-MRU part of an access: scan for a hit beyond slot 0, or
    /// pick a victim and fill.
    fn access_way_range_cold(&mut self, tag: u32, set: usize, lo: usize, hi: usize) -> FillOutcome {
        let assoc = self.assoc;
        let base = set * assoc;
        let row = &self.slots[base..base + assoc];

        // Hit path: a contiguous scan in recency order (slot 0 was
        // already checked by the callers' MRU fast path, but re-checking
        // it costs nothing and keeps this routine self-contained).
        if let Some(pos) = row.iter().position(|&e| e >> WAY_BITS == tag) {
            if pos != 0 {
                let row = &mut self.slots[base..base + assoc];
                let e = row[pos];
                row.copy_within(0..pos, 1);
                row[0] = e;
            }
            return FillOutcome {
                hit: true,
                evicted: None,
            };
        }
        self.fill_absent(tag, set, lo, hi)
    }

    /// Allocates the line containing `addr`, which the caller has
    /// **proven absent** (e.g. via the hierarchy's resident filter):
    /// skips the hit scan and goes straight to victim selection.
    /// Identical to [`SetAssocCache::access`] on a missing line.
    #[inline]
    pub fn alloc_absent(&mut self, addr: u64) -> FillOutcome {
        let (tag, set) = self.set_of(addr);
        debug_assert!(!self.probe(addr), "alloc_absent of a resident line");
        self.fill_absent(tag, set, 0, self.assoc)
    }

    /// Victim selection + fill for a line known to miss.
    fn fill_absent(&mut self, tag: u32, set: usize, lo: usize, hi: usize) -> FillOutcome {
        let assoc = self.assoc;
        let filled = self.filled[set] as usize;
        let base = set * assoc;
        let row = &mut self.slots[base..base + assoc];

        // Prefer the lowest-indexed empty way inside [lo, hi)
        // (matching the classic model's index-order preference); when the
        // set has no usable empty way, evict the least-recent in-range
        // slot — with a full set and a full range that is just the last
        // slot, found with no scan at all.
        let mut slot = usize::MAX;
        if filled < assoc {
            let mut best_way = hi as u32;
            for (i, &e) in row.iter().enumerate() {
                let w = e & ((1 << WAY_BITS) - 1);
                if e >> WAY_BITS == EMPTY_TAG && w >= lo as u32 && w < best_way {
                    best_way = w;
                    slot = i;
                }
            }
        }
        let victim_tag = if slot != usize::MAX {
            self.filled[set] += 1;
            None
        } else {
            let mut pos = assoc - 1;
            loop {
                let w = (row[pos] & ((1 << WAY_BITS) - 1)) as usize;
                if w >= lo && w < hi {
                    break;
                }
                pos -= 1;
            }
            slot = pos;
            Some(row[slot] >> WAY_BITS)
        };

        // Fill the chosen slot and promote it to the front.
        let w = row[slot] & ((1 << WAY_BITS) - 1);
        row.copy_within(0..slot, 1);
        row[0] = pack(tag, w);
        FillOutcome {
            hit: false,
            evicted: victim_tag.map(|t| self.line_addr(t, set)),
        }
    }

    /// Host-side hint: touches this set's slot row through
    /// [`std::hint::black_box`] so a lookup issued shortly after finds
    /// the row already in the host's cache. Simulated state is
    /// untouched — this is a software prefetch for the simulator
    /// itself, useful when the row load can overlap other work.
    #[inline]
    pub fn prefetch_row(&self, addr: u64) {
        let (_, set) = self.set_of(addr);
        std::hint::black_box(self.slots[set * self.assoc]);
    }

    /// Returns true if the line containing `addr` is the MRU entry of
    /// its set (slot 0). A further access to an MRU line is guaranteed
    /// to hit without changing any recency state — the residency proof
    /// the hierarchy's access-signature cache is built on. No state
    /// change.
    #[inline]
    pub fn is_mru(&self, addr: u64) -> bool {
        let (tag, set) = self.set_of(addr);
        self.slots[set * self.assoc] >> WAY_BITS == tag
    }

    /// The set index the line containing `addr` maps to (for conflict
    /// summaries over sets; no state change).
    #[inline]
    pub fn set_index(&self, addr: u64) -> usize {
        self.set_of(addr).1
    }

    /// Returns true if the line containing `addr` is resident (no LRU
    /// update, no allocation).
    pub fn probe(&self, addr: u64) -> bool {
        let (tag, set) = self.set_of(addr);
        let base = set * self.assoc;
        self.slots[base..base + self.assoc]
            .iter()
            .any(|&e| e >> WAY_BITS == tag)
    }

    /// Invalidates the line containing `addr` if present. Returns whether
    /// it was present. The emptied slot keeps its recency position and
    /// physical way; empty slots are never LRU victims because the
    /// empty-way probe runs first.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (tag, set) = self.set_of(addr);
        let base = set * self.assoc;
        match self.slots[base..base + self.assoc]
            .iter()
            .position(|&e| e >> WAY_BITS == tag)
        {
            Some(pos) => {
                let e = self.slots[base + pos];
                self.slots[base + pos] = pack(EMPTY_TAG, e & ((1 << WAY_BITS) - 1));
                self.filled[set] -= 1;
                true
            }
            None => false,
        }
    }

    /// Empties the cache, restoring the pristine just-constructed state.
    pub fn flush(&mut self) {
        let assoc = self.assoc;
        for (i, e) in self.slots.iter_mut().enumerate() {
            *e = pack(EMPTY_TAG, (i % assoc) as u32);
        }
        self.filled.iter_mut().for_each(|f| *f = 0);
    }

    /// Number of resident lines (O(capacity); for tests/diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.slots
            .iter()
            .filter(|&&e| e >> WAY_BITS != EMPTY_TAG)
            .count()
    }

    /// The cache's associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64 B = 512 B.
        SetAssocCache::new(CacheParams::new(512, 2, 64))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x1000).hit);
        assert!(c.access(0x1000).hit);
        assert!(c.access(0x1038).hit, "same line, different byte");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 sets * 64 B = 256 B).
        c.access(0x0000);
        c.access(0x0100);
        c.access(0x0000); // refresh line 0
        let out = c.access(0x0200); // evicts 0x0100, the LRU
        assert_eq!(out.evicted, Some(0x0100));
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x0100));
    }

    #[test]
    fn way_restricted_allocation() {
        let mut c = small();
        // Fill way 0 (restricted) repeatedly: successive DDIO-like fills
        // into the same set must only churn way 0.
        c.access_ways(0x0000, 1);
        c.access_ways(0x0100, 1);
        assert!(!c.probe(0x0000), "restricted fill evicted way-0 line");
        // A full-assoc access may use the other way.
        c.access(0x0200);
        assert!(c.probe(0x0100), "way 1 line survived");
        assert!(c.probe(0x0200));
    }

    #[test]
    fn restricted_hit_refreshes_any_way() {
        let mut c = small();
        c.access(0x0000); // full-assoc fill (way 0)
        c.access(0x0100); // way 1
        let out = c.access_ways(0x0100, 1); // hit even though it sits in way 1
        assert!(out.hit);
    }

    #[test]
    fn restricted_victim_is_least_recent_in_range() {
        // 1 set x 4 ways.
        let mut c = SetAssocCache::new(CacheParams::new(256, 4, 64));
        for i in 0..4u64 {
            c.access(i * 64);
        }
        c.access(0); // refresh way 0 → way 1 now least recent
        let out = c.access_way_range(4 * 64, 0, 2); // may evict way 0 or 1
        assert_eq!(out.evicted, Some(64), "way 1 held the least-recent line");
        assert!(c.probe(0), "refreshed way-0 line survived");
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.access(0x40);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn invalidated_way_is_refilled_first() {
        // 1 set x 4 ways: invalidating the most-recent way must make it
        // the next allocation target (empty ways trump recency).
        let mut c = SetAssocCache::new(CacheParams::new(256, 4, 64));
        for i in 0..4u64 {
            c.access(i * 64);
        }
        c.invalidate(3 * 64); // way 3, the most recently used
        let out = c.access(4 * 64);
        assert_eq!(out.evicted, None, "fill reuses the emptied way");
        for i in [0u64, 1, 2, 4] {
            assert!(c.probe(i * 64));
        }
    }

    #[test]
    fn empty_way_outside_range_is_not_used() {
        // 1 set x 4 ways: an empty way outside the allowed range must
        // not absorb a restricted fill.
        let mut c = SetAssocCache::new(CacheParams::new(256, 4, 64));
        for i in 0..4u64 {
            c.access(i * 64);
        }
        c.invalidate(3 * 64); // way 3 empty, outside [0, 2)
        let out = c.access_way_range(4 * 64, 0, 2);
        assert_eq!(out.evicted, Some(0), "way 0 was the LRU in range");
        assert!(!c.probe(3 * 64), "way 3 stays empty");
    }

    #[test]
    fn capacity_bounded() {
        let mut c = small();
        for i in 0..1_000 {
            c.access(i * 64);
        }
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        for i in 0..4 {
            c.access(i * 64); // four different sets
        }
        for i in 0..4 {
            assert!(c.probe(i * 64));
        }
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn flush_restores_pristine_state() {
        let mut c = small();
        for i in 0..57u64 {
            c.access(i * 64);
            if i % 5 == 0 {
                c.access_ways(i * 192, 1);
            }
        }
        c.flush();
        assert_eq!(c, small(), "flushed cache must equal a fresh one");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = CacheParams::new(3 * 64 * 2, 2, 64);
    }

    #[test]
    #[should_panic(expected = "bad way restriction")]
    fn zero_ways_rejected() {
        small().access_ways(0, 0);
    }
}
