//! The two-clock-domain cost accumulator.
//!
//! Per-packet work divides into:
//!
//! * **core-domain cycles** — instruction execution, L1/L2 stalls, branch
//!   penalties; these scale inversely with the core frequency the paper
//!   sweeps (1.2–3.0 GHz);
//! * **uncore-domain nanoseconds** — LLC and DRAM stalls, whose latency is
//!   fixed in wall time because the paper pins the uncore clock at
//!   2.4 GHz.
//!
//! Per-packet service time is `cycles / f + uncore_ns`, which is why the
//! measured throughput curves rise with frequency but flatten where
//! memory time dominates (Figs. 4, 5, 8).

use pm_sim::{Frequency, SimTime};
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Baseline superscalar throughput used to convert an instruction count
/// into execution cycles in the absence of stalls (instructions per cycle
/// for straight-line, cache-resident code on a Skylake-class core).
pub const BASE_IPC: f64 = 4.0;

/// Accumulated simulated work: instructions, core cycles, uncore time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Retired instructions (for IPC reporting).
    pub instructions: u64,
    /// Core-clock cycles (execution + core-domain stalls).
    pub cycles: f64,
    /// Uncore/wall-clock stall time in nanoseconds (LLC, DRAM).
    pub uncore_ns: f64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        instructions: 0,
        cycles: 0.0,
        uncore_ns: 0.0,
    };

    /// Cost of executing `instructions` of straight-line code at the
    /// baseline IPC ([`BASE_IPC`]).
    #[inline]
    pub fn compute(instructions: u64) -> Cost {
        Cost {
            instructions,
            cycles: instructions as f64 / BASE_IPC,
            uncore_ns: 0.0,
        }
    }

    /// Cost of `cycles` of pure core-domain stall (no instructions).
    #[inline]
    pub fn stall_cycles(cycles: f64) -> Cost {
        Cost {
            instructions: 0,
            cycles,
            uncore_ns: 0.0,
        }
    }

    /// Cost of `ns` of uncore-domain stall.
    #[inline]
    pub fn stall_ns(ns: f64) -> Cost {
        Cost {
            instructions: 0,
            cycles: 0.0,
            uncore_ns: ns,
        }
    }

    /// Converts the accumulated cost into wall time at core frequency `f`.
    #[inline]
    pub fn time(&self, f: Frequency) -> SimTime {
        SimTime::from_ns(self.cycles / f.as_ghz() + self.uncore_ns)
    }

    /// Total cycles when running at core frequency `f` (core cycles plus
    /// uncore stall converted at that frequency) — the denominator for IPC.
    #[inline]
    pub fn total_cycles_at(&self, f: Frequency) -> f64 {
        self.cycles + self.uncore_ns * f.as_ghz()
    }

    /// Instructions per cycle at core frequency `f`.
    ///
    /// Returns 0.0 for an empty cost.
    pub fn ipc(&self, f: Frequency) -> f64 {
        let c = self.total_cycles_at(f);
        if c == 0.0 {
            0.0
        } else {
            self.instructions as f64 / c
        }
    }

    /// Scales the cost by a constant (used for per-batch amortization).
    pub fn scaled(&self, k: f64) -> Cost {
        Cost {
            instructions: (self.instructions as f64 * k).round() as u64,
            cycles: self.cycles * k,
            uncore_ns: self.uncore_ns * k,
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            instructions: self.instructions + rhs.instructions,
            cycles: self.cycles + rhs.cycles,
            uncore_ns: self.uncore_ns + rhs.uncore_ns,
        }
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        self.instructions += rhs.instructions;
        self.cycles += rhs.cycles;
        self.uncore_ns += rhs.uncore_ns;
    }
}

impl Sub for Cost {
    type Output = Cost;
    /// Difference of two accumulated costs — used by the profiler to
    /// attribute the work charged between two snapshots of an
    /// accumulator. Instruction counts saturate at zero so a snapshot
    /// taken out of order cannot underflow.
    #[inline]
    fn sub(self, rhs: Cost) -> Cost {
        Cost {
            instructions: self.instructions.saturating_sub(rhs.instructions),
            cycles: self.cycles - rhs.cycles,
            uncore_ns: self.uncore_ns - rhs.uncore_ns,
        }
    }
}

impl SubAssign for Cost {
    #[inline]
    fn sub_assign(&mut self, rhs: Cost) {
        *self = *self - rhs;
    }
}

/// Effective stall latencies for the memory hierarchy, plus branch and
/// call penalties.
///
/// The per-level values are **effective exposed stalls** — the portion of
/// the architectural latency that an out-of-order, memory-level-parallel
/// core cannot hide when processing a burst of independent packets — not
/// raw load-to-use latencies. They are the simulator's calibration knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Exposed stall for an L1D hit (core cycles).
    pub l1_hit_cy: f64,
    /// Exposed stall for an L2 hit (core cycles).
    pub l2_hit_cy: f64,
    /// Exposed stall for an LLC hit (uncore ns).
    pub llc_hit_ns: f64,
    /// Exposed stall for a DRAM access (uncore ns).
    pub dram_ns: f64,
    /// DTLB miss filled from STLB (core cycles).
    pub stlb_hit_cy: f64,
    /// Full page walk: core-domain portion (cycles).
    pub walk_cy: f64,
    /// Full page walk: uncore-domain portion (ns).
    pub walk_ns: f64,
    /// Indirect branch misprediction penalty (core cycles).
    pub branch_miss_cy: f64,
    /// Well-predicted indirect call overhead: vtable load issue + call
    /// sequence (core cycles), charged per virtual call.
    pub virtual_call_cy: f64,
    /// Direct (non-inlined) call/return overhead (core cycles).
    pub direct_call_cy: f64,
    /// Probability that an indirect call along the NF graph mispredicts.
    /// The dynamic graph walk has many targets per call site; embedding
    /// the graph statically removes the indirection entirely.
    pub indirect_mispredict_rate: f64,
    /// Fraction of a store miss's latency that stalls the core. Store
    /// buffers + RFO pipelining hide most of it on an OoO core.
    pub store_stall_factor: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            l1_hit_cy: 0.5,
            l2_hit_cy: 5.0,
            llc_hit_ns: 8.0,
            dram_ns: 62.0,
            stlb_hit_cy: 7.0,
            walk_cy: 20.0,
            walk_ns: 12.0,
            branch_miss_cy: 16.0,
            virtual_call_cy: 1.8,
            direct_call_cy: 1.2,
            indirect_mispredict_rate: 0.04,
            store_stall_factor: 0.15,
        }
    }
}

impl LatencyModel {
    /// Expected cost of one virtual call: call overhead plus the
    /// amortized misprediction penalty. The vtable-pointer *load* is
    /// charged separately by the caller (it is a real memory access).
    pub fn virtual_call(&self) -> Cost {
        Cost {
            instructions: 3, // load vtable ptr, load slot, indirect call
            cycles: self.virtual_call_cy + self.indirect_mispredict_rate * self.branch_miss_cy,
            uncore_ns: 0.0,
        }
    }

    /// Cost of a direct, non-inlined call.
    pub fn direct_call(&self) -> Cost {
        Cost {
            instructions: 1,
            cycles: self.direct_call_cy,
            uncore_ns: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_uses_base_ipc() {
        let c = Cost::compute(400);
        assert_eq!(c.instructions, 400);
        assert!((c.cycles - 100.0).abs() < 1e-9);
    }

    #[test]
    fn time_splits_domains() {
        let c = Cost {
            instructions: 0,
            cycles: 200.0,
            uncore_ns: 50.0,
        };
        // At 2 GHz: 100 ns core + 50 ns uncore.
        let t = c.time(Frequency::from_ghz(2.0));
        assert_eq!(t, SimTime::from_ns(150.0));
        // At 1 GHz the core part doubles but uncore does not.
        let t = c.time(Frequency::from_ghz(1.0));
        assert_eq!(t, SimTime::from_ns(250.0));
    }

    #[test]
    fn ipc_accounts_for_uncore() {
        let c = Cost {
            instructions: 300,
            cycles: 100.0,
            uncore_ns: 25.0,
        };
        // At 2 GHz: 100 + 50 = 150 total cycles -> IPC 2.0.
        assert!((c.ipc(Frequency::from_ghz(2.0)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn add_accumulates() {
        let mut c = Cost::compute(4);
        c += Cost::stall_ns(10.0);
        c += Cost::stall_cycles(5.0);
        assert_eq!(c.instructions, 4);
        assert!((c.cycles - 6.0).abs() < 1e-9);
        assert!((c.uncore_ns - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sub_inverts_add() {
        let a = Cost {
            instructions: 10,
            cycles: 8.0,
            uncore_ns: 4.0,
        };
        let b = Cost::compute(4);
        let d = (a + b) - b;
        assert_eq!(d.instructions, a.instructions);
        assert!((d.cycles - a.cycles).abs() < 1e-9);
        assert!((d.uncore_ns - a.uncore_ns).abs() < 1e-9);
        // Instructions saturate rather than underflow.
        assert_eq!((Cost::compute(1) - Cost::compute(5)).instructions, 0);
    }

    #[test]
    fn scaled() {
        let c = Cost {
            instructions: 10,
            cycles: 8.0,
            uncore_ns: 4.0,
        }
        .scaled(0.5);
        assert_eq!(c.instructions, 5);
        assert!((c.cycles - 4.0).abs() < 1e-9);
        assert!((c.uncore_ns - 2.0).abs() < 1e-9);
    }

    #[test]
    fn virtual_call_dearer_than_direct() {
        let m = LatencyModel::default();
        assert!(m.virtual_call().cycles > m.direct_call().cycles);
    }

    #[test]
    fn empty_ipc_zero() {
        assert_eq!(Cost::ZERO.ipc(Frequency::from_ghz(1.0)), 0.0);
    }
}
