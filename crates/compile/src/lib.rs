//! The PacketMill optimizer (paper §3.2).
//!
//! PacketMill "grinds the whole packet processing stack": it reads the NF
//! configuration, applies source-level transformations
//! (devirtualization, constant embedding, static graph embedding — the
//! resurrection of `click-devirtualize` plus the paper's additions), and
//! an IR-level transformation (profile-guided reordering of the `Packet`
//! metadata structure, §3.2.2), producing a specialized execution plan
//! and an emitted "specialized source" artifact.
//!
//! The pipeline mirrors Fig. 3:
//!
//! ```text
//! Config file ─┬─> config passes  (dead-element elimination)
//!              ├─> plan passes    (devirtualize, constants, static graph)
//!              ├─> layout pass    (profile-guided field reordering)
//!              └─> emit           (the specialized source, for inspection)
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod emit;
pub mod passes;
pub mod pipeline;

pub use emit::emit_specialized_source;
pub use passes::{
    ConstantEmbedPass, DeadElementPass, DevirtualizePass, Pass, ReorderFieldsPass, StaticGraphPass,
};
pub use pipeline::{MillIr, Pipeline};
