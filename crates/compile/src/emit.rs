//! The specialized-source emitter.
//!
//! `click-devirtualize` emitted specialized C++ for the configured graph;
//! PacketMill extends it with embedded constants and a static graph. This
//! module emits the equivalent specialized source (as readable Rust-like
//! pseudo-code) for a transformed [`MillIr`] — the artifact a user
//! inspects to see what the optimizer actually did, and what the
//! `packetmill` example binaries print.

use crate::pipeline::MillIr;
use std::fmt::Write as _;

/// Renders the specialized per-packet processing source implied by the
/// IR's configuration and plan.
pub fn emit_specialized_source(ir: &MillIr) -> String {
    let mut out = String::new();
    let plan = &ir.plan;
    let _ = writeln!(out, "// Specialized by PacketMill ({}):", plan.label());
    for l in &ir.log {
        let _ = writeln!(out, "//   - {l}");
    }
    let _ = writeln!(out);

    // Static element declarations.
    if plan.static_graph {
        let _ = writeln!(out, "// Elements declared statically (.data arena):");
        for d in &ir.config.declarations {
            let args: Vec<String> = d
                .args
                .items
                .iter()
                .map(|a| match &a.key {
                    Some(k) => format!("{k}: {}", a.value),
                    None => a.value.clone(),
                })
                .collect();
            let _ = writeln!(
                out,
                "static {}: {} = {} {{ {} }};",
                sanitize(&d.name),
                d.class,
                d.class,
                args.join(", ")
            );
        }
    } else {
        let _ = writeln!(out, "// Elements allocated on the heap at init:");
        for d in &ir.config.declarations {
            let _ = writeln!(
                out,
                "let {}: Box<dyn Element> = registry.create(\"{}\");",
                sanitize(&d.name),
                d.class
            );
        }
    }
    let _ = writeln!(out);

    // The per-packet function: follow the linear chain from the source,
    // annotating branches.
    let _ = writeln!(out, "fn process_packet(pkt: &mut Pkt) {{");
    let src = ir
        .config
        .declarations
        .iter()
        .position(|d| d.class == "FromDPDKDevice");
    if let Some(src) = src {
        emit_chain(&mut out, ir, src, 1, &mut Vec::new());
    } else {
        let _ = writeln!(out, "    // (no FromDPDKDevice source in this config)");
    }
    let _ = writeln!(out, "}}");
    out
}

fn sanitize(name: &str) -> String {
    name.replace('@', "_")
}

fn emit_chain(out: &mut String, ir: &MillIr, from: usize, depth: usize, seen: &mut Vec<usize>) {
    if seen.contains(&from) {
        let _ = writeln!(
            out,
            "{}// (cycle back to {})",
            indent(depth),
            ir.config.declarations[from].name
        );
        return;
    }
    seen.push(from);
    let succs: Vec<(u16, usize)> = ir
        .config
        .connections
        .iter()
        .filter(|c| c.from == from)
        .map(|c| (c.from_port, c.to))
        .collect();
    for (port, to) in succs {
        let d = &ir.config.declarations[to];
        let call = match ir.plan.dispatch {
            pm_click::DispatchMode::Virtual => {
                format!("{}.process(pkt) /* virtual */", sanitize(&d.name))
            }
            pm_click::DispatchMode::Direct => {
                format!(
                    "{}::process(&mut {}, pkt) /* direct */",
                    d.class,
                    sanitize(&d.name)
                )
            }
            pm_click::DispatchMode::Inlined => format!("inline_{}(pkt)", sanitize(&d.name)),
        };
        let branch = if port == 0 {
            String::new()
        } else {
            format!("[port {port}] ")
        };
        let _ = writeln!(out, "{}{}{};", indent(depth), branch, call);
        if ir.plan.constants_embedded && !d.args.is_empty() {
            let folded: Vec<&str> = d.args.items.iter().map(|a| a.value.as_str()).collect();
            let _ = writeln!(
                out,
                "{}//   constants folded: {}",
                indent(depth),
                folded.join(", ")
            );
        }
        emit_chain(out, ir, to, depth + 1, seen);
    }
    seen.pop();
}

fn indent(depth: usize) -> String {
    "    ".repeat(depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use pm_click::{ConfigGraph, MetadataModel};

    fn ir(optimized: bool) -> MillIr {
        let cfg = ConfigGraph::parse(
            "input :: FromDPDKDevice(PORT 0, BURST 32);\
             output :: ToDPDKDevice(PORT 0, BURST 32);\
             input -> EtherMirror -> output;",
        )
        .unwrap();
        let mut ir = MillIr::new(cfg, MetadataModel::XChange);
        if optimized {
            Pipeline::packetmill().run(&mut ir);
        }
        ir
    }

    #[test]
    fn vanilla_emits_heap_and_virtual() {
        let s = emit_specialized_source(&ir(false));
        assert!(s.contains("Box<dyn Element>"), "{s}");
        assert!(s.contains("/* virtual */"), "{s}");
    }

    #[test]
    fn optimized_emits_static_and_inline() {
        let s = emit_specialized_source(&ir(true));
        assert!(s.contains("static"), "{s}");
        assert!(s.contains("inline_"), "{s}");
        assert!(s.contains("constants folded"), "{s}");
        assert!(s.contains("static-graph"), "log lines included: {s}");
    }

    #[test]
    fn chain_order_preserved() {
        let s = emit_specialized_source(&ir(true));
        let mirror = s.find("EtherMirror").expect("mirror in chain");
        let output = s.find("inline_output").expect("sink in chain");
        assert!(mirror < output, "mirror precedes output:\n{s}");
    }
}
