//! The optimization IR and pass manager.

use crate::passes::Pass;
use pm_click::{ConfigGraph, ExecPlan, MetadataModel};

/// The unit the passes transform: the parsed configuration plus the
/// evolving execution plan, with a human-readable transformation log.
#[derive(Debug, Clone)]
pub struct MillIr {
    /// The (possibly transformed) configuration graph.
    pub config: ConfigGraph,
    /// The (possibly transformed) execution plan.
    pub plan: ExecPlan,
    /// One line per applied transformation.
    pub log: Vec<String>,
}

impl MillIr {
    /// Wraps a configuration with a vanilla plan under the given
    /// metadata model.
    pub fn new(config: ConfigGraph, model: MetadataModel) -> Self {
        MillIr {
            config,
            plan: ExecPlan::vanilla(model),
            log: Vec::new(),
        }
    }

    /// Appends a log line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.log.push(line.into());
    }
}

/// An ordered sequence of passes.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("Pipeline").field("passes", &names).finish()
    }
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        Pipeline { passes: Vec::new() }
    }

    /// Appends a pass.
    pub fn then(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// The full PacketMill source-optimization pipeline (Fig. 3 ②):
    /// dead-element elimination, devirtualization, constant embedding,
    /// static graph. Field reordering (Fig. 3 ③) is added separately
    /// because it needs an access profile.
    pub fn packetmill() -> Self {
        Pipeline::new()
            .then(crate::passes::DeadElementPass)
            .then(crate::passes::DevirtualizePass)
            .then(crate::passes::ConstantEmbedPass)
            .then(crate::passes::StaticGraphPass)
    }

    /// Number of passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// True if the pipeline has no passes.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs every pass in order.
    pub fn run(&self, ir: &mut MillIr) {
        for p in &self.passes {
            p.run(ir);
        }
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::DispatchMode;

    fn ir() -> MillIr {
        let cfg = ConfigGraph::parse(
            "in :: FromDPDKDevice(0); out :: ToDPDKDevice(0); in -> Null -> out;",
        )
        .unwrap();
        MillIr::new(cfg, MetadataModel::Copying)
    }

    #[test]
    fn packetmill_pipeline_sets_all_flags() {
        let mut i = ir();
        Pipeline::packetmill().run(&mut i);
        assert_eq!(i.plan.dispatch, DispatchMode::Inlined);
        assert!(i.plan.constants_embedded);
        assert!(i.plan.static_graph);
        assert!(!i.log.is_empty());
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut i = ir();
        let before = i.plan.clone();
        Pipeline::new().run(&mut i);
        assert_eq!(i.plan, before);
        assert!(i.log.is_empty());
    }

    #[test]
    fn pipeline_len() {
        assert_eq!(Pipeline::packetmill().len(), 4);
        assert!(Pipeline::new().is_empty());
    }
}
