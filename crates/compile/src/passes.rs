//! The individual optimization passes.

use crate::pipeline::MillIr;
use pm_click::{DispatchMode, FieldProfile, StructLayout};
use std::collections::HashSet;

/// A transformation over the optimization IR.
pub trait Pass {
    /// The pass's name (for logs).
    fn name(&self) -> &'static str;
    /// Applies the transformation.
    fn run(&self, ir: &mut MillIr);
}

/// Removes declared elements with no connection path from any source —
/// the `click-undead` analogue from the Click optimization toolkit
/// (paper §2.1 ①).
#[derive(Debug, Clone, Copy)]
pub struct DeadElementPass;

impl Pass for DeadElementPass {
    fn name(&self) -> &'static str {
        "dead-element-elimination"
    }

    fn run(&self, ir: &mut MillIr) {
        let cfg = &ir.config;
        // Reachability from every FromDPDKDevice.
        let mut live: HashSet<usize> = cfg
            .declarations
            .iter()
            .enumerate()
            .filter(|(_, d)| d.class == "FromDPDKDevice")
            .map(|(i, _)| i)
            .collect();
        loop {
            let mut grew = false;
            for c in &cfg.connections {
                if live.contains(&c.from) && live.insert(c.to) {
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        let dead: Vec<usize> = (0..cfg.declarations.len())
            .filter(|i| !live.contains(i))
            .collect();
        if dead.is_empty() {
            ir.note("dead-element-elimination: nothing to remove");
            return;
        }
        // Rebuild with dead declarations (and their edges) removed.
        let mut remap = vec![usize::MAX; cfg.declarations.len()];
        let mut decls = Vec::new();
        for (i, d) in cfg.declarations.iter().enumerate() {
            if live.contains(&i) {
                remap[i] = decls.len();
                decls.push(d.clone());
            }
        }
        let conns = cfg
            .connections
            .iter()
            .filter(|c| live.contains(&c.from) && live.contains(&c.to))
            .map(|c| pm_click::Connection {
                from: remap[c.from],
                from_port: c.from_port,
                to: remap[c.to],
                to_port: c.to_port,
            })
            .collect();
        let names: Vec<String> = dead
            .iter()
            .map(|&i| ir.config.declarations[i].name.clone())
            .collect();
        ir.config.declarations = decls;
        ir.config.connections = conns;
        ir.note(format!(
            "dead-element-elimination: removed {} element(s): {}",
            names.len(),
            names.join(", ")
        ));
    }
}

/// Replaces virtual calls with direct calls (`click-devirtualize`,
/// paper §2.1 ① / §3.2.1).
#[derive(Debug, Clone, Copy)]
pub struct DevirtualizePass;

impl Pass for DevirtualizePass {
    fn name(&self) -> &'static str {
        "devirtualize"
    }

    fn run(&self, ir: &mut MillIr) {
        if ir.plan.dispatch == DispatchMode::Virtual {
            ir.plan.dispatch = DispatchMode::Direct;
            let n = ir.config.declarations.len();
            ir.note(format!(
                "devirtualize: {n} element classes resolved; virtual calls replaced with direct calls"
            ));
        }
    }
}

/// Embeds constant element parameters into the code (paper §3.2.1:
/// constant propagation, folding, dead-code elimination, unrolling).
#[derive(Debug, Clone, Copy)]
pub struct ConstantEmbedPass;

impl Pass for ConstantEmbedPass {
    fn name(&self) -> &'static str {
        "constant-embedding"
    }

    fn run(&self, ir: &mut MillIr) {
        if !ir.plan.constants_embedded {
            ir.plan.constants_embedded = true;
            let params: usize = ir.config.declarations.iter().map(|d| d.args.len()).sum();
            ir.note(format!(
                "constant-embedding: {params} configuration parameter(s) embedded as constants"
            ));
        }
    }
}

/// Declares the element graph statically (paper §3.2.1): arena layout,
/// embedded connections, full inlining — which in turn lets the per-packet
/// metadata conversion be scalar-replaced under the Copying model.
#[derive(Debug, Clone, Copy)]
pub struct StaticGraphPass;

impl Pass for StaticGraphPass {
    fn name(&self) -> &'static str {
        "static-graph"
    }

    fn run(&self, ir: &mut MillIr) {
        if !ir.plan.static_graph {
            ir.plan.static_graph = true;
            ir.plan.dispatch = DispatchMode::Inlined;
            ir.note(format!(
                "static-graph: {} element(s) and {} connection(s) embedded statically; \
                 per-packet path fully inlined{}",
                ir.config.declarations.len(),
                ir.config.connections.len(),
                if ir.plan.sroa_active() {
                    "; Packet conversion scalar-replaced"
                } else {
                    ""
                }
            ));
        }
    }
}

/// Reorders the `Packet` metadata structure by access frequency
/// (paper §3.2.2: the LLVM LTO pass over GEPI references).
///
/// Fields never accessed keep their relative order after the hot ones —
/// the pass "only sorts the variables" like the paper's current version.
#[derive(Debug, Clone)]
pub struct ReorderFieldsPass {
    profile: FieldProfile,
}

impl ReorderFieldsPass {
    /// Builds the pass from a per-field access profile (collected by a
    /// profiling run of the NF).
    pub fn from_profile(profile: FieldProfile) -> Self {
        ReorderFieldsPass { profile }
    }

    /// The hot-first field order this profile implies for `layout`.
    pub fn order_for(&self, layout: &StructLayout) -> Vec<&'static str> {
        let mut hot: Vec<(&'static str, u64)> = layout
            .fields()
            .iter()
            .filter_map(|f| self.profile.get(f.name).map(|&c| (f.name, c)))
            .filter(|&(_, c)| c > 0)
            .collect();
        // Sort by count descending; ties keep original layout order
        // (sort is stable over the layout-ordered input).
        hot.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        hot.into_iter().map(|(n, _)| n).collect()
    }
}

impl Pass for ReorderFieldsPass {
    fn name(&self) -> &'static str {
        "reorder-fields"
    }

    fn run(&self, ir: &mut MillIr) {
        let order = self.order_for(&ir.plan.packet_layout);
        if order.is_empty() {
            ir.note("reorder-fields: no profile data; layout unchanged");
            return;
        }
        let before = ir.plan.packet_layout.lines_touched(&order.to_vec());
        let new_layout = ir.plan.packet_layout.reordered(&order);
        let after = new_layout.lines_touched(&order.to_vec());
        ir.plan.packet_layout = new_layout;
        ir.note(format!(
            "reorder-fields: {} hot field(s) moved to the front; hot set now spans {after} \
             line(s) (was {before})",
            order.len()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MillIr;
    use pm_click::{ConfigGraph, MetadataModel};

    fn ir_from(cfg: &str) -> MillIr {
        MillIr::new(ConfigGraph::parse(cfg).unwrap(), MetadataModel::Copying)
    }

    #[test]
    fn dead_elements_removed() {
        let mut ir = ir_from(
            "in :: FromDPDKDevice(0); out :: ToDPDKDevice(0); orphan :: Counter; \
             dead2 :: Null; orphan -> dead2 -> Discard; in -> Null -> out;",
        );
        let before = ir.config.declarations.len();
        DeadElementPass.run(&mut ir);
        // orphan, dead2, and the inline Discard die; Null@N stays.
        assert_eq!(ir.config.declarations.len(), before - 3);
        assert!(ir.config.find("orphan").is_none());
        assert!(ir.config.find("in").is_some());
        // Connections reindexed and still valid.
        for c in &ir.config.connections {
            assert!(c.from < ir.config.declarations.len());
            assert!(c.to < ir.config.declarations.len());
        }
    }

    #[test]
    fn dead_pass_noop_when_all_live() {
        let mut ir = ir_from("in :: FromDPDKDevice(0); in -> Discard;");
        let before = ir.config.clone();
        DeadElementPass.run(&mut ir);
        assert_eq!(ir.config, before);
    }

    #[test]
    fn devirtualize_idempotent() {
        let mut ir = ir_from("in :: FromDPDKDevice(0); in -> Discard;");
        DevirtualizePass.run(&mut ir);
        assert_eq!(ir.plan.dispatch, DispatchMode::Direct);
        let log_len = ir.log.len();
        DevirtualizePass.run(&mut ir);
        assert_eq!(ir.log.len(), log_len, "second run is a no-op");
    }

    #[test]
    fn reorder_uses_profile_counts() {
        let mut ir = ir_from("in :: FromDPDKDevice(0); in -> Discard;");
        let mut prof = FieldProfile::new();
        prof.insert("dst_ip_anno", 100);
        prof.insert("net_hdr", 50);
        prof.insert("paint_anno", 150);
        ReorderFieldsPass::from_profile(prof).run(&mut ir);
        let l = &ir.plan.packet_layout;
        assert_eq!(l.offset_of("paint_anno"), 0);
        assert!(l.offset_of("dst_ip_anno") < l.offset_of("net_hdr"));
        assert_eq!(
            l.lines_touched(&["paint_anno", "dst_ip_anno", "net_hdr"]),
            1
        );
        // Field set preserved.
        assert_eq!(
            l.fields().len(),
            pm_click::default_packet_layout().fields().len()
        );
    }

    #[test]
    fn reorder_without_profile_is_noop() {
        let mut ir = ir_from("in :: FromDPDKDevice(0); in -> Discard;");
        let before = ir.plan.packet_layout.clone();
        ReorderFieldsPass::from_profile(FieldProfile::new()).run(&mut ir);
        assert_eq!(ir.plan.packet_layout, before);
    }

    #[test]
    fn unknown_profile_fields_ignored() {
        let mut ir = ir_from("in :: FromDPDKDevice(0); in -> Discard;");
        let mut prof = FieldProfile::new();
        prof.insert("no_such_field", 10);
        prof.insert("rss_hash", 5);
        ReorderFieldsPass::from_profile(prof).run(&mut ir);
        assert_eq!(ir.plan.packet_layout.offset_of("rss_hash"), 0);
    }
}
