//! Ethernet link serialization timing.

use pm_sim::SimTime;

/// Per-frame overhead on the wire that does not appear in the captured
/// frame: 7-byte preamble + 1-byte SFD + 12-byte inter-frame gap.
pub const WIRE_OVERHEAD_BYTES: u64 = 20;

/// An Ethernet link of a given rate.
///
/// # Examples
///
/// ```
/// use pm_nic::LinkModel;
/// use pm_sim::SimTime;
///
/// let link = LinkModel::new(100.0);
/// // The paper's headline number: 6.72 ns per minimum-size frame.
/// assert_eq!(link.frame_time(64), SimTime::from_ns(6.72));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    rate_gbps: f64,
}

impl LinkModel {
    /// Creates a link of `rate_gbps` gigabits per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn new(rate_gbps: f64) -> Self {
        assert!(rate_gbps > 0.0, "link rate must be positive");
        LinkModel { rate_gbps }
    }

    /// The link rate in Gbps.
    pub fn rate_gbps(&self) -> f64 {
        self.rate_gbps
    }

    /// Time to serialize one frame of `frame_bytes` (including wire
    /// overhead).
    pub fn frame_time(&self, frame_bytes: u64) -> SimTime {
        let bits = (frame_bytes + WIRE_OVERHEAD_BYTES) * 8;
        SimTime::from_ns(bits as f64 / self.rate_gbps)
    }

    /// Maximum packets per second for fixed-size frames.
    pub fn max_pps(&self, frame_bytes: u64) -> f64 {
        1e9 / self.frame_time(frame_bytes).as_ns()
    }

    /// Maximum goodput in Gbps (frame bytes, excluding wire overhead) for
    /// fixed-size frames.
    pub fn max_goodput_gbps(&self, frame_bytes: u64) -> f64 {
        self.max_pps(frame_bytes) * frame_bytes as f64 * 8.0 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_gig_64b_slot() {
        let l = LinkModel::new(100.0);
        assert_eq!(l.frame_time(64), SimTime::from_ns(6.72));
        assert!((l.max_pps(64) - 148.8e6).abs() < 0.1e6, "~148.8 Mpps");
    }

    #[test]
    fn goodput_below_line_rate() {
        let l = LinkModel::new(100.0);
        let g = l.max_goodput_gbps(1500);
        assert!(g < 100.0 && g > 98.0, "1500-B goodput ≈ 98.7, got {g}");
        let g64 = l.max_goodput_gbps(64);
        assert!(g64 < 77.0 && g64 > 75.0, "64-B goodput ≈ 76.2, got {g64}");
    }

    #[test]
    fn ten_gig_scales() {
        let l10 = LinkModel::new(10.0);
        let l100 = LinkModel::new(100.0);
        assert_eq!(l10.frame_time(64).as_ps(), l100.frame_time(64).as_ps() * 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = LinkModel::new(0.0);
    }
}
