//! Receive-side scaling: the Toeplitz hash and an indirection table.
//!
//! The multicore NAT experiment (paper §4.5, Fig. 10) "uses RSS to
//! distribute packets among different cores". This module implements the
//! real Microsoft Toeplitz hash over the IPv4 4-tuple with the standard
//! verification key, plus the 128-entry indirection table real NICs use
//! to map hashes to queues. Hashing the 4-tuple keeps each flow on one
//! queue — which the stateful NAT requires for correctness.

/// The Toeplitz hash function with a 40-byte key.
#[derive(Debug, Clone)]
pub struct Toeplitz {
    key: [u8; 40],
    /// Per-(byte position, byte value) hash contributions for the
    /// 12-byte IPv4 4-tuple input. Toeplitz is linear over GF(2) in the
    /// input bits, so the hash of any 12-byte input is the XOR of one
    /// table entry per byte — the same trick DPDK's software RSS uses.
    /// Built once per key; pure precomputation, no behaviour change.
    v4_tables: Box<[[u32; 256]; 12]>,
}

/// Microsoft's RSS verification key (from the RSS specification; also the
/// default in many drivers).
pub const MSFT_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

impl Toeplitz {
    /// Creates a hasher with the standard Microsoft key.
    pub fn microsoft() -> Self {
        Self::with_key(MSFT_KEY)
    }

    /// Creates a hasher with a custom 40-byte key.
    pub fn with_key(key: [u8; 40]) -> Self {
        // 32-bit window of the key starting at bit `g` (MSB-first).
        let window = |g: usize| -> u32 {
            let mut w = 0u64;
            for i in 0..5 {
                w = (w << 8) | u64::from(key[g / 8 + i]);
            }
            (w >> (8 - g % 8)) as u32
        };
        let mut v4_tables: Box<[[u32; 256]; 12]> =
            vec![[0u32; 256]; 12].into_boxed_slice().try_into().unwrap();
        for (i, table) in v4_tables.iter_mut().enumerate() {
            for (v, slot) in table.iter_mut().enumerate() {
                let mut h = 0u32;
                for bit in (0..8).rev() {
                    if v >> bit & 1 == 1 {
                        h ^= window(8 * i + (7 - bit));
                    }
                }
                *slot = h;
            }
        }
        Toeplitz { key, v4_tables }
    }

    /// Hashes an arbitrary input (each bit selects a shifted 32-bit window
    /// of the key).
    pub fn hash(&self, input: &[u8]) -> u32 {
        let mut result = 0u32;
        // Current 32-bit window of the key, advanced bit by bit.
        let mut window = u32::from_be_bytes([self.key[0], self.key[1], self.key[2], self.key[3]]);
        let mut next_byte = 4usize;
        let mut bits_used = 0u32;
        for &byte in input {
            for bit in (0..8).rev() {
                if byte >> bit & 1 == 1 {
                    result ^= window;
                }
                // Shift the window left by one, pulling in the next key bit.
                let next_bit = if next_byte < self.key.len() {
                    (self.key[next_byte] >> (7 - bits_used % 8)) & 1
                } else {
                    0
                };
                window = (window << 1) | u32::from(next_bit);
                bits_used += 1;
                if bits_used.is_multiple_of(8) {
                    next_byte += 1;
                }
            }
        }
        result
    }

    /// Hashes the IPv4 4-tuple in RSS input order (src ip, dst ip,
    /// src port, dst port — all big-endian).
    pub fn hash_v4_tuple(&self, src: [u8; 4], dst: [u8; 4], src_port: u16, dst_port: u16) -> u32 {
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&src);
        input[4..8].copy_from_slice(&dst);
        input[8..10].copy_from_slice(&src_port.to_be_bytes());
        input[10..12].copy_from_slice(&dst_port.to_be_bytes());
        let mut h = 0u32;
        for (i, &b) in input.iter().enumerate() {
            h ^= self.v4_tables[i][usize::from(b)];
        }
        h
    }
}

/// A 128-entry RSS indirection table mapping hash → queue.
#[derive(Debug, Clone)]
pub struct IndirectionTable {
    entries: [u16; 128],
}

impl IndirectionTable {
    /// Round-robin table over `queues` queues.
    ///
    /// When `queues` does not divide 128 the table carries a residual
    /// imbalance: the first `128 % queues` queues own one extra entry
    /// (e.g. 3 queues get 43/43/42 entries, a ~2 % skew). Real NICs have
    /// the same bias with a default indirection table; we keep it rather
    /// than hide it, and experiments must not assume perfectly equal
    /// per-queue load. What *is* guaranteed — and what the stateful NAT
    /// (paper §4.5) relies on — is that [`IndirectionTable::queue_for`]
    /// is a pure function of the hash, so a flow's 4-tuple always lands
    /// on the same queue.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero or exceeds `u16::MAX`.
    pub fn round_robin(queues: usize) -> Self {
        assert!(queues > 0 && queues <= u16::MAX as usize);
        let mut entries = [0u16; 128];
        for (i, e) in entries.iter_mut().enumerate() {
            *e = (i % queues) as u16;
        }
        IndirectionTable { entries }
    }

    /// Maps a hash value to a queue index.
    pub fn queue_for(&self, hash: u32) -> usize {
        self.entries[(hash & 127) as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test vectors from the Microsoft RSS specification ("Verifying the
    /// RSS Hash Calculation", IPv4 with ports).
    #[test]
    fn msft_verification_vectors() {
        let t = Toeplitz::microsoft();
        // 66.9.149.187:2794 -> 161.142.100.80:1766
        let h = t.hash_v4_tuple([66, 9, 149, 187], [161, 142, 100, 80], 2794, 1766);
        assert_eq!(h, 0x51cc_c178);
        // 199.92.111.2:14230 -> 65.69.140.83:4739
        let h = t.hash_v4_tuple([199, 92, 111, 2], [65, 69, 140, 83], 14230, 4739);
        assert_eq!(h, 0xc626_b0ea);
        // 24.19.198.95:12898 -> 12.22.207.184:38024
        let h = t.hash_v4_tuple([24, 19, 198, 95], [12, 22, 207, 184], 12898, 38024);
        assert_eq!(h, 0x5c2b_394a);
    }

    /// The per-byte table path must agree with the bit-serial reference
    /// `hash` for arbitrary tuples (and arbitrary keys).
    #[test]
    fn v4_tables_match_bit_serial_hash() {
        let mut key = [0u8; 40];
        for (i, b) in key.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        for t in [Toeplitz::microsoft(), Toeplitz::with_key(key)] {
            let mut x = 0x1234_5678_9abc_def0u64;
            for _ in 0..200 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let b = x.to_be_bytes();
                let src = [b[0], b[1], b[2], b[3]];
                let dst = [b[4], b[5], b[6], b[7]];
                let (sp, dp) = ((x >> 16) as u16, x as u16);
                let mut input = [0u8; 12];
                input[0..4].copy_from_slice(&src);
                input[4..8].copy_from_slice(&dst);
                input[8..10].copy_from_slice(&sp.to_be_bytes());
                input[10..12].copy_from_slice(&dp.to_be_bytes());
                assert_eq!(t.hash_v4_tuple(src, dst, sp, dp), t.hash(&input));
            }
        }
    }

    #[test]
    fn same_flow_same_hash() {
        let t = Toeplitz::microsoft();
        let a = t.hash_v4_tuple([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80);
        let b = t.hash_v4_tuple([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80);
        assert_eq!(a, b);
    }

    #[test]
    fn different_flows_spread() {
        let t = Toeplitz::microsoft();
        let table = IndirectionTable::round_robin(4);
        let mut counts = [0usize; 4];
        for p in 0..512u16 {
            let h = t.hash_v4_tuple([10, 0, 0, 1], [10, 0, 0, 2], 1000 + p, 80);
            counts[table.queue_for(h)] += 1;
        }
        for (q, &c) in counts.iter().enumerate() {
            assert!(c > 64, "queue {q} underloaded: {c}/512");
        }
    }

    #[test]
    fn indirection_round_robin() {
        let t = IndirectionTable::round_robin(3);
        assert_eq!(t.queue_for(0), 0);
        assert_eq!(t.queue_for(1), 1);
        assert_eq!(t.queue_for(2), 2);
        assert_eq!(t.queue_for(3), 0);
        assert_eq!(t.queue_for(128), 0, "hash masked to 7 bits");
    }

    /// Documents the residual imbalance when the queue count does not
    /// divide the 128-entry table: the first `128 % q` queues get one
    /// extra entry, and every entry stays in range.
    #[test]
    fn round_robin_residual_imbalance() {
        for q in 1..=8usize {
            let t = IndirectionTable::round_robin(q);
            let mut counts = vec![0usize; q];
            for h in 0..128u32 {
                let dest = t.queue_for(h);
                assert!(dest < q, "entry out of range for {q} queues");
                counts[dest] += 1;
            }
            for (i, &c) in counts.iter().enumerate() {
                let expect = 128 / q + usize::from(i < 128 % q);
                assert_eq!(c, expect, "queue {i} of {q}");
            }
        }
        // The concrete case from the docs: 3 queues split 43/43/42.
        let t = IndirectionTable::round_robin(3);
        let mut counts = [0usize; 3];
        for h in 0..128u32 {
            counts[t.queue_for(h)] += 1;
        }
        assert_eq!(counts, [43, 43, 42]);
    }

    #[test]
    #[should_panic]
    fn zero_queues_rejected() {
        let _ = IndirectionTable::round_robin(0);
    }
}
