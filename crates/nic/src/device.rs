//! The NIC device model: RSS steering, PCIe pacing, DMA into the cache
//! hierarchy, and link-rate TX serialization.

use crate::dma::DmaMemory;
use crate::link::LinkModel;
use crate::pcie::PcieModel;
use crate::ring::{Completion, RxRing, TxDone, TxRequest, TxRing, DESC_BYTES};
use crate::rss::{IndirectionTable, Toeplitz};
use pm_mem::{AddressSpace, MemoryHierarchy};
use pm_packet::{ether::EtherHeader, ether::EtherType, ipv4::IpProto, ipv4::Ipv4Header};
use pm_sim::{SimTime, WireFault};

/// NIC construction parameters.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Number of RX/TX queue pairs.
    pub queues: usize,
    /// RX descriptor ring size (power of two).
    pub rx_ring_size: usize,
    /// TX descriptor ring size (power of two).
    pub tx_ring_size: usize,
    /// Link model.
    pub link: LinkModel,
    /// PCIe model.
    pub pcie: PcieModel,
    /// Maximum packets per second one RX queue can absorb (the paper's
    /// single-queue NIC-side plateau, §4.2: "there may be other
    /// bottlenecks in the system (e.g., using one RX/TX queue or other
    /// NIC-related issues)"). `None` disables the cap.
    pub max_pps_per_queue: Option<f64>,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            queues: 1,
            rx_ring_size: 4096,
            tx_ring_size: 1024,
            link: LinkModel::new(100.0),
            pcie: PcieModel::gen3_x16(),
            max_pps_per_queue: None,
        }
    }
}

/// Aggregate device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Frames delivered to a completion queue.
    pub rx_packets: u64,
    /// Bytes in those frames.
    pub rx_bytes: u64,
    /// Frames dropped for lack of a posted buffer (ring overflow).
    pub rx_dropped: u64,
    /// Frames serialized onto the wire.
    pub tx_packets: u64,
    /// Bytes in those frames.
    pub tx_bytes: u64,
    /// Frames dropped because the TX ring was full.
    pub tx_dropped: u64,
    /// Frames that failed the FCS check (injected wire corruption),
    /// dropped before consuming a posted buffer — like `rx_crc_errors`.
    pub rx_fcs_errors: u64,
    /// Frames lost because they arrived while the link was down.
    pub rx_link_down: u64,
    /// Frames lost to an injected descriptor-drop episode.
    pub rx_desc_drops: u64,
    /// Frames delivered short (injected truncation with a valid FCS).
    pub rx_truncated: u64,
}

/// Per-queue statistics, for the per-queue conservation ledger: frames
/// dropped before RSS steering picks a queue (FCS errors, link-down
/// losses, descriptor drops) appear only in the aggregate [`NicStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Frames delivered to this queue's completion queue.
    pub rx_packets: u64,
    /// Frames steered here but dropped for lack of a posted buffer.
    pub rx_dropped: u64,
    /// Frames serialized onto the wire from this queue.
    pub tx_packets: u64,
    /// Frames dropped because this TX ring was full.
    pub tx_dropped: u64,
}

/// A simulated ConnectX-5-like device.
#[derive(Debug)]
pub struct Nic {
    link: LinkModel,
    pcie: PcieModel,
    rx: Vec<RxRing>,
    tx: Vec<TxRing>,
    toeplitz: Toeplitz,
    indirection: IndirectionTable,
    rx_pcie_free: SimTime,
    tx_pcie_free: SimTime,
    tx_link_free: SimTime,
    rx_queue_free: Vec<SimTime>,
    queue_slot: Option<SimTime>,
    link_down: Vec<(SimTime, SimTime)>,
    stats: NicStats,
    /// Frames delivered per queue (the rings count their own drops).
    rx_q_packets: Vec<u64>,
    /// Frames transmitted per queue.
    tx_q_packets: Vec<u64>,
    seq: u64,
}

impl Nic {
    /// Builds a NIC, allocating descriptor memory from `space`.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new(cfg: &NicConfig, space: &mut AddressSpace) -> Self {
        assert!(cfg.queues > 0, "need at least one queue");
        Nic {
            link: cfg.link,
            pcie: cfg.pcie,
            rx: (0..cfg.queues)
                .map(|_| RxRing::new(space, cfg.rx_ring_size))
                .collect(),
            tx: (0..cfg.queues)
                .map(|_| TxRing::new(space, cfg.tx_ring_size))
                .collect(),
            toeplitz: Toeplitz::microsoft(),
            indirection: IndirectionTable::round_robin(cfg.queues),
            rx_pcie_free: SimTime::ZERO,
            tx_pcie_free: SimTime::ZERO,
            tx_link_free: SimTime::ZERO,
            rx_queue_free: vec![SimTime::ZERO; cfg.queues],
            queue_slot: cfg.max_pps_per_queue.map(|pps| SimTime::from_ns(1e9 / pps)),
            link_down: Vec::new(),
            stats: NicStats::default(),
            rx_q_packets: vec![0; cfg.queues],
            tx_q_packets: vec![0; cfg.queues],
            seq: 0,
        }
    }

    /// Number of queue pairs.
    pub fn queue_count(&self) -> usize {
        self.rx.len()
    }

    /// The link model.
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// Device statistics (drops include per-ring no-buffer drops).
    pub fn stats(&self) -> NicStats {
        let mut s = self.stats;
        s.rx_dropped += self.rx.iter().map(|r| r.drops_no_buffer).sum::<u64>();
        s.tx_dropped += self.tx.iter().map(|t| t.drops_full).sum::<u64>();
        s
    }

    /// Per-queue statistics for queue `q` (see [`QueueStats`]).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn queue_stats(&self, q: usize) -> QueueStats {
        QueueStats {
            rx_packets: self.rx_q_packets[q],
            rx_dropped: self.rx[q].drops_no_buffer,
            tx_packets: self.tx_q_packets[q],
            tx_dropped: self.tx[q].drops_full,
        }
    }

    /// Installs injected link-flap windows: while `from <= t < until`
    /// the link is down — arriving frames are lost (counted in
    /// [`NicStats::rx_link_down`]) and TX serialization waits for the
    /// window to close. The default (no windows) costs nothing.
    pub fn set_link_flaps(&mut self, windows: Vec<(SimTime, SimTime)>) {
        self.link_down = windows;
    }

    /// If the link is down at `t`, the instant it comes back up.
    fn link_resume(&self, t: SimTime) -> Option<SimTime> {
        self.link_down
            .iter()
            .find(|(from, until)| *from <= t && t < *until)
            .map(|&(_, until)| until)
    }

    /// Driver access to an RX ring.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn rx_ring_mut(&mut self, q: usize) -> &mut RxRing {
        &mut self.rx[q]
    }

    /// Read-only access to an RX ring (occupancy observation for the
    /// flight recorder).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn rx_ring(&self, q: usize) -> &RxRing {
        &self.rx[q]
    }

    /// Read-only access to a TX ring.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn tx_ring(&self, q: usize) -> &TxRing {
        &self.tx[q]
    }

    /// Driver access to a TX ring.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn tx_ring_mut(&mut self, q: usize) -> &mut TxRing {
        &mut self.tx[q]
    }

    /// Computes the RSS hash the device would assign to `frame`.
    ///
    /// IPv4 TCP/UDP hash the 4-tuple; other IPv4 hashes addresses only;
    /// non-IP traffic hashes to 0 (lands on queue 0, like real devices
    /// configured for IPv4 RSS).
    pub fn rss_hash(&self, frame: &[u8]) -> u32 {
        let Ok(eth) = EtherHeader::parse(frame) else {
            return 0;
        };
        if eth.ethertype != EtherType::IPV4 {
            return 0;
        }
        let Ok(ip) = Ipv4Header::parse(&frame[14..]) else {
            return 0;
        };
        // A truncated frame can end inside the IP header's claimed
        // length; hash whatever L4 bytes actually exist.
        let l4 = frame.get(14 + ip.header_len..).unwrap_or(&[]);
        let ports = match ip.protocol {
            IpProto::TCP | IpProto::UDP if l4.len() >= 4 && !ip.is_fragment() => {
                Some((crate::ring_be16(l4, 0), crate::ring_be16(l4, 2)))
            }
            _ => None,
        };
        match ports {
            Some((sp, dp)) => self.toeplitz.hash_v4_tuple(ip.src, ip.dst, sp, dp),
            None => self.toeplitz.hash_v4_tuple(ip.src, ip.dst, 0, 0),
        }
    }

    /// Delivers a frame arriving at `now`: RSS-steers it, consumes a
    /// posted buffer, paces the PCIe write, DMA-writes data + completion
    /// descriptor, and publishes the completion. The caller supplies the
    /// generator's packet index as `seq` (latency/measurement identity —
    /// drops must not renumber survivors).
    ///
    /// Returns the queue it landed on, or `None` if it was dropped.
    pub fn rx_deliver_seq(
        &mut self,
        frame: &[u8],
        now: SimTime,
        seq: u64,
        mem: &mut MemoryHierarchy,
        dma: &mut DmaMemory,
    ) -> Option<usize> {
        let hash = self.rss_hash(frame);
        self.rx_deliver_hashed(frame, hash, now, seq, mem, dma)
    }

    /// [`Self::rx_deliver_seq`] with the RSS hash supplied by the
    /// caller. A cyclic trace replays the same frames many times, so a
    /// generator can compute each frame's hash once ([`Self::rss_hash`]
    /// is a pure function of the bytes) and skip the per-delivery
    /// Toeplitz work.
    pub fn rx_deliver_hashed(
        &mut self,
        frame: &[u8],
        hash: u32,
        now: SimTime,
        seq: u64,
        mem: &mut MemoryHierarchy,
        dma: &mut DmaMemory,
    ) -> Option<usize> {
        if self.link_resume(now).is_some() {
            self.stats.rx_link_down += 1;
            return None;
        }
        // `queue_for` is the single steering path: the indirection table
        // is built over exactly `rx.len()` queues, so its entries are
        // already in range (NAT flow affinity depends on this mapping
        // being a pure function of the hash — no rescaling afterwards).
        let q = self.indirection.queue_for(hash);
        debug_assert!(q < self.rx.len(), "indirection entry out of range");
        let Some(buf) = self.rx[q].take_posted() else {
            return None; // ring counted the drop
        };
        // PCIe pacing + per-queue descriptor-processing pacing.
        let mut ready = now.max(self.rx_pcie_free);
        if let Some(slot) = self.queue_slot {
            ready = ready.max(self.rx_queue_free[q]);
            self.rx_queue_free[q] = ready + slot;
        }
        let delivery = ready + self.pcie.transfer_time(frame.len() as u64);
        self.rx_pcie_free = delivery;

        dma.write_packet(buf.buf_id, frame);
        let desc_addr = self.rx[q].push_completion(Completion {
            buf_id: buf.buf_id,
            data_addr: buf.data_addr,
            len: frame.len() as u32,
            rss_hash: hash,
            arrival: delivery,
            gen: now,
            seq,
            desc_addr: 0, // filled by push_completion
        });
        // One NIC event writes payload then completion descriptor: a
        // heterogeneous two-span DDIO charge set, payload lines first.
        mem.dma_write_set(&[(buf.data_addr, frame.len() as u64), (desc_addr, DESC_BYTES)]);

        self.stats.rx_packets += 1;
        self.stats.rx_bytes += frame.len() as u64;
        self.rx_q_packets[q] += 1;
        Some(q)
    }

    /// [`Self::rx_deliver_hashed`] with an injected wire fault applied
    /// first. Bit-flipped frames fail the FCS check and descriptor-drop
    /// episodes lose the frame outright — both are counted and consume
    /// **no** posted buffer (the device rejects them before DMA).
    /// Truncated frames carry a valid FCS, so the shortened bytes are
    /// re-hashed and delivered all the way into the NF.
    #[allow(clippy::too_many_arguments)] // rx_deliver_hashed's params + the fault
    pub fn rx_deliver_wire(
        &mut self,
        frame: &[u8],
        hash: u32,
        now: SimTime,
        seq: u64,
        mem: &mut MemoryHierarchy,
        dma: &mut DmaMemory,
        fault: Option<WireFault>,
    ) -> Option<usize> {
        match fault {
            None => self.rx_deliver_hashed(frame, hash, now, seq, mem, dma),
            Some(WireFault::BitFlip) => {
                if self.link_resume(now).is_some() {
                    self.stats.rx_link_down += 1;
                } else {
                    self.stats.rx_fcs_errors += 1;
                }
                None
            }
            Some(WireFault::DescDrop) => {
                if self.link_resume(now).is_some() {
                    self.stats.rx_link_down += 1;
                } else {
                    self.stats.rx_desc_drops += 1;
                }
                None
            }
            Some(WireFault::Truncate { new_len }) => {
                let short = &frame[..new_len.min(frame.len())];
                let hash = self.rss_hash(short);
                let q = self.rx_deliver_hashed(short, hash, now, seq, mem, dma);
                if q.is_some() {
                    self.stats.rx_truncated += 1;
                }
                q
            }
        }
    }

    /// [`Self::rx_deliver_seq`] with an internally assigned sequence
    /// number (tests and simple drivers).
    pub fn rx_deliver(
        &mut self,
        frame: &[u8],
        now: SimTime,
        mem: &mut MemoryHierarchy,
        dma: &mut DmaMemory,
    ) -> Option<usize> {
        let seq = self.seq;
        self.seq += 1;
        self.rx_deliver_seq(frame, now, seq, mem, dma)
    }

    /// Accepts a transmit request at `now`; returns the wire-departure
    /// time and the TX descriptor (WQE) slot address the driver wrote, or
    /// `None` if the TX ring was full.
    pub fn tx_send(
        &mut self,
        q: usize,
        req: TxRequest,
        now: SimTime,
        mem: &mut MemoryHierarchy,
    ) -> Option<(SimTime, u64)> {
        // The device fetches the frame over PCIe, then serializes it.
        let fetched = now.max(self.tx_pcie_free) + self.pcie.transfer_time(req.len as u64);
        self.tx_pcie_free = fetched;
        let mut start = fetched.max(self.tx_link_free);
        // An injected link flap pauses serialization until the link is
        // back up (frames already queued in the device wait it out).
        while let Some(resume) = self.link_resume(start) {
            start = resume;
        }
        let departed = start + self.link.frame_time(req.len as u64);

        mem.dma_read(req.data_addr, req.len as u64);
        let len = req.len;
        let desc_addr = self.tx[q].push(TxDone { req, departed })?;
        self.tx_link_free = departed;
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += len as u64;
        self.tx_q_packets[q] += 1;
        Some((departed, desc_addr))
    }

    /// Reaps TX descriptors whose frames have left the wire by `now`.
    pub fn tx_reap(&mut self, q: usize, now: SimTime) -> Vec<TxDone> {
        self.tx[q].reap_completed(now)
    }

    /// Free TX descriptor slots on queue `q` right now.
    pub fn tx_free_slots(&self, q: usize) -> usize {
        self.tx[q].size() - self.tx[q].in_flight()
    }

    /// Departure time of queue `q`'s oldest in-flight frame.
    pub fn tx_oldest_departure(&self, q: usize) -> Option<SimTime> {
        self.tx[q].oldest_departure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::PostedBuffer;
    use pm_packet::builder::PacketBuilder;

    struct Rig {
        nic: Nic,
        mem: MemoryHierarchy,
        dma: DmaMemory,
    }

    fn rig(queues: usize) -> Rig {
        let mut space = AddressSpace::new();
        let cfg = NicConfig {
            queues,
            rx_ring_size: 8,
            tx_ring_size: 8,
            ..NicConfig::default()
        };
        let nic = Nic::new(&cfg, &mut space);
        let dma = DmaMemory::new(&mut space, 32, 2048, 128);
        Rig {
            nic,
            mem: MemoryHierarchy::skylake(1),
            dma,
        }
    }

    fn post(r: &mut Rig, q: usize, ids: std::ops::Range<u32>) {
        for id in ids {
            let addr = r.dma.data_addr(id);
            r.nic.rx_ring_mut(q).post(PostedBuffer {
                buf_id: id,
                data_addr: addr,
            });
        }
    }

    #[test]
    fn rx_delivers_data_and_completion() {
        let mut r = rig(1);
        post(&mut r, 0, 0..4);
        let frame = PacketBuilder::udp().frame_len(128).build();
        let q = r
            .nic
            .rx_deliver(&frame, SimTime::ZERO, &mut r.mem, &mut r.dma)
            .unwrap();
        assert_eq!(q, 0);
        let c = r.nic.rx_ring_mut(0).reap(32);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].len, 128);
        // Real bytes landed in the buffer.
        assert_eq!(r.dma.data(c[0].buf_id)[..128], frame[..]);
        // Data was DDIO'd into the LLC.
        assert!(r.mem.counters().dma_write_lines >= 2);
        assert!(c[0].arrival > SimTime::ZERO, "PCIe transfer takes time");
    }

    #[test]
    fn rx_drops_when_no_buffers() {
        let mut r = rig(1);
        let frame = PacketBuilder::udp().frame_len(64).build();
        assert!(r
            .nic
            .rx_deliver(&frame, SimTime::ZERO, &mut r.mem, &mut r.dma)
            .is_none());
        assert_eq!(r.nic.stats().rx_dropped, 1);
    }

    #[test]
    fn rss_spreads_flows_across_queues() {
        let mut r = rig(4);
        for q in 0..4 {
            post(&mut r, q, (q as u32 * 8)..(q as u32 * 8 + 8));
        }
        let mut hit = [false; 4];
        for p in 0..64u16 {
            let frame = PacketBuilder::udp()
                .src_port(3000 + p)
                .frame_len(128)
                .build();
            if let Some(q) = r
                .nic
                .rx_deliver(&frame, SimTime::ZERO, &mut r.mem, &mut r.dma)
            {
                hit[q] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "all queues should receive flows");
    }

    #[test]
    fn same_flow_stays_on_one_queue() {
        let r = rig(4);
        let f1 = PacketBuilder::tcp().src_port(5555).frame_len(64).build();
        let h1 = r.nic.rss_hash(&f1);
        let f2 = PacketBuilder::tcp().src_port(5555).frame_len(1400).build();
        assert_eq!(h1, r.nic.rss_hash(&f2), "hash must ignore length");
    }

    #[test]
    fn tx_serializes_at_link_rate() {
        let mut r = rig(1);
        // Use 64-B frames: at that size the wire (6.72 ns/frame) is slower
        // than PCIe, so back-to-back departures are link-paced.
        let mk = |seq: u64| TxRequest {
            buf_id: 0,
            data_addr: r.dma.data_addr(0),
            len: 64,
            seq,
            arrival: SimTime::ZERO,
        };
        let (d1, _) = r.nic.tx_send(0, mk(0), SimTime::ZERO, &mut r.mem).unwrap();
        let (d2, _) = r.nic.tx_send(0, mk(1), SimTime::ZERO, &mut r.mem).unwrap();
        let gap = d2 - d1;
        assert_eq!(gap, LinkModel::new(100.0).frame_time(64));
    }

    #[test]
    fn tx_reap_frees_after_departure() {
        let mut r = rig(1);
        let req = TxRequest {
            buf_id: 3,
            data_addr: r.dma.data_addr(3),
            len: 64,
            seq: 0,
            arrival: SimTime::ZERO,
        };
        let (departed, _) = r.nic.tx_send(0, req, SimTime::ZERO, &mut r.mem).unwrap();
        assert!(r.nic.tx_reap(0, SimTime::ZERO).is_empty());
        let done = r.nic.tx_reap(0, departed);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].req.buf_id, 3);
    }

    #[test]
    fn wire_faults_are_counted_and_consume_no_buffer() {
        let mut r = rig(1);
        post(&mut r, 0, 0..4);
        let frame = PacketBuilder::udp().frame_len(128).build();
        let h = r.nic.rss_hash(&frame);
        for (fault, _) in [(WireFault::BitFlip, "fcs"), (WireFault::DescDrop, "desc")] {
            assert_eq!(
                r.nic.rx_deliver_wire(
                    &frame,
                    h,
                    SimTime::ZERO,
                    0,
                    &mut r.mem,
                    &mut r.dma,
                    Some(fault)
                ),
                None
            );
        }
        let s = r.nic.stats();
        assert_eq!((s.rx_fcs_errors, s.rx_desc_drops), (1, 1));
        assert_eq!(s.rx_packets, 0);
        assert_eq!(s.rx_dropped, 0, "rejected frames must not touch the ring");
        // All four posted buffers are still available.
        let q = r
            .nic
            .rx_deliver(&frame, SimTime::ZERO, &mut r.mem, &mut r.dma);
        assert_eq!(q, Some(0));
    }

    #[test]
    fn truncated_frames_deliver_short_and_are_counted() {
        let mut r = rig(1);
        post(&mut r, 0, 0..4);
        let frame = PacketBuilder::udp().frame_len(128).build();
        let h = r.nic.rss_hash(&frame);
        let q = r
            .nic
            .rx_deliver_wire(
                &frame,
                h,
                SimTime::ZERO,
                0,
                &mut r.mem,
                &mut r.dma,
                Some(WireFault::Truncate { new_len: 17 }),
            )
            .expect("short frame still delivers");
        let c = r.nic.rx_ring_mut(q).reap(32);
        assert_eq!(c[0].len, 17, "completion reports the surviving length");
        assert_eq!(r.nic.stats().rx_truncated, 1);
    }

    #[test]
    fn rss_hash_survives_truncation_anywhere() {
        let r = rig(1);
        let frame = PacketBuilder::udp().frame_len(128).build();
        for len in 0..frame.len() {
            r.nic.rss_hash(&frame[..len]); // must not panic
        }
    }

    #[test]
    fn link_flap_drops_rx_and_defers_tx() {
        let mut r = rig(1);
        post(&mut r, 0, 0..4);
        let down_at = SimTime::from_us(1.0);
        let up_at = SimTime::from_us(2.0);
        r.nic.set_link_flaps(vec![(down_at, up_at)]);

        let frame = PacketBuilder::udp().frame_len(64).build();
        assert!(r
            .nic
            .rx_deliver(&frame, down_at, &mut r.mem, &mut r.dma)
            .is_none());
        assert_eq!(r.nic.stats().rx_link_down, 1);
        assert!(r
            .nic
            .rx_deliver(&frame, up_at, &mut r.mem, &mut r.dma)
            .is_some());

        // TX submitted mid-flap serializes only after the link is back.
        let req = TxRequest {
            buf_id: 0,
            data_addr: r.dma.data_addr(0),
            len: 64,
            seq: 0,
            arrival: SimTime::ZERO,
        };
        let (departed, _) = r.nic.tx_send(0, req, down_at, &mut r.mem).unwrap();
        assert_eq!(departed, up_at + LinkModel::new(100.0).frame_time(64));
    }

    #[test]
    fn arp_lands_on_queue_zero() {
        let mut r = rig(4);
        for q in 0..4 {
            post(&mut r, q, (q as u32 * 8)..(q as u32 * 8 + 8));
        }
        let frame = PacketBuilder::arp().build();
        assert_eq!(
            r.nic
                .rx_deliver(&frame, SimTime::ZERO, &mut r.mem, &mut r.dma),
            Some(0)
        );
    }
}
