//! DMA-able packet-buffer memory.
//!
//! One contiguous simulated region holding `n` fixed-size buffers. The
//! NIC writes real packet bytes into these buffers (so elements can parse
//! them) and the simulated addresses are what the cache model sees. The
//! mempool in `pm-dpdk` hands buffer ids out; the headroom offset models
//! DPDK's `RTE_PKTMBUF_HEADROOM`.

use pm_mem::{AddressSpace, Region};

/// Backing store for `n` fixed-size DMA buffers.
#[derive(Debug)]
pub struct DmaMemory {
    data: Vec<u8>,
    region: Region,
    buf_size: u32,
    headroom: u32,
}

impl DmaMemory {
    /// Allocates `n_bufs` buffers of `buf_size` bytes each, with
    /// `headroom` bytes reserved at the front of every buffer, placing
    /// the whole pool in `space`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `headroom >= buf_size`.
    pub fn new(space: &mut AddressSpace, n_bufs: u32, buf_size: u32, headroom: u32) -> Self {
        assert!(n_bufs > 0 && buf_size > 0, "empty pool");
        assert!(headroom < buf_size, "headroom exceeds buffer");
        let total = n_bufs as u64 * buf_size as u64;
        DmaMemory {
            data: vec![0u8; total as usize],
            region: space.alloc_pages(total),
            buf_size,
            headroom,
        }
    }

    /// Number of buffers.
    pub fn buf_count(&self) -> u32 {
        (self.region.size / self.buf_size as u64) as u32
    }

    /// Usable data capacity of one buffer (after headroom).
    pub fn data_capacity(&self) -> u32 {
        self.buf_size - self.headroom
    }

    /// Simulated address of the data area (post-headroom) of buffer `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn data_addr(&self, id: u32) -> u64 {
        assert!(id < self.buf_count(), "buffer id out of range");
        self.region.base + id as u64 * self.buf_size as u64 + self.headroom as u64
    }

    /// The whole pool's region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Read access to the data area of buffer `id`.
    pub fn data(&self, id: u32) -> &[u8] {
        let start = id as usize * self.buf_size as usize + self.headroom as usize;
        &self.data[start..start + self.data_capacity() as usize]
    }

    /// Write access to the data area of buffer `id`.
    pub fn data_mut(&mut self, id: u32) -> &mut [u8] {
        let cap = self.data_capacity() as usize;
        let start = id as usize * self.buf_size as usize + self.headroom as usize;
        &mut self.data[start..start + cap]
    }

    /// Copies `bytes` into buffer `id` (the DMA write's functional half).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the buffer's data capacity.
    pub fn write_packet(&mut self, id: u32, bytes: &[u8]) {
        assert!(
            bytes.len() <= self.data_capacity() as usize,
            "packet larger than buffer"
        );
        self.data_mut(id)[..bytes.len()].copy_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> DmaMemory {
        DmaMemory::new(&mut AddressSpace::new(), 8, 2048, 128)
    }

    #[test]
    fn geometry() {
        let m = mem();
        assert_eq!(m.buf_count(), 8);
        assert_eq!(m.data_capacity(), 1920);
    }

    #[test]
    fn addresses_distinct_and_ordered() {
        let m = mem();
        for i in 0..7 {
            assert_eq!(m.data_addr(i + 1) - m.data_addr(i), 2048);
        }
        assert!(m.region().contains(m.data_addr(0)));
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = mem();
        m.write_packet(3, b"hello packet");
        assert_eq!(&m.data(3)[..12], b"hello packet");
        // Other buffers untouched.
        assert_eq!(&m.data(2)[..12], &[0u8; 12]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_id_panics() {
        let _ = mem().data_addr(8);
    }

    #[test]
    #[should_panic(expected = "larger than buffer")]
    fn oversize_packet_rejected() {
        mem().write_packet(0, &[0u8; 4096]);
    }
}
