//! A simulated 100-Gbps NIC for PacketMill-rs, modeled on the paper's
//! Mellanox ConnectX-5.
//!
//! The model covers exactly the NIC behaviours the evaluation depends on:
//!
//! * **Link serialization** ([`link::LinkModel`]) — 6.72 ns per 64-B frame
//!   at 100 Gbps including preamble + IFG; this sets the arrival pacing
//!   and the TX drain rate.
//! * **PCIe** ([`pcie::PcieModel`]) — effective x16 Gen3 bandwidth with
//!   per-packet TLP/descriptor overhead; this produces the paper's
//!   packets-per-second decline beyond ~800-B packets (Fig. 6).
//! * **DMA + DDIO** — packet data and completion descriptors are written
//!   through [`pm_mem::MemoryHierarchy::dma_write`], so received data is
//!   LLC-warm (or not, if DDIO ways thrash) when the core reads it.
//! * **RSS** ([`rss::Toeplitz`]) — the real Toeplitz hash over the IPv4
//!   5-tuple, used to spread flows over queues for the multicore NAT
//!   experiment (Fig. 10).
//! * **Descriptor rings** ([`ring::RxRing`], [`ring::TxRing`]) — the PMD
//!   posts receive buffers and reaps completions exactly as a real poll
//!   mode driver does; ring exhaustion is the NIC drop point, which is
//!   what bends the latency/throughput curve of Fig. 1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod device;
pub mod dma;
pub mod link;
pub mod pcie;
pub mod ring;
pub mod rss;

pub use device::{Nic, NicConfig, NicStats, QueueStats};
pub use dma::DmaMemory;
pub use link::LinkModel;
pub use pcie::PcieModel;
pub use ring::{Completion, PostedBuffer, RxRing, TxRequest, TxRing};
pub use rss::{IndirectionTable, Toeplitz};

/// Reads a big-endian u16 at `off` (header-field peeking for RSS).
#[inline]
pub(crate) fn ring_be16(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([b[off], b[off + 1]])
}
