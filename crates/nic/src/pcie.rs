//! PCIe bandwidth and per-packet overhead model.
//!
//! A ConnectX-5 sits on PCIe Gen3 x16: 126 Gbps raw per direction, around
//! 110 Gbps effective after 128-B TLP framing. Each packet additionally
//! crosses the bus as at least one TLP with header overhead, plus
//! completion/descriptor traffic. The paper notes (§4.3, citing
//! Neugebauer et al.) that beyond ~800-B packets the achievable
//! packets-per-second starts to be PCIe-limited — this model reproduces
//! that knee.

use pm_sim::SimTime;

/// PCIe direction capacity + per-packet overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieModel {
    /// Effective payload bandwidth per direction, Gbps.
    pub effective_gbps: f64,
    /// Per-packet overhead bytes (TLP headers + descriptor/doorbell
    /// amortization).
    pub per_packet_overhead: u64,
}

impl PcieModel {
    /// Gen3 x16 defaults matching a ConnectX-5 deployment.
    ///
    /// The effective payload rate folds TLP framing, descriptor, and
    /// doorbell traffic into a single number calibrated so the
    /// PCIe-vs-wire crossover lands near 800-B frames, where the paper
    /// observes packets-per-second starting to fall below line rate
    /// (§4.3, citing Neugebauer et al. and Farshin et al.).
    pub fn gen3_x16() -> Self {
        PcieModel {
            effective_gbps: 98.5,
            per_packet_overhead: 8,
        }
    }

    /// An effectively unlimited bus (for isolating other bottlenecks in
    /// tests).
    pub fn unlimited() -> Self {
        PcieModel {
            effective_gbps: 1e9,
            per_packet_overhead: 0,
        }
    }

    /// Bus occupancy time for transferring one packet of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        let bits = (bytes + self.per_packet_overhead) * 8;
        SimTime::from_ns(bits as f64 / self.effective_gbps)
    }

    /// Maximum packets per second for a fixed size, one direction.
    pub fn max_pps(&self, bytes: u64) -> f64 {
        1e9 / self.transfer_time(bytes).as_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_packets_pcie_bound_below_line_rate() {
        let p = PcieModel::gen3_x16();
        let l = crate::LinkModel::new(100.0);
        // At 1500 B the wire allows ~8.22 Mpps but PCIe allows fewer.
        assert!(p.max_pps(1500) < l.max_pps(1500));
        // At 64 B PCIe is not the bottleneck.
        assert!(p.max_pps(64) > l.max_pps(64));
    }

    #[test]
    fn crossover_near_800_bytes() {
        let p = PcieModel::gen3_x16();
        let l = crate::LinkModel::new(100.0);
        let crossover = (64..1600)
            .step_by(8)
            .find(|&b| p.max_pps(b as u64) < l.max_pps(b as u64))
            .unwrap();
        assert!(
            (500..1100).contains(&crossover),
            "PCIe knee should fall near ~800 B, got {crossover}"
        );
    }

    #[test]
    fn unlimited_is_fast() {
        let p = PcieModel::unlimited();
        assert!(p.transfer_time(9000).as_ns() < 0.1);
    }
}
