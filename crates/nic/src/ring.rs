//! RX/TX descriptor rings.
//!
//! The PMD posts empty receive buffers onto an [`RxRing`]; the device
//! consumes one per arriving packet, DMA-writes data + a completion
//! descriptor, and the PMD later reaps [`Completion`]s in order. The ring
//! size bounds in-flight packets: when no posted buffer is available the
//! packet is dropped — that queue build-up + drop point is what shapes the
//! tail-latency knee in Fig. 1.
//!
//! Descriptor memory is a real simulated region: the device DMA-writes
//! the completion entry's cache line and the PMD's poll loop reads it, so
//! descriptor traffic shows up in the cache model exactly as it does on
//! real hardware (via DDIO).

use pm_mem::{AddressSpace, Region};
use pm_sim::SimTime;
use std::collections::VecDeque;

/// Size of one completion descriptor in simulated memory. ConnectX-5
/// CQEs are 64 B.
pub const DESC_BYTES: u64 = 64;

/// A receive buffer posted by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostedBuffer {
    /// Pool buffer id the data will land in.
    pub buf_id: u32,
    /// Simulated address of the buffer's data area.
    pub data_addr: u64,
}

/// A receive completion written by the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Buffer holding the packet.
    pub buf_id: u32,
    /// Simulated address of the packet data.
    pub data_addr: u64,
    /// Frame length in bytes.
    pub len: u32,
    /// RSS hash computed by the device.
    pub rss_hash: u32,
    /// Arrival timestamp (end of DMA; the completion becomes visible to
    /// the driver at this instant).
    pub arrival: SimTime,
    /// Wire-arrival (generation) timestamp — the latency baseline.
    pub gen: SimTime,
    /// Monotonic packet sequence number (for latency bookkeeping).
    pub seq: u64,
    /// Simulated address of this completion's descriptor (CQE) slot.
    pub desc_addr: u64,
}

/// An RX descriptor ring plus its completion queue.
#[derive(Debug)]
pub struct RxRing {
    size: usize,
    posted: VecDeque<PostedBuffer>,
    completions: VecDeque<Completion>,
    desc_region: Region,
    wqe_region: Region,
    next_wqe_slot: u64,
    /// Packets dropped because no posted buffer was available.
    pub drops_no_buffer: u64,
    next_cq_slot: u64,
}

impl RxRing {
    /// Creates a ring of `size` descriptors with descriptor memory
    /// allocated from `space`.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is a power of two.
    pub fn new(space: &mut AddressSpace, size: usize) -> Self {
        assert!(size.is_power_of_two(), "ring size must be a power of two");
        RxRing {
            size,
            posted: VecDeque::with_capacity(size),
            completions: VecDeque::with_capacity(size),
            desc_region: space.alloc_pages(size as u64 * DESC_BYTES),
            wqe_region: space.alloc_pages(size as u64 * 16),
            next_wqe_slot: 0,
            drops_no_buffer: 0,
            next_cq_slot: 0,
        }
    }

    /// Ring capacity.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Posts an empty buffer for the device to fill. Returns `false`
    /// (and ignores the buffer) if the ring is already full.
    pub fn post(&mut self, buf: PostedBuffer) -> bool {
        if self.posted.len() + self.completions.len() >= self.size {
            return false;
        }
        self.posted.push_back(buf);
        true
    }

    /// Number of posted (free) descriptors.
    pub fn posted_count(&self) -> usize {
        self.posted.len()
    }

    /// Number of completions waiting to be reaped.
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    /// Device side: consumes a posted buffer for an arriving packet.
    /// Returns `None` — and counts a drop — if none is available.
    pub fn take_posted(&mut self) -> Option<PostedBuffer> {
        let b = self.posted.pop_front();
        if b.is_none() {
            self.drops_no_buffer += 1;
        }
        b
    }

    /// Device side: publishes a completion and returns the simulated
    /// address of the completion descriptor slot (for the DMA write).
    /// The same address is recorded in the completion for the driver's
    /// read.
    pub fn push_completion(&mut self, mut c: Completion) -> u64 {
        let slot = self.next_cq_slot % self.size as u64;
        self.next_cq_slot += 1;
        let addr = self.desc_region.base + slot * DESC_BYTES;
        c.desc_addr = addr;
        self.completions.push_back(c);
        addr
    }

    /// Driver side: address of the next receive WQE slot (charged as a
    /// store when the driver posts/replenishes a buffer).
    pub fn next_post_addr(&mut self) -> u64 {
        let slot = self.next_wqe_slot % self.size as u64;
        self.next_wqe_slot += 1;
        self.wqe_region.base + slot * 16
    }

    /// Driver side: address of the completion descriptor the PMD will
    /// poll next (read even when empty — that's the poll loop).
    pub fn poll_addr(&self) -> u64 {
        let slot = self
            .next_cq_slot
            .saturating_sub(self.completions.len() as u64)
            % self.size as u64;
        self.desc_region.base + slot * DESC_BYTES
    }

    /// Driver side: reaps up to `max` completions.
    pub fn reap(&mut self, max: usize) -> Vec<Completion> {
        self.reap_until(max, SimTime::MAX)
    }

    /// Driver side: reaps up to `max` completions whose DMA finished at
    /// or before `now` (the device publishes a CQE only once the write
    /// has landed).
    pub fn reap_until(&mut self, max: usize, now: SimTime) -> Vec<Completion> {
        let mut out = Vec::new();
        self.reap_until_into(max, now, &mut out);
        out
    }

    /// [`Self::reap_until`] into a caller-provided buffer (cleared
    /// first), so a poll loop can reap without allocating per burst.
    pub fn reap_until_into(&mut self, max: usize, now: SimTime, out: &mut Vec<Completion>) {
        out.clear();
        let mut n = 0;
        while n < max && n < self.completions.len() && self.completions[n].arrival <= now {
            n += 1;
        }
        out.extend(self.completions.drain(..n));
    }

    /// Driver side: peeks the arrival time of the oldest completion.
    pub fn oldest_arrival(&self) -> Option<SimTime> {
        self.completions.front().map(|c| c.arrival)
    }

    /// The CQE and WQE regions (hugepage-backed in DPDK).
    pub fn regions(&self) -> (Region, Region) {
        (self.desc_region, self.wqe_region)
    }
}

/// A transmit request handed to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxRequest {
    /// Buffer holding the frame.
    pub buf_id: u32,
    /// Simulated address of the frame data.
    pub data_addr: u64,
    /// Frame length.
    pub len: u32,
    /// Packet sequence number (latency bookkeeping).
    pub seq: u64,
    /// Arrival timestamp of the original packet.
    pub arrival: SimTime,
}

/// A completed transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxDone {
    /// The original request.
    pub req: TxRequest,
    /// Time the last bit left the wire.
    pub departed: SimTime,
}

/// A TX descriptor ring: requests queue until the link serializes them.
#[derive(Debug)]
pub struct TxRing {
    size: usize,
    in_flight: VecDeque<TxDone>,
    desc_region: Region,
    /// Frames dropped because the TX ring was full.
    pub drops_full: u64,
}

impl TxRing {
    /// Creates a TX ring of `size` descriptors.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is a power of two.
    pub fn new(space: &mut AddressSpace, size: usize) -> Self {
        assert!(size.is_power_of_two(), "ring size must be a power of two");
        TxRing {
            size,
            in_flight: VecDeque::with_capacity(size),
            desc_region: space.alloc_pages(size as u64 * DESC_BYTES),
            drops_full: 0,
        }
    }

    /// Ring capacity.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Enqueues a send whose wire departure the device has computed.
    /// Returns the descriptor slot address for charging the doorbell
    /// write, or `None` if the ring is full (frame dropped).
    pub fn push(&mut self, done: TxDone) -> Option<u64> {
        if self.in_flight.len() >= self.size {
            self.drops_full += 1;
            return None;
        }
        let slot = self.in_flight.len() as u64 % self.size as u64;
        self.in_flight.push_back(done);
        Some(self.desc_region.base + slot * DESC_BYTES)
    }

    /// Reaps transmissions that completed at or before `now`, freeing
    /// their buffers for reuse.
    pub fn reap_completed(&mut self, now: SimTime) -> Vec<TxDone> {
        let mut out = Vec::new();
        while let Some(front) = self.in_flight.front() {
            if front.departed <= now {
                out.push(self.in_flight.pop_front().expect("front checked"));
            } else {
                break;
            }
        }
        out
    }

    /// Number of frames not yet reaped.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Departure time of the oldest unreaped frame.
    pub fn oldest_departure(&self) -> Option<SimTime> {
        self.in_flight.front().map(|d| d.departed)
    }

    /// The descriptor region (hugepage-backed in DPDK).
    pub fn region(&self) -> Region {
        self.desc_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx() -> RxRing {
        RxRing::new(&mut AddressSpace::new(), 8)
    }

    fn completion(seq: u64) -> Completion {
        Completion {
            buf_id: seq as u32,
            data_addr: 0x1000 + seq * 2048,
            len: 64,
            rss_hash: 0,
            arrival: SimTime::from_ns(seq as f64),
            gen: SimTime::from_ns(seq as f64),
            seq,
            desc_addr: 0,
        }
    }

    #[test]
    fn post_take_cycle() {
        let mut r = rx();
        assert!(r.post(PostedBuffer {
            buf_id: 1,
            data_addr: 0x1000
        }));
        assert_eq!(r.posted_count(), 1);
        let b = r.take_posted().unwrap();
        assert_eq!(b.buf_id, 1);
        assert_eq!(r.posted_count(), 0);
    }

    #[test]
    fn empty_take_counts_drop() {
        let mut r = rx();
        assert!(r.take_posted().is_none());
        assert_eq!(r.drops_no_buffer, 1);
    }

    #[test]
    fn capacity_includes_unreaped_completions() {
        let mut r = rx();
        for i in 0..8 {
            assert!(r.post(PostedBuffer {
                buf_id: i,
                data_addr: 0
            }));
        }
        assert!(
            !r.post(PostedBuffer {
                buf_id: 9,
                data_addr: 0
            }),
            "full"
        );
        // Consume all and complete them; ring stays full until reaped.
        for i in 0..8 {
            r.take_posted().unwrap();
            r.push_completion(completion(i));
        }
        assert!(!r.post(PostedBuffer {
            buf_id: 10,
            data_addr: 0
        }));
        r.reap(4);
        assert!(r.post(PostedBuffer {
            buf_id: 11,
            data_addr: 0
        }));
    }

    #[test]
    fn completions_fifo() {
        let mut r = rx();
        for i in 0..3 {
            r.post(PostedBuffer {
                buf_id: i,
                data_addr: 0,
            });
            r.take_posted();
            r.push_completion(completion(i as u64));
        }
        assert_eq!(r.oldest_arrival(), Some(SimTime::from_ns(0.0)));
        let got = r.reap(2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, 0);
        assert_eq!(got[1].seq, 1);
        assert_eq!(r.pending_completions(), 1);
    }

    #[test]
    fn desc_slot_addresses_cycle() {
        let mut r = rx();
        let mut addrs = Vec::new();
        for i in 0..16 {
            r.post(PostedBuffer {
                buf_id: i,
                data_addr: 0,
            });
            r.take_posted();
            addrs.push(r.push_completion(completion(i as u64)));
            r.reap(1);
        }
        assert_eq!(addrs[0], addrs[8], "slots wrap at ring size");
        assert_ne!(addrs[0], addrs[1]);
    }

    #[test]
    fn tx_reap_respects_time() {
        let mut t = TxRing::new(&mut AddressSpace::new(), 8);
        for i in 0..3u64 {
            let req = TxRequest {
                buf_id: i as u32,
                data_addr: 0,
                len: 64,
                seq: i,
                arrival: SimTime::ZERO,
            };
            assert!(t
                .push(TxDone {
                    req,
                    departed: SimTime::from_ns(100.0 * (i + 1) as f64),
                })
                .is_some());
        }
        assert_eq!(t.reap_completed(SimTime::from_ns(150.0)).len(), 1);
        assert_eq!(t.reap_completed(SimTime::from_ns(400.0)).len(), 2);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn tx_full_drops() {
        let mut t = TxRing::new(&mut AddressSpace::new(), 2);
        let mk = |i: u64| TxDone {
            req: TxRequest {
                buf_id: i as u32,
                data_addr: 0,
                len: 64,
                seq: i,
                arrival: SimTime::ZERO,
            },
            departed: SimTime::MAX,
        };
        assert!(t.push(mk(0)).is_some());
        assert!(t.push(mk(1)).is_some());
        assert!(t.push(mk(2)).is_none());
        assert_eq!(t.drops_full, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_ring_size() {
        let _ = RxRing::new(&mut AddressSpace::new(), 7);
    }
}
