//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the criterion API its benches use:
//! `Criterion::{default, sample_size, bench_function, benchmark_group}`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros. Each benchmark runs a calibrated batch per sample and prints
//! mean ± spread of per-iteration wall-clock time; there are no plots,
//! baselines, or statistical tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Target wall-clock per sample when calibrating iteration counts.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Starts a named group; benches in it print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name),
            self.criterion.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure under measurement; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    /// Iterations to run this sample (set by the driver).
    iters: u64,
    /// Measured wall-clock for the sample.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Calibrate: grow the iteration count until one sample is long
    // enough to time reliably.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            100
        } else {
            (TARGET_SAMPLE.as_secs_f64() / b.elapsed.as_secs_f64()).ceil() as u64 + 1
        };
        iters = iters.saturating_mul(grow.clamp(2, 100));
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{name:<40} time: [{} {} {}]  ({iters} iters/sample, {samples} samples)",
        fmt_time(lo),
        fmt_time(mean),
        fmt_time(hi),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` for a benchmark binary, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
