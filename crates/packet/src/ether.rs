//! Ethernet II framing.

use crate::{be16, put16, MacAddr, ParseError};

/// Length of an Ethernet II header (no VLAN tag).
pub const ETHER_LEN: usize = 14;

/// An EtherType value (big-endian u16 on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4 (0x0800).
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP (0x0806).
    pub const ARP: EtherType = EtherType(0x0806);
    /// 802.1Q VLAN tag (0x8100).
    pub const VLAN: EtherType = EtherType(0x8100);
    /// IPv6 (0x86DD).
    pub const IPV6: EtherType = EtherType(0x86DD);
}

/// A parsed Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtherHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: EtherType,
}

impl EtherHeader {
    /// Parses an Ethernet header from the front of `b`.
    pub fn parse(b: &[u8]) -> Result<EtherHeader, ParseError> {
        if b.len() < ETHER_LEN {
            return Err(ParseError::Truncated {
                what: "ethernet",
                need: ETHER_LEN,
                have: b.len(),
            });
        }
        Ok(EtherHeader {
            dst: MacAddr::from_slice(&b[0..6]),
            src: MacAddr::from_slice(&b[6..12]),
            ethertype: EtherType(be16(b, 12)),
        })
    }

    /// Writes this header to the front of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than [`ETHER_LEN`].
    pub fn write(&self, b: &mut [u8]) {
        b[0..6].copy_from_slice(&self.dst.0);
        b[6..12].copy_from_slice(&self.src.0);
        put16(b, 12, self.ethertype.0);
    }
}

/// Swaps the source and destination MAC addresses in place (the
/// `EtherMirror` fast path).
///
/// # Panics
///
/// Panics if `b` is shorter than 12 bytes.
pub fn mirror_in_place(b: &mut [u8]) {
    for i in 0..6 {
        b.swap(i, i + 6);
    }
}

/// Overwrites source and destination MACs in place (the `EtherRewrite`
/// fast path used by the paper's simple forwarder, §A.1).
///
/// # Panics
///
/// Panics if `b` is shorter than 12 bytes.
pub fn rewrite_in_place(b: &mut [u8], src: MacAddr, dst: MacAddr) {
    b[0..6].copy_from_slice(&dst.0);
    b[6..12].copy_from_slice(&src.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; 64];
        EtherHeader {
            dst: MacAddr([1, 2, 3, 4, 5, 6]),
            src: MacAddr([7, 8, 9, 10, 11, 12]),
            ethertype: EtherType::IPV4,
        }
        .write(&mut buf);
        buf
    }

    #[test]
    fn write_parse_round_trip() {
        let buf = sample();
        let h = EtherHeader::parse(&buf).unwrap();
        assert_eq!(h.dst, MacAddr([1, 2, 3, 4, 5, 6]));
        assert_eq!(h.src, MacAddr([7, 8, 9, 10, 11, 12]));
        assert_eq!(h.ethertype, EtherType::IPV4);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            EtherHeader::parse(&[0u8; 13]),
            Err(ParseError::Truncated { need: 14, .. })
        ));
    }

    #[test]
    fn mirror_swaps_macs() {
        let mut buf = sample();
        mirror_in_place(&mut buf);
        let h = EtherHeader::parse(&buf).unwrap();
        assert_eq!(h.dst, MacAddr([7, 8, 9, 10, 11, 12]));
        assert_eq!(h.src, MacAddr([1, 2, 3, 4, 5, 6]));
        // Mirror twice restores the original.
        mirror_in_place(&mut buf);
        assert_eq!(
            EtherHeader::parse(&buf).unwrap().dst,
            MacAddr([1, 2, 3, 4, 5, 6])
        );
    }

    #[test]
    fn rewrite_sets_macs() {
        let mut buf = sample();
        rewrite_in_place(&mut buf, MacAddr([0xAA; 6]), MacAddr([0xBB; 6]));
        let h = EtherHeader::parse(&buf).unwrap();
        assert_eq!(h.src, MacAddr([0xAA; 6]));
        assert_eq!(h.dst, MacAddr([0xBB; 6]));
    }
}
