//! IPv4 header parsing, validation, and in-place mutation.

use crate::checksum::{checksum, checksum_skipping, update16};
use crate::{be16, be32, put16, ParseError};

/// Minimum (and, without options, exact) IPv4 header length.
pub const IPV4_MIN_LEN: usize = 20;

/// An IP protocol number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpProto(pub u8);

impl IpProto {
    /// ICMP (1).
    pub const ICMP: IpProto = IpProto(1);
    /// TCP (6).
    pub const TCP: IpProto = IpProto(6);
    /// UDP (17).
    pub const UDP: IpProto = IpProto(17);
}

/// A parsed IPv4 header (options are counted but not decoded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Header length in bytes (20–60).
    pub header_len: usize,
    /// Differentiated services byte.
    pub dscp_ecn: u8,
    /// Total length of header + payload, from the wire.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Flags (3 bits) and fragment offset (13 bits), raw.
    pub flags_frag: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProto,
    /// Header checksum as read from the wire.
    pub checksum: u16,
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
}

/// Byte offset of the TTL field within the IPv4 header.
pub const TTL_OFFSET: usize = 8;
/// Byte offset of the header checksum field.
pub const CHECKSUM_OFFSET: usize = 10;
/// Byte offset of the source address.
pub const SRC_OFFSET: usize = 12;
/// Byte offset of the destination address.
pub const DST_OFFSET: usize = 16;

impl Ipv4Header {
    /// Parses an IPv4 header from the front of `b`.
    ///
    /// Rejects non-IPv4 version nibbles, illegal IHL values, and buffers
    /// shorter than the declared header length.
    pub fn parse(b: &[u8]) -> Result<Ipv4Header, ParseError> {
        if b.len() < IPV4_MIN_LEN {
            return Err(ParseError::Truncated {
                what: "ipv4",
                need: IPV4_MIN_LEN,
                have: b.len(),
            });
        }
        let version = b[0] >> 4;
        if version != 4 {
            return Err(ParseError::Malformed {
                what: "ipv4",
                reason: "version is not 4",
            });
        }
        let ihl = (b[0] & 0x0f) as usize;
        if ihl < 5 {
            return Err(ParseError::Malformed {
                what: "ipv4",
                reason: "IHL < 5",
            });
        }
        let header_len = ihl * 4;
        if b.len() < header_len {
            return Err(ParseError::Truncated {
                what: "ipv4",
                need: header_len,
                have: b.len(),
            });
        }
        let total_len = be16(b, 2);
        if (total_len as usize) < header_len {
            return Err(ParseError::Malformed {
                what: "ipv4",
                reason: "total length shorter than header",
            });
        }
        Ok(Ipv4Header {
            header_len,
            dscp_ecn: b[1],
            total_len,
            ident: be16(b, 4),
            flags_frag: be16(b, 6),
            ttl: b[TTL_OFFSET],
            protocol: IpProto(b[9]),
            checksum: be16(b, CHECKSUM_OFFSET),
            src: [b[12], b[13], b[14], b[15]],
            dst: [b[16], b[17], b[18], b[19]],
        })
    }

    /// Writes this header (without options) to the front of `b` and fills
    /// in a freshly computed checksum.
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than [`IPV4_MIN_LEN`].
    pub fn write(&self, b: &mut [u8]) {
        b[0] = 0x45;
        b[1] = self.dscp_ecn;
        put16(b, 2, self.total_len);
        put16(b, 4, self.ident);
        put16(b, 6, self.flags_frag);
        b[TTL_OFFSET] = self.ttl;
        b[9] = self.protocol.0;
        put16(b, CHECKSUM_OFFSET, 0);
        b[12..16].copy_from_slice(&self.src);
        b[16..20].copy_from_slice(&self.dst);
        let c = checksum(&b[..IPV4_MIN_LEN]);
        put16(b, CHECKSUM_OFFSET, c);
    }

    /// Verifies the header checksum against the raw bytes in `b`.
    pub fn verify_checksum(&self, b: &[u8]) -> bool {
        checksum_skipping(&b[..self.header_len], CHECKSUM_OFFSET) == self.checksum
    }

    /// Destination address as a u32 (for longest-prefix-match lookups).
    pub fn dst_u32(&self) -> u32 {
        u32::from_be_bytes(self.dst)
    }

    /// Source address as a u32.
    pub fn src_u32(&self) -> u32 {
        u32::from_be_bytes(self.src)
    }

    /// True if this packet is a fragment (MF set or offset non-zero).
    pub fn is_fragment(&self) -> bool {
        (self.flags_frag & 0x2000) != 0 || (self.flags_frag & 0x1fff) != 0
    }
}

/// Decrements TTL in place and patches the checksum incrementally
/// (RFC 1624). Returns the new TTL, or `None` if TTL was already 0.
///
/// This is the router's per-packet fast path — one byte store and a
/// 16-bit incremental checksum update, no full re-summation.
///
/// # Panics
///
/// Panics if `b` is shorter than [`IPV4_MIN_LEN`].
pub fn dec_ttl_in_place(b: &mut [u8]) -> Option<u8> {
    let ttl = b[TTL_OFFSET];
    if ttl == 0 {
        return None;
    }
    let old_word = be16(b, TTL_OFFSET);
    b[TTL_OFFSET] = ttl - 1;
    let new_word = be16(b, TTL_OFFSET);
    let c = update16(be16(b, CHECKSUM_OFFSET), old_word, new_word);
    put16(b, CHECKSUM_OFFSET, c);
    Some(ttl - 1)
}

/// Rewrites the source address in place, patching the header checksum
/// incrementally. Returns the old address. Used by the NAT fast path.
///
/// # Panics
///
/// Panics if `b` is shorter than [`IPV4_MIN_LEN`].
pub fn set_src_in_place(b: &mut [u8], new_src: [u8; 4]) -> [u8; 4] {
    let old = [b[12], b[13], b[14], b[15]];
    let old_u32 = be32(b, SRC_OFFSET);
    let new_u32 = u32::from_be_bytes(new_src);
    b[12..16].copy_from_slice(&new_src);
    let c = crate::checksum::update32(be16(b, CHECKSUM_OFFSET), old_u32, new_u32);
    put16(b, CHECKSUM_OFFSET, c);
    old
}

/// Rewrites the destination address in place, patching the checksum.
/// Returns the old address.
///
/// # Panics
///
/// Panics if `b` is shorter than [`IPV4_MIN_LEN`].
pub fn set_dst_in_place(b: &mut [u8], new_dst: [u8; 4]) -> [u8; 4] {
    let old = [b[16], b[17], b[18], b[19]];
    let old_u32 = be32(b, DST_OFFSET);
    let new_u32 = u32::from_be_bytes(new_dst);
    b[16..20].copy_from_slice(&new_dst);
    let c = crate::checksum::update32(be16(b, CHECKSUM_OFFSET), old_u32, new_u32);
    put16(b, CHECKSUM_OFFSET, c);
    old
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bytes() -> Vec<u8> {
        let mut b = vec![0u8; 20];
        Ipv4Header {
            header_len: 20,
            dscp_ecn: 0,
            total_len: 84,
            ident: 0x1234,
            flags_frag: 0x4000, // DF
            ttl: 64,
            protocol: IpProto::TCP,
            checksum: 0,
            src: [10, 0, 0, 1],
            dst: [192, 168, 1, 20],
        }
        .write(&mut b);
        b
    }

    #[test]
    fn write_parse_round_trip() {
        let b = sample_bytes();
        let h = Ipv4Header::parse(&b).unwrap();
        assert_eq!(h.ttl, 64);
        assert_eq!(h.protocol, IpProto::TCP);
        assert_eq!(h.src, [10, 0, 0, 1]);
        assert_eq!(h.dst, [192, 168, 1, 20]);
        assert_eq!(h.total_len, 84);
        assert!(h.verify_checksum(&b));
        assert!(!h.is_fragment());
    }

    #[test]
    fn version_check() {
        let mut b = sample_bytes();
        b[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::parse(&b),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn ihl_check() {
        let mut b = sample_bytes();
        b[0] = 0x44; // IHL 4 -> 16 bytes, illegal
        assert!(Ipv4Header::parse(&b).is_err());
    }

    #[test]
    fn total_len_check() {
        let mut b = sample_bytes();
        put16(&mut b, 2, 10); // shorter than header
        assert!(Ipv4Header::parse(&b).is_err());
    }

    #[test]
    fn dec_ttl_preserves_checksum_validity() {
        let mut b = sample_bytes();
        assert_eq!(dec_ttl_in_place(&mut b), Some(63));
        let h = Ipv4Header::parse(&b).unwrap();
        assert_eq!(h.ttl, 63);
        assert!(h.verify_checksum(&b), "incremental update must verify");
    }

    #[test]
    fn dec_ttl_at_zero() {
        let mut b = sample_bytes();
        b[TTL_OFFSET] = 0;
        assert_eq!(dec_ttl_in_place(&mut b), None);
    }

    #[test]
    fn ttl_chain_to_zero() {
        let mut b = sample_bytes();
        for expect in (0..64).rev() {
            assert_eq!(dec_ttl_in_place(&mut b), Some(expect));
            assert!(Ipv4Header::parse(&b).unwrap().verify_checksum(&b));
        }
        assert_eq!(dec_ttl_in_place(&mut b), None);
    }

    #[test]
    fn nat_rewrites_keep_checksum_valid() {
        let mut b = sample_bytes();
        let old = set_src_in_place(&mut b, [172, 16, 0, 9]);
        assert_eq!(old, [10, 0, 0, 1]);
        let h = Ipv4Header::parse(&b).unwrap();
        assert_eq!(h.src, [172, 16, 0, 9]);
        assert!(h.verify_checksum(&b));

        set_dst_in_place(&mut b, [8, 8, 8, 8]);
        let h = Ipv4Header::parse(&b).unwrap();
        assert_eq!(h.dst, [8, 8, 8, 8]);
        assert!(h.verify_checksum(&b));
    }

    #[test]
    fn fragment_detection() {
        let mut b = sample_bytes();
        put16(&mut b, 6, 0x2000); // MF
        assert!(Ipv4Header::parse(&b).unwrap().is_fragment());
        put16(&mut b, 6, 0x0004); // offset 4
        assert!(Ipv4Header::parse(&b).unwrap().is_fragment());
    }

    #[test]
    fn dst_u32() {
        let b = sample_bytes();
        let h = Ipv4Header::parse(&b).unwrap();
        assert_eq!(h.dst_u32(), u32::from_be_bytes([192, 168, 1, 20]));
    }
}
