//! TCP header parsing and validation.

use crate::{be16, be32, put16, ParseError};

/// Minimum TCP header length (no options).
pub const TCP_MIN_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: u8 = 0x01;
    /// SYN flag.
    pub const SYN: u8 = 0x02;
    /// RST flag.
    pub const RST: u8 = 0x04;
    /// PSH flag.
    pub const PSH: u8 = 0x08;
    /// ACK flag.
    pub const ACK: u8 = 0x10;
    /// URG flag.
    pub const URG: u8 = 0x20;

    /// True if the given flag bit is set.
    pub fn has(self, bit: u8) -> bool {
        self.0 & bit != 0
    }

    /// True for illegal flag combinations an IDS should reject
    /// (SYN+FIN, SYN+RST, or no flags at all — "null" scans).
    pub fn is_illegal(self) -> bool {
        let f = self.0;
        (f & Self::SYN != 0 && (f & Self::FIN != 0 || f & Self::RST != 0)) || f & 0x3f == 0
    }
}

/// A parsed TCP header (options counted, not decoded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Header length in bytes (20–60).
    pub header_len: usize,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Checksum from the wire.
    pub checksum: u16,
}

/// Byte offset of the source port within the TCP header.
pub const SRC_PORT_OFFSET: usize = 0;
/// Byte offset of the destination port.
pub const DST_PORT_OFFSET: usize = 2;
/// Byte offset of the checksum field.
pub const CHECKSUM_OFFSET: usize = 16;

impl TcpHeader {
    /// Parses a TCP header from the front of `b`.
    pub fn parse(b: &[u8]) -> Result<TcpHeader, ParseError> {
        if b.len() < TCP_MIN_LEN {
            return Err(ParseError::Truncated {
                what: "tcp",
                need: TCP_MIN_LEN,
                have: b.len(),
            });
        }
        let data_off = (b[12] >> 4) as usize;
        if data_off < 5 {
            return Err(ParseError::Malformed {
                what: "tcp",
                reason: "data offset < 5",
            });
        }
        let header_len = data_off * 4;
        if b.len() < header_len {
            return Err(ParseError::Truncated {
                what: "tcp",
                need: header_len,
                have: b.len(),
            });
        }
        Ok(TcpHeader {
            src_port: be16(b, 0),
            dst_port: be16(b, 2),
            seq: be32(b, 4),
            ack: be32(b, 8),
            header_len,
            flags: TcpFlags(b[13]),
            window: be16(b, 14),
            checksum: be16(b, 16),
        })
    }

    /// Writes a 20-byte TCP header to the front of `b` (checksum as given).
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than [`TCP_MIN_LEN`].
    pub fn write(&self, b: &mut [u8]) {
        put16(b, 0, self.src_port);
        put16(b, 2, self.dst_port);
        crate::put32(b, 4, self.seq);
        crate::put32(b, 8, self.ack);
        b[12] = 0x50; // data offset 5, reserved 0
        b[13] = self.flags.0;
        put16(b, 14, self.window);
        put16(b, 16, self.checksum);
        put16(b, 18, 0); // urgent pointer
    }
}

/// Rewrites the source port in place (NAPT fast path). Returns the old
/// port; the caller is responsible for patching the TCP checksum (see
/// [`crate::checksum::update16`]).
///
/// # Panics
///
/// Panics if `b` is shorter than 2 bytes.
pub fn set_src_port_in_place(b: &mut [u8], port: u16) -> u16 {
    let old = be16(b, SRC_PORT_OFFSET);
    put16(b, SRC_PORT_OFFSET, port);
    old
}

/// Rewrites the destination port in place. Returns the old port.
///
/// # Panics
///
/// Panics if `b` is shorter than 4 bytes.
pub fn set_dst_port_in_place(b: &mut [u8], port: u16) -> u16 {
    let old = be16(b, DST_PORT_OFFSET);
    put16(b, DST_PORT_OFFSET, port);
    old
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = vec![0u8; 20];
        TcpHeader {
            src_port: 49152,
            dst_port: 443,
            seq: 0x1111_2222,
            ack: 0x3333_4444,
            header_len: 20,
            flags: TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
            window: 65535,
            checksum: 0xABCD,
        }
        .write(&mut b);
        b
    }

    #[test]
    fn round_trip() {
        let b = sample();
        let h = TcpHeader::parse(&b).unwrap();
        assert_eq!(h.src_port, 49152);
        assert_eq!(h.dst_port, 443);
        assert_eq!(h.seq, 0x1111_2222);
        assert_eq!(h.ack, 0x3333_4444);
        assert!(h.flags.has(TcpFlags::ACK));
        assert!(!h.flags.has(TcpFlags::SYN));
        assert_eq!(h.window, 65535);
    }

    #[test]
    fn truncated() {
        assert!(TcpHeader::parse(&[0u8; 19]).is_err());
    }

    #[test]
    fn bad_data_offset() {
        let mut b = sample();
        b[12] = 0x40;
        assert!(matches!(
            TcpHeader::parse(&b),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn options_need_room() {
        let mut b = sample();
        b[12] = 0x80; // 32-byte header declared, only 20 available
        assert!(matches!(
            TcpHeader::parse(&b),
            Err(ParseError::Truncated { need: 32, .. })
        ));
    }

    #[test]
    fn illegal_flag_combos() {
        assert!(TcpFlags(TcpFlags::SYN | TcpFlags::FIN).is_illegal());
        assert!(TcpFlags(TcpFlags::SYN | TcpFlags::RST).is_illegal());
        assert!(TcpFlags(0).is_illegal());
        assert!(!TcpFlags(TcpFlags::SYN).is_illegal());
        assert!(!TcpFlags(TcpFlags::ACK).is_illegal());
    }

    #[test]
    fn port_rewrites() {
        let mut b = sample();
        assert_eq!(set_src_port_in_place(&mut b, 1024), 49152);
        assert_eq!(set_dst_port_in_place(&mut b, 8443), 443);
        let h = TcpHeader::parse(&b).unwrap();
        assert_eq!(h.src_port, 1024);
        assert_eq!(h.dst_port, 8443);
    }
}
