//! Wire-format handling for PacketMill-rs: Ethernet, VLAN, ARP, IPv4,
//! TCP, UDP, and ICMP headers, Internet checksums (full and incremental),
//! and packet builders.
//!
//! Everything operates on plain byte slices — the network-function
//! elements in `pm-elements` parse and rewrite **real packet bytes**, so
//! functional correctness (routing, NAT rewrites, IDS checks) is testable
//! independently of the performance model.
//!
//! # Examples
//!
//! ```
//! use pm_packet::{builder::PacketBuilder, ether::EtherType, ipv4::IpProto};
//!
//! let pkt = PacketBuilder::udp()
//!     .src_ip([10, 0, 0, 1])
//!     .dst_ip([192, 168, 1, 9])
//!     .src_port(1234)
//!     .dst_port(53)
//!     .payload_len(26)
//!     .build();
//!
//! let eth = pm_packet::ether::EtherHeader::parse(&pkt).unwrap();
//! assert_eq!(eth.ethertype, EtherType::IPV4);
//! let ip = pm_packet::ipv4::Ipv4Header::parse(&pkt[14..]).unwrap();
//! assert_eq!(ip.protocol, IpProto::UDP);
//! assert!(ip.verify_checksum(&pkt[14..]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arp;
pub mod builder;
pub mod checksum;
pub mod ether;
pub mod icmp;
pub mod ipv4;
pub mod tcp;
pub mod udp;
pub mod vlan;

use std::error::Error;
use std::fmt;

/// Errors produced when parsing a header from raw bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the fixed part of the header.
    Truncated {
        /// Header kind being parsed.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A version or length field has an illegal value.
    Malformed {
        /// Header kind being parsed.
        what: &'static str,
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { what, need, have } => {
                write!(f, "{what}: truncated (need {need} bytes, have {have})")
            }
            ParseError::Malformed { what, reason } => write!(f, "{what}: malformed ({reason})"),
        }
    }
}

impl Error for ParseError {}

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Reads a MAC address from the first six bytes of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than six bytes.
    pub fn from_slice(b: &[u8]) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&b[..6]);
        MacAddr(m)
    }

    /// True for group (multicast/broadcast) addresses.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 1 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(b: [u8; 6]) -> Self {
        MacAddr(b)
    }
}

/// Reads a big-endian u16 at `off`.
#[inline]
pub(crate) fn be16(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([b[off], b[off + 1]])
}

/// Reads a big-endian u32 at `off`.
#[inline]
pub(crate) fn be32(b: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

/// Writes a big-endian u16 at `off`.
#[inline]
pub(crate) fn put16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_be_bytes());
}

/// Writes a big-endian u32 at `off`.
#[inline]
pub(crate) fn put32(b: &mut [u8], off: usize, v: u32) {
    b[off..off + 4].copy_from_slice(&v.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display() {
        let m = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn mac_multicast_bit() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr([0x02, 0, 0, 0, 0, 1]).is_multicast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn endian_helpers_round_trip() {
        let mut buf = [0u8; 8];
        put16(&mut buf, 1, 0xABCD);
        put32(&mut buf, 3, 0x1234_5678);
        assert_eq!(be16(&buf, 1), 0xABCD);
        assert_eq!(be32(&buf, 3), 0x1234_5678);
    }

    #[test]
    fn parse_error_display() {
        let e = ParseError::Truncated {
            what: "ipv4",
            need: 20,
            have: 3,
        };
        assert!(e.to_string().contains("ipv4"));
        assert!(e.to_string().contains("20"));
    }
}
