//! UDP header parsing and validation.

use crate::{be16, put16, ParseError};

/// UDP header length.
pub const UDP_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload, from the wire.
    pub length: u16,
    /// Checksum from the wire (0 = not computed, legal for IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// Parses a UDP header from the front of `b`.
    pub fn parse(b: &[u8]) -> Result<UdpHeader, ParseError> {
        if b.len() < UDP_LEN {
            return Err(ParseError::Truncated {
                what: "udp",
                need: UDP_LEN,
                have: b.len(),
            });
        }
        let length = be16(b, 4);
        if (length as usize) < UDP_LEN {
            return Err(ParseError::Malformed {
                what: "udp",
                reason: "length field < 8",
            });
        }
        Ok(UdpHeader {
            src_port: be16(b, 0),
            dst_port: be16(b, 2),
            length,
            checksum: be16(b, 6),
        })
    }

    /// Writes this header to the front of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than [`UDP_LEN`].
    pub fn write(&self, b: &mut [u8]) {
        put16(b, 0, self.src_port);
        put16(b, 2, self.dst_port);
        put16(b, 4, self.length);
        put16(b, 6, self.checksum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = [0u8; 8];
        UdpHeader {
            src_port: 5353,
            dst_port: 53,
            length: 40,
            checksum: 0,
        }
        .write(&mut b);
        let h = UdpHeader::parse(&b).unwrap();
        assert_eq!(h.src_port, 5353);
        assert_eq!(h.dst_port, 53);
        assert_eq!(h.length, 40);
    }

    #[test]
    fn truncated() {
        assert!(UdpHeader::parse(&[0u8; 7]).is_err());
    }

    #[test]
    fn bad_length_field() {
        let mut b = [0u8; 8];
        put16(&mut b, 4, 7);
        assert!(matches!(
            UdpHeader::parse(&b),
            Err(ParseError::Malformed { .. })
        ));
    }
}
