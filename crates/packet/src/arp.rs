//! ARP (IPv4-over-Ethernet) parsing and reply construction.
//!
//! The standard Click router configuration (paper §A.2) includes
//! `ARPResponder`/`ARPQuerier` paths, so the router NF must be able to
//! recognize ARP requests and synthesize replies.

use crate::{be16, put16, MacAddr, ParseError};

/// ARP payload length for IPv4 over Ethernet.
pub const ARP_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has request (1).
    Request,
    /// Is-at reply (2).
    Reply,
    /// Anything else.
    Other(u16),
}

/// A parsed ARP packet (IPv4 over Ethernet only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol (IPv4) address.
    pub sender_ip: [u8; 4],
    /// Target hardware address.
    pub target_mac: MacAddr,
    /// Target protocol (IPv4) address.
    pub target_ip: [u8; 4],
}

impl ArpPacket {
    /// Parses an ARP packet from the front of `b`.
    ///
    /// Rejects hardware/protocol types other than Ethernet/IPv4.
    pub fn parse(b: &[u8]) -> Result<ArpPacket, ParseError> {
        if b.len() < ARP_LEN {
            return Err(ParseError::Truncated {
                what: "arp",
                need: ARP_LEN,
                have: b.len(),
            });
        }
        if be16(b, 0) != 1 || be16(b, 2) != 0x0800 || b[4] != 6 || b[5] != 4 {
            return Err(ParseError::Malformed {
                what: "arp",
                reason: "not IPv4-over-Ethernet",
            });
        }
        let op = match be16(b, 6) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            o => ArpOp::Other(o),
        };
        Ok(ArpPacket {
            op,
            sender_mac: MacAddr::from_slice(&b[8..14]),
            sender_ip: [b[14], b[15], b[16], b[17]],
            target_mac: MacAddr::from_slice(&b[18..24]),
            target_ip: [b[24], b[25], b[26], b[27]],
        })
    }

    /// Writes this ARP packet to the front of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than [`ARP_LEN`].
    pub fn write(&self, b: &mut [u8]) {
        put16(b, 0, 1); // Ethernet
        put16(b, 2, 0x0800); // IPv4
        b[4] = 6;
        b[5] = 4;
        let op = match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
            ArpOp::Other(o) => o,
        };
        put16(b, 6, op);
        b[8..14].copy_from_slice(&self.sender_mac.0);
        b[14..18].copy_from_slice(&self.sender_ip);
        b[18..24].copy_from_slice(&self.target_mac.0);
        b[24..28].copy_from_slice(&self.target_ip);
    }

    /// Builds the reply to this request, answering that `my_ip` is at
    /// `my_mac`.
    pub fn reply_from(&self, my_mac: MacAddr, my_ip: [u8; 4]) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: my_ip,
            target_mac: self.sender_mac,
            target_ip: self.sender_ip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac: MacAddr([1, 1, 1, 1, 1, 1]),
            sender_ip: [10, 0, 0, 1],
            target_mac: MacAddr::ZERO,
            target_ip: [10, 0, 0, 254],
        }
    }

    #[test]
    fn round_trip() {
        let mut b = [0u8; ARP_LEN];
        request().write(&mut b);
        assert_eq!(ArpPacket::parse(&b).unwrap(), request());
    }

    #[test]
    fn reply_swaps_parties() {
        let r = request().reply_from(MacAddr([2; 6]), [10, 0, 0, 254]);
        assert_eq!(r.op, ArpOp::Reply);
        assert_eq!(r.sender_mac, MacAddr([2; 6]));
        assert_eq!(r.sender_ip, [10, 0, 0, 254]);
        assert_eq!(r.target_mac, MacAddr([1, 1, 1, 1, 1, 1]));
        assert_eq!(r.target_ip, [10, 0, 0, 1]);
    }

    #[test]
    fn non_ethernet_rejected() {
        let mut b = [0u8; ARP_LEN];
        request().write(&mut b);
        put16(&mut b, 0, 6); // IEEE 802
        assert!(matches!(
            ArpPacket::parse(&b),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert!(ArpPacket::parse(&[0u8; 27]).is_err());
    }

    #[test]
    fn unknown_op_preserved() {
        let mut b = [0u8; ARP_LEN];
        let mut p = request();
        p.op = ArpOp::Other(9);
        p.write(&mut b);
        assert_eq!(ArpPacket::parse(&b).unwrap().op, ArpOp::Other(9));
    }
}
