//! Internet checksum (RFC 1071) and incremental update (RFC 1624).
//!
//! The router element recomputes the IPv4 header checksum after
//! decrementing the TTL; doing that *incrementally* (RFC 1624) instead of
//! re-summing the header is one of the per-packet savings real fast-path
//! routers rely on, so both forms are provided and property-tested against
//! each other.

/// Computes the ones-complement Internet checksum over `data`.
///
/// Returns the checksum in host byte order, ready to be stored in
/// big-endian byte order.
///
/// # Examples
///
/// ```
/// // RFC 1071 example data.
/// let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// let sum = pm_packet::checksum::checksum(&data);
/// assert_eq!(sum, !0xddf2u16);
/// ```
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data, 0))
}

/// Computes the checksum over `data` with one 16-bit word (at byte offset
/// `skip`) treated as zero — used to compute a header checksum while the
/// checksum field itself is still in place.
pub fn checksum_skipping(data: &[u8], skip: usize) -> u16 {
    let raw = sum_words(data, 0);
    let field = u32::from(crate::be16(data, skip));
    // Subtract the field's contribution in ones-complement arithmetic.
    let adjusted = raw + 0xffff - field;
    !fold(adjusted)
}

/// Accumulates the 16-bit ones-complement sum of `data` onto `acc`.
///
/// Odd trailing bytes are padded with zero, per RFC 1071.
pub fn sum_words(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds a 32-bit accumulator into 16 bits (ones-complement).
pub fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Incrementally updates checksum `old_sum` when a 16-bit field changes
/// from `old` to `new` (RFC 1624, eqn. 3: `HC' = ~(~HC + ~m + m')`).
///
/// # Examples
///
/// ```
/// use pm_packet::checksum::{checksum, update16};
///
/// let mut data = [0x45u8, 0x00, 0x00, 0x54, 0xa6, 0xf2];
/// let before = checksum(&data);
/// let old = u16::from_be_bytes([data[4], data[5]]);
/// data[4] = 0x12; data[5] = 0x34;
/// let after_incremental = update16(before, old, 0x1234);
/// assert_eq!(after_incremental, checksum(&data));
/// ```
pub fn update16(old_sum: u16, old: u16, new: u16) -> u16 {
    let acc = u32::from(!old_sum) + u32::from(!old) + u32::from(new);
    !fold(acc)
}

/// Incrementally updates checksum `old_sum` for a 32-bit field change
/// (e.g., rewriting an IPv4 address during NAT).
pub fn update32(old_sum: u16, old: u32, new: u32) -> u16 {
    let s = update16(old_sum, (old >> 16) as u16, (new >> 16) as u16);
    update16(s, old as u16, new as u16)
}

/// Computes the TCP/UDP pseudo-header sum for IPv4 (RFC 768/793).
///
/// Feed the result as the initial accumulator to [`sum_words`] over the
/// transport header + payload.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], proto: u8, len: u16) -> u32 {
    let mut acc = 0u32;
    acc = sum_words(&src, acc);
    acc = sum_words(&dst, acc);
    acc += u32::from(proto);
    acc += u32::from(len);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // From RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(sum_words(&data, 0)), 0xddf2);
    }

    #[test]
    fn odd_length_padded() {
        let even = [0xabu8, 0xcd, 0x12, 0x00];
        let odd = [0xabu8, 0xcd, 0x12];
        assert_eq!(checksum(&even), checksum(&odd));
    }

    #[test]
    fn checksum_of_zeros_is_ffff() {
        assert_eq!(checksum(&[0u8; 20]), 0xffff);
    }

    #[test]
    fn verify_by_reinsertion() {
        // A buffer whose checksum field (bytes 2..4) is filled with the
        // computed checksum must sum to 0xffff overall (i.e., fold == 0xffff
        // pre-complement, so checksum() == 0).
        let mut data = [0x45u8, 0x00, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00];
        let c = checksum_skipping(&data, 2);
        crate::put16(&mut data, 2, c);
        assert_eq!(checksum(&data), 0);
    }

    #[test]
    fn incremental16_matches_recompute() {
        let mut data = [0x45u8, 0x00, 0x01, 0x90, 0x33, 0x44, 0x55, 0x66];
        let before = checksum(&data);
        let old = crate::be16(&data, 6);
        crate::put16(&mut data, 6, 0xBEEF);
        assert_eq!(update16(before, old, 0xBEEF), checksum(&data));
    }

    #[test]
    fn incremental32_matches_recompute() {
        let mut data = [0u8; 20];
        data[0] = 0x45;
        data[12] = 10;
        data[15] = 7; // src ip 10.0.0.7
        let before = checksum(&data);
        let old = crate::be32(&data, 12);
        crate::put32(&mut data, 12, 0xC0A8_0105); // 192.168.1.5
        assert_eq!(update32(before, old, 0xC0A8_0105), checksum(&data));
    }

    #[test]
    fn ttl_decrement_incremental() {
        // The classic router fast path: TTL lives in the high byte of the
        // 16-bit word at offset 8 of the IPv4 header.
        let mut hdr = [
            0x45u8, 0x00, 0x00, 0x54, 0x12, 0x34, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00, 0x0a, 0x00,
            0x00, 0x01, 0x0a, 0x00, 0x00, 0x02,
        ];
        let c = checksum_skipping(&hdr, 10);
        crate::put16(&mut hdr, 10, c);
        assert_eq!(checksum(&hdr), 0);

        let old_word = crate::be16(&hdr, 8);
        hdr[8] -= 1; // TTL 64 -> 63
        let new_word = crate::be16(&hdr, 8);
        let updated = update16(crate::be16(&hdr, 10), old_word, new_word);
        crate::put16(&mut hdr, 10, updated);
        assert_eq!(checksum(&hdr), 0, "header must still verify");
    }

    #[test]
    fn pseudo_header_contribution() {
        let acc = pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], 17, 8);
        // Manually: 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 17 + 8
        assert_eq!(acc, 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 17 + 8);
    }
}
