//! Packet construction for traffic synthesis and tests.
//!
//! [`PacketBuilder`] assembles complete, checksum-valid Ethernet frames
//! carrying TCP, UDP, ICMP, or ARP — the packet kinds the paper's campus
//! trace contains and its NFs (router, IDS, NAT) act on.

use crate::checksum::{fold, pseudo_header_sum, sum_words};
use crate::ether::{EtherHeader, EtherType, ETHER_LEN};
use crate::icmp::{IcmpHeader, IcmpType, ICMP_LEN};
use crate::ipv4::{IpProto, Ipv4Header, IPV4_MIN_LEN};
use crate::tcp::{TcpFlags, TcpHeader, TCP_MIN_LEN};
use crate::udp::{UdpHeader, UDP_LEN};
use crate::{arp::ArpOp, arp::ArpPacket, put16, MacAddr};

/// Which transport the builder should emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Tcp,
    Udp,
    Icmp,
    Arp,
}

/// A fluent builder for complete Ethernet frames.
///
/// Defaults: MACs `02:00:00:00:00:01 → 02:00:00:00:00:02`,
/// IPs `10.0.0.1 → 10.0.0.2`, ports `1000 → 2000`, TTL 64, empty payload.
/// Transport and IP checksums are computed for you.
///
/// # Examples
///
/// ```
/// use pm_packet::builder::PacketBuilder;
///
/// let frame = PacketBuilder::tcp()
///     .src_ip([10, 1, 0, 5])
///     .dst_ip([93, 184, 216, 34])
///     .dst_port(80)
///     .syn()
///     .no_padding()
///     .build();
/// assert_eq!(frame.len(), 14 + 20 + 20); // eth + ip + tcp, no payload
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    kind: Kind,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    ttl: u8,
    flags: u8,
    seq: u32,
    payload_len: usize,
    payload_byte: u8,
    min_frame: usize,
}

impl PacketBuilder {
    fn new(kind: Kind) -> Self {
        PacketBuilder {
            kind,
            src_mac: MacAddr([0x02, 0, 0, 0, 0, 0x01]),
            dst_mac: MacAddr([0x02, 0, 0, 0, 0, 0x02]),
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            src_port: 1000,
            dst_port: 2000,
            ttl: 64,
            flags: TcpFlags::ACK,
            seq: 1,
            payload_len: 0,
            payload_byte: 0xA5,
            min_frame: 60, // minimum Ethernet payload padding (without FCS)
        }
    }

    /// Starts a TCP packet.
    pub fn tcp() -> Self {
        Self::new(Kind::Tcp)
    }

    /// Starts a UDP packet.
    pub fn udp() -> Self {
        Self::new(Kind::Udp)
    }

    /// Starts an ICMP echo-request packet.
    pub fn icmp() -> Self {
        Self::new(Kind::Icmp)
    }

    /// Starts an ARP who-has request.
    pub fn arp() -> Self {
        Self::new(Kind::Arp)
    }

    /// Sets the source MAC.
    pub fn src_mac(mut self, m: impl Into<MacAddr>) -> Self {
        self.src_mac = m.into();
        self
    }

    /// Sets the destination MAC.
    pub fn dst_mac(mut self, m: impl Into<MacAddr>) -> Self {
        self.dst_mac = m.into();
        self
    }

    /// Sets the source IPv4 address.
    pub fn src_ip(mut self, ip: [u8; 4]) -> Self {
        self.src_ip = ip;
        self
    }

    /// Sets the destination IPv4 address.
    pub fn dst_ip(mut self, ip: [u8; 4]) -> Self {
        self.dst_ip = ip;
        self
    }

    /// Sets the source port (TCP/UDP).
    pub fn src_port(mut self, p: u16) -> Self {
        self.src_port = p;
        self
    }

    /// Sets the destination port (TCP/UDP).
    pub fn dst_port(mut self, p: u16) -> Self {
        self.dst_port = p;
        self
    }

    /// Sets the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets raw TCP flags.
    pub fn tcp_flags(mut self, flags: u8) -> Self {
        self.flags = flags;
        self
    }

    /// Shorthand: SYN-only flags.
    pub fn syn(self) -> Self {
        self.tcp_flags(TcpFlags::SYN)
    }

    /// Sets the TCP sequence number.
    pub fn seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the transport payload length (filled with a repeating byte).
    pub fn payload_len(mut self, len: usize) -> Self {
        self.payload_len = len;
        self
    }

    /// Sets the payload fill byte.
    pub fn payload_byte(mut self, b: u8) -> Self {
        self.payload_byte = b;
        self
    }

    /// Disables minimum-frame padding (allows frames below 60 bytes).
    pub fn no_padding(mut self) -> Self {
        self.min_frame = 0;
        self
    }

    /// Sets the payload length so the *total frame* is exactly
    /// `frame_len` bytes (useful for the fixed-size sweeps, Figs. 6/11).
    ///
    /// # Panics
    ///
    /// Panics if `frame_len` is too small to hold the headers.
    pub fn frame_len(mut self, frame_len: usize) -> Self {
        let headers = match self.kind {
            Kind::Tcp => ETHER_LEN + IPV4_MIN_LEN + TCP_MIN_LEN,
            Kind::Udp => ETHER_LEN + IPV4_MIN_LEN + UDP_LEN,
            Kind::Icmp => ETHER_LEN + IPV4_MIN_LEN + ICMP_LEN,
            Kind::Arp => ETHER_LEN + crate::arp::ARP_LEN,
        };
        assert!(
            frame_len >= headers,
            "frame_len {frame_len} < header bytes {headers}"
        );
        self.payload_len = frame_len - headers;
        self.min_frame = 0;
        self
    }

    /// Builds the frame.
    pub fn build(&self) -> Vec<u8> {
        let mut out = match self.kind {
            Kind::Arp => self.build_arp(),
            Kind::Tcp | Kind::Udp | Kind::Icmp => self.build_ip(),
        };
        if out.len() < self.min_frame {
            out.resize(self.min_frame, 0);
        }
        out
    }

    fn build_arp(&self) -> Vec<u8> {
        let len = ETHER_LEN + crate::arp::ARP_LEN + self.payload_len;
        let mut b = vec![0u8; len];
        EtherHeader {
            dst: MacAddr::BROADCAST,
            src: self.src_mac,
            ethertype: EtherType::ARP,
        }
        .write(&mut b);
        ArpPacket {
            op: ArpOp::Request,
            sender_mac: self.src_mac,
            sender_ip: self.src_ip,
            target_mac: MacAddr::ZERO,
            target_ip: self.dst_ip,
        }
        .write(&mut b[ETHER_LEN..]);
        b
    }

    fn build_ip(&self) -> Vec<u8> {
        let (proto, tl_len) = match self.kind {
            Kind::Tcp => (IpProto::TCP, TCP_MIN_LEN),
            Kind::Udp => (IpProto::UDP, UDP_LEN),
            Kind::Icmp => (IpProto::ICMP, ICMP_LEN),
            Kind::Arp => unreachable!(),
        };
        let transport_len = tl_len + self.payload_len;
        let total_len = IPV4_MIN_LEN + transport_len;
        let mut b = vec![0u8; ETHER_LEN + total_len];
        EtherHeader {
            dst: self.dst_mac,
            src: self.src_mac,
            ethertype: EtherType::IPV4,
        }
        .write(&mut b);
        Ipv4Header {
            header_len: IPV4_MIN_LEN,
            dscp_ecn: 0,
            total_len: total_len as u16,
            ident: (self.seq & 0xffff) as u16,
            flags_frag: 0x4000,
            ttl: self.ttl,
            protocol: proto,
            checksum: 0,
            src: self.src_ip,
            dst: self.dst_ip,
        }
        .write(&mut b[ETHER_LEN..]);

        let t = ETHER_LEN + IPV4_MIN_LEN;
        for byte in &mut b[t + tl_len..] {
            *byte = self.payload_byte;
        }
        match self.kind {
            Kind::Tcp => {
                TcpHeader {
                    src_port: self.src_port,
                    dst_port: self.dst_port,
                    seq: self.seq,
                    ack: 0,
                    header_len: TCP_MIN_LEN,
                    flags: TcpFlags(self.flags),
                    window: 65535,
                    checksum: 0,
                }
                .write(&mut b[t..]);
                let acc = pseudo_header_sum(self.src_ip, self.dst_ip, 6, transport_len as u16);
                let c = !fold(sum_words(&b[t..t + transport_len], acc));
                put16(&mut b, t + crate::tcp::CHECKSUM_OFFSET, c);
            }
            Kind::Udp => {
                UdpHeader {
                    src_port: self.src_port,
                    dst_port: self.dst_port,
                    length: transport_len as u16,
                    checksum: 0,
                }
                .write(&mut b[t..]);
                let acc = pseudo_header_sum(self.src_ip, self.dst_ip, 17, transport_len as u16);
                let mut c = !fold(sum_words(&b[t..t + transport_len], acc));
                if c == 0 {
                    c = 0xffff; // RFC 768: zero means "no checksum"
                }
                put16(&mut b, t + 6, c);
            }
            Kind::Icmp => {
                IcmpHeader {
                    icmp_type: IcmpType::ECHO_REQUEST,
                    code: 0,
                    checksum: 0,
                    rest: self.seq,
                }
                .write(&mut b[t..], transport_len);
            }
            Kind::Arp => unreachable!(),
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::checksum;

    #[test]
    fn tcp_packet_valid() {
        let b = PacketBuilder::tcp().payload_len(10).build();
        let ip = Ipv4Header::parse(&b[14..]).unwrap();
        assert!(ip.verify_checksum(&b[14..]));
        assert_eq!(ip.protocol, IpProto::TCP);
        assert_eq!(ip.total_len as usize, 20 + 20 + 10);
        let tcp = TcpHeader::parse(&b[34..]).unwrap();
        assert_eq!(tcp.src_port, 1000);

        // Verify the TCP checksum over pseudo-header + segment.
        let seg = &b[34..34 + 30];
        let acc = pseudo_header_sum(ip.src, ip.dst, 6, 30);
        assert_eq!(fold(sum_words(seg, acc)), 0xffff);
    }

    #[test]
    fn udp_packet_valid() {
        let b = PacketBuilder::udp().payload_len(5).build();
        let ip = Ipv4Header::parse(&b[14..]).unwrap();
        assert_eq!(ip.protocol, IpProto::UDP);
        let seg_len = 8 + 5;
        let acc = pseudo_header_sum(ip.src, ip.dst, 17, seg_len as u16);
        assert_eq!(fold(sum_words(&b[34..34 + seg_len], acc)), 0xffff);
    }

    #[test]
    fn icmp_packet_valid() {
        let b = PacketBuilder::icmp().payload_len(12).build();
        let ip = Ipv4Header::parse(&b[14..]).unwrap();
        assert_eq!(ip.protocol, IpProto::ICMP);
        // ICMP checksum covers the whole message; summing it yields ffff.
        assert_eq!(checksum(&b[34..34 + 8 + 12]), 0);
    }

    #[test]
    fn arp_packet_parses() {
        let b = PacketBuilder::arp().build();
        let eth = EtherHeader::parse(&b).unwrap();
        assert_eq!(eth.ethertype, EtherType::ARP);
        let arp = ArpPacket::parse(&b[14..]).unwrap();
        assert_eq!(arp.op, ArpOp::Request);
    }

    #[test]
    fn frame_len_exact() {
        for size in [64usize, 128, 512, 1024, 1500] {
            let b = PacketBuilder::udp().frame_len(size).build();
            assert_eq!(b.len(), size, "requested {size}");
            let ip = Ipv4Header::parse(&b[14..]).unwrap();
            assert!(ip.verify_checksum(&b[14..]));
        }
    }

    #[test]
    fn min_frame_padding() {
        let b = PacketBuilder::udp().build(); // 14+20+8 = 42 < 60
        assert_eq!(b.len(), 60);
        // But the IP total length reflects the unpadded datagram.
        let ip = Ipv4Header::parse(&b[14..]).unwrap();
        assert_eq!(ip.total_len, 28);
    }

    #[test]
    #[should_panic(expected = "frame_len")]
    fn frame_len_too_small_panics() {
        let _ = PacketBuilder::tcp().frame_len(40);
    }
}
