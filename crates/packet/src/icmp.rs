//! ICMP header parsing and validation.

use crate::checksum::checksum_skipping;
use crate::{be16, put16, ParseError};

/// ICMP header length (type/code/checksum + rest-of-header).
pub const ICMP_LEN: usize = 8;

/// Well-known ICMP message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpType(pub u8);

impl IcmpType {
    /// Echo reply (0).
    pub const ECHO_REPLY: IcmpType = IcmpType(0);
    /// Destination unreachable (3).
    pub const DEST_UNREACHABLE: IcmpType = IcmpType(3);
    /// Echo request (8).
    pub const ECHO_REQUEST: IcmpType = IcmpType(8);
    /// Time exceeded (11).
    pub const TIME_EXCEEDED: IcmpType = IcmpType(11);
}

/// A parsed ICMP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpHeader {
    /// Message type.
    pub icmp_type: IcmpType,
    /// Message code.
    pub code: u8,
    /// Checksum from the wire (covers header + payload).
    pub checksum: u16,
    /// Rest-of-header (identifier/sequence for echo).
    pub rest: u32,
}

impl IcmpHeader {
    /// Parses an ICMP header from the front of `b`.
    pub fn parse(b: &[u8]) -> Result<IcmpHeader, ParseError> {
        if b.len() < ICMP_LEN {
            return Err(ParseError::Truncated {
                what: "icmp",
                need: ICMP_LEN,
                have: b.len(),
            });
        }
        Ok(IcmpHeader {
            icmp_type: IcmpType(b[0]),
            code: b[1],
            checksum: be16(b, 2),
            rest: crate::be32(b, 4),
        })
    }

    /// Writes this header to the front of `b` and computes the checksum
    /// over `b[..msg_len]` (header + payload).
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than `msg_len` or `msg_len < ICMP_LEN`.
    pub fn write(&self, b: &mut [u8], msg_len: usize) {
        assert!(msg_len >= ICMP_LEN);
        b[0] = self.icmp_type.0;
        b[1] = self.code;
        put16(b, 2, 0);
        crate::put32(b, 4, self.rest);
        let c = crate::checksum::checksum(&b[..msg_len]);
        put16(b, 2, c);
    }

    /// Verifies the message checksum over `b[..msg_len]`.
    pub fn verify_checksum(&self, b: &[u8], msg_len: usize) -> bool {
        msg_len >= ICMP_LEN
            && b.len() >= msg_len
            && checksum_skipping(&b[..msg_len], 2) == self.checksum
    }

    /// True if the type/code combination is one a strict header checker
    /// accepts (known type, code valid for that type).
    pub fn is_known_type(&self) -> bool {
        match self.icmp_type.0 {
            0 | 8 => self.code == 0,
            3 => self.code <= 15,
            11 => self.code <= 1,
            4 | 5 | 12 | 13 | 14 => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip_with_payload() {
        let mut b = vec![0u8; 16];
        b[8..].copy_from_slice(b"pingdata");
        IcmpHeader {
            icmp_type: IcmpType::ECHO_REQUEST,
            code: 0,
            checksum: 0,
            rest: 0x0001_0002,
        }
        .write(&mut b, 16);
        let h = IcmpHeader::parse(&b).unwrap();
        assert_eq!(h.icmp_type, IcmpType::ECHO_REQUEST);
        assert_eq!(h.rest, 0x0001_0002);
        assert!(h.verify_checksum(&b, 16));
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut b = vec![0u8; 8];
        IcmpHeader {
            icmp_type: IcmpType::ECHO_REPLY,
            code: 0,
            checksum: 0,
            rest: 0,
        }
        .write(&mut b, 8);
        b[4] ^= 0xff; // corrupt payload word
        let h = IcmpHeader::parse(&b).unwrap();
        assert!(!h.verify_checksum(&b, 8));
    }

    #[test]
    fn truncated() {
        assert!(IcmpHeader::parse(&[0u8; 7]).is_err());
    }

    #[test]
    fn known_types() {
        let mk = |t: u8, c: u8| IcmpHeader {
            icmp_type: IcmpType(t),
            code: c,
            checksum: 0,
            rest: 0,
        };
        assert!(mk(8, 0).is_known_type());
        assert!(!mk(8, 3).is_known_type());
        assert!(mk(3, 13).is_known_type());
        assert!(!mk(3, 99).is_known_type());
        assert!(!mk(200, 0).is_known_type());
    }
}
