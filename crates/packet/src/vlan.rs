//! 802.1Q VLAN tagging: parse, encapsulate, decapsulate.
//!
//! The paper's IDS configuration (§A.3) "eventually encapsulates the
//! packet in a VLAN header"; `VlanEncap`/`VlanDecap` elements use these
//! helpers.

use crate::ether::EtherType;
use crate::{be16, put16, ParseError};

/// Length of one 802.1Q tag.
pub const VLAN_TAG_LEN: usize = 4;

/// A parsed 802.1Q tag (the four bytes following the MAC addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlanTag {
    /// Priority code point (0–7).
    pub pcp: u8,
    /// Drop eligible indicator.
    pub dei: bool,
    /// VLAN identifier (0–4095).
    pub vid: u16,
    /// EtherType of the encapsulated payload.
    pub inner_type: EtherType,
}

impl VlanTag {
    /// Packs PCP/DEI/VID into the 16-bit TCI field.
    pub fn tci(&self) -> u16 {
        (u16::from(self.pcp) << 13) | (u16::from(self.dei) << 12) | (self.vid & 0x0fff)
    }

    /// Unpacks a TCI field.
    pub fn from_tci(tci: u16, inner_type: EtherType) -> VlanTag {
        VlanTag {
            pcp: (tci >> 13) as u8,
            dei: tci & 0x1000 != 0,
            vid: tci & 0x0fff,
            inner_type,
        }
    }

    /// Parses the tag from a full Ethernet frame `b` (which must carry
    /// EtherType 0x8100 at offset 12).
    pub fn parse_frame(b: &[u8]) -> Result<VlanTag, ParseError> {
        if b.len() < 18 {
            return Err(ParseError::Truncated {
                what: "vlan",
                need: 18,
                have: b.len(),
            });
        }
        if be16(b, 12) != EtherType::VLAN.0 {
            return Err(ParseError::Malformed {
                what: "vlan",
                reason: "outer ethertype is not 0x8100",
            });
        }
        Ok(VlanTag::from_tci(be16(b, 14), EtherType(be16(b, 16))))
    }
}

/// Inserts a VLAN tag into an untagged Ethernet frame.
///
/// `frame` holds `len` valid bytes and must have at least
/// `len + VLAN_TAG_LEN` capacity. Returns the new frame length.
///
/// # Errors
///
/// `Truncated` if the frame is shorter than 14 bytes, `Malformed` if
/// the buffer has no room for the tag. Callers feed these straight from
/// the wire (possibly fault-truncated), so malformed input must surface
/// as an error — never a panic.
pub fn encap_in_place(frame: &mut [u8], len: usize, tag: VlanTag) -> Result<usize, ParseError> {
    if len < 14 {
        return Err(ParseError::Truncated {
            what: "vlan-encap",
            need: 14,
            have: len,
        });
    }
    if frame.len() < len + VLAN_TAG_LEN {
        return Err(ParseError::Malformed {
            what: "vlan-encap",
            reason: "no buffer room for the tag",
        });
    }
    let inner_type = be16(frame, 12);
    // Shift everything after the MAC addresses right by 4 bytes.
    frame.copy_within(12..len, 16);
    put16(frame, 12, EtherType::VLAN.0);
    put16(frame, 14, tag.tci());
    // The shifted bytes start with the original EtherType at 16 already.
    debug_assert_eq!(be16(frame, 16), inner_type);
    Ok(len + VLAN_TAG_LEN)
}

/// Removes the VLAN tag from a tagged frame. Returns the new length.
///
/// # Errors
///
/// `Truncated` if the frame is shorter than 18 bytes, `Malformed` if it
/// carries no 802.1Q tag.
pub fn decap_in_place(frame: &mut [u8], len: usize) -> Result<usize, ParseError> {
    if len < 18 {
        return Err(ParseError::Truncated {
            what: "vlan-decap",
            need: 18,
            have: len,
        });
    }
    if be16(frame, 12) != EtherType::VLAN.0 {
        return Err(ParseError::Malformed {
            what: "vlan-decap",
            reason: "outer ethertype is not 0x8100",
        });
    }
    frame.copy_within(16..len, 12);
    Ok(len - VLAN_TAG_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ether::EtherHeader;
    use crate::MacAddr;

    fn frame() -> (Vec<u8>, usize) {
        let mut buf = vec![0u8; 128];
        EtherHeader {
            dst: MacAddr([1; 6]),
            src: MacAddr([2; 6]),
            ethertype: EtherType::IPV4,
        }
        .write(&mut buf);
        for (i, b) in buf[14..64].iter_mut().enumerate() {
            *b = i as u8;
        }
        (buf, 64)
    }

    #[test]
    fn tci_round_trip() {
        let t = VlanTag {
            pcp: 5,
            dei: true,
            vid: 0x123,
            inner_type: EtherType::IPV4,
        };
        assert_eq!(VlanTag::from_tci(t.tci(), EtherType::IPV4), t);
    }

    #[test]
    fn encap_then_parse() {
        let (mut buf, len) = frame();
        let tag = VlanTag {
            pcp: 3,
            dei: false,
            vid: 100,
            inner_type: EtherType::IPV4,
        };
        let new_len = encap_in_place(&mut buf, len, tag).unwrap();
        assert_eq!(new_len, len + 4);
        let parsed = VlanTag::parse_frame(&buf).unwrap();
        assert_eq!(parsed.vid, 100);
        assert_eq!(parsed.pcp, 3);
        assert_eq!(parsed.inner_type, EtherType::IPV4);
    }

    #[test]
    fn encap_decap_restores_frame() {
        let (mut buf, len) = frame();
        let original = buf[..len].to_vec();
        let tag = VlanTag {
            pcp: 0,
            dei: false,
            vid: 42,
            inner_type: EtherType::IPV4,
        };
        let tagged_len = encap_in_place(&mut buf, len, tag).unwrap();
        let restored_len = decap_in_place(&mut buf, tagged_len).unwrap();
        assert_eq!(restored_len, len);
        assert_eq!(&buf[..len], &original[..]);
    }

    #[test]
    fn payload_preserved_after_encap() {
        let (mut buf, len) = frame();
        let payload = buf[14..len].to_vec();
        let tag = VlanTag {
            pcp: 0,
            dei: false,
            vid: 7,
            inner_type: EtherType::IPV4,
        };
        let new_len = encap_in_place(&mut buf, len, tag).unwrap();
        assert_eq!(&buf[18..new_len], &payload[..]);
    }

    #[test]
    fn parse_untagged_fails() {
        let (buf, _) = frame();
        assert!(VlanTag::parse_frame(&buf).is_err());
    }

    #[test]
    fn decap_untagged_is_an_error() {
        let (mut buf, len) = frame();
        let before = buf.clone();
        assert!(matches!(
            decap_in_place(&mut buf, len),
            Err(ParseError::Malformed {
                what: "vlan-decap",
                ..
            })
        ));
        assert_eq!(buf, before, "failed decap must not mutate the frame");
    }

    #[test]
    fn short_frames_are_errors_not_panics() {
        // Wire truncation can cut a frame anywhere; both directions must
        // report instead of panicking, and leave the bytes untouched.
        for short in 0..18 {
            let (mut buf, _) = frame();
            buf.truncate(short);
            let before = buf.clone();
            if short < 14 {
                assert!(
                    encap_in_place(&mut buf, short, VlanTag::from_tci(0, EtherType::IPV4)).is_err()
                );
            }
            assert!(decap_in_place(&mut buf, short).is_err());
            assert_eq!(buf, before);
        }
    }

    #[test]
    fn encap_without_capacity_is_an_error() {
        let (mut buf, len) = frame();
        buf.truncate(len); // no headroom for the 4-byte tag
        assert!(matches!(
            encap_in_place(&mut buf, len, VlanTag::from_tci(0, EtherType::IPV4)),
            Err(ParseError::Malformed {
                what: "vlan-encap",
                ..
            })
        ));
    }
}
