//! The PacketMill-rs benchmark harness: one generator per table/figure of
//! the paper's evaluation (§4), each printing the same rows/series the
//! paper reports.
//!
//! Run everything via `cargo bench -p pm-bench --bench figures`, or a
//! single artifact via the matching binary, e.g.
//! `cargo run --release -p pm-bench --bin fig4`.

#![warn(missing_docs)]

pub mod figures;
