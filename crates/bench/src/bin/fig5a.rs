//! Regenerates the paper's fig5a artifact. Run with
//! `cargo run --release -p pm-bench --bin fig5a`.

fn main() {
    println!("{}", pm_bench::figures::fig5a());
}
