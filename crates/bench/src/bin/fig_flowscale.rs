//! Regenerates the flow-scale artifact: the stateful NF presets (scaled
//! NAT, conntrack firewall, synthesized-FIB router) under a churned
//! Zipf workload at flow populations 1k..=10M, with element tables on
//! 4-KiB pages vs 2-MiB hugepages. Run with `cargo run --release -p
//! pm-bench --bin fig_flowscale [-- --flows N] [--threads N]
//! [--json <path>]` (`--flows` caps the ladder; default 10M — the
//! full Internet-scale sweep).

fn main() {
    let cli = packetmill::sweep::configure_from_args();
    let max_flows = cli.flows.unwrap_or(10_000_000);
    let artifact = pm_bench::figures::fig_flowscale(max_flows);
    artifact.emit();
    pm_bench::figures::write_cli_outputs(&cli, &[("fig-flowscale", &artifact)]);
}
