//! Regenerates the multi-core scaling artifact on the parallel sweep
//! runner: throughput and tail latency vs simulated core count for all
//! five NF presets. Run with `cargo run --release -p pm-bench --bin
//! fig_multicore [-- --cores N] [--threads N] [--profile]
//! [--json <path>]` (`PM_CORES` / `PM_THREADS` / `PM_PROFILE=1` work
//! too; default: cores 1..=8, all host cores, no profiling).

fn main() {
    let cli = packetmill::sweep::configure_from_args();
    let max_cores = cli.cores.unwrap_or(8);
    let artifact = pm_bench::figures::fig_multicore(max_cores);
    artifact.emit();
    pm_bench::figures::write_cli_outputs(&cli, &[("fig-multicore", &artifact)]);
}
