//! Regenerates the paper's fig8 artifact on the parallel sweep runner.
//! Run with `cargo run --release -p pm-bench --bin fig8 [-- --threads N]`
//! (`PM_THREADS` works too; default: all cores).

fn main() {
    packetmill::sweep::configure_threads_from_args();
    pm_bench::figures::fig8().emit();
}
