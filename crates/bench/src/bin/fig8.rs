//! Regenerates the paper's fig8 artifact. Run with
//! `cargo run --release -p pm-bench --bin fig8`.

fn main() {
    println!("{}", pm_bench::figures::fig8());
}
