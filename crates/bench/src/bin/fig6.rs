//! Regenerates the paper's fig6 artifact. Run with
//! `cargo run --release -p pm-bench --bin fig6`.

fn main() {
    println!("{}", pm_bench::figures::fig6());
}
