//! Regenerates the paper's fig4 artifact. Run with
//! `cargo run --release -p pm-bench --bin fig4`.

fn main() {
    println!("{}", pm_bench::figures::fig4());
}
