//! Regenerates the flight-recorder showcase artifact: two recorded
//! router runs — single-core under a link-flap/mempool fault plan (the
//! throughput dip and recovery window) and a clean 4-core run (per-core
//! RSS imbalance) — with per-window time series on stdout. Run with
//! `cargo run --release -p pm-bench --bin fig_timeline
//! [-- --threads N] [--json <path>] [--trace <path>]` (`--trace` writes
//! the sampled packet lifecycles as Chrome `trace_event` JSON; open in
//! `ui.perfetto.dev`). Recording is always on for this figure, so
//! `--timeline` is not needed.

fn main() {
    let cli = packetmill::sweep::configure_from_args();
    let artifact = pm_bench::figures::fig_timeline();
    artifact.emit();
    pm_bench::figures::write_cli_outputs(&cli, &[("fig-timeline", &artifact)]);
}
