//! Regenerates the paper's fig5b artifact. Run with
//! `cargo run --release -p pm-bench --bin fig5b`.

fn main() {
    println!("{}", pm_bench::figures::fig5b());
}
