//! Regenerates every table and figure of the paper's evaluation in one
//! go (tables on stdout, sweep telemetry on stderr). Run with
//! `cargo run --release -p pm-bench --bin figures_all [-- --threads N]`.

fn main() {
    packetmill::sweep::configure_threads_from_args();
    pm_bench::figures::run_all();
}
