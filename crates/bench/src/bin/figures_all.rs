//! Regenerates every table and figure of the paper's evaluation in one
//! go (tables on stdout, sweep telemetry on stderr). Run with
//! `cargo run --release -p pm-bench --bin figures_all
//! [-- --threads N] [--profile] [--json <path>]`.

fn main() {
    let cli = packetmill::sweep::configure_from_args();
    let groups = pm_bench::figures::run_all();
    let refs: Vec<(&str, &pm_bench::figures::Artifact)> =
        groups.iter().map(|(n, a)| (*n, a)).collect();
    pm_bench::figures::write_cli_outputs(&cli, &refs);
}
