//! Regenerates the paper's table1 artifact. Run with
//! `cargo run --release -p pm-bench --bin table1`.

fn main() {
    println!("{}", pm_bench::figures::table1());
}
