//! Regenerates the paper's table1 artifact on the parallel sweep runner.
//! Run with `cargo run --release -p pm-bench --bin table1
//! [-- --threads N] [--profile] [--json <path>] [--trace <path>]`
//! (`PM_THREADS` / `PM_PROFILE=1` work too; default: all cores, no
//! profiling).

fn main() {
    let cli = packetmill::sweep::configure_from_args();
    let artifact = pm_bench::figures::table1();
    artifact.emit();
    pm_bench::figures::write_cli_outputs(&cli, &[("table1", &artifact)]);
}
