//! Regenerates the paper's fig10 artifact. Run with
//! `cargo run --release -p pm-bench --bin fig10`.

fn main() {
    println!("{}", pm_bench::figures::fig10());
}
