//! Regenerates the paper's fig10 artifact on the parallel sweep runner.
//! Run with `cargo run --release -p pm-bench --bin fig10 [-- --threads N]`
//! (`PM_THREADS` works too; default: all cores).

fn main() {
    packetmill::sweep::configure_threads_from_args();
    pm_bench::figures::fig10().emit();
}
