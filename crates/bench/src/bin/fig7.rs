//! Regenerates the paper's Figure 7 surfaces (N = 1 and N = 5) on the
//! parallel sweep runner. Run with
//! `cargo run --release -p pm-bench --bin fig7 [-- --threads N]`
//! (`PM_THREADS` works too; default: all cores).

fn main() {
    packetmill::sweep::configure_threads_from_args();
    println!("== N = 1 ==\n");
    pm_bench::figures::fig7(1).emit();
    println!("== N = 5 ==\n");
    pm_bench::figures::fig7(5).emit();
}
