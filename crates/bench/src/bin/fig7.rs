//! Regenerates the paper's Figure 7 surfaces (N = 1 and N = 5). Run with
//! `cargo run --release -p pm-bench --bin fig7`.

fn main() {
    println!("== N = 1 ==\n{}", pm_bench::figures::fig7(1));
    println!("== N = 5 ==\n{}", pm_bench::figures::fig7(5));
}
