//! Regenerates the paper's Figure 7 surfaces (N = 1 and N = 5) on the
//! parallel sweep runner. Run with
//! `cargo run --release -p pm-bench --bin fig7
//! [-- --threads N] [--profile] [--json <path>] [--surface n1|n5|both]`
//! (`PM_THREADS` / `PM_PROFILE=1` work too; default: all cores, no
//! profiling, both surfaces).

fn main() {
    let cli = packetmill::sweep::configure_from_args();
    let surface = std::env::args()
        .skip_while(|a| a != "--surface")
        .nth(1)
        .unwrap_or_else(|| "both".to_string());
    let (n1, n5) = match surface.as_str() {
        "n1" => (true, false),
        "n5" => (false, true),
        "both" => (true, true),
        other => {
            eprintln!("unknown --surface '{other}' (expected n1, n5, or both)");
            std::process::exit(2);
        }
    };

    let mut groups: Vec<(&str, pm_bench::figures::Artifact)> = Vec::new();
    if n1 {
        println!("== N = 1 ==\n");
        let a = pm_bench::figures::fig7(1);
        a.emit();
        groups.push(("fig7-n1", a));
    }
    if n5 {
        println!("== N = 5 ==\n");
        let a = pm_bench::figures::fig7(5);
        a.emit();
        groups.push(("fig7-n5", a));
    }
    let refs: Vec<(&str, &pm_bench::figures::Artifact)> =
        groups.iter().map(|(n, a)| (*n, a)).collect();
    pm_bench::figures::write_cli_outputs(&cli, &refs);
}
