//! Regenerates the paper's fig9 artifact. Run with
//! `cargo run --release -p pm-bench --bin fig9`.

fn main() {
    println!("{}", pm_bench::figures::fig9());
}
