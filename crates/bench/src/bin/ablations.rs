//! Ablation studies for the design choices DESIGN.md calls out — the
//! knobs the paper discusses but does not sweep (§3.1 bullet list, §4.1
//! "reordering contributes one third", the testbed's `IIO LLC WAYS`
//! setting). Runs on the parallel sweep runner; invoke with
//! `cargo run --release -p pm-bench --bin ablations
//! [-- --threads N --profile --json out.json]`.

use packetmill::{
    ExperimentBuilder, MempoolMode, MetaField, MetadataModel, MetadataSpec, Nf, OptLevel,
    SweepResults, SweepSpec, Table,
};
use pm_bench::figures::{write_cli_outputs, Artifact};

const PACKETS: usize = 40_000;

fn main() {
    let cli = packetmill::sweep::configure_from_args();
    let groups = [
        ("reorder", reorder_contribution()),
        ("ddio-ways", ddio_ways()),
        ("burst", burst_size()),
        ("pool-mode", pool_mode()),
        ("xchg-spec", xchange_spec_width()),
        ("rx-ring", ring_size_latency()),
    ];
    let refs: Vec<(&str, &Artifact)> = groups.iter().map(|(n, a)| (*n, a)).collect();
    write_cli_outputs(&cli, &refs);
}

fn run(spec: SweepSpec) -> SweepResults {
    let results = spec.run();
    for o in &results.outcomes {
        if let Some(p) = o.report.as_ref().and_then(|r| r.profile.as_ref()) {
            eprintln!("profile — {}:\n{}", o.label, p.to_table());
        }
    }
    eprintln!("sweep report:\n{}", results.report());
    results
}

/// §4.1: "Reordering contributes to one third of the improvements" of
/// LTO. Compare vanilla vs vanilla+reorder vs all-source on the router.
fn reorder_contribution() -> Artifact {
    let variants = [
        ("vanilla", OptLevel::Vanilla),
        ("vanilla + reorder", OptLevel::Reorder),
        ("all source opts", OptLevel::AllSource),
        ("all + reorder (Full)", OptLevel::Full),
    ];
    let mut s = SweepSpec::new();
    for (name, opt) in variants {
        s.push(
            format!("reorder {name}"),
            ExperimentBuilder::new(Nf::Router)
                .metadata_model(MetadataModel::Copying)
                .optimization(opt)
                .frequency_ghz(3.0)
                .packets(PACKETS),
        );
    }
    let results = run(s);
    let ms = results.expect_all();
    let mut t = Table::new(vec!["variant", "Mpps", "p50 lat (us)"]);
    for ((name, _), m) in variants.iter().zip(&ms) {
        t.row(vec![
            (*name).to_string(),
            format!("{:.2}", m.mpps),
            format!("{:.0}", m.median_latency_us),
        ]);
    }
    println!("== Ablation: struct reordering (router @3 GHz, Copying) ==\n\n{t}");
    Artifact::new(t, results)
}

/// The testbed sets `IIO LLC WAYS` to widen DDIO. Sweep the DMA way
/// partition and watch the router's miss rate and throughput.
fn ddio_ways() -> Artifact {
    let ways_sweep = [1usize, 2, 4, 6, 8];
    let mut s = SweepSpec::new();
    for ways in ways_sweep {
        s.push(
            format!("ddio {ways} ways"),
            ExperimentBuilder::new(Nf::Router)
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .frequency_ghz(2.3)
                .ddio_ways(ways)
                .packets(PACKETS),
        );
    }
    let results = run(s);
    let ms = results.expect_all();
    let mut t = Table::new(vec!["ddio ways", "Gbps", "LLC miss (%)"]);
    for (ways, m) in ways_sweep.iter().zip(&ms) {
        t.row(vec![
            format!("{ways}"),
            format!("{:.1}", m.throughput_gbps),
            format!("{:.1}", m.llc_miss_pct),
        ]);
    }
    println!("== Ablation: DDIO way partition (PacketMill router @2.3 GHz) ==\n\n{t}");
    Artifact::new(t, results)
}

/// BURST is a constant the paper embeds; sweep it.
fn burst_size() -> Artifact {
    let bursts = [4usize, 8, 16, 32, 64];
    let mut s = SweepSpec::new();
    for burst in bursts {
        s.push(
            format!("burst {burst} vanilla"),
            ExperimentBuilder::new(Nf::Router)
                .metadata_model(MetadataModel::Copying)
                .frequency_ghz(2.3)
                .burst(burst)
                .packets(PACKETS),
        );
        s.push(
            format!("burst {burst} packetmill"),
            ExperimentBuilder::new(Nf::Router)
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .frequency_ghz(2.3)
                .burst(burst)
                .packets(PACKETS),
        );
    }
    let results = run(s);
    let ms = results.expect_all();
    let mut t = Table::new(vec!["burst", "vanilla Gbps", "packetmill Gbps"]);
    for (burst, pair) in bursts.iter().zip(ms.chunks_exact(2)) {
        t.row(vec![
            format!("{burst}"),
            format!("{:.1}", pair[0].throughput_gbps),
            format!("{:.1}", pair[1].throughput_gbps),
        ]);
    }
    println!("== Ablation: RX/TX burst size (router @2.3 GHz) ==\n\n{t}");
    Artifact::new(t, results)
}

/// FIFO pool rings maximize reuse distance; a LIFO (per-core cache hit
/// path) keeps buffers warm — quantifying the pool-cycling cost the
/// paper attributes to the Copying model.
fn pool_mode() -> Artifact {
    let modes = [
        ("fifo (ring)", MempoolMode::Fifo),
        ("lifo (stack)", MempoolMode::Lifo),
    ];
    let mut s = SweepSpec::new();
    for (name, mode) in modes {
        s.push(
            format!("pool {name}"),
            ExperimentBuilder::new(Nf::Router)
                .metadata_model(MetadataModel::Copying)
                .frequency_ghz(2.3)
                .pool_mode(mode)
                .packets(PACKETS),
        );
    }
    let results = run(s);
    let ms = results.expect_all();
    let mut t = Table::new(vec!["pool order", "Gbps", "LLC loads (k/100ms)"]);
    for ((name, _), m) in modes.iter().zip(&ms) {
        t.row(vec![
            (*name).to_string(),
            format!("{:.1}", m.throughput_gbps),
            format!("{:.0}", m.llc_loads_per_100ms / 1e3),
        ]);
    }
    println!("== Ablation: mempool recycling order (vanilla router @2.3 GHz) ==\n\n{t}");
    Artifact::new(t, results)
}

/// X-Change lets the NF declare exactly the fields it needs; sweep the
/// spec width from the two-field minimum to the full mbuf set.
fn xchange_spec_width() -> Artifact {
    let specs = [
        ("minimal (l2fwd-xchg)", MetadataSpec::minimal()),
        ("routing", MetadataSpec::routing()),
        (
            "full rte_mbuf set",
            MetadataSpec::custom(MetaField::RX_FULL.to_vec()),
        ),
    ];
    let mut s = SweepSpec::new();
    for (name, spec) in &specs {
        s.push(
            format!("spec {name}"),
            ExperimentBuilder::new(Nf::Forwarder)
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .frequency_ghz(1.2)
                .traffic(packetmill::TrafficProfile::FixedSize(128))
                .metadata_spec(spec.clone())
                .packets(PACKETS * 4),
        );
    }
    let results = run(s);
    let ms = results.expect_all();
    let mut t = Table::new(vec!["spec", "fields", "Gbps @1.2 GHz, 128B"]);
    for ((name, spec), m) in specs.iter().zip(&ms) {
        t.row(vec![
            (*name).to_string(),
            format!("{}", spec.len()),
            format!("{:.1}", m.throughput_gbps),
        ]);
    }
    println!("== Ablation: X-Change metadata-spec width (forwarder @1.2 GHz) ==\n\n{t}");
    Artifact::new(t, results)
}

/// The RX descriptor ring bounds the standing queue, trading drops for
/// tail latency (the knee depth of Fig. 1).
fn ring_size_latency() -> Artifact {
    let rings = [256usize, 1024, 4096];
    let mut s = SweepSpec::new();
    for ring in rings {
        s.push(
            format!("rx ring {ring}"),
            ExperimentBuilder::new(Nf::Router)
                .metadata_model(MetadataModel::Copying)
                .frequency_ghz(2.3)
                .rx_ring(ring)
                .packets(PACKETS),
        );
    }
    let results = run(s);
    let ms = results.expect_all();
    let mut t = Table::new(vec!["rx ring", "Gbps", "p50 (us)", "p99 (us)"]);
    for (ring, m) in rings.iter().zip(&ms) {
        t.row(vec![
            format!("{ring}"),
            format!("{:.1}", m.throughput_gbps),
            format!("{:.0}", m.median_latency_us),
            format!("{:.0}", m.p99_latency_us),
        ]);
    }
    println!("== Ablation: RX ring depth under overload (vanilla router @2.3 GHz) ==\n\n{t}");
    Artifact::new(t, results)
}
