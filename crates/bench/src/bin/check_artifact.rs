//! CI validator for `--json` sweep artifacts: checks the document is
//! well-formed `packetmill-run-report/v1` JSON and that its schema (the
//! set of key paths it uses) matches a checked-in golden list, so
//! downstream consumers notice schema drift in review instead of in
//! production.
//!
//! ```text
//! check_artifact <artifact.json> <golden_keys.txt>            # validate
//! check_artifact <artifact.json> <golden_keys.txt> --write    # regenerate
//! ```

use packetmill::Json;
use std::collections::BTreeSet;
use std::process::ExitCode;

/// Collects every key path the document uses: object keys become dotted
/// paths, array elements contribute under `[]`.
fn collect_keys(j: &Json, prefix: &str, out: &mut BTreeSet<String>) {
    match j {
        Json::Obj(fields) => {
            for (k, v) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                out.insert(path.clone());
                collect_keys(v, &path, out);
            }
        }
        Json::Arr(items) => {
            let path = format!("{prefix}[]");
            for v in items {
                collect_keys(v, &path, out);
            }
        }
        _ => {}
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("check_artifact: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (artifact_path, golden_path) = match (args.get(1), args.get(2)) {
        (Some(a), Some(g)) => (a, g),
        _ => return fail("usage: check_artifact <artifact.json> <golden_keys.txt> [--write]"),
    };
    let write = args.iter().any(|a| a == "--write");

    let text = match std::fs::read_to_string(artifact_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {artifact_path}: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("{artifact_path} is not valid JSON: {e}")),
    };

    match doc.get("schema") {
        Some(Json::Str(s)) if s == packetmill::report::SCHEMA => {}
        other => {
            return fail(&format!(
                "schema field is {other:?}, expected {:?}",
                packetmill::report::SCHEMA
            ))
        }
    }
    let groups = match doc.get("groups") {
        Some(Json::Arr(g)) if !g.is_empty() => g,
        _ => return fail("groups must be a non-empty array"),
    };
    for g in groups {
        if g.get("name").is_none() || !matches!(g.get("runs"), Some(Json::Arr(_))) {
            return fail("every group needs a name and a runs array");
        }
    }

    let mut keys = BTreeSet::new();
    collect_keys(&doc, "", &mut keys);
    let rendered: String = keys.iter().map(|k| format!("{k}\n")).collect();

    if write {
        if let Err(e) = std::fs::write(golden_path, &rendered) {
            return fail(&format!("cannot write {golden_path}: {e}"));
        }
        eprintln!("check_artifact: wrote {} keys to {golden_path}", keys.len());
        return ExitCode::SUCCESS;
    }

    let golden_text = match std::fs::read_to_string(golden_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {golden_path}: {e}")),
    };
    let golden: BTreeSet<String> = golden_text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect();

    let missing: Vec<&String> = golden.difference(&keys).collect();
    let extra: Vec<&String> = keys.difference(&golden).collect();
    if !missing.is_empty() || !extra.is_empty() {
        for k in &missing {
            eprintln!("check_artifact: missing key path: {k}");
        }
        for k in &extra {
            eprintln!("check_artifact: unexpected key path: {k}");
        }
        return fail(&format!(
            "schema drift vs {golden_path} ({} missing, {} unexpected); \
             re-run with --write if the change is intentional",
            missing.len(),
            extra.len()
        ));
    }

    eprintln!(
        "check_artifact: {artifact_path} OK ({} groups, {} key paths)",
        groups.len(),
        keys.len()
    );
    ExitCode::SUCCESS
}
