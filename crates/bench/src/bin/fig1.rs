//! Regenerates the paper's fig1 artifact on the parallel sweep runner.
//! Run with `cargo run --release -p pm-bench --bin fig1 [-- --threads N]`
//! (`PM_THREADS` works too; default: all cores).

fn main() {
    packetmill::sweep::configure_threads_from_args();
    pm_bench::figures::fig1().emit();
}
