//! Regenerates the paper's fig1 artifact on the parallel sweep runner.
//! Run with `cargo run --release -p pm-bench --bin fig1
//! [-- --threads N] [--profile] [--json <path>]`
//! (`PM_THREADS` / `PM_PROFILE=1` work too; default: all cores, no
//! profiling).

fn main() {
    let cli = packetmill::sweep::configure_from_args();
    let artifact = pm_bench::figures::fig1();
    artifact.emit();
    if let Some(path) = cli.json {
        pm_bench::figures::write_artifacts(&path, &[("fig1", &artifact)])
            .expect("write --json artifact");
        eprintln!("wrote {}", path.display());
    }
}
