//! Regenerates the paper's fig1 artifact. Run with
//! `cargo run --release -p pm-bench --bin fig1`.

fn main() {
    println!("{}", pm_bench::figures::fig1());
}
