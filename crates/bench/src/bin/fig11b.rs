//! Regenerates the paper's fig11b artifact. Run with
//! `cargo run --release -p pm-bench --bin fig11b`.

fn main() {
    println!("{}", pm_bench::figures::fig11b());
}
