//! Wall-clock timing harness for the simulator itself — host seconds,
//! not simulated cycles. Run with
//! `cargo run --release -p pm-bench --bin bench_timing --
//!  --bench-json BENCH_simulator.json [--rounds N] [--threads N]
//!  [--only <substring>]`.
//!
//! Times the headline surfaces — the fig7 N = 1 golden surface, the full
//! fig7 sweep (N = 1 and N = 5), the complete `figures_all`
//! regeneration, and the `fig_multicore` cores = 1..=8 scaling sweep —
//! as `--rounds` (default 3) round-robin-interleaved passes: every
//! benchmark runs once per round before any runs twice, so slow host
//! drift (thermal throttling, noisy neighbours) biases all of them
//! roughly equally instead of penalizing whichever happened to run last.
//! Before the timed rounds, `--warmup` (default 1) whole interleaved
//! rounds run and are discarded: the first pass through each benchmark
//! pays one-time host costs no steady sample should carry — binary
//! page-in, allocator arena growth, branch-predictor training on the
//! simulator's hot loops. (Armed signature tables are per-run state and
//! warm up inside every sample identically.) For an A/B
//! comparison between two checkouts, run this harness from each build
//! alternately and compare the emitted files; within one invocation the
//! interleaving only de-skews the benchmarks against each other.
//!
//! The emitted JSON (`BENCH_simulator.json` by convention) records the
//! per-round samples plus mean and min. **`min_s` is the headline
//! statistic**: wall-clock noise on a loaded host is strictly additive
//! (nothing makes a deterministic simulation run faster than its code),
//! so the minimum over warm rounds is the best estimate of true cost;
//! `mean_s` is kept only to make drift visible in diffs. The file is
//! deliberately host-field-free: no hostname, CPU model, core count, or
//! timestamp, so two committed files diff meaningfully and the only
//! varying fields are the measurements themselves. Tables still print to
//! stdout while timing (the work must be real); redirect to `/dev/null`
//! when only the JSON matters.

use packetmill::Json;
use std::time::Instant;

/// Rounds a sample to milliseconds: wall-clock below that is pure host
/// noise and only churns committed diffs.
fn ms(secs: f64) -> f64 {
    (secs * 1000.0).round() / 1000.0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut bench_json: Option<std::path::PathBuf> = None;
    let mut rounds = 3usize;
    let mut warmup = 1usize;
    let mut threads = 1usize;
    let mut only: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--bench-json" => {
                bench_json = args.get(i + 1).map(Into::into);
                i += 1;
            }
            "--rounds" => {
                rounds = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(rounds);
                i += 1;
            }
            "--warmup" => {
                warmup = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(warmup);
                i += 1;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(threads);
                i += 1;
            }
            "--only" => {
                only = args.get(i + 1).cloned();
                i += 1;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: bench_timing --bench-json <path> [--rounds N] [--warmup N] [--threads N] [--only <substring>]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(path) = bench_json else {
        eprintln!("--bench-json <path> is required");
        std::process::exit(2);
    };

    // Single-threaded by default: the recorded targets are per-core
    // simulator speed, and one worker keeps samples comparable across
    // machines with different core counts.
    packetmill::sweep::set_default_threads(threads);
    packetmill::sweep::set_default_profile(false);
    // Per-run progress lines are pure stderr traffic but thousands of
    // them are not free; keep the timed region honest about what a
    // redirected CI invocation pays.
    if std::env::var("PM_PROGRESS").is_err() {
        std::env::set_var("PM_PROGRESS", "0");
    }

    type BenchFn = fn();
    let benches: Vec<(&str, &str, BenchFn)> = vec![
        (
            "fig7_n1",
            "fig7 N=1 surface (the golden fixture sweep)",
            || drop(pm_bench::figures::fig7(1)),
        ),
        ("fig7", "full fig7 sweep, N=1 and N=5 surfaces", || {
            drop(pm_bench::figures::fig7(1));
            drop(pm_bench::figures::fig7(5));
        }),
        (
            "figures_all",
            "every paper table/figure regenerated once",
            || drop(pm_bench::figures::run_all()),
        ),
        (
            "fig_multicore_c8",
            "multi-core scaling sweep, 5 NFs x cores 1..=8",
            || drop(pm_bench::figures::fig_multicore(8)),
        ),
        (
            "fig_timeline",
            "flight-recorder showcase (timeline + trace recording on)",
            || drop(pm_bench::figures::fig_timeline()),
        ),
        (
            "fig_flowscale",
            "flow-scale sweep, 3 stateful NFs x flows 1k..=1M x 2 page modes",
            || drop(pm_bench::figures::fig_flowscale(1_000_000)),
        ),
    ];
    let benches: Vec<_> = benches
        .into_iter()
        .filter(|(name, _, _)| only.as_deref().is_none_or(|o| name.contains(o)))
        .collect();
    if benches.is_empty() {
        eprintln!("--only '{}' matches no benchmark", only.unwrap_or_default());
        std::process::exit(2);
    }

    for round in 0..warmup {
        for (name, _, run) in &benches {
            let start = Instant::now();
            run();
            let secs = start.elapsed().as_secs_f64();
            eprintln!(
                "bench {name} warmup {}/{warmup}: {secs:.3} s (discarded)",
                round + 1
            );
        }
    }
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); benches.len()];
    for round in 0..rounds {
        for (i, (name, _, run)) in benches.iter().enumerate() {
            let start = Instant::now();
            run();
            let secs = start.elapsed().as_secs_f64();
            eprintln!("bench {name} round {}/{rounds}: {secs:.3} s", round + 1);
            samples[i].push(secs);
        }
    }
    for ((name, _, _), s) in benches.iter().zip(&samples) {
        let min = s.iter().copied().fold(f64::INFINITY, f64::min);
        eprintln!("bench {name} min: {min:.3} s");
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("packetmill-bench/v1".into())),
        (
            "config",
            Json::obj(vec![
                ("threads", Json::U64(threads as u64)),
                ("rounds", Json::U64(rounds as u64)),
                ("warmup", Json::U64(warmup as u64)),
                ("interleaved", Json::Bool(true)),
                ("profile", Json::Bool(false)),
            ]),
        ),
        (
            "benchmarks",
            Json::Arr(
                benches
                    .iter()
                    .zip(&samples)
                    .map(|((name, what, _), s)| {
                        let mean = s.iter().sum::<f64>() / s.len() as f64;
                        let min = s.iter().copied().fold(f64::INFINITY, f64::min);
                        Json::obj(vec![
                            ("name", Json::Str((*name).into())),
                            ("what", Json::Str((*what).into())),
                            (
                                "samples_s",
                                Json::Arr(s.iter().map(|&v| Json::F64(ms(v))).collect()),
                            ),
                            ("mean_s", Json::F64(ms(mean))),
                            ("min_s", Json::F64(ms(min))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&path, doc.to_pretty()).expect("write --bench-json file");
    eprintln!("wrote {}", path.display());
}
