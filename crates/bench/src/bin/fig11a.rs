//! Regenerates the paper's fig11a artifact. Run with
//! `cargo run --release -p pm-bench --bin fig11a`.

fn main() {
    println!("{}", pm_bench::figures::fig11a());
}
