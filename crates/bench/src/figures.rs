//! Figure/table generators.
//!
//! Every function reproduces one evaluation artifact of the paper. The
//! workload, parameters, and reported series mirror §4; absolute numbers
//! come from the simulated testbed, so the *shape* (orderings, factors,
//! crossovers) is the claim, not the exact values. `EXPERIMENTS.md`
//! records paper-vs-measured for each.

use packetmill::{
    BessEngine, Dataplane, ExperimentBuilder, L2Fwd, Measurement, MetadataModel, Nf, OptLevel,
    Table, TrafficProfile, VppEngine,
};

/// Packets per data point (per NIC). Chosen so every figure regenerates
/// in minutes while past the warm-up transients.
const PACKETS: usize = 40_000;

/// The frequency sweep used by Figs. 4, 5, and 8 (GHz).
pub const FREQS: [f64; 7] = [1.2, 1.5, 1.8, 2.1, 2.3, 2.6, 3.0];

/// Fixed-size sweeps drop most arrivals at small sizes; scale the run so
/// the post-warm-up window still observes tens of thousands of packets.
fn packets_for_size(size: usize) -> usize {
    (PACKETS * 1472 / size).clamp(PACKETS, PACKETS * 16)
}

fn router(model: MetadataModel, opt: OptLevel, f: f64) -> ExperimentBuilder {
    ExperimentBuilder::new(Nf::Router)
        .metadata_model(model)
        .optimization(opt)
        .frequency_ghz(f)
        .packets(PACKETS)
}

/// Figure 1: 99th-percentile latency vs throughput for the router on one
/// 2.3-GHz core, vanilla FastClick vs full PacketMill, offered-load sweep.
pub fn fig1() -> Table {
    let mut t = Table::new(vec![
        "offered (Gbps)",
        "vanilla tput",
        "vanilla p99 (us)",
        "packetmill tput",
        "packetmill p99 (us)",
    ]);
    for offered in [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0] {
        let v = router(MetadataModel::Copying, OptLevel::Vanilla, 2.3)
            .offered_gbps(offered)
            .run()
            .expect("vanilla run");
        let p = router(MetadataModel::XChange, OptLevel::AllSource, 2.3)
            .offered_gbps(offered)
            .run()
            .expect("packetmill run");
        t.row(vec![
            format!("{offered:.0}"),
            format!("{:.1}", v.throughput_gbps),
            format!("{:.0}", v.p99_latency_us),
            format!("{:.1}", p.throughput_gbps),
            format!("{:.0}", p.p99_latency_us),
        ]);
    }
    t
}

/// Figure 4: router throughput and median latency vs core frequency for
/// the five source-optimization variants (Copying model).
pub fn fig4() -> Table {
    let variants = [
        ("vanilla", OptLevel::Vanilla),
        ("devirtualize", OptLevel::Devirtualize),
        ("constants", OptLevel::ConstantEmbed),
        ("static-graph", OptLevel::StaticGraph),
        ("all", OptLevel::AllSource),
    ];
    let mut t = Table::new(vec![
        "freq (GHz)",
        "variant",
        "Gbps",
        "Mpps",
        "p50 lat (us)",
    ]);
    for &f in &FREQS {
        for (name, opt) in variants {
            let m = router(MetadataModel::Copying, opt, f).run().expect(name);
            t.row(vec![
                format!("{f:.1}"),
                name.to_string(),
                format!("{:.1}", m.throughput_gbps),
                format!("{:.2}", m.mpps),
                format!("{:.0}", m.median_latency_us),
            ]);
        }
    }
    t
}

/// Table 1: micro-architectural metrics at 3 GHz for the five variants.
pub fn table1() -> Table {
    let variants = [
        ("vanilla", OptLevel::Vanilla),
        ("devirtualization", OptLevel::Devirtualize),
        ("constant-embedding", OptLevel::ConstantEmbed),
        ("static-graph", OptLevel::StaticGraph),
        ("all", OptLevel::AllSource),
    ];
    let mut t = Table::new(vec![
        "metric",
        "vanilla",
        "devirt",
        "constants",
        "static",
        "all",
    ]);
    let ms: Vec<Measurement> = variants
        .iter()
        .map(|(name, opt)| {
            router(MetadataModel::Copying, *opt, 3.0)
                .run()
                .expect(name)
        })
        .collect();
    t.row_f64(
        "LLC kilo loads / 100ms",
        &ms.iter().map(|m| m.llc_loads_per_100ms / 1e3).collect::<Vec<_>>(),
        0,
    );
    t.row_f64(
        "LLC kilo load-misses / 100ms",
        &ms.iter().map(|m| m.llc_misses_per_100ms / 1e3).collect::<Vec<_>>(),
        1,
    );
    t.row_f64("IPC", &ms.iter().map(|m| m.ipc).collect::<Vec<_>>(), 2);
    t.row_f64("Mpps", &ms.iter().map(|m| m.mpps).collect::<Vec<_>>(), 2);
    t
}

/// Figure 5a: forwarder throughput vs frequency for the three metadata
/// models (no source optimizations — isolating metadata management).
pub fn fig5a() -> Table {
    let mut t = Table::new(vec!["freq (GHz)", "copying", "overlaying", "x-change"]);
    for &f in &FREQS {
        let vals: Vec<f64> = [
            MetadataModel::Copying,
            MetadataModel::Overlaying,
            MetadataModel::XChange,
        ]
        .iter()
        .map(|&model| {
            ExperimentBuilder::new(Nf::Forwarder)
                .metadata_model(model)
                .frequency_ghz(f)
                .packets(PACKETS)
                .run()
                .expect("fig5a run")
                .throughput_gbps
        })
        .collect();
        t.row_f64(format!("{f:.1}"), &vals, 1);
    }
    t
}

/// Figure 5b: the same sweep with two 100-Gbps NICs polled by one core —
/// total throughput exceeds 100 Gbps only under X-Change.
pub fn fig5b() -> Table {
    let mut t = Table::new(vec![
        "freq (GHz)",
        "copying total",
        "overlaying total",
        "x-change total",
    ]);
    for &f in &FREQS {
        let vals: Vec<f64> = [
            MetadataModel::Copying,
            MetadataModel::Overlaying,
            MetadataModel::XChange,
        ]
        .iter()
        .map(|&model| {
            ExperimentBuilder::new(Nf::Forwarder)
                .metadata_model(model)
                .frequency_ghz(f)
                .nics(2)
                .packets(PACKETS / 2)
                .run()
                .expect("fig5b run")
                .throughput_gbps
        })
        .collect();
        t.row_f64(format!("{f:.1}"), &vals, 1);
    }
    t
}

/// Packet sizes for the fixed-size sweeps (Figs. 6 and 11).
pub const SIZES: [usize; 12] = [64, 128, 192, 320, 448, 576, 704, 832, 960, 1088, 1216, 1472];

/// Figure 6: router @2.3 GHz, Gbps and Mpps vs fixed packet size,
/// vanilla vs PacketMill.
pub fn fig6() -> Table {
    let mut t = Table::new(vec![
        "size (B)",
        "vanilla Gbps",
        "vanilla Mpps",
        "packetmill Gbps",
        "packetmill Mpps",
    ]);
    for &size in &SIZES {
        let v = router(MetadataModel::Copying, OptLevel::Vanilla, 2.3)
            .traffic(TrafficProfile::FixedSize(size))
            .packets(packets_for_size(size))
            .run()
            .expect("vanilla");
        let p = router(MetadataModel::XChange, OptLevel::AllSource, 2.3)
            .traffic(TrafficProfile::FixedSize(size))
            .packets(packets_for_size(size))
            .run()
            .expect("packetmill");
        t.row(vec![
            format!("{size}"),
            format!("{:.1}", v.throughput_gbps),
            format!("{:.2}", v.mpps),
            format!("{:.1}", p.throughput_gbps),
            format!("{:.2}", p.mpps),
        ]);
    }
    t
}

/// Figure 7: PacketMill's improvement (%) over vanilla for the synthetic
/// WorkPackage NF over (W, S) grids, at `n` accesses per packet.
///
/// At N = 1 the optimized configuration saturates the simulated pipe
/// over much of the grid (our ceiling sits above the paper's testbed
/// plateau), which flattens its absolute numbers there; the N = 5
/// surface is fully CPU/memory-bound and shows the paper's decay
/// structure cleanly (see EXPERIMENTS.md).
pub fn fig7(n: u32) -> Table {
    let mut t = Table::new(vec![
        "W (rands)",
        "S (MB)",
        "vanilla Gbps",
        "packetmill Gbps",
        "improvement (%)",
    ]);
    for &w in &[0u32, 4, 8, 16, 20] {
        for &s in &[1u32, 4, 8, 12, 16] {
            let nf = Nf::WorkPackage { w, s_mb: s, n };
            let v = ExperimentBuilder::new(nf.clone())
                .metadata_model(MetadataModel::Copying)
                .optimization(OptLevel::Vanilla)
                .frequency_ghz(2.3)
                .packets(PACKETS)
                .run()
                .expect("vanilla");
            let p = ExperimentBuilder::new(nf)
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .frequency_ghz(2.3)
                .packets(PACKETS)
                .run()
                .expect("packetmill");
            let imp = (p.throughput_gbps / v.throughput_gbps - 1.0) * 100.0;
            t.row(vec![
                format!("{w}"),
                format!("{s}"),
                format!("{:.1}", v.throughput_gbps),
                format!("{:.1}", p.throughput_gbps),
                format!("{imp:.1}"),
            ]);
        }
    }
    t
}

/// Figure 8: IDS+router throughput and median latency vs frequency.
pub fn fig8() -> Table {
    let mut t = Table::new(vec![
        "freq (GHz)",
        "vanilla Gbps",
        "vanilla p50 (us)",
        "packetmill Gbps",
        "packetmill p50 (us)",
    ]);
    for &f in &FREQS {
        let v = ExperimentBuilder::new(Nf::IdsRouter)
            .metadata_model(MetadataModel::Copying)
            .optimization(OptLevel::Vanilla)
            .frequency_ghz(f)
            .packets(PACKETS)
            .run()
            .expect("vanilla");
        let p = ExperimentBuilder::new(Nf::IdsRouter)
            .metadata_model(MetadataModel::XChange)
            .optimization(OptLevel::AllSource)
            .frequency_ghz(f)
            .packets(PACKETS)
            .run()
            .expect("packetmill");
        t.row(vec![
            format!("{f:.1}"),
            format!("{:.1}", v.throughput_gbps),
            format!("{:.0}", v.median_latency_us),
            format!("{:.1}", p.throughput_gbps),
            format!("{:.0}", p.median_latency_us),
        ]);
    }
    t
}

/// Figure 9: zooming into the N=1, W=4 slice — throughput, LLC-load-miss
/// percentage, and LLC loads vs memory footprint.
pub fn fig9() -> Table {
    let mut t = Table::new(vec![
        "S (MB)",
        "vanilla Gbps",
        "packetmill Gbps",
        "vanilla miss (%)",
        "packetmill miss (%)",
        "vanilla loads (k/100ms)",
        "packetmill loads (k/100ms)",
    ]);
    let sizes_kb: [u64; 12] = [
        256, 512, 1024, 2048, 3072, 5120, 8192, 10240, 12288, 14336, 16384, 20480,
    ];
    for &kb in &sizes_kb {
        let nf = Nf::WorkPackageKb { w: 4, s_kb: kb, n: 1 };
        let v = ExperimentBuilder::new(nf.clone())
            .metadata_model(MetadataModel::Copying)
            .optimization(OptLevel::Vanilla)
            .packets(PACKETS)
            .run()
            .expect("vanilla");
        let p = ExperimentBuilder::new(nf)
            .metadata_model(MetadataModel::XChange)
            .optimization(OptLevel::AllSource)
            .packets(PACKETS)
            .run()
            .expect("packetmill");
        t.row(vec![
            format!("{:.2}", kb as f64 / 1024.0),
            format!("{:.1}", v.throughput_gbps),
            format!("{:.1}", p.throughput_gbps),
            format!("{:.1}", v.llc_miss_pct),
            format!("{:.1}", p.llc_miss_pct),
            format!("{:.0}", v.llc_loads_per_100ms / 1e3),
            format!("{:.0}", p.llc_loads_per_100ms / 1e3),
        ]);
    }
    t
}

/// Figure 10: NAT throughput vs core count @2.3 GHz (RSS spreads flows).
pub fn fig10() -> Table {
    let mut t = Table::new(vec!["cores", "vanilla Gbps", "packetmill Gbps"]);
    for cores in 1..=4usize {
        let v = ExperimentBuilder::new(Nf::Nat)
            .metadata_model(MetadataModel::Copying)
            .optimization(OptLevel::Vanilla)
            .cores(cores)
            .packets(PACKETS)
            .run()
            .expect("vanilla");
        let p = ExperimentBuilder::new(Nf::Nat)
            .metadata_model(MetadataModel::XChange)
            .optimization(OptLevel::AllSource)
            .cores(cores)
            .packets(PACKETS)
            .run()
            .expect("packetmill");
        t.row(vec![
            format!("{cores}"),
            format!("{:.1}", v.throughput_gbps),
            format!("{:.1}", p.throughput_gbps),
        ]);
    }
    t
}

/// Figure 11a: FastClick vs `l2fwd` vs PacketMill vs `l2fwd-xchg`,
/// fixed-size sweep on one 1.2-GHz core.
pub fn fig11a() -> Table {
    let mut t = Table::new(vec![
        "size (B)",
        "FastClick (Copying)",
        "l2fwd",
        "PacketMill (X-Change)",
        "l2fwd-xchg",
    ]);
    for &size in &SIZES {
        let fastclick = ExperimentBuilder::new(Nf::Forwarder)
            .metadata_model(MetadataModel::Copying)
            .frequency_ghz(1.2)
            .traffic(TrafficProfile::FixedSize(size))
            .packets(PACKETS)
            .run()
            .expect("fastclick");
        let packetmill = ExperimentBuilder::new(Nf::Forwarder)
            .metadata_model(MetadataModel::XChange)
            .optimization(OptLevel::AllSource)
            .frequency_ghz(1.2)
            .traffic(TrafficProfile::FixedSize(size))
            .packets(PACKETS)
            .run()
            .expect("packetmill");
        let comparator = |dp: fn() -> Box<dyn Dataplane>| {
            ExperimentBuilder::new(Nf::Forwarder)
                .frequency_ghz(1.2)
                .traffic(TrafficProfile::FixedSize(size))
                .packets(packets_for_size(size))
                .run_with_dataplane(dp)
                .expect("comparator")
                .throughput_gbps
        };
        let l2fwd = comparator(|| Box::new(L2Fwd::plain()));
        let l2fwd_xchg = comparator(|| Box::new(L2Fwd::xchg()));
        t.row(vec![
            format!("{size}"),
            format!("{:.1}", fastclick.throughput_gbps),
            format!("{l2fwd:.1}"),
            format!("{:.1}", packetmill.throughput_gbps),
            format!("{l2fwd_xchg:.1}"),
        ]);
    }
    t
}

/// Figure 11b: VPP vs FastClick (Copying) vs FastClick-Light (Overlaying)
/// vs BESS vs PacketMill, fixed-size sweep on one 1.2-GHz core.
pub fn fig11b() -> Table {
    let mut t = Table::new(vec![
        "size (B)",
        "VPP",
        "FastClick (Copying)",
        "FastClick-Light (Overlaying)",
        "BESS",
        "PacketMill (X-Change)",
    ]);
    for &size in &SIZES {
        let fc = |model: MetadataModel, opt: OptLevel| {
            ExperimentBuilder::new(Nf::Forwarder)
                .metadata_model(model)
                .optimization(opt)
                .frequency_ghz(1.2)
                .traffic(TrafficProfile::FixedSize(size))
                .packets(packets_for_size(size))
                .run()
                .expect("fastclick variant")
                .throughput_gbps
        };
        let comparator = |dp: fn() -> Box<dyn Dataplane>| {
            ExperimentBuilder::new(Nf::Forwarder)
                .frequency_ghz(1.2)
                .traffic(TrafficProfile::FixedSize(size))
                .packets(packets_for_size(size))
                .run_with_dataplane(dp)
                .expect("comparator")
                .throughput_gbps
        };
        t.row(vec![
            format!("{size}"),
            format!("{:.1}", comparator(|| Box::new(VppEngine))),
            format!("{:.1}", fc(MetadataModel::Copying, OptLevel::Vanilla)),
            format!("{:.1}", fc(MetadataModel::Overlaying, OptLevel::Vanilla)),
            format!("{:.1}", comparator(|| Box::new(BessEngine))),
            format!("{:.1}", fc(MetadataModel::XChange, OptLevel::AllSource)),
        ]);
    }
    t
}

/// Runs every artifact and prints paper-style output.
pub fn run_all() {
    let artifacts: Vec<(&str, Box<dyn Fn() -> Table>)> = vec![
        ("Figure 1 — p99 latency vs throughput (router, 1 core @2.3 GHz)", Box::new(fig1)),
        ("Figure 4 — source-code optimizations vs frequency (router)", Box::new(fig4)),
        ("Table 1 — micro-architectural metrics @3 GHz (router)", Box::new(table1)),
        ("Figure 5a — metadata models vs frequency (forwarder, 1 NIC)", Box::new(fig5a)),
        ("Figure 5b — metadata models, two NICs, one core", Box::new(fig5b)),
        ("Figure 6 — packet-size sweep (router @2.3 GHz)", Box::new(fig6)),
        ("Figure 7a — WorkPackage improvement surface (N=1)", Box::new(|| fig7(1))),
        ("Figure 7b — WorkPackage improvement surface (N=5)", Box::new(|| fig7(5))),
        ("Figure 8 — IDS+router vs frequency", Box::new(fig8)),
        ("Figure 9 — memory-footprint slice (N=1, W=4)", Box::new(fig9)),
        ("Figure 10 — multicore NAT @2.3 GHz", Box::new(fig10)),
        ("Figure 11a — FastClick vs l2fwd vs PacketMill vs l2fwd-xchg @1.2 GHz", Box::new(fig11a)),
        ("Figure 11b — framework comparison @1.2 GHz", Box::new(fig11b)),
    ];
    for (title, f) in artifacts {
        let start = std::time::Instant::now();
        let table = f();
        println!("== {title} ==\n");
        println!("{table}");
        println!("(generated in {:.1} s)\n", start.elapsed().as_secs_f64());
    }
}
