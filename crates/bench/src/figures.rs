//! Figure/table generators.
//!
//! Every function reproduces one evaluation artifact of the paper. The
//! workload, parameters, and reported series mirror §4; absolute numbers
//! come from the simulated testbed, so the *shape* (orderings, factors,
//! crossovers) is the claim, not the exact values. `EXPERIMENTS.md`
//! records paper-vs-measured for each.
//!
//! Each artifact declares its full experiment grid as a
//! [`SweepSpec`] and executes it on the parallel sweep runner; the
//! table rows are assembled from the in-input-order results, so the
//! printed artifact is byte-identical at any `--threads` setting.

use packetmill::{
    BessEngine, Dataplane, ExperimentBuilder, L2Fwd, Measurement, MetadataModel, Nf, OptLevel,
    SweepCli, SweepReport, SweepResults, SweepSpec, Table, TrafficProfile, VppEngine,
};
use std::path::Path;

/// Packets per data point (per NIC). Chosen so every figure regenerates
/// in minutes while past the warm-up transients.
const PACKETS: usize = 40_000;

/// The frequency sweep used by Figs. 4, 5, and 8 (GHz).
pub const FREQS: [f64; 7] = [1.2, 1.5, 1.8, 2.1, 2.3, 2.6, 3.0];

/// One generated artifact: the paper-style table plus the full sweep
/// results (per-run measurements, structured reports, profiles) that
/// produced it.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The paper-style rows (deterministic: independent of threading).
    pub table: Table,
    /// Aggregate sweep telemetry (runs, failures, wall-clock, speedup).
    pub report: SweepReport,
    /// The per-run outcomes the table was assembled from, in input
    /// order — carries each run's [`packetmill::RunReport`].
    pub results: SweepResults,
}

impl Artifact {
    /// Wraps a rendered table with the sweep results that produced it.
    pub fn new(table: Table, results: SweepResults) -> Self {
        Artifact {
            table,
            report: results.report(),
            results,
        }
    }

    /// Prints the table to stdout and profile tables + the sweep report
    /// to stderr, so redirected artifact output stays byte-identical
    /// across thread counts while the telemetry remains visible.
    pub fn emit(&self) {
        println!("{}", self.table);
        self.emit_profiles();
        if packetmill::sweep::default_timing() {
            eprintln!("{}", self.report.timing_line());
        }
        eprintln!("sweep report:\n{}", self.report);
    }

    /// Prints each profiled run's `perf report`-style table to stderr
    /// (no-op when the sweep ran without `--profile`), followed by each
    /// faulted run's conservation ledger (no-op without `--faults`).
    pub fn emit_profiles(&self) {
        for o in &self.results.outcomes {
            if let Some(p) = o.report.as_ref().and_then(|r| r.profile.as_ref()) {
                eprintln!("profile — {}:\n{}", o.label, p.to_table());
            }
        }
        for o in &self.results.outcomes {
            if let Some(f) = o.report.as_ref().and_then(|r| r.faults.as_ref()) {
                eprintln!("faults — {} [{}]:\n{}", o.label, f.spec, f.ledger);
            }
        }
    }
}

/// Writes named artifact groups as one `packetmill-run-report/v1` JSON
/// document (the `--json <path>` output of the benchmark binaries).
pub fn write_artifacts(path: &Path, groups: &[(&str, &Artifact)]) -> std::io::Result<()> {
    let doc = packetmill::sweep::artifact_document(
        groups.iter().map(|(n, a)| a.results.to_json(n)).collect(),
    );
    std::fs::write(path, doc.to_pretty() + "\n")
}

/// Writes every traced run in the given artifact groups as one Chrome
/// `trace_event` JSON document (the `--trace <path>` output; open in
/// `ui.perfetto.dev` or `chrome://tracing`). No-op runs without a trace
/// are skipped, so this works on mixed sweeps.
pub fn write_trace(path: &Path, groups: &[(&str, &Artifact)]) -> std::io::Result<()> {
    let mut runs = Vec::new();
    for (_, a) in groups {
        for o in &a.results.outcomes {
            if let Some(t) = o.report.as_ref().and_then(|r| r.trace.as_ref()) {
                runs.push((o.label.as_str(), t));
            }
        }
    }
    std::fs::write(path, packetmill::chrome_trace(&runs).to_pretty() + "\n")
}

/// The standard output tail of every benchmark binary: writes the
/// `--json <path>` run-report document and the `--trace <path>` Chrome
/// trace when the CLI asked for them.
pub fn write_cli_outputs(cli: &SweepCli, groups: &[(&str, &Artifact)]) {
    if let Some(path) = &cli.json {
        write_artifacts(path, groups).expect("write --json artifact");
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &cli.trace {
        write_trace(path, groups).expect("write --trace file");
        eprintln!("wrote {}", path.display());
    }
}

/// Per-run progress lines are on unless `PM_PROGRESS=0`.
fn progress_enabled() -> bool {
    std::env::var("PM_PROGRESS").map_or(true, |v| v != "0")
}

fn sweep() -> SweepSpec {
    SweepSpec::new().progress(progress_enabled())
}

/// Fixed-size sweeps drop most arrivals at small sizes; scale the run so
/// the post-warm-up window still observes tens of thousands of packets.
fn packets_for_size(size: usize) -> usize {
    (PACKETS * 1472 / size).clamp(PACKETS, PACKETS * 16)
}

fn router(model: MetadataModel, opt: OptLevel, f: f64) -> ExperimentBuilder {
    ExperimentBuilder::new(Nf::Router)
        .metadata_model(model)
        .optimization(opt)
        .frequency_ghz(f)
        .packets(PACKETS)
}

/// Figure 1: 99th-percentile latency vs throughput for the router on one
/// 2.3-GHz core, vanilla FastClick vs full PacketMill, offered-load sweep.
pub fn fig1() -> Artifact {
    const OFFERED: [f64; 10] = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0];
    let mut s = sweep();
    for offered in OFFERED {
        s.push(
            format!("fig1 {offered:.0}G vanilla"),
            router(MetadataModel::Copying, OptLevel::Vanilla, 2.3).offered_gbps(offered),
        );
        s.push(
            format!("fig1 {offered:.0}G packetmill"),
            router(MetadataModel::XChange, OptLevel::AllSource, 2.3).offered_gbps(offered),
        );
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "offered (Gbps)",
        "vanilla tput",
        "vanilla p99 (us)",
        "packetmill tput",
        "packetmill p99 (us)",
    ]);
    for (offered, pair) in OFFERED.iter().zip(ms.chunks_exact(2)) {
        let (v, p) = (&pair[0], &pair[1]);
        t.row(vec![
            format!("{offered:.0}"),
            format!("{:.1}", v.throughput_gbps),
            format!("{:.0}", v.p99_latency_us),
            format!("{:.1}", p.throughput_gbps),
            format!("{:.0}", p.p99_latency_us),
        ]);
    }
    Artifact::new(t, results)
}

/// The five source-optimization variants of Fig. 4 / Table 1.
const VARIANTS: [(&str, OptLevel); 5] = [
    ("vanilla", OptLevel::Vanilla),
    ("devirtualize", OptLevel::Devirtualize),
    ("constants", OptLevel::ConstantEmbed),
    ("static-graph", OptLevel::StaticGraph),
    ("all", OptLevel::AllSource),
];

/// Figure 4: router throughput and median latency vs core frequency for
/// the five source-optimization variants (Copying model).
pub fn fig4() -> Artifact {
    let mut s = sweep();
    for &f in &FREQS {
        for (name, opt) in VARIANTS {
            s.push(
                format!("fig4 {f:.1}GHz {name}"),
                router(MetadataModel::Copying, opt, f),
            );
        }
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "freq (GHz)",
        "variant",
        "Gbps",
        "Mpps",
        "p50 lat (us)",
    ]);
    let mut it = ms.iter();
    for &f in &FREQS {
        for (name, _) in VARIANTS {
            let m = it.next().expect("one result per (freq, variant)");
            t.row(vec![
                format!("{f:.1}"),
                name.to_string(),
                format!("{:.1}", m.throughput_gbps),
                format!("{:.2}", m.mpps),
                format!("{:.0}", m.median_latency_us),
            ]);
        }
    }
    Artifact::new(t, results)
}

/// Table 1: micro-architectural metrics at 3 GHz for the five variants.
pub fn table1() -> Artifact {
    let mut s = sweep();
    for (name, opt) in VARIANTS {
        s.push(
            format!("table1 {name}"),
            router(MetadataModel::Copying, opt, 3.0),
        );
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "metric",
        "vanilla",
        "devirt",
        "constants",
        "static",
        "all",
    ]);
    t.row_f64(
        "LLC kilo loads / 100ms",
        &ms.iter()
            .map(|m| m.llc_loads_per_100ms / 1e3)
            .collect::<Vec<_>>(),
        0,
    );
    t.row_f64(
        "LLC kilo load-misses / 100ms",
        &ms.iter()
            .map(|m| m.llc_misses_per_100ms / 1e3)
            .collect::<Vec<_>>(),
        1,
    );
    t.row_f64("IPC", &ms.iter().map(|m| m.ipc).collect::<Vec<_>>(), 2);
    t.row_f64("Mpps", &ms.iter().map(|m| m.mpps).collect::<Vec<_>>(), 2);
    Artifact::new(t, results)
}

/// The three metadata-management models, in presentation order.
const MODELS: [MetadataModel; 3] = [
    MetadataModel::Copying,
    MetadataModel::Overlaying,
    MetadataModel::XChange,
];

/// Figure 5a: forwarder throughput vs frequency for the three metadata
/// models (no source optimizations — isolating metadata management).
pub fn fig5a() -> Artifact {
    let mut s = sweep();
    for &f in &FREQS {
        for model in MODELS {
            s.push(
                format!("fig5a {f:.1}GHz {model:?}"),
                ExperimentBuilder::new(Nf::Forwarder)
                    .metadata_model(model)
                    .frequency_ghz(f)
                    .packets(PACKETS),
            );
        }
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec!["freq (GHz)", "copying", "overlaying", "x-change"]);
    for (&f, triple) in FREQS.iter().zip(ms.chunks_exact(3)) {
        let vals: Vec<f64> = triple.iter().map(|m| m.throughput_gbps).collect();
        t.row_f64(format!("{f:.1}"), &vals, 1);
    }
    Artifact::new(t, results)
}

/// Figure 5b: the same sweep with two 100-Gbps NICs polled by one core —
/// total throughput exceeds 100 Gbps only under X-Change.
pub fn fig5b() -> Artifact {
    let mut s = sweep();
    for &f in &FREQS {
        for model in MODELS {
            s.push(
                format!("fig5b {f:.1}GHz {model:?} 2xNIC"),
                ExperimentBuilder::new(Nf::Forwarder)
                    .metadata_model(model)
                    .frequency_ghz(f)
                    .nics(2)
                    .packets(PACKETS / 2),
            );
        }
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "freq (GHz)",
        "copying total",
        "overlaying total",
        "x-change total",
    ]);
    for (&f, triple) in FREQS.iter().zip(ms.chunks_exact(3)) {
        let vals: Vec<f64> = triple.iter().map(|m| m.throughput_gbps).collect();
        t.row_f64(format!("{f:.1}"), &vals, 1);
    }
    Artifact::new(t, results)
}

/// Packet sizes for the fixed-size sweeps (Figs. 6 and 11).
pub const SIZES: [usize; 12] = [64, 128, 192, 320, 448, 576, 704, 832, 960, 1088, 1216, 1472];

/// Figure 6: router @2.3 GHz, Gbps and Mpps vs fixed packet size,
/// vanilla vs PacketMill.
pub fn fig6() -> Artifact {
    let mut s = sweep();
    for &size in &SIZES {
        s.push(
            format!("fig6 {size}B vanilla"),
            router(MetadataModel::Copying, OptLevel::Vanilla, 2.3)
                .traffic(TrafficProfile::FixedSize(size))
                .packets(packets_for_size(size)),
        );
        s.push(
            format!("fig6 {size}B packetmill"),
            router(MetadataModel::XChange, OptLevel::AllSource, 2.3)
                .traffic(TrafficProfile::FixedSize(size))
                .packets(packets_for_size(size)),
        );
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "size (B)",
        "vanilla Gbps",
        "vanilla Mpps",
        "packetmill Gbps",
        "packetmill Mpps",
    ]);
    for (&size, pair) in SIZES.iter().zip(ms.chunks_exact(2)) {
        let (v, p) = (&pair[0], &pair[1]);
        t.row(vec![
            format!("{size}"),
            format!("{:.1}", v.throughput_gbps),
            format!("{:.2}", v.mpps),
            format!("{:.1}", p.throughput_gbps),
            format!("{:.2}", p.mpps),
        ]);
    }
    Artifact::new(t, results)
}

/// The (W, S) grid of the Fig. 7 surfaces.
const FIG7_W: [u32; 5] = [0, 4, 8, 16, 20];
const FIG7_S: [u32; 5] = [1, 4, 8, 12, 16];

/// Figure 7: PacketMill's improvement (%) over vanilla for the synthetic
/// WorkPackage NF over (W, S) grids, at `n` accesses per packet.
///
/// At N = 1 the optimized configuration saturates the simulated pipe
/// over much of the grid (our ceiling sits above the paper's testbed
/// plateau), which flattens its absolute numbers there; the N = 5
/// surface is fully CPU/memory-bound and shows the paper's decay
/// structure cleanly (see EXPERIMENTS.md).
pub fn fig7(n: u32) -> Artifact {
    fig7_with(n, None)
}

/// [`fig7`] with an explicit fault plan applied to every run of the
/// sweep. Tests use this (rather than a process-wide default) so a
/// faulted fixture can regenerate alongside unfaulted goldens in the
/// same test process.
pub fn fig7_with(n: u32, faults: Option<packetmill::FaultPlan>) -> Artifact {
    let faulted = |b: ExperimentBuilder| match &faults {
        Some(p) => b.fault_plan(p.clone()),
        None => b,
    };
    let mut s = sweep();
    for &w in &FIG7_W {
        for &sz in &FIG7_S {
            let nf = Nf::WorkPackage { w, s_mb: sz, n };
            s.push(
                format!("fig7 N={n} W={w} S={sz} vanilla"),
                faulted(
                    ExperimentBuilder::new(nf.clone())
                        .metadata_model(MetadataModel::Copying)
                        .optimization(OptLevel::Vanilla)
                        .frequency_ghz(2.3)
                        .packets(PACKETS),
                ),
            );
            s.push(
                format!("fig7 N={n} W={w} S={sz} packetmill"),
                faulted(
                    ExperimentBuilder::new(nf)
                        .metadata_model(MetadataModel::XChange)
                        .optimization(OptLevel::AllSource)
                        .frequency_ghz(2.3)
                        .packets(PACKETS),
                ),
            );
        }
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "W (rands)",
        "S (MB)",
        "vanilla Gbps",
        "packetmill Gbps",
        "improvement (%)",
    ]);
    let mut it = ms.chunks_exact(2);
    for &w in &FIG7_W {
        for &sz in &FIG7_S {
            let pair = it.next().expect("one pair per (W, S)");
            let (v, p) = (&pair[0], &pair[1]);
            let imp = (p.throughput_gbps / v.throughput_gbps - 1.0) * 100.0;
            t.row(vec![
                format!("{w}"),
                format!("{sz}"),
                format!("{:.1}", v.throughput_gbps),
                format!("{:.1}", p.throughput_gbps),
                format!("{imp:.1}"),
            ]);
        }
    }
    Artifact::new(t, results)
}

/// Figure 8: IDS+router throughput and median latency vs frequency.
pub fn fig8() -> Artifact {
    let mut s = sweep();
    for &f in &FREQS {
        s.push(
            format!("fig8 {f:.1}GHz vanilla"),
            ExperimentBuilder::new(Nf::IdsRouter)
                .metadata_model(MetadataModel::Copying)
                .optimization(OptLevel::Vanilla)
                .frequency_ghz(f)
                .packets(PACKETS),
        );
        s.push(
            format!("fig8 {f:.1}GHz packetmill"),
            ExperimentBuilder::new(Nf::IdsRouter)
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .frequency_ghz(f)
                .packets(PACKETS),
        );
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "freq (GHz)",
        "vanilla Gbps",
        "vanilla p50 (us)",
        "packetmill Gbps",
        "packetmill p50 (us)",
    ]);
    for (&f, pair) in FREQS.iter().zip(ms.chunks_exact(2)) {
        let (v, p) = (&pair[0], &pair[1]);
        t.row(vec![
            format!("{f:.1}"),
            format!("{:.1}", v.throughput_gbps),
            format!("{:.0}", v.median_latency_us),
            format!("{:.1}", p.throughput_gbps),
            format!("{:.0}", p.median_latency_us),
        ]);
    }
    Artifact::new(t, results)
}

/// Figure 9: zooming into the N=1, W=4 slice — throughput, LLC-load-miss
/// percentage, and LLC loads vs memory footprint.
pub fn fig9() -> Artifact {
    let sizes_kb: [u64; 12] = [
        256, 512, 1024, 2048, 3072, 5120, 8192, 10240, 12288, 14336, 16384, 20480,
    ];
    let mut s = sweep();
    for &kb in &sizes_kb {
        let nf = Nf::WorkPackageKb {
            w: 4,
            s_kb: kb,
            n: 1,
        };
        s.push(
            format!("fig9 {kb}KB vanilla"),
            ExperimentBuilder::new(nf.clone())
                .metadata_model(MetadataModel::Copying)
                .optimization(OptLevel::Vanilla)
                .packets(PACKETS),
        );
        s.push(
            format!("fig9 {kb}KB packetmill"),
            ExperimentBuilder::new(nf)
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .packets(PACKETS),
        );
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "S (MB)",
        "vanilla Gbps",
        "packetmill Gbps",
        "vanilla miss (%)",
        "packetmill miss (%)",
        "vanilla loads (k/100ms)",
        "packetmill loads (k/100ms)",
    ]);
    for (&kb, pair) in sizes_kb.iter().zip(ms.chunks_exact(2)) {
        let (v, p) = (&pair[0], &pair[1]);
        t.row(vec![
            format!("{:.2}", kb as f64 / 1024.0),
            format!("{:.1}", v.throughput_gbps),
            format!("{:.1}", p.throughput_gbps),
            format!("{:.1}", v.llc_miss_pct),
            format!("{:.1}", p.llc_miss_pct),
            format!("{:.0}", v.llc_loads_per_100ms / 1e3),
            format!("{:.0}", p.llc_loads_per_100ms / 1e3),
        ]);
    }
    Artifact::new(t, results)
}

/// Figure 10: NAT throughput vs core count @2.3 GHz (RSS spreads flows).
pub fn fig10() -> Artifact {
    let mut s = sweep();
    for cores in 1..=4usize {
        s.push(
            format!("fig10 {cores}c vanilla"),
            ExperimentBuilder::new(Nf::Nat)
                .metadata_model(MetadataModel::Copying)
                .optimization(OptLevel::Vanilla)
                .cores(cores)
                .packets(PACKETS),
        );
        s.push(
            format!("fig10 {cores}c packetmill"),
            ExperimentBuilder::new(Nf::Nat)
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .cores(cores)
                .packets(PACKETS),
        );
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec!["cores", "vanilla Gbps", "packetmill Gbps"]);
    for (cores, pair) in (1..=4usize).zip(ms.chunks_exact(2)) {
        t.row(vec![
            format!("{cores}"),
            format!("{:.1}", pair[0].throughput_gbps),
            format!("{:.1}", pair[1].throughput_gbps),
        ]);
    }
    Artifact::new(t, results)
}

/// The five NF presets of the multi-core scaling sweep.
const MULTICORE_NFS: [(&str, Nf); 5] = [
    ("forwarder", Nf::Forwarder),
    ("router", Nf::Router),
    ("ids-router", Nf::IdsRouter),
    ("nat", Nf::Nat),
    ("firewall", Nf::Firewall),
];

/// Multi-core scaling sweep: throughput and tail latency vs simulated
/// core count (1..=`max_cores`) for all five NF presets, full PacketMill
/// configuration (X-Change + all source optimizations) @2.3 GHz.
///
/// Each run steers traffic over RSS to per-core RX queues, executes one
/// PMD + dataplane pair per (nic, queue) on its owning core, and shares
/// the LLC/DDIO path across cores; the engine asserts a per-queue
/// conservation ledger for every multi-core run. The speedup column is
/// relative to the same NF on one core; efficiency is speedup per core.
pub fn fig_multicore(max_cores: usize) -> Artifact {
    let mut s = sweep();
    for (name, nf) in MULTICORE_NFS {
        for cores in 1..=max_cores {
            s.push(
                format!("fig_multicore {name} {cores}c"),
                ExperimentBuilder::new(nf.clone())
                    .metadata_model(MetadataModel::XChange)
                    .optimization(OptLevel::AllSource)
                    .cores(cores)
                    .frequency_ghz(2.3)
                    .packets(PACKETS),
            );
        }
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "nf",
        "cores",
        "Gbps",
        "Mpps",
        "p50 (us)",
        "p99 (us)",
        "LLC miss (%)",
        "speedup",
        "efficiency (%)",
    ]);
    for ((name, _), per_nf) in MULTICORE_NFS.iter().zip(ms.chunks_exact(max_cores)) {
        let base = per_nf[0].throughput_gbps;
        for (cores, m) in (1..=max_cores).zip(per_nf) {
            let speedup = m.throughput_gbps / base;
            t.row(vec![
                name.to_string(),
                format!("{cores}"),
                format!("{:.1}", m.throughput_gbps),
                format!("{:.2}", m.mpps),
                format!("{:.0}", m.median_latency_us),
                format!("{:.0}", m.p99_latency_us),
                format!("{:.1}", m.llc_miss_pct),
                format!("{speedup:.2}"),
                format!("{:.0}", speedup / cores as f64 * 100.0),
            ]);
        }
    }
    Artifact::new(t, results)
}

/// The flow-population ladder of the flow-scale sweep (concurrent
/// flows; for the router preset, FIB prefixes).
pub const FLOW_LADDER: [u64; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// The churned Zipf workload driving one flow-scale data point: α 1.1
/// popularity (Internet-like head skew), campus frame sizes, and four
/// flow generations rotating per trace cycle so tables see sustained
/// insert/expire pressure, not just a warmed steady state.
pub fn flowscale_workload(flows: u64) -> packetmill::WorkloadSpec {
    let frames = flows.clamp(1_024, 131_072);
    packetmill::WorkloadSpec {
        seed: 0xF10E5,
        flows,
        zipf_x1000: 1_100,
        life: (frames / 4).max(1),
        frames,
        size: packetmill::SizeModel::Campus,
        attacks: Vec::new(),
    }
}

/// Flow-scale sweep: the three stateful presets (scaled NAT, conntrack
/// firewall, synthesized-FIB router) under the [`flowscale_workload`]
/// churn at every population in [`FLOW_LADDER`] up to `max_flows`, with
/// element tables on 4-KiB pages vs 2-MiB hugepages.
///
/// The claim is the inflection: LLC miss ratio and DTLB misses per
/// packet climb as the live table outgrows the LLC (~23 MiB) and the
/// 4-KiB page working set outgrows the two-level TLB, and hugepages
/// claw back a measurable share of that cost at ≥1M flows. Runs are
/// profiled so the artifact can report DTLB misses; occupancy and
/// eviction columns come from the per-table counters in the run report.
pub fn fig_flowscale(max_flows: u64) -> Artifact {
    let ladder: Vec<u64> = FLOW_LADDER
        .iter()
        .copied()
        .filter(|&f| f <= max_flows)
        .collect();
    assert!(!ladder.is_empty(), "flow ladder needs max_flows >= 1000");
    type ScaledNf = fn(u64) -> Nf;
    let stateful: [(&str, ScaledNf); 3] = [
        ("nat", Nf::NatScale),
        ("firewall", Nf::FirewallScale),
        ("router", Nf::RouterScale),
    ];
    const PAGES: [(&str, bool); 2] = [("4k", false), ("huge", true)];
    let mut s = sweep();
    for &flows in &ladder {
        for (name, nf) in stateful {
            for (pages, huge) in PAGES {
                s.push(
                    format!("fig_flowscale {name} {flows} flows {pages}"),
                    ExperimentBuilder::new(nf(flows))
                        .metadata_model(MetadataModel::XChange)
                        .optimization(OptLevel::AllSource)
                        .frequency_ghz(2.3)
                        .packets(PACKETS)
                        .profile(true)
                        .workload(flowscale_workload(flows))
                        .hugepage_tables(huge),
                );
            }
        }
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "flows",
        "nf",
        "pages",
        "Gbps",
        "Mpps",
        "LLC miss (%)",
        "DTLB miss/pkt",
        "occupancy",
        "evictions",
    ]);
    let mut it = results.outcomes.iter().zip(&ms);
    for &flows in &ladder {
        for (name, _) in stateful {
            for (pages, _) in PAGES {
                let (o, m) = it.next().expect("one run per (flows, nf, pages)");
                let r = o.report.as_ref().expect("builder runs carry reports");
                let dtlb: u64 = r
                    .profile
                    .as_ref()
                    .map_or(0, |p| p.records.iter().map(|rec| rec.dtlb_misses).sum());
                let w = r.workload.as_ref().expect("workload-driven run");
                let occupancy: u64 = w.tables.iter().map(|ts| ts.occupancy).sum();
                let evictions: u64 = w.tables.iter().map(|ts| ts.evictions).sum();
                t.row(vec![
                    format!("{flows}"),
                    name.to_string(),
                    pages.to_string(),
                    format!("{:.1}", m.throughput_gbps),
                    format!("{:.2}", m.mpps),
                    format!("{:.1}", m.llc_miss_pct),
                    format!("{:.2}", dtlb as f64 / m.tx_packets.max(1) as f64),
                    format!("{occupancy}"),
                    format!("{evictions}"),
                ]);
            }
        }
    }
    Artifact::new(t, results)
}

/// The fault plan driving [`fig_timeline`]'s faulted run: a 200-µs link
/// flap and a later 200-µs mempool squeeze, both inside the measurement
/// window of the ~3.1-ms run, over a low-rate FCS-corruption background.
pub const TIMELINE_FAULT_SPEC: &str =
    "seed=0x71AE;bitflip@..:rate=2000ppm;flap@800us..1000us;pool@1600us..1800us";

/// Flight-recorder window (µs) used by [`fig_timeline`] — small enough
/// that the 200-µs link flap spans several windows.
pub const TIMELINE_WINDOW_US: f64 = 50.0;

/// Flight-recorder showcase: two full-PacketMill router runs recorded at
/// a 50-µs timeline window with sampled packet traces. The first runs on
/// one core under [`TIMELINE_FAULT_SPEC`] — the link-flap throughput dip
/// and its recovery window are the artifact's claim; the second is a
/// clean 4-core run whose per-window `tx min/core` vs `tx max/core`
/// spread shows RSS imbalance. Recording is forced on via the builder
/// (not the process-wide `--timeline` default), so the artifact and its
/// golden fixture do not depend on CLI state.
pub fn fig_timeline() -> Artifact {
    let plan = packetmill::FaultPlan::parse(TIMELINE_FAULT_SPEC).expect("valid fault spec");
    let recorded = |b: ExperimentBuilder| b.timeline_us(TIMELINE_WINDOW_US).packet_trace(true);
    let mut s = sweep();
    s.push(
        "fig_timeline router 1c faulted".to_string(),
        recorded(router(MetadataModel::XChange, OptLevel::AllSource, 2.3)).fault_plan(plan),
    );
    s.push(
        "fig_timeline router 4c".to_string(),
        recorded(router(MetadataModel::XChange, OptLevel::AllSource, 2.3)).cores(4),
    );
    let results = s.run();
    results.expect_all();

    let mut t = Table::new(vec![
        "run",
        "window",
        "t_end (us)",
        "Gbps",
        "p99 (us)",
        "drops",
        "tx min/core",
        "tx max/core",
    ]);
    for o in &results.outcomes {
        let r = o.report.as_ref().expect("sweep runs carry reports");
        let tl = r.timeline.as_ref().expect("run recorded a timeline");
        let per_core: Vec<Vec<f64>> = (0..tl.cores.len()).map(|c| tl.gbps(c)).collect();
        let total: Vec<f64> = (0..tl.window_end_us.len())
            .map(|i| per_core.iter().map(|g| g[i]).sum())
            .collect();
        for (i, &end) in tl.window_end_us.iter().enumerate() {
            let p99 = tl
                .cores
                .iter()
                .filter_map(|c| c.p99_us[i])
                .fold(None::<f64>, |a, v| Some(a.map_or(v, |x| x.max(v))));
            let drops: u64 = tl.drops.iter().map(|(_, v)| v[i]).sum();
            let tx_min = tl.cores.iter().map(|c| c.tx[i]).min().unwrap_or(0);
            let tx_max = tl.cores.iter().map(|c| c.tx[i]).max().unwrap_or(0);
            t.row(vec![
                o.label.clone(),
                format!("{i}"),
                format!("{end:.0}"),
                format!("{:.1}", total[i]),
                p99.map_or("-".to_string(), |v| format!("{v:.1}")),
                format!("{drops}"),
                format!("{tx_min}"),
                format!("{tx_max}"),
            ]);
        }
        // Dip/recovery summary for the faulted run: the flap must show as
        // a throughput dip, and the line rate must come back afterwards.
        if r.faults.is_some() {
            let pre: Vec<f64> = tl
                .window_end_us
                .iter()
                .zip(&total)
                .filter(|(&end, _)| end > 400.0 && end <= 800.0)
                .map(|(_, &g)| g)
                .collect();
            let pre_mean = pre.iter().sum::<f64>() / pre.len() as f64;
            let (dip_i, dip_g) = total
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite Gbps"))
                .expect("at least one window");
            let recovered = total
                .iter()
                .enumerate()
                .skip(dip_i)
                .find(|&(_, &g)| g >= 0.9 * pre_mean);
            let summary = |tag: &str, win: String, end: String, g: f64| {
                vec![
                    format!("{} {tag}", o.label),
                    win,
                    end,
                    format!("{g:.1}"),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]
            };
            t.row(summary("pre-flap mean", "-".into(), "-".into(), pre_mean));
            t.row(summary(
                "dip",
                format!("{dip_i}"),
                format!("{:.0}", tl.window_end_us[dip_i]),
                *dip_g,
            ));
            match recovered {
                Some((i, &g)) => t.row(summary(
                    "recovered",
                    format!("{i}"),
                    format!("{:.0}", tl.window_end_us[i]),
                    g,
                )),
                None => t.row(summary("recovered", "never".into(), "-".into(), 0.0)),
            }
        }
    }
    Artifact::new(t, results)
}

/// A comparator job for the Fig. 11 framework comparison: the forwarder
/// experiment run over an arbitrary dataplane instead of FastClick.
fn comparator_job(
    size: usize,
    packets: usize,
    dp: fn() -> Box<dyn Dataplane>,
) -> impl FnOnce() -> Result<Measurement, packetmill::ExperimentError> + Send + 'static {
    move || {
        ExperimentBuilder::new(Nf::Forwarder)
            .frequency_ghz(1.2)
            .traffic(TrafficProfile::FixedSize(size))
            .packets(packets)
            .run_with_dataplane(dp)
    }
}

/// Figure 11a: FastClick vs `l2fwd` vs PacketMill vs `l2fwd-xchg`,
/// fixed-size sweep on one 1.2-GHz core.
pub fn fig11a() -> Artifact {
    let mut s = sweep();
    for &size in &SIZES {
        s.push(
            format!("fig11a {size}B fastclick"),
            ExperimentBuilder::new(Nf::Forwarder)
                .metadata_model(MetadataModel::Copying)
                .frequency_ghz(1.2)
                .traffic(TrafficProfile::FixedSize(size))
                .packets(PACKETS),
        );
        s.push(
            format!("fig11a {size}B packetmill"),
            ExperimentBuilder::new(Nf::Forwarder)
                .metadata_model(MetadataModel::XChange)
                .optimization(OptLevel::AllSource)
                .frequency_ghz(1.2)
                .traffic(TrafficProfile::FixedSize(size))
                .packets(PACKETS),
        );
        s.push_job(
            format!("fig11a {size}B l2fwd"),
            comparator_job(size, packets_for_size(size), || Box::new(L2Fwd::plain())),
        );
        s.push_job(
            format!("fig11a {size}B l2fwd-xchg"),
            comparator_job(size, packets_for_size(size), || Box::new(L2Fwd::xchg())),
        );
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "size (B)",
        "FastClick (Copying)",
        "l2fwd",
        "PacketMill (X-Change)",
        "l2fwd-xchg",
    ]);
    for (&size, quad) in SIZES.iter().zip(ms.chunks_exact(4)) {
        t.row(vec![
            format!("{size}"),
            format!("{:.1}", quad[0].throughput_gbps),
            format!("{:.1}", quad[2].throughput_gbps),
            format!("{:.1}", quad[1].throughput_gbps),
            format!("{:.1}", quad[3].throughput_gbps),
        ]);
    }
    Artifact::new(t, results)
}

/// Figure 11b: VPP vs FastClick (Copying) vs FastClick-Light (Overlaying)
/// vs BESS vs PacketMill, fixed-size sweep on one 1.2-GHz core.
pub fn fig11b() -> Artifact {
    let fc = |size: usize, model: MetadataModel, opt: OptLevel| {
        ExperimentBuilder::new(Nf::Forwarder)
            .metadata_model(model)
            .optimization(opt)
            .frequency_ghz(1.2)
            .traffic(TrafficProfile::FixedSize(size))
            .packets(packets_for_size(size))
    };
    let mut s = sweep();
    for &size in &SIZES {
        s.push_job(
            format!("fig11b {size}B vpp"),
            comparator_job(size, packets_for_size(size), || Box::new(VppEngine)),
        );
        s.push(
            format!("fig11b {size}B fastclick"),
            fc(size, MetadataModel::Copying, OptLevel::Vanilla),
        );
        s.push(
            format!("fig11b {size}B fastclick-light"),
            fc(size, MetadataModel::Overlaying, OptLevel::Vanilla),
        );
        s.push_job(
            format!("fig11b {size}B bess"),
            comparator_job(size, packets_for_size(size), || Box::new(BessEngine)),
        );
        s.push(
            format!("fig11b {size}B packetmill"),
            fc(size, MetadataModel::XChange, OptLevel::AllSource),
        );
    }
    let results = s.run();
    let ms = results.expect_all();

    let mut t = Table::new(vec![
        "size (B)",
        "VPP",
        "FastClick (Copying)",
        "FastClick-Light (Overlaying)",
        "BESS",
        "PacketMill (X-Change)",
    ]);
    for (&size, five) in SIZES.iter().zip(ms.chunks_exact(5)) {
        let mut row = vec![format!("{size}")];
        row.extend(five.iter().map(|m| format!("{:.1}", m.throughput_gbps)));
        t.row(row);
    }
    Artifact::new(t, results)
}

/// Runs every artifact, prints paper-style output (tables on stdout,
/// sweep telemetry on stderr), and returns the artifacts keyed by a
/// stable group name for `--json` emission.
pub fn run_all() -> Vec<(&'static str, Artifact)> {
    type ArtifactFn = Box<dyn Fn() -> Artifact>;
    let artifacts: Vec<(&str, &str, ArtifactFn)> = vec![
        (
            "fig1",
            "Figure 1 — p99 latency vs throughput (router, 1 core @2.3 GHz)",
            Box::new(fig1),
        ),
        (
            "fig4",
            "Figure 4 — source-code optimizations vs frequency (router)",
            Box::new(fig4),
        ),
        (
            "table1",
            "Table 1 — micro-architectural metrics @3 GHz (router)",
            Box::new(table1),
        ),
        (
            "fig5a",
            "Figure 5a — metadata models vs frequency (forwarder, 1 NIC)",
            Box::new(fig5a),
        ),
        (
            "fig5b",
            "Figure 5b — metadata models, two NICs, one core",
            Box::new(fig5b),
        ),
        (
            "fig6",
            "Figure 6 — packet-size sweep (router @2.3 GHz)",
            Box::new(fig6),
        ),
        (
            "fig7-n1",
            "Figure 7a — WorkPackage improvement surface (N=1)",
            Box::new(|| fig7(1)),
        ),
        (
            "fig7-n5",
            "Figure 7b — WorkPackage improvement surface (N=5)",
            Box::new(|| fig7(5)),
        ),
        ("fig8", "Figure 8 — IDS+router vs frequency", Box::new(fig8)),
        (
            "fig9",
            "Figure 9 — memory-footprint slice (N=1, W=4)",
            Box::new(fig9),
        ),
        (
            "fig10",
            "Figure 10 — multicore NAT @2.3 GHz",
            Box::new(fig10),
        ),
        (
            "fig-multicore",
            "Multi-core scaling — five NFs, PacketMill config @2.3 GHz",
            Box::new(|| fig_multicore(4)),
        ),
        (
            "fig-timeline",
            "Flight recorder — link-flap dip/recovery + 4-core imbalance",
            Box::new(fig_timeline),
        ),
        (
            "fig-flowscale",
            "Flow-scale sweep — stateful NFs, 1k..=100k flows, 4-KiB vs hugepage tables",
            Box::new(|| fig_flowscale(100_000)),
        ),
        (
            "fig11a",
            "Figure 11a — FastClick vs l2fwd vs PacketMill vs l2fwd-xchg @1.2 GHz",
            Box::new(fig11a),
        ),
        (
            "fig11b",
            "Figure 11b — framework comparison @1.2 GHz",
            Box::new(fig11b),
        ),
    ];
    let mut out = Vec::new();
    for (key, title, f) in artifacts {
        let artifact = f();
        println!("== {title} ==\n");
        println!("{}", artifact.table);
        // Timing goes to stderr so redirected artifact output stays
        // byte-identical across runs and thread counts.
        artifact.emit_profiles();
        if packetmill::sweep::default_timing() {
            eprintln!("{}", artifact.report.timing_line());
        }
        eprintln!(
            "sweep report ({:.1} s wall, {:.1} s serial-equivalent, {} threads):\n{}",
            artifact.report.wall_seconds,
            artifact.report.serial_seconds,
            artifact.report.threads,
            artifact.report,
        );
        out.push((key, artifact));
    }
    out
}
