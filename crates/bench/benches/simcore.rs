//! Criterion benchmarks for the simulator fast path: memory-hierarchy
//! accesses per second (hit-heavy, miss-heavy, and range-batched) and
//! event-queue throughput (calendar queue vs. the binary-heap
//! reference). These are the host-side hot loops behind every figure
//! sweep; `DESIGN.md` § "Simulator performance" explains the structures
//! under test.

use criterion::{criterion_group, criterion_main, Criterion};
use pm_mem::{AccessKind, MemoryHierarchy};
use pm_sim::{EventQueue, HeapEventQueue, SimTime, SplitMix64};
use std::hint::black_box;

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");

    // Hit-heavy: a 16-line working set, revisited round-robin — after
    // warm-up every access is an L1 hit, most in the MRU slot.
    g.bench_function("access_hit_heavy", |b| {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) & 15;
            black_box(mem.access(0, 0x10000 + i * 64, 8, AccessKind::Load))
        });
    });

    // Miss-heavy: pseudorandom lines across 256 MiB — far past the LLC,
    // so most accesses walk all three levels and charge DRAM.
    g.bench_function("access_miss_heavy", |b| {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut rng = SplitMix64::new(0xBEEF);
        b.iter(|| {
            let addr = rng.next_u64() & (256 * 1024 * 1024 - 1);
            black_box(mem.access(0, addr, 8, AccessKind::Load))
        });
    });

    // Range-batched: one MTU-sized span charged through `access_range`,
    // the bulk-touch API the PMD and runtime use for payload copies.
    g.bench_function("access_range_1472B", |b| {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) & 63;
            black_box(mem.access_range(0, 0x200000 + i * 2048, 1472, AccessKind::Store))
        });
    });

    // The same span charged line-by-line — what the batched API replaced.
    g.bench_function("access_per_line_1472B", |b| {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) & 63;
            let base = 0x200000 + i * 2048;
            let mut cost = pm_mem::Cost::default();
            for l in 0..23u64 {
                cost += mem.access(0, base + l * 64, 64, AccessKind::Store);
            }
            black_box(cost)
        });
    });

    g.finish();
}

/// The engine's event pattern, as a classic hold model: a standing
/// population of in-flight events whose timestamps advance in
/// pacing-scale steps (a 64-B frame at 100 Gbps arrives every ~6.7 ns).
/// Each op pops the earliest event and schedules its successor a few
/// nanoseconds later.
fn pump_calendar(n: u64, population: u64, seed: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = SplitMix64::new(seed);
    for i in 0..population {
        q.schedule(
            SimTime::from_ns((rng.next_u64() % (population * 8)) as f64),
            i,
        );
    }
    let mut acc = 0u64;
    for i in 0..n {
        let (t, e) = q.pop().expect("standing population");
        acc = acc.wrapping_add(e);
        q.schedule(t + SimTime::from_ns(1.0 + (rng.next_u64() % 16) as f64), i);
    }
    acc
}

/// The identical workload against the binary-heap reference queue.
fn pump_heap(n: u64, population: u64, seed: u64) -> u64 {
    let mut q: HeapEventQueue<u64> = HeapEventQueue::new();
    let mut rng = SplitMix64::new(seed);
    for i in 0..population {
        q.schedule(
            SimTime::from_ns((rng.next_u64() % (population * 8)) as f64),
            i,
        );
    }
    let mut acc = 0u64;
    for i in 0..n {
        let (t, e) = q.pop().expect("standing population");
        acc = acc.wrapping_add(e);
        q.schedule(t + SimTime::from_ns(1.0 + (rng.next_u64() % 16) as f64), i);
    }
    acc
}

fn bench_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("events");
    for population in [16u64, 256] {
        g.bench_function(&format!("calendar_queue_pop{population}"), |b| {
            b.iter(|| black_box(pump_calendar(4096, population, 0xACE)));
        });
        g.bench_function(&format!("heap_queue_pop{population}"), |b| {
            b.iter(|| black_box(pump_heap(4096, population, 0xACE)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hierarchy, bench_events);
criterion_main!(benches);
