//! Criterion benchmarks for the simulator fast path: memory-hierarchy
//! accesses per second (hit-heavy, miss-heavy, and range-batched),
//! access-program resolution (batched/memoized resolver vs the per-call
//! reference walk), and event-queue throughput (calendar queue vs. the
//! binary-heap reference). These are the host-side hot loops behind
//! every figure sweep; `DESIGN.md` § "Simulator performance" explains
//! the structures under test.
//!
//! Honest-result notes (shared, throttling-prone host — ratios are the
//! claim, absolute rates are weather):
//! * The `programs/*_replay` vs `*_reference` pairs run the *same*
//!   program against the same bases, so after the first iteration the
//!   fast resolver replays an armed signature while the reference walks
//!   every line per call. The gap is the memoization win in isolation;
//!   real sweeps see it on only ~⅓ of program runs (poll words,
//!   dispatch, element state), diluted further by non-program host work.
//! * `payload23_batched` vs `payload23_reference` isolates the batched
//!   tight-loop walk for a `no_memoize` program (ring/payload shapes,
//!   bases cycle every call): both walk all 23 lines; the difference is
//!   hoisted TLB/attribution and loop structure only — measured ~1.3×,
//!   a loop-overhead gap, not the ~8× a replayed signature shows.
//! * The event-queue pairs historically show the calendar queue ~2-4×
//!   the heap at engine-like populations; regressions there dwarf any
//!   hierarchy-level tuning, so check them first when a sweep slows.
//! * The `delta_replay/*` group times the round-3 machinery: strided
//!   bases that exact-base memoization can never hit but delta-class
//!   re-keying replays (`wqe_stride16`, `batch32`). `classflip` is the
//!   honest loser — bases whose line counts alternate put every call on
//!   the verify-bail-walk-rearm path, so the fast resolver pays the
//!   failed verification *on top of* the reference walk. The loss is
//!   bounded (one read-only pass over an armed entry), but it is a
//!   loss; shapes like it are why the Packet-pool program in the Click
//!   runtime keeps `no_memoize`.

use criterion::{criterion_group, criterion_main, Criterion};
use pm_mem::{AccessKind, Cost, HierarchyParams, MemoryHierarchy, ProgramBuilder};
use pm_sim::{EventQueue, HeapEventQueue, SimTime, SplitMix64};
use std::hint::black_box;

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");

    // Hit-heavy: a 16-line working set, revisited round-robin — after
    // warm-up every access is an L1 hit, most in the MRU slot.
    g.bench_function("access_hit_heavy", |b| {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) & 15;
            black_box(mem.access(0, 0x10000 + i * 64, 8, AccessKind::Load))
        });
    });

    // Miss-heavy: pseudorandom lines across 256 MiB — far past the LLC,
    // so most accesses walk all three levels and charge DRAM.
    g.bench_function("access_miss_heavy", |b| {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut rng = SplitMix64::new(0xBEEF);
        b.iter(|| {
            let addr = rng.next_u64() & (256 * 1024 * 1024 - 1);
            black_box(mem.access(0, addr, 8, AccessKind::Load))
        });
    });

    // Range-batched: one MTU-sized span charged through `access_range`,
    // the bulk-touch API the PMD and runtime use for payload copies.
    g.bench_function("access_range_1472B", |b| {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) & 63;
            black_box(mem.access_range(0, 0x200000 + i * 2048, 1472, AccessKind::Store))
        });
    });

    // The same span charged line-by-line — what the batched API replaced.
    g.bench_function("access_per_line_1472B", |b| {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) & 63;
            let base = 0x200000 + i * 2048;
            let mut cost = pm_mem::Cost::default();
            for l in 0..23u64 {
                cost += mem.access(0, base + l * 64, 64, AccessKind::Store);
            }
            black_box(cost)
        });
    });

    g.finish();
}

/// Access-program resolution at representative charge-set sizes, fast
/// resolver vs the lock-step reference walk (`with_reference_walk`).
/// Fixed bases keep the lines L1-resident after the first iteration, so
/// `*_replay` rows measure the armed-signature replay and `*_reference`
/// rows the identical outcome paid per line per call.
fn bench_programs(c: &mut Criterion) {
    let mut g = c.benchmark_group("programs");

    // Dispatch-shaped: prefetch + vtable load + compute + state load
    // (2 demand lines, 2 bases) — the hottest replayable shape.
    let dispatch = || {
        ProgramBuilder::new()
            .prefetch(0, 0, 64)
            .load(0, 0, 32)
            .compute(18)
            .load(1, 0, 8)
            .build()
    };
    // Metadata-commit-shaped: 6 demand lines on one base.
    let metadata = || {
        ProgramBuilder::new()
            .load(0, 0, 8)
            .store(0, 64, 8)
            .store(0, 128, 8)
            .load(0, 192, 16)
            .store(0, 256, 8)
            .load(0, 320, 8)
            .compute(12)
            .build()
    };
    // Payload-shaped: one MTU store span, bases cycle in real use so the
    // builder disables memoization — this pair isolates the batched
    // tight-loop walk against the per-call reference.
    let payload = || ProgramBuilder::new().no_memoize().store(0, 0, 1472).build();

    let fast = || MemoryHierarchy::skylake(1);
    let reference = || MemoryHierarchy::with_reference_walk(&HierarchyParams::skylake(1));

    type MakeProgram = fn() -> pm_mem::AccessProgram;
    let pairs: [(&str, &str, MakeProgram); 3] = [
        ("dispatch2", "replay", dispatch as fn() -> _),
        ("metadata6", "replay", metadata as fn() -> _),
        ("payload23", "batched", payload as fn() -> _),
    ];
    for (name, fast_tag, make) in pairs {
        for (tag, mk_mem) in [
            (fast_tag, fast as fn() -> MemoryHierarchy),
            ("reference", reference as fn() -> MemoryHierarchy),
        ] {
            g.bench_function(&format!("{name}_{tag}"), |b| {
                let mut mem = mk_mem();
                let prog = make();
                let bases = [0x10_000u64, 0x12_000];
                b.iter(|| {
                    let mut cost = Cost::ZERO;
                    mem.run_program(0, &prog, &bases, &mut cost);
                    black_box(cost)
                });
            });
        }
    }

    g.finish();
}

/// Delta-class replay at the shapes round 3 converted from
/// `no_memoize`: bases stride through a ring, so the exact-base key
/// never repeats, but per-step line counts do — the fast resolver
/// re-keys the armed signature in place instead of walking. Each
/// `*_reference` row pays the identical outcome per line per call.
fn bench_delta_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta_replay");

    // RX-WQE-shaped: one 16-byte slot store + doorbell arithmetic, the
    // densest converted ring shape (4 slots per line).
    let wqe = || ProgramBuilder::new().store(0, 0, 16).compute(4).build();
    // Offset-sensitive: 56 bytes from offset 0 is one line, from offset
    // 16 it is two — alternating bases flip the delta class every call.
    let flip = || ProgramBuilder::new().load(0, 0, 56).compute(4).build();

    type MkMem = fn() -> MemoryHierarchy;
    let modes: [(&str, MkMem); 2] = [
        ("fast", (|| MemoryHierarchy::skylake(1)) as MkMem),
        (
            "reference",
            (|| MemoryHierarchy::with_reference_walk(&HierarchyParams::skylake(1))) as MkMem,
        ),
    ];

    // A 64-slot (16-line) WQE ring visited round-robin: every call is a
    // fresh base in the same class, so after warm-up every call is a
    // delta replay + re-key on the fast resolver.
    for (tag, mk_mem) in modes {
        g.bench_function(&format!("wqe_stride16_{tag}"), |b| {
            let mut mem = mk_mem();
            let prog = wqe();
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) & 63;
                let mut cost = Cost::ZERO;
                mem.run_program(0, &prog, &[0x40_000 + i * 16], &mut cost);
                black_box(cost)
            });
        });
    }

    // The PMD's burst shape: one `run_program_batch` call resolving 32
    // strided rows under a single attribution window.
    for (tag, mk_mem) in modes {
        g.bench_function(&format!("batch32_{tag}"), |b| {
            let mut mem = mk_mem();
            let prog = wqe();
            let rows: Vec<[u64; 1]> = (0..32u64).map(|k| [0x48_000 + k * 16]).collect();
            b.iter(|| {
                let mut cost = Cost::ZERO;
                mem.run_program_batch(0, &prog, &rows, &mut cost);
                black_box(cost)
            });
        });
    }

    // Where replay loses: the class flips every call, so the fast
    // resolver verifies, bails, walks, and re-arms — pure overhead over
    // the reference walk. See the module notes.
    for (tag, mk_mem) in modes {
        g.bench_function(&format!("classflip_{tag}"), |b| {
            let mut mem = mk_mem();
            let prog = flip();
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) & 1;
                let mut cost = Cost::ZERO;
                mem.run_program(0, &prog, &[0x50_000 + i * 16], &mut cost);
                black_box(cost)
            });
        });
    }

    g.finish();
}

/// The engine's event pattern, as a classic hold model: a standing
/// population of in-flight events whose timestamps advance in
/// pacing-scale steps (a 64-B frame at 100 Gbps arrives every ~6.7 ns).
/// Each op pops the earliest event and schedules its successor a few
/// nanoseconds later.
fn pump_calendar(n: u64, population: u64, seed: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = SplitMix64::new(seed);
    for i in 0..population {
        q.schedule(
            SimTime::from_ns((rng.next_u64() % (population * 8)) as f64),
            i,
        );
    }
    let mut acc = 0u64;
    for i in 0..n {
        let (t, e) = q.pop().expect("standing population");
        acc = acc.wrapping_add(e);
        q.schedule(t + SimTime::from_ns(1.0 + (rng.next_u64() % 16) as f64), i);
    }
    acc
}

/// The identical workload against the binary-heap reference queue.
fn pump_heap(n: u64, population: u64, seed: u64) -> u64 {
    let mut q: HeapEventQueue<u64> = HeapEventQueue::new();
    let mut rng = SplitMix64::new(seed);
    for i in 0..population {
        q.schedule(
            SimTime::from_ns((rng.next_u64() % (population * 8)) as f64),
            i,
        );
    }
    let mut acc = 0u64;
    for i in 0..n {
        let (t, e) = q.pop().expect("standing population");
        acc = acc.wrapping_add(e);
        q.schedule(t + SimTime::from_ns(1.0 + (rng.next_u64() % 16) as f64), i);
    }
    acc
}

fn bench_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("events");
    for population in [16u64, 256] {
        g.bench_function(&format!("calendar_queue_pop{population}"), |b| {
            b.iter(|| black_box(pump_calendar(4096, population, 0xACE)));
        });
        g.bench_function(&format!("heap_queue_pop{population}"), |b| {
            b.iter(|| black_box(pump_heap(4096, population, 0xACE)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hierarchy,
    bench_programs,
    bench_delta_replay,
    bench_events
);
criterion_main!(benches);
