//! Criterion micro-benchmarks for the native substrates: these measure
//! real host wall-clock for the from-scratch data structures and parsers
//! (as opposed to the `figures` bench, which runs the simulated testbed).

use criterion::{criterion_group, criterion_main, Criterion};
use packetmill::{ConfigGraph, Trace, TraceConfig, TrafficProfile};
use std::hint::black_box;

fn bench_checksum(c: &mut Criterion) {
    use pm_packet::checksum::{checksum, update16};
    let data: Vec<u8> = (0..1500u32).map(|i| i as u8).collect();
    let mut g = c.benchmark_group("checksum");
    g.bench_function("full_1500B", |b| {
        b.iter(|| checksum(black_box(&data)));
    });
    g.bench_function("full_20B_header", |b| {
        b.iter(|| checksum(black_box(&data[..20])));
    });
    g.bench_function("incremental_update16", |b| {
        b.iter(|| update16(black_box(0x1234), black_box(0x4011), black_box(0x3f11)));
    });
    g.finish();
}

fn bench_lpm_trie(c: &mut Criterion) {
    use pm_elements::trie::{RadixTrie, Route};
    use pm_sim::SplitMix64;
    let mut t = RadixTrie::new();
    let mut rng = SplitMix64::new(7);
    t.insert(
        0,
        0,
        Route {
            port: 0,
            gateway: 0,
        },
    );
    for _ in 0..1_000 {
        let p = rng.next_u32();
        let len = 8 + (rng.next_u64() % 17) as u8;
        t.insert(
            p,
            len,
            Route {
                port: (p % 4) as u16,
                gateway: 0,
            },
        );
    }
    let ips: Vec<u32> = (0..1024).map(|_| rng.next_u32()).collect();
    c.bench_function("lpm_trie_lookup_1k_routes", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) & 1023;
            black_box(t.lookup(black_box(ips[i])))
        });
    });
}

fn bench_cuckoo(c: &mut Criterion) {
    use pm_elements::cuckoo::CuckooHash;
    use std::collections::HashMap;
    let mut g = c.benchmark_group("flow_table");
    let mut cuckoo: CuckooHash<u64, u64> = CuckooHash::new(16384);
    let mut std_map: HashMap<u64, u64> = HashMap::new();
    for k in 0..40_000u64 {
        cuckoo.insert(k, k);
        std_map.insert(k, k);
    }
    g.bench_function("cuckoo_lookup_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 40_000;
            black_box(cuckoo.lookup(&black_box(k)))
        });
    });
    g.bench_function("std_hashmap_lookup_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 40_000;
            black_box(std_map.get(&black_box(k)).copied())
        });
    });
    g.finish();
}

fn bench_toeplitz(c: &mut Criterion) {
    use pm_nic::Toeplitz;
    let t = Toeplitz::microsoft();
    c.bench_function("toeplitz_v4_tuple", |b| {
        b.iter(|| {
            t.hash_v4_tuple(
                black_box([66, 9, 149, 187]),
                black_box([161, 142, 100, 80]),
                black_box(2794),
                black_box(1766),
            )
        });
    });
}

fn bench_cache_sim(c: &mut Criterion) {
    use pm_mem::{AccessKind, MemoryHierarchy};
    let mut m = MemoryHierarchy::skylake(1);
    let mut addr = 0u64;
    c.bench_function("cache_sim_access", |b| {
        b.iter(|| {
            addr = (addr + 64) & 0xff_ffff;
            black_box(m.access(0, black_box(addr), 8, AccessKind::Load))
        });
    });
}

fn bench_config_parse(c: &mut Criterion) {
    let router = packetmill::configs::router();
    c.bench_function("click_config_parse_router", |b| {
        b.iter(|| ConfigGraph::parse(black_box(&router)).unwrap());
    });
}

fn bench_packet_builder(c: &mut Criterion) {
    use pm_packet::builder::PacketBuilder;
    c.bench_function("build_tcp_frame_1500B", |b| {
        b.iter(|| {
            PacketBuilder::tcp()
                .src_ip(black_box([10, 0, 0, 1]))
                .frame_len(1500)
                .build()
        });
    });
}

fn bench_chaining_models(c: &mut Criterion) {
    use pm_click::{BatchArena, LinkedBatch, VectorBatch};
    let ids: Vec<u32> = (0..1024u32).collect();
    let mut g = c.benchmark_group("chaining");
    g.bench_function("vector_traverse_1k", |b| {
        let batch = VectorBatch::from_ids(ids.clone());
        b.iter(|| {
            let mut acc = 0u64;
            for id in batch.iter() {
                acc = acc.wrapping_add(u64::from(black_box(id)));
            }
            acc
        });
    });
    g.bench_function("linked_traverse_1k", |b| {
        let mut arena = BatchArena::new(1024);
        let batch = LinkedBatch::from_ids(&mut arena, &ids);
        b.iter(|| {
            let mut acc = 0u64;
            for id in batch.iter(&arena) {
                acc = acc.wrapping_add(u64::from(black_box(id)));
            }
            acc
        });
    });
    g.bench_function("linked_merge", |b| {
        b.iter(|| {
            let mut arena = BatchArena::new(2048);
            let mut a = LinkedBatch::from_ids(&mut arena, &ids[..512]);
            let x = LinkedBatch::from_ids(&mut arena, &ids[512..]);
            a.merge(&mut arena, x);
            black_box(a.len())
        });
    });
    g.finish();
}

fn bench_trace_synthesis(c: &mut Criterion) {
    c.bench_function("synthesize_campus_trace_1k", |b| {
        b.iter(|| {
            Trace::synthesize(&TraceConfig {
                packets: 1_000,
                flows: 128,
                profile: TrafficProfile::CampusMix,
                seed: black_box(1),
                ..TraceConfig::default()
            })
        });
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_checksum,
        bench_lpm_trie,
        bench_cuckoo,
        bench_toeplitz,
        bench_cache_sim,
        bench_config_parse,
        bench_packet_builder,
        bench_chaining_models,
        bench_trace_synthesis
);
criterion_main!(micro);
