//! `cargo bench --bench figures` regenerates every table and figure of
//! the paper's evaluation (printed to stdout; see EXPERIMENTS.md for the
//! paper-vs-measured record).

fn main() {
    pm_bench::figures::run_all();
}
