//! The `rte_mbuf`-equivalent packet descriptor.
//!
//! DPDK keeps each mbuf's metadata to exactly two cache lines (128 B),
//! with the RX-hot fields in the first line (paper §2.2). [`MbufMeta`]
//! carries the *functional* values; [`rte_mbuf_layout`] describes where
//! each field would live in memory so accesses can be charged at the
//! right simulated addresses.

use crate::layout::StructLayout;

/// Size of the modeled `rte_mbuf` structure (two cache lines).
pub const RTE_MBUF_SIZE: u32 = 128;

/// Builds the modeled `rte_mbuf` layout (DPDK v20.02-era field order).
///
/// First cache line: buffer bookkeeping and the RX fields the PMD writes
/// per packet. Second line: TX/chaining/pool fields.
pub fn rte_mbuf_layout() -> StructLayout {
    StructLayout::packed(
        "rte_mbuf",
        &[
            // ---- first cache line (RX hot) ----
            ("buf_addr", 8),
            ("iova", 8),
            ("data_off", 2),
            ("refcnt", 2),
            ("nb_segs", 2),
            ("port", 2),
            ("ol_flags", 8),
            ("packet_type", 4),
            ("pkt_len", 4),
            ("data_len", 2),
            ("vlan_tci", 2),
            ("rss_hash", 4),
            ("fdir_hi", 4),
            ("vlan_tci_outer", 2),
            ("buf_len", 2),
            ("timestamp", 8),
            // ---- second cache line (TX / chain / pool) ----
            ("cacheline1_pad", 8),
            ("next", 8),
            ("tx_offload", 8),
            ("pool", 8),
            ("shinfo", 8),
            ("priv_size", 2),
            ("timesync", 2),
            ("seqn", 4),
        ],
    )
}

/// Functional metadata carried with each buffer (the values a real
/// `rte_mbuf` would hold).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MbufMeta {
    /// Data length of the frame in the buffer.
    pub data_len: u32,
    /// Total packet length (single-segment: equals `data_len`).
    pub pkt_len: u32,
    /// Receiving port id.
    pub port: u16,
    /// RSS hash from the device.
    pub rss_hash: u32,
    /// VLAN TCI if offloaded.
    pub vlan_tci: u16,
    /// Offload flags.
    pub ol_flags: u64,
    /// Parsed packet-type summary.
    pub packet_type: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cache_lines() {
        let l = rte_mbuf_layout();
        assert!(l.size() <= RTE_MBUF_SIZE, "size {} > 128", l.size());
        assert_eq!(l.size_lines(), 128);
    }

    #[test]
    fn rx_hot_fields_in_first_line() {
        let l = rte_mbuf_layout();
        for f in [
            "buf_addr", "data_off", "pkt_len", "data_len", "rss_hash", "vlan_tci",
        ] {
            assert_eq!(l.line_of(f), 0, "{f} must be in the first line");
        }
    }

    #[test]
    fn tx_fields_in_second_line() {
        let l = rte_mbuf_layout();
        for f in ["next", "tx_offload", "pool"] {
            assert_eq!(l.line_of(f), 1, "{f} must be in the second line");
        }
    }
}
