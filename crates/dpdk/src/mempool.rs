//! A DPDK-style buffer pool.
//!
//! DPDK mempools are rings of object pointers. Under steady packet
//! forwarding, buffers are freed at TX completion long after they were
//! allocated for RX replenishment, so the pool cycles **FIFO** through
//! all `n` objects — every allocation touches pool-ring lines and mbuf
//! headers with a reuse distance of the whole pool. That cycling is the
//! cache-eviction problem X-Change removes (paper §2.2, problem 1), so
//! the pool charges its ring-line traffic to the simulated hierarchy.
//! A LIFO mode models a per-core object cache for comparison.
//!
//! For multi-core runs the pool additionally models DPDK's per-lcore
//! object caches (`rte_mempool`'s `cache_size`): each core keeps a small
//! LIFO stack of buffer ids in its own region, and only spills to / refills
//! from the shared pointer ring in bulk. Cache hits stay in the owning
//! core's L1; only the bulk transfers contend on the shared ring lines.

use pm_mem::{AccessKind, AddressSpace, Cost, MemoryHierarchy, Region};
use std::collections::VecDeque;

/// Recycling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MempoolMode {
    /// Ring semantics: free buffers are reused last (DPDK default under
    /// forwarding). Maximizes reuse distance.
    Fifo,
    /// Stack semantics: most recently freed buffer is reused first
    /// (per-core cache hit path).
    Lifo,
}

/// Allocation/free statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Failed allocations (pool empty).
    pub alloc_failures: u64,
    /// Frees.
    pub frees: u64,
    /// Allocations served from a per-core cache (no shared-ring traffic).
    pub cache_hits: u64,
    /// Bulk refills of a per-core cache from the shared ring.
    pub cache_refills: u64,
    /// Bulk flushes of a per-core cache back to the shared ring.
    pub cache_flushes: u64,
}

/// One core's private object cache: a LIFO stack of buffer ids plus the
/// simulated region its pointer array lives in.
#[derive(Debug)]
struct CoreCache {
    ids: Vec<u32>,
    region: Region,
}

/// A pool of buffer ids with a simulated pointer-ring region.
#[derive(Debug)]
pub struct Mempool {
    free: VecDeque<u32>,
    mode: MempoolMode,
    /// Ring of 8-byte object pointers (the part that cycles in cache).
    ring_region: Region,
    ring_slot: u64,
    n: u32,
    /// Per-core caches; empty when `cache_size == 0` (single-core mode).
    caches: Vec<CoreCache>,
    /// Per-core cache capacity in objects (0 disables caching).
    cache_size: u32,
    stats: MempoolStats,
}

/// Charges one sequential 8-byte touch of a pointer array at `slot`.
///
/// Consecutive pool operations walk consecutive 8-byte slots — a
/// sequential stream the hardware prefetcher covers.
fn slot_touch(
    region: Region,
    slot: u64,
    n: u64,
    core: usize,
    mem: &mut MemoryHierarchy,
    kind: AccessKind,
) -> Cost {
    let addr = region.base + (slot % n) * 8;
    let pf = mem.prefetch(core, addr, 8);
    pf + mem.access(core, addr, 8, kind) + Cost::compute(4)
}

impl Mempool {
    /// Creates a pool holding buffer ids `0..n`, allocating its pointer
    /// ring from `space`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(space: &mut AddressSpace, n: u32, mode: MempoolMode) -> Self {
        Self::with_core_caches(space, n, mode, 1, 0)
    }

    /// Creates a pool with per-core object caches of `cache_size` objects
    /// for each of `cores` cores. `cache_size == 0` disables the caches
    /// and allocates nothing beyond what [`Mempool::new`] does, so the
    /// single-core address-space layout is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or if caching is requested with zero cores.
    pub fn with_core_caches(
        space: &mut AddressSpace,
        n: u32,
        mode: MempoolMode,
        cores: usize,
        cache_size: u32,
    ) -> Self {
        assert!(n > 0, "empty mempool");
        assert!(cache_size == 0 || cores > 0, "per-core caches need cores");
        let ring_region = space.alloc_pages(u64::from(n) * 8);
        let caches = if cache_size == 0 {
            Vec::new()
        } else {
            (0..cores)
                .map(|_| CoreCache {
                    ids: Vec::with_capacity(cache_size as usize + 1),
                    region: space.alloc_pages(u64::from(cache_size) * 8),
                })
                .collect()
        };
        Mempool {
            free: (0..n).collect(),
            mode,
            ring_region,
            ring_slot: 0,
            n,
            caches,
            cache_size,
            stats: MempoolStats::default(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u32 {
        self.n
    }

    /// Currently free buffers (shared ring plus all per-core caches).
    pub fn available(&self) -> usize {
        self.free.len() + self.caches.iter().map(|c| c.ids.len()).sum::<usize>()
    }

    /// Statistics.
    pub fn stats(&self) -> MempoolStats {
        self.stats
    }

    /// The pointer-ring's simulated region (hugepage-backed in DPDK).
    pub fn ring_region(&self) -> Region {
        self.ring_region
    }

    /// Simulated regions backing the per-core caches (empty when caching
    /// is disabled). Hugepage-backed in DPDK, like the ring itself.
    pub fn cache_regions(&self) -> Vec<Region> {
        self.caches.iter().map(|c| c.region).collect()
    }

    fn ring_touch(&mut self, core: usize, mem: &mut MemoryHierarchy, kind: AccessKind) -> Cost {
        let cost = slot_touch(
            self.ring_region,
            self.ring_slot,
            u64::from(self.n),
            core,
            mem,
            kind,
        );
        self.ring_slot += 1;
        cost
    }

    /// Allocates one buffer, charging the pool-ring load (or, with
    /// per-core caches, the owning core's cache touch plus any bulk
    /// refill from the shared ring).
    pub fn alloc(&mut self, core: usize, mem: &mut MemoryHierarchy) -> (Option<u32>, Cost) {
        if self.cache_size == 0 {
            let cost = self.ring_touch(core, mem, AccessKind::Load);
            let id = self.free.pop_front();
            if id.is_some() {
                self.stats.allocs += 1;
            } else {
                self.stats.alloc_failures += 1;
            }
            return (id, cost);
        }

        let mut cost = Cost::ZERO;
        if self.caches[core].ids.is_empty() {
            // Bulk refill half a cache's worth from the shared ring
            // (DPDK's rte_mempool_get_bulk): the shared-ring lines are
            // the only cross-core traffic on this path.
            let want = (self.cache_size / 2).max(1);
            self.stats.cache_refills += 1;
            for _ in 0..want {
                let Some(id) = self.free.pop_front() else {
                    break;
                };
                cost += self.ring_touch(core, mem, AccessKind::Load);
                let c = &self.caches[core];
                cost += slot_touch(
                    c.region,
                    c.ids.len() as u64,
                    u64::from(self.cache_size),
                    core,
                    mem,
                    AccessKind::Store,
                );
                self.caches[core].ids.push(id);
            }
        }
        let c = &mut self.caches[core];
        match c.ids.pop() {
            Some(id) => {
                cost += slot_touch(
                    c.region,
                    c.ids.len() as u64,
                    u64::from(self.cache_size),
                    core,
                    mem,
                    AccessKind::Load,
                );
                self.stats.allocs += 1;
                self.stats.cache_hits += 1;
                (Some(id), cost)
            }
            None => {
                self.stats.alloc_failures += 1;
                (None, cost)
            }
        }
    }

    /// Frees one buffer, charging the pool-ring store (or, with per-core
    /// caches, the owning core's cache touch plus any bulk flush back to
    /// the shared ring).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on double free.
    pub fn free(&mut self, core: usize, mem: &mut MemoryHierarchy, id: u32) -> Cost {
        debug_assert!(
            !self.free.contains(&id) && !self.caches.iter().any(|c| c.ids.contains(&id)),
            "double free of buffer {id}"
        );
        if self.cache_size == 0 {
            let cost = self.ring_touch(core, mem, AccessKind::Store);
            match self.mode {
                MempoolMode::Fifo => self.free.push_back(id),
                MempoolMode::Lifo => self.free.push_front(id),
            }
            self.stats.frees += 1;
            return cost;
        }

        let c = &mut self.caches[core];
        let mut cost = slot_touch(
            c.region,
            c.ids.len() as u64,
            u64::from(self.cache_size),
            core,
            mem,
            AccessKind::Store,
        );
        c.ids.push(id);
        self.stats.frees += 1;
        if self.caches[core].ids.len() > self.cache_size as usize {
            // Spill the oldest half back to the shared ring in bulk
            // (DPDK flushes cache_size/2 on overflow).
            let spill = (self.cache_size / 2).max(1) as usize;
            self.stats.cache_flushes += 1;
            for _ in 0..spill {
                let out = self.caches[core].ids.remove(0);
                cost += self.ring_touch(core, mem, AccessKind::Store);
                match self.mode {
                    MempoolMode::Fifo => self.free.push_back(out),
                    MempoolMode::Lifo => self.free.push_front(out),
                }
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig(mode: MempoolMode) -> (Mempool, MemoryHierarchy) {
        let mut space = AddressSpace::new();
        (
            Mempool::new(&mut space, 8, mode),
            MemoryHierarchy::skylake(1),
        )
    }

    #[test]
    fn fifo_reuses_last() {
        let (mut p, mut m) = rig(MempoolMode::Fifo);
        let (a, _) = p.alloc(0, &mut m);
        p.free(0, &mut m, a.unwrap());
        // FIFO: freed buffer goes to the back; next alloc returns id 1.
        assert_eq!(p.alloc(0, &mut m).0, Some(1));
    }

    #[test]
    fn lifo_reuses_first() {
        let (mut p, mut m) = rig(MempoolMode::Lifo);
        let (a, _) = p.alloc(0, &mut m);
        p.free(0, &mut m, a.unwrap());
        assert_eq!(p.alloc(0, &mut m).0, a);
    }

    #[test]
    fn exhaustion_fails_cleanly() {
        let (mut p, mut m) = rig(MempoolMode::Fifo);
        for _ in 0..8 {
            assert!(p.alloc(0, &mut m).0.is_some());
        }
        assert_eq!(p.alloc(0, &mut m).0, None);
        assert_eq!(p.stats().alloc_failures, 1);
        assert_eq!(p.available(), 0);
    }

    #[test]
    fn alloc_free_balance() {
        let (mut p, mut m) = rig(MempoolMode::Fifo);
        for _ in 0..20 {
            let (id, _) = p.alloc(0, &mut m);
            p.free(0, &mut m, id.unwrap());
        }
        assert_eq!(p.available(), 8);
        assert_eq!(p.stats().allocs, 20);
        assert_eq!(p.stats().frees, 20);
    }

    #[test]
    fn pool_ops_charge_memory_traffic() {
        let (mut p, mut m) = rig(MempoolMode::Fifo);
        let before = m.counters().loads + m.counters().stores;
        let (id, cost) = p.alloc(0, &mut m);
        p.free(0, &mut m, id.unwrap());
        assert!(m.counters().loads + m.counters().stores > before);
        assert!(cost.instructions > 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_caught() {
        let (mut p, mut m) = rig(MempoolMode::Fifo);
        let (id, _) = p.alloc(0, &mut m);
        p.free(0, &mut m, id.unwrap());
        p.free(0, &mut m, id.unwrap());
    }

    fn cached_rig(cores: usize, cache: u32) -> (Mempool, MemoryHierarchy) {
        let mut space = AddressSpace::new();
        (
            Mempool::with_core_caches(&mut space, 64, MempoolMode::Fifo, cores, cache),
            MemoryHierarchy::skylake(cores),
        )
    }

    #[test]
    fn zero_cache_size_is_plain_pool() {
        let mut a = AddressSpace::new();
        let mut b = AddressSpace::new();
        let plain = Mempool::new(&mut a, 64, MempoolMode::Fifo);
        let cached = Mempool::with_core_caches(&mut b, 64, MempoolMode::Fifo, 4, 0);
        // Same address-space layout: no extra cache regions are carved out.
        assert_eq!(plain.ring_region(), cached.ring_region());
        assert!(cached.cache_regions().is_empty());
    }

    #[test]
    fn core_cache_hits_avoid_shared_ring() {
        let (mut p, mut m) = cached_rig(2, 8);
        // First alloc bulk-refills core 0's cache; the next allocs are
        // cache hits with no further shared-ring traffic.
        let (id, _) = p.alloc(0, &mut m);
        assert!(id.is_some());
        assert_eq!(p.stats().cache_refills, 1);
        let (id2, _) = p.alloc(0, &mut m);
        assert!(id2.is_some());
        assert_eq!(p.stats().cache_refills, 1, "second alloc hit the cache");
        assert_eq!(p.stats().cache_hits, 2);
        // Freeing to the same core stays in its cache until overflow.
        p.free(0, &mut m, id.unwrap());
        p.free(0, &mut m, id2.unwrap());
        assert_eq!(p.stats().cache_flushes, 0);
        assert_eq!(p.available(), 64);
    }

    #[test]
    fn core_cache_overflow_spills_to_shared_ring() {
        let (mut p, mut m) = cached_rig(1, 4);
        let mut held: Vec<u32> = (0..16).map(|_| p.alloc(0, &mut m).0.unwrap()).collect();
        for id in held.drain(..) {
            p.free(0, &mut m, id);
        }
        assert!(p.stats().cache_flushes > 0);
        assert_eq!(p.available(), 64);
    }

    #[test]
    fn cores_drain_the_shared_pool_exactly() {
        let (mut p, mut m) = cached_rig(2, 4);
        let mut got = 0;
        loop {
            let any = (0..2).any(|c| p.alloc(c, &mut m).0.is_some());
            if !any {
                break;
            }
            got += 1;
        }
        // Interleaved per-core allocation hands out every buffer once.
        assert_eq!(got, 64);
        assert_eq!(p.available(), 0);
        assert!(p.stats().alloc_failures > 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_caught_in_core_cache() {
        let (mut p, mut m) = cached_rig(2, 8);
        let (id, _) = p.alloc(0, &mut m);
        p.free(0, &mut m, id.unwrap());
        // Freeing again on another core must still trip the assert even
        // though the id sits in core 0's cache, not the shared ring.
        p.free(1, &mut m, id.unwrap());
    }
}
