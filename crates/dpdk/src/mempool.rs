//! A DPDK-style buffer pool.
//!
//! DPDK mempools are rings of object pointers. Under steady packet
//! forwarding, buffers are freed at TX completion long after they were
//! allocated for RX replenishment, so the pool cycles **FIFO** through
//! all `n` objects — every allocation touches pool-ring lines and mbuf
//! headers with a reuse distance of the whole pool. That cycling is the
//! cache-eviction problem X-Change removes (paper §2.2, problem 1), so
//! the pool charges its ring-line traffic to the simulated hierarchy.
//! A LIFO mode models a per-core object cache for comparison.

use pm_mem::{AccessKind, AddressSpace, Cost, MemoryHierarchy, Region};
use std::collections::VecDeque;

/// Recycling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MempoolMode {
    /// Ring semantics: free buffers are reused last (DPDK default under
    /// forwarding). Maximizes reuse distance.
    Fifo,
    /// Stack semantics: most recently freed buffer is reused first
    /// (per-core cache hit path).
    Lifo,
}

/// Allocation/free statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Failed allocations (pool empty).
    pub alloc_failures: u64,
    /// Frees.
    pub frees: u64,
}

/// A pool of buffer ids with a simulated pointer-ring region.
#[derive(Debug)]
pub struct Mempool {
    free: VecDeque<u32>,
    mode: MempoolMode,
    /// Ring of 8-byte object pointers (the part that cycles in cache).
    ring_region: Region,
    ring_slot: u64,
    n: u32,
    stats: MempoolStats,
}

impl Mempool {
    /// Creates a pool holding buffer ids `0..n`, allocating its pointer
    /// ring from `space`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(space: &mut AddressSpace, n: u32, mode: MempoolMode) -> Self {
        assert!(n > 0, "empty mempool");
        Mempool {
            free: (0..n).collect(),
            mode,
            ring_region: space.alloc_pages(u64::from(n) * 8),
            ring_slot: 0,
            n,
            stats: MempoolStats::default(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u32 {
        self.n
    }

    /// Currently free buffers.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Statistics.
    pub fn stats(&self) -> MempoolStats {
        self.stats
    }

    /// The pointer-ring's simulated region (hugepage-backed in DPDK).
    pub fn ring_region(&self) -> Region {
        self.ring_region
    }

    fn ring_touch(&mut self, core: usize, mem: &mut MemoryHierarchy, kind: AccessKind) -> Cost {
        // Consecutive pool operations walk consecutive 8-byte ring slots —
        // a sequential stream the hardware prefetcher covers.
        let addr = self.ring_region.base + (self.ring_slot % u64::from(self.n)) * 8;
        self.ring_slot += 1;
        let pf = mem.prefetch(core, addr, 8);
        pf + mem.access(core, addr, 8, kind) + Cost::compute(4)
    }

    /// Allocates one buffer, charging the pool-ring load.
    pub fn alloc(&mut self, core: usize, mem: &mut MemoryHierarchy) -> (Option<u32>, Cost) {
        let cost = self.ring_touch(core, mem, AccessKind::Load);
        let id = self.free.pop_front();
        if id.is_some() {
            self.stats.allocs += 1;
        } else {
            self.stats.alloc_failures += 1;
        }
        (id, cost)
    }

    /// Frees one buffer, charging the pool-ring store.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on double free.
    pub fn free(&mut self, core: usize, mem: &mut MemoryHierarchy, id: u32) -> Cost {
        debug_assert!(!self.free.contains(&id), "double free of buffer {id}");
        let cost = self.ring_touch(core, mem, AccessKind::Store);
        match self.mode {
            MempoolMode::Fifo => self.free.push_back(id),
            MempoolMode::Lifo => self.free.push_front(id),
        }
        self.stats.frees += 1;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig(mode: MempoolMode) -> (Mempool, MemoryHierarchy) {
        let mut space = AddressSpace::new();
        (
            Mempool::new(&mut space, 8, mode),
            MemoryHierarchy::skylake(1),
        )
    }

    #[test]
    fn fifo_reuses_last() {
        let (mut p, mut m) = rig(MempoolMode::Fifo);
        let (a, _) = p.alloc(0, &mut m);
        p.free(0, &mut m, a.unwrap());
        // FIFO: freed buffer goes to the back; next alloc returns id 1.
        assert_eq!(p.alloc(0, &mut m).0, Some(1));
    }

    #[test]
    fn lifo_reuses_first() {
        let (mut p, mut m) = rig(MempoolMode::Lifo);
        let (a, _) = p.alloc(0, &mut m);
        p.free(0, &mut m, a.unwrap());
        assert_eq!(p.alloc(0, &mut m).0, a);
    }

    #[test]
    fn exhaustion_fails_cleanly() {
        let (mut p, mut m) = rig(MempoolMode::Fifo);
        for _ in 0..8 {
            assert!(p.alloc(0, &mut m).0.is_some());
        }
        assert_eq!(p.alloc(0, &mut m).0, None);
        assert_eq!(p.stats().alloc_failures, 1);
        assert_eq!(p.available(), 0);
    }

    #[test]
    fn alloc_free_balance() {
        let (mut p, mut m) = rig(MempoolMode::Fifo);
        for _ in 0..20 {
            let (id, _) = p.alloc(0, &mut m);
            p.free(0, &mut m, id.unwrap());
        }
        assert_eq!(p.available(), 8);
        assert_eq!(p.stats().allocs, 20);
        assert_eq!(p.stats().frees, 20);
    }

    #[test]
    fn pool_ops_charge_memory_traffic() {
        let (mut p, mut m) = rig(MempoolMode::Fifo);
        let before = m.counters().loads + m.counters().stores;
        let (id, cost) = p.alloc(0, &mut m);
        p.free(0, &mut m, id.unwrap());
        assert!(m.counters().loads + m.counters().stores > before);
        assert!(cost.instructions > 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_caught() {
        let (mut p, mut m) = rig(MempoolMode::Fifo);
        let (id, _) = p.alloc(0, &mut m);
        p.free(0, &mut m, id.unwrap());
        p.free(0, &mut m, id.unwrap());
    }
}
