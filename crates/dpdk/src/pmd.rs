//! The burst poll-mode driver.
//!
//! One [`Pmd`] drives one NIC queue pair from one core. Its RX and TX
//! paths perform — and charge to the cache model — the same sequence of
//! operations a real MLX5 PMD performs, with the metadata-management
//! model deciding *where* per-packet metadata is written:
//!
//! | step | Copying / Overlaying | X-Change |
//! |---|---|---|
//! | poll CQE | load completion descriptor (DDIO-warm) | same |
//! | metadata | store the full `rte_mbuf` RX field set at the buffer's mbuf header (pool-cycling, cold) | store only the NF's [`MetadataSpec`] fields into an [`XchgRing`] slot (bounded, hot) |
//! | replenish | `mempool` alloc (pool-ring load) + WQE store | swap in a TX-completed buffer + WQE store, no pool |
//! | TX convert | load metadata, store WQE | load xchg slot (hot), store WQE |
//! | TX free | `mempool` free (pool-ring store) | buffer joins the swap queue |
//!
//! The *Copying* model's second conversion (mbuf → framework `Packet`)
//! happens in the framework layer (`pm-click`), as it does in FastClick.
//!
//! Like the paper's prototype, the vectorized RX/TX path is not
//! supported in X-Change mode ([`PmdConfig::vectorized`] is rejected
//! there and defaults to off everywhere, matching §4's experiments).

use crate::mbuf::MbufMeta;
use crate::mempool::{Mempool, MempoolMode};
use crate::xchg::{MetadataModel, MetadataSpec, XchgRing};
use pm_mem::program::dedup_field_lines;
use pm_mem::{
    AccessProgram, AddressSpace, Cost, MemoryHierarchy, ProgramBuilder, Region, SCOPE_MEMPOOL,
    SCOPE_RX, SCOPE_TX,
};
use pm_nic::{DmaMemory, Nic, PostedBuffer, TxRequest};
use pm_sim::SimTime;
use std::collections::VecDeque;

/// Stride of one buffer's metadata area in the mbuf-header region:
/// 128 B of `rte_mbuf` plus 128 B for overlaid framework annotations.
pub const META_STRIDE: u64 = 256;

/// PMD construction parameters.
#[derive(Debug, Clone)]
pub struct PmdConfig {
    /// RX/TX burst size (the paper's configurations use 32).
    pub burst: usize,
    /// Metadata-management model.
    pub model: MetadataModel,
    /// Fields the NF needs (used by the X-Change write path).
    pub spec: MetadataSpec,
    /// Data-buffer pool size.
    pub pool_size: u32,
    /// Pool recycling order.
    pub pool_mode: MempoolMode,
    /// Queue pairs this port drives (each gets its own X-Change ring and
    /// recycle queue; all share the port's mempool, as in DPDK).
    pub queues: usize,
    /// Cores that may operate on this port's mempool (sizes the per-core
    /// caches when `pool_cache > 0`).
    pub cores: usize,
    /// Per-core mempool cache size in objects; 0 (the default, and the
    /// single-core configuration) disables the caches entirely so the
    /// address-space layout matches the pre-multicore simulator.
    pub pool_cache: u32,
    /// X-Change application-descriptor ring size **per queue** (≈ 2
    /// bursts suffices, since TX enqueue returns descriptors
    /// synchronously).
    pub xchg_ring_size: u32,
    /// X-Change: the application's descriptor layout. `None` derives a
    /// minimal layout from `spec`; a framework passes its own `Packet`
    /// layout here so the driver writes fields in place (paper §3.1).
    pub xchg_layout: Option<crate::layout::StructLayout>,
    /// Vectorized RX/TX (unsupported with X-Change, like the paper's
    /// prototype; kept false in all experiments).
    pub vectorized: bool,
}

impl Default for PmdConfig {
    fn default() -> Self {
        PmdConfig {
            burst: 32,
            model: MetadataModel::Copying,
            spec: MetadataSpec::full(),
            pool_size: 8192,
            pool_mode: MempoolMode::Fifo,
            queues: 1,
            cores: 1,
            pool_cache: 0,
            xchg_ring_size: 64,
            xchg_layout: None,
            vectorized: false,
        }
    }
}

/// Per-PMD statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmdStats {
    /// RX bursts that returned at least one packet.
    pub rx_bursts: u64,
    /// Packets received.
    pub rx_packets: u64,
    /// Polls that found an empty completion queue.
    pub empty_polls: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Replenishments that had to fall back to the mempool in X-Change
    /// mode (no swapped buffer was available).
    pub xchg_pool_fallbacks: u64,
    /// Packets released without transmission (drops by the NF).
    pub released: u64,
    /// Replenish attempts denied by an injected mempool-exhaustion
    /// window (the ring runs a deficit until the window closes).
    pub pool_denials: u64,
}

/// A received packet as handed to the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxDesc {
    /// Data buffer id in the [`DmaMemory`] pool.
    pub buf_id: u32,
    /// Frame length.
    pub len: u32,
    /// RSS hash from the device.
    pub rss_hash: u32,
    /// Arrival time (end of DMA).
    pub arrival: SimTime,
    /// Wire-arrival (generation) time — the latency baseline.
    pub gen: SimTime,
    /// Monotonic sequence number.
    pub seq: u64,
    /// Simulated address of the packet data.
    pub data_addr: u64,
    /// Simulated address of this packet's metadata structure (mbuf header
    /// for Copying/Overlaying, xchg slot for X-Change).
    pub meta_addr: u64,
    /// X-Change descriptor slot, if that model is active.
    pub xslot: Option<u32>,
}

/// A frame the framework wants transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxSend {
    /// Originating RX descriptor (possibly with an updated length).
    pub desc: RxDesc,
    /// Frame length to send (may differ from `desc.len`, e.g. VLAN encap).
    pub len: u32,
}

/// The poll-mode driver for one NIC port (all of its queue pairs share
/// the port's mempool, as in a real DPDK application).
#[derive(Debug)]
pub struct Pmd {
    cfg: PmdConfig,
    /// mbuf-header region: `pool_size` slots of [`META_STRIDE`] bytes.
    meta_region: Region,
    pool: Mempool,
    /// One X-Change descriptor ring per queue (empty unless that model
    /// is active): slots never migrate between queues, so each core's
    /// descriptor working set stays in its own cache.
    xchg: Vec<XchgRing>,
    /// X-Change: per-queue data buffers returned by TX-ring swap, ready
    /// to repost on the same queue.
    recycled: Vec<VecDeque<u32>>,
    /// Injected mempool-exhaustion windows: replenish allocations are
    /// denied while `from <= now < until`.
    pool_denied: Vec<(SimTime, SimTime)>,
    /// Functional metadata per buffer id.
    metas: Vec<MbufMeta>,
    stats: PmdStats,
    /// Reused completion buffer for the RX poll loop (no per-burst
    /// allocation).
    comps_scratch: Vec<pm_nic::Completion>,
    /// Reused base-register rows for the batched per-completion
    /// conversion program (no per-burst allocation).
    rows_scratch: Vec<[u64; 3]>,
    /// `MemoryHierarchy::signature_kills` observed at the end of the
    /// previous non-empty burst (host-side steady-state witness).
    kills_seen: u64,
    /// Consecutive non-empty bursts with no signature kills.
    steady_streak: u32,
    /// Diagnostics: see [`Pmd::batch_replays`] / [`Pmd::steady_bursts`].
    batch_replays: u64,
    steady_bursts: u64,
    /// Precompiled access programs for the hot per-packet charge sets
    /// (see [`pm_mem::program`]): CQE poll, per-completion mbuf-write
    /// conversion, TX metadata load, TX WQE store. Built on first use;
    /// step-for-step identical to the former inline call sequences.
    poll_prog: Option<AccessProgram>,
    rx_mbuf_prog: Option<AccessProgram>,
    rx_wqe_prog: Option<AccessProgram>,
    tx_meta_prog: Option<AccessProgram>,
    tx_wqe_prog: Option<AccessProgram>,
    /// Per-queue X-Change conversion programs (CQE parse + one store per
    /// distinct descriptor line + conversion work), tagged with the
    /// ring's layout generation so a reordering pass recompiles them.
    xchg_progs: Vec<Option<(u64, AccessProgram)>>,
}

impl Pmd {
    /// Creates a PMD for one port, allocating its pools from `space`.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero, or if `vectorized` is requested with
    /// the X-Change model (unsupported, as in the paper's prototype).
    pub fn new(cfg: PmdConfig, space: &mut AddressSpace) -> Self {
        assert!(cfg.burst > 0, "burst must be positive");
        assert!(cfg.queues > 0, "a PMD drives at least one queue pair");
        assert!(
            !(cfg.vectorized && cfg.model == MetadataModel::XChange),
            "vectorized PMD is not supported with X-Change"
        );
        let xchg = if cfg.model == MetadataModel::XChange {
            let layout = cfg
                .xchg_layout
                .clone()
                .unwrap_or_else(|| cfg.spec.to_layout("AppDescriptor"));
            (0..cfg.queues)
                .map(|_| XchgRing::new(space, cfg.xchg_ring_size, layout.clone()))
                .collect()
        } else {
            Vec::new()
        };
        Pmd {
            meta_region: space.alloc_pages(u64::from(cfg.pool_size) * META_STRIDE),
            pool: Mempool::with_core_caches(
                space,
                cfg.pool_size,
                cfg.pool_mode,
                cfg.cores,
                cfg.pool_cache,
            ),
            xchg,
            recycled: vec![VecDeque::new(); cfg.queues],
            pool_denied: Vec::new(),
            metas: vec![MbufMeta::default(); cfg.pool_size as usize],
            stats: PmdStats::default(),
            comps_scratch: Vec::new(),
            rows_scratch: Vec::new(),
            kills_seen: 0,
            steady_streak: 0,
            batch_replays: 0,
            steady_bursts: 0,
            poll_prog: None,
            rx_mbuf_prog: None,
            rx_wqe_prog: None,
            tx_meta_prog: None,
            tx_wqe_prog: None,
            xchg_progs: vec![None; cfg.queues],
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PmdConfig {
        &self.cfg
    }

    /// Statistics.
    pub fn stats(&self) -> PmdStats {
        self.stats
    }

    /// Per-completion conversion programs resolved by signature replay
    /// instead of a walk (host-side diagnostic, no simulated effect).
    pub fn batch_replays(&self) -> u64 {
        self.batch_replays
    }

    /// Non-empty RX bursts processed at the proven steady-state fixed
    /// point: at least [`Pmd::STEADY_K`] consecutive non-empty bursts
    /// with no armed-signature kills anywhere in the hierarchy, so the
    /// working set's signatures are stable and replays (increasingly the
    /// closed-form fast-forward kind) dominate resolution. Host-side
    /// diagnostic for tests and benches; any DMA/fault/flush-driven kill
    /// resets the streak.
    pub fn steady_bursts(&self) -> u64 {
        self.steady_bursts
    }

    /// Kill-free non-empty bursts required before the PMD considers the
    /// hierarchy at its steady-state fixed point.
    pub const STEADY_K: u32 = 4;

    /// Free buffers in the port's mempool right now (an observation
    /// point for the flight recorder; reads no simulated memory and
    /// charges nothing).
    pub fn pool_available(&self) -> usize {
        self.pool.available()
    }

    /// Installs injected mempool-exhaustion windows: while one is
    /// active, RX replenish allocations are denied (counted in
    /// [`PmdStats::pool_denials`]) and the ring runs a deficit; the
    /// driver's retry-next-burst logic refills it once the window ends.
    /// No window (the default) costs nothing.
    pub fn set_pool_denial_windows(&mut self, windows: Vec<(SimTime, SimTime)>) {
        self.pool_denied = windows;
    }

    fn pool_denied_at(&self, t: SimTime) -> bool {
        self.pool_denied
            .iter()
            .any(|(from, until)| *from <= t && t < *until)
    }

    /// Queue 0's X-Change descriptor ring, when that model is active.
    pub fn xchg_ring(&self) -> Option<&XchgRing> {
        self.xchg.first()
    }

    /// Mutable X-Change ring access for queue 0 (for installing a
    /// reordered layout).
    pub fn xchg_ring_mut(&mut self) -> Option<&mut XchgRing> {
        self.xchg.first_mut()
    }

    /// Functional metadata of buffer `id`.
    pub fn meta(&self, id: u32) -> &MbufMeta {
        &self.metas[id as usize]
    }

    /// Address of buffer `id`'s mbuf header.
    pub fn mbuf_addr(&self, id: u32) -> u64 {
        self.meta_region.base + u64::from(id) * META_STRIDE
    }

    /// All regions DPDK would back with 2-MiB hugepages (mbuf headers,
    /// the mempool ring, the X-Change descriptor ring).
    pub fn hugepage_regions(&self) -> Vec<Region> {
        let mut v = vec![self.meta_region, self.pool.ring_region()];
        v.extend(self.pool.cache_regions());
        for x in &self.xchg {
            v.push(x.region());
        }
        v
    }

    /// Initialization: fills queue `q`'s RX ring with pool buffers
    /// (uncharged — this models `rte_eth_rx_queue_setup` at startup).
    /// `core` is the core that owns queue `q` and runs its setup: only
    /// *its* private cache/TLB state is warmed, never another core's.
    ///
    /// # Panics
    ///
    /// Panics if the pool cannot fill the ring.
    pub fn setup(
        &mut self,
        core: usize,
        nic: &mut Nic,
        q: usize,
        dma: &DmaMemory,
        mem: &mut MemoryHierarchy,
    ) {
        let ring = nic.rx_ring_mut(q);
        let want = ring.size();
        for _ in 0..want {
            let (id, _) = self.pool.alloc(core, mem);
            let id = id.expect("pool too small to fill the RX ring");
            let posted = ring.post(PostedBuffer {
                buf_id: id,
                data_addr: dma.data_addr(id),
            });
            assert!(posted, "ring refused a buffer during setup");
        }
    }

    /// Receives up to one burst from queue `q` as `core`, seeing only
    /// completions whose DMA finished by `now`. Returns the packets and
    /// the charged cost.
    pub fn rx_burst(
        &mut self,
        core: usize,
        nic: &mut Nic,
        q: usize,
        dma: &DmaMemory,
        mem: &mut MemoryHierarchy,
        now: SimTime,
    ) -> (Vec<RxDesc>, Cost) {
        let lat = *mem.latency_model();
        // Attribution: everything in here is the RX stage except
        // pool-ring traffic, which belongs to the mempool stage.
        let outer_scope = mem.set_scope(SCOPE_RX);
        let mut pool_cost = Cost::ZERO;
        let mut cost = Cost::ZERO;
        // Poll-loop entry + the next CQE slot read (happens even when
        // empty), as one program. The poll word's base changes only when
        // completions were reaped, so an idle queue replays its armed
        // signature instead of walking.
        let poll_prog = self
            .poll_prog
            .get_or_insert_with(|| ProgramBuilder::new().compute(8).load(0, 0, 8).build());
        mem.run_program(
            core,
            poll_prog,
            &[nic.rx_ring_mut(q).poll_addr()],
            &mut cost,
        );

        let mut comps = std::mem::take(&mut self.comps_scratch);
        nic.rx_ring_mut(q)
            .reap_until_into(self.cfg.burst, now, &mut comps);
        if comps.is_empty() {
            self.stats.empty_polls += 1;
        } else {
            self.stats.rx_bursts += 1;
        }

        let mut out = Vec::with_capacity(comps.len());
        let mut rows = std::mem::take(&mut self.rows_scratch);
        rows.clear();
        for &c in &comps {
            // Record functional metadata (host state, no charges — the
            // charge order is fully captured by the batched program run
            // below).
            self.metas[c.buf_id as usize] = MbufMeta {
                data_len: c.len,
                pkt_len: c.len,
                port: 0,
                rss_hash: c.rss_hash,
                vlan_tci: 0,
                ol_flags: 0,
                packet_type: 0,
            };
            let (meta_addr, xslot) = match self.cfg.model {
                MetadataModel::Copying | MetadataModel::Overlaying => {
                    (self.mbuf_addr(c.buf_id), None)
                }
                MetadataModel::XChange => {
                    let ring = self
                        .xchg
                        .get_mut(q)
                        .expect("xchg ring exists per queue in XChange mode");
                    let slot = ring
                        .take()
                        .expect("xchg ring exhausted: sized >= 2 bursts by construction");
                    (ring.slot_addr(slot), Some(slot))
                }
            };
            rows.push([c.desc_addr, c.data_addr, meta_addr]);
            self.stats.rx_packets += 1;
            out.push(RxDesc {
                buf_id: c.buf_id,
                len: c.len,
                rss_hash: c.rss_hash,
                arrival: c.arrival,
                gen: c.gen,
                seq: c.seq,
                data_addr: c.data_addr,
                meta_addr,
                xslot,
            });
        }
        // Per-completion charge set: parse the completion descriptor
        // (the CQE array is scanned sequentially, so beyond the polled
        // entry the stream prefetcher has the rest of the burst's CQEs
        // in L1), rte_prefetch0 the packet headers so the demand reads
        // downstream hit L1, then write metadata per model — one
        // precompiled program over bases `[cqe, headers, metadata]`,
        // resolved for the whole burst in one batched call (row order
        // identical to the former per-completion runs, one attribution
        // window for the burst).
        if !rows.is_empty() {
            let prog = match self.cfg.model {
                MetadataModel::Copying | MetadataModel::Overlaying => {
                    // Full rte_mbuf RX field set: all in the first line.
                    // `no_memoize`: the CQE and packet-header lines are
                    // rewritten by DMA (`dma_write_set`) on every
                    // arrival, so they are never L1-resident at poll
                    // time and the delta-class residency proof would
                    // fail per packet — the arming probe stays off.
                    self.rx_mbuf_prog.get_or_insert_with(|| {
                        ProgramBuilder::new()
                            .no_memoize()
                            .prefetch(0, 0, 64)
                            .load(0, 0, 32)
                            .compute(18)
                            .prefetch(1, 0, 128)
                            .compute(2)
                            .store(2, 0, 64)
                            .compute(16)
                            .build()
                    })
                }
                MetadataModel::XChange => {
                    // Conversion functions: one store per needed field,
                    // deduped to distinct descriptor lines — resolved at
                    // program-compile time from the ring layout (slots
                    // are line-aligned, so offset-relative dedup equals
                    // the per-packet absolute-address dedup it replaces).
                    // The layout generation only changes between bursts
                    // (a reordering pass installs a new layout), so one
                    // compile check per burst suffices.
                    let ring = &self.xchg[q];
                    let slot_prog = &mut self.xchg_progs[q];
                    let gen = ring.generation();
                    if slot_prog.as_ref().map(|(g, _)| *g) != Some(gen) {
                        let fields: Vec<(u32, u32)> = self
                            .cfg
                            .spec
                            .fields()
                            .iter()
                            .filter_map(|f| ring.layout().field(f.name()))
                            .map(|fl| (fl.offset, fl.size))
                            .collect();
                        // `no_memoize` for the same DMA reason as the
                        // mbuf program: bases 0 and 1 are DMA-rewritten
                        // every arrival, never L1-resident at poll time.
                        let mut b = ProgramBuilder::new()
                            .no_memoize()
                            .prefetch(0, 0, 64)
                            .load(0, 0, 32)
                            .compute(18)
                            .prefetch(1, 0, 128)
                            .compute(2);
                        for l in dedup_field_lines(&fields) {
                            b = b.store(2, l * 64, 64);
                        }
                        *slot_prog = Some((gen, b.compute(self.cfg.spec.len() as u32).build()));
                    }
                    &slot_prog.as_ref().unwrap().1
                }
            };
            let replayed = mem.run_program_batch(core, prog, &rows, &mut cost);
            self.batch_replays += u64::from(replayed);
        }
        self.rows_scratch = rows;
        // Replenish the ring back to full (covers this burst plus any
        // deficit left by earlier pool exhaustion — drivers retry).
        loop {
            let ring = nic.rx_ring_mut(q);
            if ring.posted_count() + ring.pending_completions() >= ring.size() {
                break;
            }
            let new_buf = match self.cfg.model {
                MetadataModel::XChange => match self.recycled[q].pop_front() {
                    Some(b) => Some(b),
                    None if self.pool_denied_at(now) => {
                        self.stats.pool_denials += 1;
                        None
                    }
                    None => {
                        self.stats.xchg_pool_fallbacks += 1;
                        let (b, c2) = Self::pool_alloc(&mut self.pool, core, mem);
                        pool_cost += c2;
                        cost += c2;
                        b
                    }
                },
                _ if self.pool_denied_at(now) => {
                    self.stats.pool_denials += 1;
                    None
                }
                _ => {
                    let (b, c2) = Self::pool_alloc(&mut self.pool, core, mem);
                    pool_cost += c2;
                    cost += c2;
                    b
                }
            };
            let Some(b) = new_buf else { break };
            let ring = nic.rx_ring_mut(q);
            let wqe = ring.next_post_addr();
            ring.post(PostedBuffer {
                buf_id: b,
                data_addr: dma.data_addr(b),
            });
            // Memoizable since delta-class replay: the 16-byte WQE
            // store strides through the ring (4 slots per line), so
            // successive bases stay in one line's equivalence class and
            // replay after the first slot's walk arms the signature.
            let wqe_prog = self
                .rx_wqe_prog
                .get_or_insert_with(|| ProgramBuilder::new().store(0, 0, 16).compute(7).build());
            mem.run_program(core, wqe_prog, &[wqe], &mut cost);
        }

        if !out.is_empty() {
            // RX doorbell for the replenished descriptors (posted MMIO
            // write, amortized over the burst).
            cost += Cost::compute(22);
            cost += Cost::stall_ns(lat.llc_hit_ns * 0.25);
            // Attribute only non-empty bursts: the engine discards the
            // cost of empty polls, and the profile must match what is
            // actually measured.
            mem.profile_charge_at(SCOPE_RX, cost - pool_cost);
            mem.profile_charge_at(SCOPE_MEMPOOL, pool_cost);
            mem.profile_packets_at(SCOPE_RX, out.len() as u64);
            // Steady-state witness (host-side only): a burst that ended
            // with no new signature kills anywhere extends the streak;
            // STEADY_K such bursts in a row prove the working set's
            // signatures have reached their fixed point.
            let kills = mem.signature_kills();
            if kills == self.kills_seen {
                self.steady_streak = self.steady_streak.saturating_add(1);
            } else {
                self.steady_streak = 0;
                self.kills_seen = kills;
            }
            if self.steady_streak >= Self::STEADY_K {
                self.steady_bursts += 1;
            }
        }
        mem.set_scope(outer_scope);
        self.comps_scratch = comps;
        (out, cost)
    }

    /// Pool allocation with its ring traffic tagged to the mempool stage.
    fn pool_alloc(
        pool: &mut Mempool,
        core: usize,
        mem: &mut MemoryHierarchy,
    ) -> (Option<u32>, Cost) {
        let prev = mem.set_scope(SCOPE_MEMPOOL);
        let out = pool.alloc(core, mem);
        mem.set_scope(prev);
        out
    }

    /// Pool free with its ring traffic tagged to the mempool stage.
    fn pool_free(pool: &mut Mempool, core: usize, mem: &mut MemoryHierarchy, id: u32) -> Cost {
        let prev = mem.set_scope(SCOPE_MEMPOOL);
        let c = pool.free(core, mem, id);
        mem.set_scope(prev);
        c
    }

    /// Transmits a burst on queue `q`. Returns per-packet wire-departure
    /// times (in input order; `None` if the TX ring was full) and the
    /// charged cost.
    pub fn tx_burst(
        &mut self,
        core: usize,
        nic: &mut Nic,
        q: usize,
        mem: &mut MemoryHierarchy,
        now: SimTime,
        sends: &[TxSend],
    ) -> (Vec<Option<SimTime>>, Cost) {
        let lat = *mem.latency_model();
        let outer_scope = mem.set_scope(SCOPE_TX);
        let mut pool_cost = Cost::ZERO;
        let mut cost = Cost::ZERO;
        let mut departures = Vec::with_capacity(sends.len());

        for s in sends {
            // Convert metadata to the TX descriptor: load the metadata
            // structure (hot for X-Change, pool-cycled otherwise).
            // `no_memoize` even with delta-class replay: the bases cycle
            // with the mbuf pool, so the L1-MRU residency proof fails
            // nearly every packet and an armed signature would pay a
            // failed verification plus a re-arm (a full entry install)
            // per call on top of the walk it falls back to.
            let meta_prog = self.tx_meta_prog.get_or_insert_with(|| {
                ProgramBuilder::new()
                    .no_memoize()
                    .load(0, 0, 16)
                    .compute(13)
                    .build()
            });
            mem.run_program(core, meta_prog, &[s.desc.meta_addr], &mut cost);

            let req = TxRequest {
                buf_id: s.desc.buf_id,
                data_addr: s.desc.data_addr,
                len: s.len,
                seq: s.desc.seq,
                arrival: s.desc.arrival,
            };
            match nic.tx_send(q, req, now, mem) {
                Some((departed, wqe_addr)) => {
                    // Memoizable since delta-class replay: under steady
                    // load the TX ring's in-flight depth is stable, so
                    // the 64-byte descriptor slots oscillate over a
                    // small line set that stays L1-resident and the
                    // strided stores replay.
                    let wqe_prog = self.tx_wqe_prog.get_or_insert_with(|| {
                        ProgramBuilder::new().store(0, 0, 32).compute(10).build()
                    });
                    mem.run_program(core, wqe_prog, &[wqe_addr], &mut cost);
                    self.stats.tx_packets += 1;
                    departures.push(Some(departed));
                }
                None => {
                    // TX ring full: the frame is dropped; recycle its
                    // buffer so the pool does not leak.
                    match self.cfg.model {
                        MetadataModel::XChange => self.recycled[q].push_back(s.desc.buf_id),
                        _ => {
                            let c = Self::pool_free(&mut self.pool, core, mem, s.desc.buf_id);
                            pool_cost += c;
                            cost += c;
                        }
                    }
                    departures.push(None);
                }
            }

            // X-Change: the descriptor slot returns to the application at
            // enqueue time (the TX swap), keeping the live set bounded.
            if let Some(slot) = s.desc.xslot {
                self.xchg
                    .get_mut(q)
                    .expect("xslot implies XChange mode")
                    .give_back(slot);
            }
        }

        // Reap TX completions: recycle their data buffers.
        for done in nic.tx_reap(q, now) {
            match self.cfg.model {
                MetadataModel::XChange => self.recycled[q].push_back(done.req.buf_id),
                _ => {
                    let c = Self::pool_free(&mut self.pool, core, mem, done.req.buf_id);
                    pool_cost += c;
                    cost += c;
                }
            }
        }

        // TX doorbell, once per burst.
        cost += Cost::compute(22);
        cost += Cost::stall_ns(lat.llc_hit_ns * 0.25);
        let sent = departures.iter().filter(|d| d.is_some()).count() as u64;
        mem.profile_charge_at(SCOPE_TX, cost - pool_cost);
        mem.profile_charge_at(SCOPE_MEMPOOL, pool_cost);
        mem.profile_packets_at(SCOPE_TX, sent);
        mem.set_scope(outer_scope);
        (departures, cost)
    }

    /// Releases a packet the NF dropped (frees its buffer + descriptor
    /// back to queue `q`, the queue it arrived on).
    pub fn release(
        &mut self,
        core: usize,
        q: usize,
        mem: &mut MemoryHierarchy,
        desc: &RxDesc,
    ) -> Cost {
        self.stats.released += 1;
        let cost = if let Some(slot) = desc.xslot {
            self.xchg
                .get_mut(q)
                .expect("xslot implies XChange mode")
                .give_back(slot);
            self.recycled[q].push_back(desc.buf_id);
            Cost::compute(2)
        } else {
            Self::pool_free(&mut self.pool, core, mem, desc.buf_id)
        };
        mem.profile_charge_at(SCOPE_MEMPOOL, cost);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_nic::NicConfig;
    use pm_packet::builder::PacketBuilder;

    struct Rig {
        pmd: Pmd,
        nic: Nic,
        dma: DmaMemory,
        mem: MemoryHierarchy,
    }

    fn rig(model: MetadataModel) -> Rig {
        let mut space = AddressSpace::new();
        let nic_cfg = NicConfig {
            queues: 1,
            rx_ring_size: 256,
            tx_ring_size: 256,
            ..NicConfig::default()
        };
        let mut nic = Nic::new(&nic_cfg, &mut space);
        let dma = DmaMemory::new(&mut space, 1024, 2176, 128);
        let mut mem = MemoryHierarchy::skylake(1);
        let cfg = PmdConfig {
            model,
            spec: MetadataSpec::minimal(),
            pool_size: 1024,
            ..PmdConfig::default()
        };
        let mut pmd = Pmd::new(cfg, &mut space);
        pmd.setup(0, &mut nic, 0, &dma, &mut mem);
        Rig { pmd, nic, dma, mem }
    }

    fn deliver(r: &mut Rig, n: usize) {
        let frame = PacketBuilder::udp().frame_len(128).build();
        for _ in 0..n {
            r.nic
                .rx_deliver(&frame, SimTime::ZERO, &mut r.mem, &mut r.dma)
                .expect("delivery");
        }
    }

    #[test]
    fn rx_burst_returns_packets_with_data() {
        let mut r = rig(MetadataModel::Copying);
        deliver(&mut r, 5);
        let (pkts, cost) = r.pmd.rx_burst(
            0,
            &mut r.nic,
            0,
            &r.dma,
            &mut r.mem,
            SimTime::from_ms(100.0),
        );
        assert_eq!(pkts.len(), 5);
        assert!(cost.instructions > 0);
        for p in &pkts {
            assert_eq!(p.len, 128);
            assert!(r.dma.data(p.buf_id).len() >= 128);
            assert!(p.xslot.is_none());
        }
    }

    #[test]
    fn empty_poll_counted_and_cheap() {
        let mut r = rig(MetadataModel::Copying);
        let (pkts, cost) = r.pmd.rx_burst(
            0,
            &mut r.nic,
            0,
            &r.dma,
            &mut r.mem,
            SimTime::from_ms(100.0),
        );
        assert!(pkts.is_empty());
        assert_eq!(r.pmd.stats().empty_polls, 1);
        assert!(cost.instructions < 20, "empty poll must be cheap");
    }

    #[test]
    fn pool_exhaustion_denies_replenish_without_panicking() {
        let mut r = rig(MetadataModel::Copying);
        let window_end = SimTime::from_ms(50.0);
        r.pmd
            .set_pool_denial_windows(vec![(SimTime::ZERO, window_end)]);
        deliver(&mut r, 5);
        let (pkts, _) = r
            .pmd
            .rx_burst(0, &mut r.nic, 0, &r.dma, &mut r.mem, SimTime::from_ms(1.0));
        assert_eq!(pkts.len(), 5, "already-DMA'd packets still arrive");
        assert!(r.pmd.stats().pool_denials > 0);
        let ring = r.nic.rx_ring_mut(0);
        let deficit = ring.size() - (ring.posted_count() + ring.pending_completions());
        assert_eq!(deficit, 5, "denied replenish leaves a ring deficit");

        // After the window the next burst repairs the deficit.
        deliver(&mut r, 1);
        let (_, _) = r
            .pmd
            .rx_burst(0, &mut r.nic, 0, &r.dma, &mut r.mem, window_end);
        let ring = r.nic.rx_ring_mut(0);
        assert_eq!(
            ring.posted_count() + ring.pending_completions(),
            ring.size(),
            "driver retry refills the ring once the pool recovers"
        );
    }

    #[test]
    fn burst_size_respected() {
        let mut r = rig(MetadataModel::Copying);
        deliver(&mut r, 40);
        let (pkts, _) = r.pmd.rx_burst(
            0,
            &mut r.nic,
            0,
            &r.dma,
            &mut r.mem,
            SimTime::from_ms(100.0),
        );
        assert_eq!(pkts.len(), 32);
        let (pkts, _) = r.pmd.rx_burst(
            0,
            &mut r.nic,
            0,
            &r.dma,
            &mut r.mem,
            SimTime::from_ms(100.0),
        );
        assert_eq!(pkts.len(), 8);
    }

    #[test]
    fn xchange_assigns_slots_and_returns_them_at_tx() {
        let mut r = rig(MetadataModel::XChange);
        deliver(&mut r, 32);
        let (pkts, _) = r.pmd.rx_burst(
            0,
            &mut r.nic,
            0,
            &r.dma,
            &mut r.mem,
            SimTime::from_ms(100.0),
        );
        assert!(pkts.iter().all(|p| p.xslot.is_some()));
        let avail_before = r.pmd.xchg_ring().unwrap().available();
        let sends: Vec<TxSend> = pkts
            .iter()
            .map(|&desc| TxSend {
                desc,
                len: desc.len,
            })
            .collect();
        let (deps, _) =
            r.pmd
                .tx_burst(0, &mut r.nic, 0, &mut r.mem, SimTime::from_us(10.0), &sends);
        assert!(deps.iter().all(|d| d.is_some()));
        assert_eq!(
            r.pmd.xchg_ring().unwrap().available(),
            avail_before + 32,
            "descriptors return at enqueue (the TX swap)"
        );
    }

    #[test]
    fn xchange_metadata_stays_in_small_ring() {
        let mut r = rig(MetadataModel::XChange);
        // Two full cycles: the same slot addresses must be reused.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            deliver(&mut r, 32);
            let (pkts, _) = r.pmd.rx_burst(
                0,
                &mut r.nic,
                0,
                &r.dma,
                &mut r.mem,
                SimTime::from_ms(100.0),
            );
            for p in &pkts {
                seen.insert(p.meta_addr);
            }
            let sends: Vec<TxSend> = pkts
                .iter()
                .map(|&desc| TxSend {
                    desc,
                    len: desc.len,
                })
                .collect();
            let now = SimTime::from_ms(1.0);
            r.pmd.tx_burst(0, &mut r.nic, 0, &mut r.mem, now, &sends);
        }
        assert!(
            seen.len() <= 64,
            "metadata addresses must stay within the xchg ring, saw {}",
            seen.len()
        );
    }

    #[test]
    fn copying_metadata_cycles_the_pool() {
        let mut r = rig(MetadataModel::Copying);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            deliver(&mut r, 32);
            let (pkts, _) = r.pmd.rx_burst(
                0,
                &mut r.nic,
                0,
                &r.dma,
                &mut r.mem,
                SimTime::from_ms(100.0),
            );
            for p in &pkts {
                seen.insert(p.meta_addr);
            }
            let sends: Vec<TxSend> = pkts
                .iter()
                .map(|&desc| TxSend {
                    desc,
                    len: desc.len,
                })
                .collect();
            r.pmd
                .tx_burst(0, &mut r.nic, 0, &mut r.mem, SimTime::from_ms(1.0), &sends);
        }
        assert!(
            seen.len() > 64,
            "mbuf headers should cycle through many pool slots, saw {}",
            seen.len()
        );
    }

    #[test]
    fn tx_free_returns_buffers_to_pool() {
        let mut r = rig(MetadataModel::Copying);
        deliver(&mut r, 8);
        let (pkts, _) = r.pmd.rx_burst(
            0,
            &mut r.nic,
            0,
            &r.dma,
            &mut r.mem,
            SimTime::from_ms(100.0),
        );
        let sends: Vec<TxSend> = pkts
            .iter()
            .map(|&desc| TxSend {
                desc,
                len: desc.len,
            })
            .collect();
        r.pmd
            .tx_burst(0, &mut r.nic, 0, &mut r.mem, SimTime::ZERO, &sends);
        // Frames depart quickly; a later burst reaps them back to the pool.
        deliver(&mut r, 1);
        let (pkts, _) = r.pmd.rx_burst(
            0,
            &mut r.nic,
            0,
            &r.dma,
            &mut r.mem,
            SimTime::from_ms(100.0),
        );
        let sends: Vec<TxSend> = pkts
            .iter()
            .map(|&desc| TxSend {
                desc,
                len: desc.len,
            })
            .collect();
        r.pmd
            .tx_burst(0, &mut r.nic, 0, &mut r.mem, SimTime::from_ms(5.0), &sends);
        assert!(r.pmd.pool.stats().frees >= 8);
    }

    #[test]
    fn release_frees_dropped_packets() {
        let mut r = rig(MetadataModel::XChange);
        deliver(&mut r, 2);
        let (pkts, _) = r.pmd.rx_burst(
            0,
            &mut r.nic,
            0,
            &r.dma,
            &mut r.mem,
            SimTime::from_ms(100.0),
        );
        let avail = r.pmd.xchg_ring().unwrap().available();
        r.pmd.release(0, 0, &mut r.mem, &pkts[0]);
        assert_eq!(r.pmd.xchg_ring().unwrap().available(), avail + 1);
        assert_eq!(r.pmd.stats().released, 1);
    }

    #[test]
    fn xchange_cheaper_than_copying_per_packet() {
        // Steady-state per-packet cost comparison after warmup.
        let run = |model| {
            let mut r = rig(model);
            let mut total = Cost::ZERO;
            let mut n = 0u64;
            for round in 0..64 {
                deliver(&mut r, 32);
                let (pkts, c1) = r.pmd.rx_burst(
                    0,
                    &mut r.nic,
                    0,
                    &r.dma,
                    &mut r.mem,
                    SimTime::from_ms(100.0),
                );
                let sends: Vec<TxSend> = pkts
                    .iter()
                    .map(|&desc| TxSend {
                        desc,
                        len: desc.len,
                    })
                    .collect();
                let now = SimTime::from_us(10.0 * (round + 1) as f64);
                let (_, c2) = r.pmd.tx_burst(0, &mut r.nic, 0, &mut r.mem, now, &sends);
                if round >= 16 {
                    total += c1 + c2;
                    n += pkts.len() as u64;
                }
            }
            total.time(pm_sim::Frequency::from_ghz(2.3)).as_ns() / n as f64
        };
        let copying = run(MetadataModel::Copying);
        let xchange = run(MetadataModel::XChange);
        assert!(
            xchange < copying,
            "x-change {xchange:.1} ns/pkt should beat copying {copying:.1} ns/pkt"
        );
    }

    #[test]
    fn stage_attribution_splits_rx_tx_mempool() {
        let mut r = rig(MetadataModel::Copying);
        r.mem.enable_attribution();
        deliver(&mut r, 32);
        let (pkts, rx_cost) = r.pmd.rx_burst(
            0,
            &mut r.nic,
            0,
            &r.dma,
            &mut r.mem,
            SimTime::from_ms(100.0),
        );
        let sends: Vec<TxSend> = pkts
            .iter()
            .map(|&desc| TxSend {
                desc,
                len: desc.len,
            })
            .collect();
        let (_, tx_cost) =
            r.pmd
                .tx_burst(0, &mut r.nic, 0, &mut r.mem, SimTime::from_ms(1.0), &sends);
        let recs = r.mem.profile_records();
        let get = |name: &str| {
            recs.iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| *p)
                .unwrap()
        };
        let (rx, tx, pool) = (get("rx/pmd"), get("tx"), get("mempool"));
        assert_eq!(rx.packets, 32);
        assert_eq!(tx.packets, 32);
        assert!(rx.cost.instructions > 0 && tx.cost.instructions > 0);
        assert!(
            pool.cost.instructions > 0,
            "replenish allocs must be tagged mempool"
        );
        assert!(pool.counters.loads > 0, "pool-ring events tagged mempool");
        // The three stages account for exactly what the PMD charged.
        let sum = rx.cost + tx.cost + pool.cost;
        let total = rx_cost + tx_cost;
        assert_eq!(sum.instructions, total.instructions);
        assert!((sum.cycles - total.cycles).abs() < 1e-6);
        assert!((sum.uncore_ns - total.uncore_ns).abs() < 1e-6);
        // Empty polls are charged to the caller but never attributed.
        let before = get("rx/pmd");
        let (empty, _) = r.pmd.rx_burst(
            0,
            &mut r.nic,
            0,
            &r.dma,
            &mut r.mem,
            SimTime::from_ms(100.0),
        );
        assert!(empty.is_empty());
        assert_eq!(get("rx/pmd").cost, before.cost);
    }

    /// Regression for the core-0 hardcode: queue setup must warm only the
    /// *owning* core's private cache state, never core 0's.
    #[test]
    fn setup_warms_only_the_owning_core() {
        use pm_mem::Level;
        let mut space = AddressSpace::new();
        let nic_cfg = NicConfig {
            queues: 2,
            rx_ring_size: 64,
            tx_ring_size: 64,
            ..NicConfig::default()
        };
        let mut nic = Nic::new(&nic_cfg, &mut space);
        let dma = DmaMemory::new(&mut space, 1024, 2176, 128);
        let mut mem = MemoryHierarchy::skylake(2);
        let cfg = PmdConfig {
            spec: MetadataSpec::minimal(),
            pool_size: 1024,
            queues: 2,
            cores: 2,
            ..PmdConfig::default()
        };
        let mut pmd = Pmd::new(cfg, &mut space);
        pmd.setup(0, &mut nic, 0, &dma, &mut mem);
        pmd.setup(1, &mut nic, 1, &dma, &mut mem);
        // The last pool-ring slot touched belongs to queue 1's fill, run
        // by core 1: its line must sit in core 1's private caches and be
        // absent from core 0's (probe_level never mutates state).
        let n = u64::from(pmd.pool.capacity());
        let last = pmd.pool.ring_region().base + ((2 * 64 - 1) % n) * 8;
        assert_eq!(mem.probe_level(1, last), Level::L1);
        assert_eq!(
            mem.probe_level(0, last),
            Level::Llc,
            "core 0 must not be warmed by core 1's queue setup"
        );
    }

    #[test]
    #[should_panic(expected = "vectorized")]
    fn vectorized_xchange_rejected() {
        let mut space = AddressSpace::new();
        let cfg = PmdConfig {
            model: MetadataModel::XChange,
            vectorized: true,
            ..PmdConfig::default()
        };
        let _ = Pmd::new(cfg, &mut space);
    }
}
