//! Structure-layout descriptions.
//!
//! A [`StructLayout`] records the byte offset and size of every field of
//! a metadata structure (the `rte_mbuf`, or the framework's `Packet`
//! class). The simulator charges each field access at
//! `struct_base + offset`, so **which cache lines a packet's metadata
//! touches is a function of the layout** — and the PacketMill
//! struct-reordering pass (paper §3.2.2) is implemented as a transform
//! over this type: reorder fields by access frequency, recompute offsets,
//! and the hot fields collapse into the first line.

use std::fmt;

/// One field of a described structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name (doubles as its identity).
    pub name: &'static str,
    /// Byte offset within the structure.
    pub offset: u32,
    /// Size in bytes (also the assumed alignment, like C scalars).
    pub size: u32,
}

/// A structure layout: named fields at computed offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    name: &'static str,
    fields: Vec<FieldDef>,
    size: u32,
}

impl StructLayout {
    /// Builds a layout by laying out `(name, size)` fields in order with
    /// natural alignment (each field aligned to its own size, like C).
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or non-power-of-two sizes.
    pub fn packed(name: &'static str, fields: &[(&'static str, u32)]) -> Self {
        let mut out = Vec::with_capacity(fields.len());
        let mut off = 0u32;
        for &(fname, size) in fields {
            assert!(
                size.is_power_of_two(),
                "field {fname}: size must be a power of two"
            );
            assert!(
                !out.iter().any(|f: &FieldDef| f.name == fname),
                "duplicate field {fname}"
            );
            off = (off + size - 1) & !(size - 1);
            out.push(FieldDef {
                name: fname,
                offset: off,
                size,
            });
            off += size;
        }
        StructLayout {
            name,
            fields: out,
            size: off,
        }
    }

    /// The structure's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total size in bytes (unpadded tail).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Size rounded up to whole cache lines.
    pub fn size_lines(&self) -> u32 {
        self.size.div_ceil(64) * 64
    }

    /// The fields, in layout order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<FieldDef> {
        self.fields.iter().copied().find(|f| f.name == name)
    }

    /// Byte offset of `name`.
    ///
    /// # Panics
    ///
    /// Panics if the field does not exist.
    pub fn offset_of(&self, name: &str) -> u32 {
        self.field(name)
            .unwrap_or_else(|| panic!("{}: no field named {name}", self.name))
            .offset
    }

    /// Index of the cache line (within the struct) holding `name`.
    pub fn line_of(&self, name: &str) -> u32 {
        self.offset_of(name) / 64
    }

    /// Rebuilds the layout with fields in the given name order (fields
    /// not mentioned keep their relative order after the mentioned ones).
    /// Offsets are recomputed with natural alignment — this is the
    /// reordering pass's mechanical core.
    ///
    /// # Panics
    ///
    /// Panics if `order` mentions an unknown field.
    pub fn reordered(&self, order: &[&str]) -> StructLayout {
        for o in order {
            assert!(
                self.fields.iter().any(|f| &f.name == o),
                "{}: cannot reorder unknown field {o}",
                self.name
            );
        }
        let mut spec: Vec<(&'static str, u32)> = Vec::with_capacity(self.fields.len());
        for &o in order {
            let f = self.field(o).expect("checked above");
            spec.push((f.name, f.size));
        }
        for f in &self.fields {
            if !order.contains(&f.name) {
                spec.push((f.name, f.size));
            }
        }
        StructLayout::packed(self.name, &spec)
    }

    /// Number of distinct cache lines touched when accessing the given
    /// fields of one instance based at a line-aligned address.
    pub fn lines_touched(&self, names: &[&str]) -> usize {
        let mut lines: Vec<u32> = names.iter().map(|n| self.line_of(n)).collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }
}

impl fmt::Display for StructLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "struct {} ({} bytes):", self.name, self.size)?;
        for fd in &self.fields {
            writeln!(f, "  +{:>4} [{:>2}B] {}", fd.offset, fd.size, fd.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StructLayout {
        StructLayout::packed(
            "Sample",
            &[("a", 8), ("b", 2), ("c", 4), ("d", 8), ("e", 1)],
        )
    }

    #[test]
    fn natural_alignment() {
        let l = sample();
        assert_eq!(l.offset_of("a"), 0);
        assert_eq!(l.offset_of("b"), 8);
        assert_eq!(l.offset_of("c"), 12); // padded from 10 to 12
        assert_eq!(l.offset_of("d"), 16);
        assert_eq!(l.offset_of("e"), 24);
        assert_eq!(l.size(), 25);
        assert_eq!(l.size_lines(), 64);
    }

    #[test]
    fn reorder_moves_hot_fields_first() {
        let l = sample();
        let r = l.reordered(&["e", "c"]);
        assert_eq!(r.offset_of("e"), 0);
        assert_eq!(r.offset_of("c"), 4);
        // Unmentioned fields follow in original order.
        assert_eq!(r.offset_of("a"), 8);
        assert!(r.offset_of("b") < r.offset_of("d"));
        // Same field set.
        assert_eq!(r.fields().len(), l.fields().len());
    }

    #[test]
    fn lines_touched_shrinks_after_reorder() {
        // A 200-byte struct whose two hot fields start and end it.
        let mut spec: Vec<(&'static str, u32)> = vec![("hot1", 4)];
        const COLD: [&str; 24] = [
            "c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9", "c10", "c11", "c12", "c13",
            "c14", "c15", "c16", "c17", "c18", "c19", "c20", "c21", "c22", "c23",
        ];
        for c in COLD {
            spec.push((c, 8));
        }
        spec.push(("hot2", 4));
        let l = StructLayout::packed("Wide", &spec);
        assert_eq!(l.lines_touched(&["hot1", "hot2"]), 2);
        let r = l.reordered(&["hot1", "hot2"]);
        assert_eq!(r.lines_touched(&["hot1", "hot2"]), 1);
    }

    #[test]
    fn line_of() {
        let l = StructLayout::packed(
            "L",
            &[
                ("x", 8),
                ("p0", 8),
                ("p1", 8),
                ("p2", 8),
                ("p3", 8),
                ("p4", 8),
                ("p5", 8),
                ("p6", 8),
                ("y", 8),
            ],
        );
        assert_eq!(l.line_of("x"), 0);
        assert_eq!(l.line_of("p6"), 0);
        assert_eq!(l.line_of("y"), 1);
    }

    #[test]
    #[should_panic(expected = "no field named")]
    fn unknown_field_panics() {
        let _ = sample().offset_of("zz");
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_rejected() {
        let _ = StructLayout::packed("D", &[("a", 4), ("a", 4)]);
    }

    #[test]
    #[should_panic(expected = "unknown field")]
    fn reorder_unknown_panics() {
        let _ = sample().reordered(&["nope"]);
    }
}
