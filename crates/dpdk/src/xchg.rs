//! The X-Change metadata-management API (paper §3.1).
//!
//! X-Change replaces the PMD's direct `rte_mbuf` field assignments with
//! per-field **conversion functions** the application may re-implement,
//! and lets the application hand its **own** metadata buffers to the
//! driver, exchanging used buffers for fresh ones on both the RX and TX
//! paths. The three effects the paper claims fall out of this module plus
//! the PMD:
//!
//! 1. tailored metadata — the PMD writes only the fields in the NF's
//!    [`MetadataSpec`], in the application's own layout;
//! 2. bounded, cache-resident metadata — the [`XchgRing`] holds only
//!    ≈ burst-size buffers that are reused immediately;
//! 3. no pool alloc/free — RX replenishment swaps buffers returned by TX
//!    completion instead of going through the mempool ring.
//!
//! The conversion-function shape mirrors the paper's Listing 1/2:
//!
//! ```
//! use pm_dpdk::{MetaField, StructLayout};
//!
//! /// The application's descriptor: two fields instead of a 128-B mbuf
//! /// (this is the paper's `l2fwd-xchg` specialization).
//! let app_layout = StructLayout::packed("L2FwdDesc", &[
//!     ("buf_addr", 8),
//!     ("pkt_len", 4),
//! ]);
//! // The driver asks "where does this application want VLAN TCI?" —
//! // an NF that never reads it simply doesn't have the field, and the
//! // conversion function becomes a no-op (no store, no cache line).
//! assert!(app_layout.field(MetaField::VlanTci.name()).is_none());
//! assert_eq!(app_layout.size(), 12);
//! ```

use crate::layout::StructLayout;
use pm_mem::{AddressSpace, Region};
use std::collections::VecDeque;

/// The metadata fields a driver can deliver (the `xchg_set_*` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaField {
    /// Buffer virtual address.
    BufAddr,
    /// Offset of packet data within the buffer.
    DataOff,
    /// Total packet length.
    PktLen,
    /// Data length in this segment.
    DataLen,
    /// Receiving port.
    Port,
    /// RSS hash.
    RssHash,
    /// VLAN TCI (if offloaded).
    VlanTci,
    /// Offload flags.
    OlFlags,
    /// Parsed packet type.
    PacketType,
    /// Hardware timestamp.
    Timestamp,
}

impl MetaField {
    /// All fields a default (mbuf-compatible) driver writes per packet.
    pub const RX_FULL: [MetaField; 10] = [
        MetaField::BufAddr,
        MetaField::DataOff,
        MetaField::PktLen,
        MetaField::DataLen,
        MetaField::Port,
        MetaField::RssHash,
        MetaField::VlanTci,
        MetaField::OlFlags,
        MetaField::PacketType,
        MetaField::Timestamp,
    ];

    /// The field's name in a [`StructLayout`].
    pub fn name(self) -> &'static str {
        match self {
            MetaField::BufAddr => "buf_addr",
            MetaField::DataOff => "data_off",
            MetaField::PktLen => "pkt_len",
            MetaField::DataLen => "data_len",
            MetaField::Port => "port",
            MetaField::RssHash => "rss_hash",
            MetaField::VlanTci => "vlan_tci",
            MetaField::OlFlags => "ol_flags",
            MetaField::PacketType => "packet_type",
            MetaField::Timestamp => "timestamp",
        }
    }

    /// The field's size in bytes.
    pub fn size(self) -> u32 {
        match self {
            MetaField::BufAddr | MetaField::OlFlags | MetaField::Timestamp => 8,
            MetaField::RssHash | MetaField::PacketType | MetaField::PktLen => 4,
            MetaField::DataOff | MetaField::DataLen | MetaField::Port | MetaField::VlanTci => 2,
        }
    }
}

/// Which metadata a given NF actually needs from the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetadataSpec {
    fields: Vec<MetaField>,
}

impl MetadataSpec {
    /// Everything an `rte_mbuf` would carry (the backward-compatible
    /// default implementation of the conversion functions).
    pub fn full() -> Self {
        MetadataSpec {
            fields: MetaField::RX_FULL.to_vec(),
        }
    }

    /// The minimal forwarding spec: buffer address + length (the paper's
    /// `l2fwd-xchg`: "the metadata is reduced to two simple fields").
    pub fn minimal() -> Self {
        MetadataSpec {
            fields: vec![MetaField::BufAddr, MetaField::PktLen],
        }
    }

    /// A router/NAT-style spec: address, lengths, port, RSS hash.
    pub fn routing() -> Self {
        MetadataSpec {
            fields: vec![
                MetaField::BufAddr,
                MetaField::PktLen,
                MetaField::DataLen,
                MetaField::Port,
                MetaField::RssHash,
            ],
        }
    }

    /// A custom spec.
    ///
    /// # Panics
    ///
    /// Panics if `fields` is empty or has duplicates.
    pub fn custom(fields: Vec<MetaField>) -> Self {
        assert!(!fields.is_empty(), "spec cannot be empty");
        for (i, f) in fields.iter().enumerate() {
            assert!(!fields[..i].contains(f), "duplicate field {f:?}");
        }
        MetadataSpec { fields }
    }

    /// The fields, in driver write order.
    pub fn fields(&self) -> &[MetaField] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the spec is empty (never constructible via public API).
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Builds the application-side descriptor layout this spec implies
    /// (fields in spec order, naturally aligned).
    pub fn to_layout(&self, name: &'static str) -> StructLayout {
        let spec: Vec<(&'static str, u32)> =
            self.fields.iter().map(|f| (f.name(), f.size())).collect();
        StructLayout::packed(name, &spec)
    }
}

/// Which metadata-management model the driver + framework pair uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetadataModel {
    /// PMD fills `rte_mbuf`; framework copies useful fields into its own
    /// `Packet` object (FastClick default).
    Copying,
    /// Framework descriptor overlays the `rte_mbuf` (BESS style);
    /// annotations appended after the mbuf fields.
    Overlaying,
    /// PacketMill's X-Change: driver writes the application's descriptor
    /// directly, buffers are exchanged, pools bypassed.
    XChange,
}

impl std::fmt::Display for MetadataModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MetadataModel::Copying => "copying",
            MetadataModel::Overlaying => "overlaying",
            MetadataModel::XChange => "x-change",
        };
        f.write_str(s)
    }
}

/// The application's exchanged metadata-buffer ring.
///
/// A small, fixed set of application descriptors cycles between the
/// application and the driver; slot addresses are reused immediately, so
/// the whole ring stays in the L1/L2 working set.
#[derive(Debug)]
pub struct XchgRing {
    layout: StructLayout,
    region: Region,
    stride: u64,
    free: VecDeque<u32>,
    n: u32,
    /// Bumped on every layout change, so PMD-side precompiled conversion
    /// programs can detect staleness with one integer compare.
    generation: u64,
}

impl XchgRing {
    /// Creates a ring of `n` application descriptors laid out per
    /// `layout`, line-aligned, in `space`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(space: &mut AddressSpace, n: u32, layout: StructLayout) -> Self {
        assert!(n > 0, "empty xchg ring");
        let stride = u64::from(layout.size_lines().max(64));
        XchgRing {
            region: space.alloc(stride * u64::from(n)),
            layout,
            stride,
            free: (0..n).collect(),
            n,
            generation: 0,
        }
    }

    /// Ring size.
    pub fn capacity(&self) -> u32 {
        self.n
    }

    /// Free descriptors available for the driver.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// The application descriptor layout.
    pub fn layout(&self) -> &StructLayout {
        &self.layout
    }

    /// Replaces the layout (after a reordering pass).
    ///
    /// # Panics
    ///
    /// Panics if the new layout needs more lines than the ring's stride.
    pub fn set_layout(&mut self, layout: StructLayout) {
        assert!(
            u64::from(layout.size_lines()) <= self.stride,
            "reordered layout must not grow past the slot stride"
        );
        self.layout = layout;
        self.generation += 1;
    }

    /// The layout generation (bumped by [`XchgRing::set_layout`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Driver side: takes a free descriptor slot.
    pub fn take(&mut self) -> Option<u32> {
        self.free.pop_front()
    }

    /// Application side: returns a slot after the packet is fully
    /// processed (TX completion reaped).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on double return.
    pub fn give_back(&mut self, slot: u32) {
        debug_assert!(
            !self.free.contains(&slot),
            "double give_back of slot {slot}"
        );
        debug_assert!(slot < self.n, "slot out of range");
        self.free.push_back(slot);
    }

    /// Base address of descriptor `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_addr(&self, slot: u32) -> u64 {
        assert!(slot < self.n, "slot out of range");
        self.region.base + u64::from(slot) * self.stride
    }

    /// Address of `field` within descriptor `slot`, or `None` if the
    /// application's layout does not include the field (the conversion
    /// function is a no-op — nothing is written, nothing is charged).
    pub fn field_addr(&self, slot: u32, field: MetaField) -> Option<(u64, u32)> {
        self.layout
            .field(field.name())
            .map(|f| (self.slot_addr(slot) + u64::from(f.offset), f.size))
    }

    /// Total ring footprint in bytes (should be tiny — that's the point).
    pub fn footprint_bytes(&self) -> u64 {
        self.region.size
    }

    /// The descriptor region.
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_is_two_fields() {
        let s = MetadataSpec::minimal();
        assert_eq!(s.len(), 2);
        let l = s.to_layout("MinDesc");
        assert_eq!(l.size(), 12); // 8 + 4
        assert_eq!(l.size_lines(), 64);
    }

    #[test]
    fn full_spec_matches_mbuf_fields() {
        let s = MetadataSpec::full();
        assert_eq!(s.len(), 10);
        let mbuf = crate::mbuf::rte_mbuf_layout();
        for f in s.fields() {
            assert!(mbuf.field(f.name()).is_some(), "{f:?} missing from mbuf");
        }
    }

    #[test]
    fn ring_cycles_slots() {
        let mut space = AddressSpace::new();
        let mut r = XchgRing::new(&mut space, 4, MetadataSpec::minimal().to_layout("D"));
        let a = r.take().unwrap();
        let b = r.take().unwrap();
        assert_ne!(a, b);
        r.give_back(a);
        assert_eq!(r.available(), 3);
        // Slots have distinct line-aligned addresses.
        assert_eq!(r.slot_addr(1) - r.slot_addr(0), 64);
    }

    #[test]
    fn ring_footprint_tiny() {
        let mut space = AddressSpace::new();
        let r = XchgRing::new(&mut space, 32, MetadataSpec::routing().to_layout("D"));
        assert!(r.footprint_bytes() <= 32 * 64, "one line per descriptor");
    }

    #[test]
    fn absent_field_is_noop() {
        let mut space = AddressSpace::new();
        let r = XchgRing::new(&mut space, 2, MetadataSpec::minimal().to_layout("D"));
        assert!(r.field_addr(0, MetaField::VlanTci).is_none());
        let (addr, size) = r.field_addr(0, MetaField::BufAddr).unwrap();
        assert_eq!(addr, r.slot_addr(0));
        assert_eq!(size, 8);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut space = AddressSpace::new();
        let mut r = XchgRing::new(&mut space, 1, MetadataSpec::minimal().to_layout("D"));
        assert!(r.take().is_some());
        assert!(r.take().is_none());
    }

    #[test]
    fn reordered_layout_swap() {
        let mut space = AddressSpace::new();
        let mut r = XchgRing::new(&mut space, 2, MetadataSpec::routing().to_layout("D"));
        let new = r.layout().reordered(&["rss_hash"]);
        r.set_layout(new);
        assert_eq!(r.layout().offset_of("rss_hash"), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_spec_rejected() {
        let _ = MetadataSpec::custom(vec![MetaField::Port, MetaField::Port]);
    }
}
