//! A DPDK-like userspace driver layer for PacketMill-rs: mempools, the
//! two-cache-line `rte_mbuf` descriptor, a burst poll-mode driver — and
//! the paper's contribution, the **X-Change** metadata-management API.
//!
//! # The three metadata models (paper §2.2 / §3.1)
//!
//! * [`MetadataModel::Copying`] — the PMD writes the full `rte_mbuf`
//!   field set, then the framework copies/converts the useful fields into
//!   its own `Packet` object (FastClick's default). Two conversions per
//!   packet, two pools cycling.
//! * [`MetadataModel::Overlaying`] — the framework's descriptor *is* the
//!   `rte_mbuf` plus annotations appended after it (BESS/VPP style). One
//!   conversion, but the full generic field set is still carried and the
//!   big pool still cycles.
//! * [`MetadataModel::XChange`] — the application hands its own metadata
//!   buffers to the driver; per-field conversion functions write **only
//!   the fields the NF needs**, directly in the application's layout, and
//!   RX/TX *exchange* buffers so the live metadata set stays bounded
//!   (≈ burst size) and cache-resident, and pool alloc/free is skipped.
//!
//! The functional halves are real (packet bytes, lengths, RSS hashes flow
//! through), and every descriptor/pool/metadata touch is charged to the
//! simulated cache hierarchy at the addresses a real DPDK process would
//! touch — which is precisely where the three models differ.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod layout;
pub mod mbuf;
pub mod mempool;
pub mod pmd;
pub mod xchg;

pub use layout::{FieldDef, StructLayout};
pub use mbuf::{MbufMeta, RTE_MBUF_SIZE};
pub use mempool::{Mempool, MempoolMode, MempoolStats};
pub use pmd::{Pmd, PmdConfig, PmdStats, RxDesc, TxSend};
pub use xchg::{MetaField, MetadataModel, MetadataSpec, XchgRing};
