//! IP-layer elements: `CheckIPHeader`, `DecIPTTL`, `GetIPAddress`, and
//! `ARPResponder`.

use pm_click::{Action, Args, ConfigError, Ctx, Element, Pkt};
use pm_mem::AccessKind;
use pm_packet::arp::{ArpOp, ArpPacket};
use pm_packet::ether::{EtherHeader, ETHER_LEN};
use pm_packet::ipv4::{self, Ipv4Header};
use pm_packet::MacAddr;

/// `CheckIPHeader`: full RFC-1812-style sanity check — version, IHL,
/// total length, and header checksum — on real bytes; drops bad packets.
#[derive(Debug, Default)]
pub struct CheckIpHeader {
    /// Packets dropped as invalid.
    pub drops: u64,
}

impl Element for CheckIpHeader {
    fn class_name(&self) -> &'static str {
        "CheckIPHeader"
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        ctx.read_data(pkt, ETHER_LEN as u64, 20);
        ctx.compute(58); // parse + checks + 10-word checksum fold
        let ok = (|| {
            // Frames truncated below the Ethernet header arrive under
            // wire faults; slicing at ETHER_LEN would panic on them.
            let l3 = pkt.frame().get(ETHER_LEN..)?;
            let h = Ipv4Header::parse(l3).ok()?;
            if ETHER_LEN + h.total_len as usize > pkt.len {
                return None;
            }
            if !h.verify_checksum(l3) {
                return None;
            }
            Some(())
        })()
        .is_some();
        if !ok {
            self.drops += 1;
            ctx.touch_state(0, 8, AccessKind::Store);
            return Action::Drop;
        }
        ctx.write_meta(pkt, "net_hdr");
        Action::Forward(0)
    }
}

/// `DecIPTTL`: decrements TTL with an incremental checksum patch
/// (RFC 1624); drops (and counts) packets whose TTL has expired.
#[derive(Debug, Default)]
pub struct DecIpTtl {
    /// Packets dropped for TTL expiry.
    pub expired: u64,
}

impl Element for DecIpTtl {
    fn class_name(&self) -> &'static str {
        "DecIPTTL"
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < ETHER_LEN + 20 {
            return Action::Drop;
        }
        ctx.read_meta(pkt, "net_hdr");
        ctx.read_data(pkt, (ETHER_LEN + ipv4::TTL_OFFSET) as u64, 4);
        let new_ttl = ipv4::dec_ttl_in_place(&mut pkt.frame_mut()[ETHER_LEN..]);
        ctx.write_data(pkt, (ETHER_LEN + ipv4::TTL_OFFSET) as u64, 4);
        ctx.compute(20);
        match new_ttl {
            None | Some(0) => {
                // A real router would emit ICMP time-exceeded; we count
                // and drop (the generator uses large TTLs, as campuses do).
                self.expired += 1;
                ctx.touch_state(0, 8, AccessKind::Store);
                Action::Drop
            }
            Some(_) => Action::Forward(0),
        }
    }
}

/// `GetIPAddress(OFFSET)`: copies the destination IP address from the
/// header into the destination-IP annotation (the standard Click router
/// does this before the routing lookup).
#[derive(Debug, Default)]
pub struct GetIpAddress;

impl Element for GetIpAddress {
    fn class_name(&self) -> &'static str {
        "GetIPAddress"
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < ETHER_LEN + 20 {
            return Action::Drop;
        }
        ctx.read_data(pkt, (ETHER_LEN + ipv4::DST_OFFSET) as u64, 4);
        let f = pkt.frame();
        pkt.annos.dst_ip = [
            f[ETHER_LEN + 16],
            f[ETHER_LEN + 17],
            f[ETHER_LEN + 18],
            f[ETHER_LEN + 19],
        ];
        ctx.write_meta(pkt, "dst_ip_anno");
        ctx.compute(7);
        Action::Forward(0)
    }
}

/// `ARPResponder(IP, MAC)`: answers ARP who-has requests for `IP` with
/// `MAC`, rewriting the packet in place into the reply.
#[derive(Debug)]
pub struct ArpResponder {
    ip: [u8; 4],
    mac: MacAddr,
    /// Requests answered.
    pub replies: u64,
}

impl Default for ArpResponder {
    fn default() -> Self {
        ArpResponder {
            ip: [10, 0, 0, 254],
            mac: MacAddr([0x02, 0, 0, 0, 0, 0x10]),
            replies: 0,
        }
    }
}

impl Element for ArpResponder {
    fn class_name(&self) -> &'static str {
        "ARPResponder"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        if let Some(v) = args.positional(0).or_else(|| args.get("IP")) {
            let ip = crate::trie::parse_ip(v).ok_or_else(|| ConfigError::Element {
                element: String::new(),
                message: format!("bad IP {v:?}"),
            })?;
            self.ip = ip.to_be_bytes();
        }
        Ok(())
    }

    fn param_loads(&self) -> u32 {
        2
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < ETHER_LEN + pm_packet::arp::ARP_LEN {
            return Action::Drop;
        }
        ctx.read_data(pkt, 0, (ETHER_LEN + 28) as u64);
        ctx.compute(55);
        let Ok(req) = ArpPacket::parse(&pkt.frame()[ETHER_LEN..]) else {
            return Action::Drop;
        };
        if req.op != ArpOp::Request || req.target_ip != self.ip {
            return Action::Drop;
        }
        let reply = req.reply_from(self.mac, self.ip);
        let requester = req.sender_mac;
        reply.write(&mut pkt.frame_mut()[ETHER_LEN..]);
        EtherHeader {
            dst: requester,
            src: self.mac,
            ethertype: pm_packet::ether::EtherType::ARP,
        }
        .write(pkt.frame_mut());
        ctx.write_data(pkt, 0, (ETHER_LEN + 28) as u64);
        self.replies += 1;
        ctx.touch_state(0, 8, AccessKind::Store);
        Action::Forward(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{Annos, ExecPlan, MetadataModel};
    use pm_dpdk::RxDesc;
    use pm_mem::{MemoryHierarchy, Region};
    use pm_packet::builder::PacketBuilder;

    fn run(el: &mut dyn Element, frame: &mut Vec<u8>) -> (Action, Annos) {
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.state = Region {
            base: 0x1000,
            size: 64,
        };
        let len = frame.len();
        let mut pkt = Pkt {
            data: frame,
            len,
            desc: RxDesc {
                buf_id: 0,
                len: len as u32,
                rss_hash: 0,
                arrival: pm_sim::SimTime::ZERO,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0x10_000,
                meta_addr: 0x20_000,
                xslot: None,
            },
            meta_addr: 0x20_000,
            annos: Annos::default(),
        };
        let a = el.process(&mut ctx, &mut pkt);
        (a, pkt.annos)
    }

    #[test]
    fn valid_header_passes() {
        let mut f = PacketBuilder::tcp().build();
        let (a, _) = run(&mut CheckIpHeader::default(), &mut f);
        assert_eq!(a, Action::Forward(0));
    }

    #[test]
    fn frames_shorter_than_ethernet_dropped() {
        // Wire truncation delivers frames of any length ≥ 1; slicing the
        // L3 region out of one shorter than 14 bytes used to panic.
        let full = PacketBuilder::tcp().build();
        for cut in 1..14 {
            let mut f = full[..cut].to_vec();
            let mut el = CheckIpHeader::default();
            let (a, _) = run(&mut el, &mut f);
            assert_eq!(a, Action::Drop, "cut at {cut}");
            assert_eq!(el.drops, 1);
        }
    }

    #[test]
    fn corrupt_checksum_dropped() {
        let mut f = PacketBuilder::tcp().build();
        f[14 + 10] ^= 0xff;
        let mut el = CheckIpHeader::default();
        let (a, _) = run(&mut el, &mut f);
        assert_eq!(a, Action::Drop);
        assert_eq!(el.drops, 1);
    }

    #[test]
    fn lying_total_length_dropped() {
        let mut f = PacketBuilder::tcp().build();
        // total_len larger than the frame.
        f[14 + 2] = 0xff;
        f[14 + 3] = 0xff;
        let (a, _) = run(&mut CheckIpHeader::default(), &mut f);
        assert_eq!(a, Action::Drop);
    }

    #[test]
    fn ttl_decremented_checksum_valid() {
        let mut f = PacketBuilder::tcp().ttl(64).build();
        let (a, _) = run(&mut DecIpTtl::default(), &mut f);
        assert_eq!(a, Action::Forward(0));
        let h = Ipv4Header::parse(&f[14..]).unwrap();
        assert_eq!(h.ttl, 63);
        assert!(h.verify_checksum(&f[14..]));
    }

    #[test]
    fn ttl_one_expires() {
        let mut f = PacketBuilder::tcp().ttl(1).build();
        let mut el = DecIpTtl::default();
        let (a, _) = run(&mut el, &mut f);
        assert_eq!(a, Action::Drop);
        assert_eq!(el.expired, 1);
    }

    #[test]
    fn get_ip_address_sets_anno() {
        let mut f = PacketBuilder::tcp().dst_ip([192, 0, 2, 33]).build();
        let (a, annos) = run(&mut GetIpAddress, &mut f);
        assert_eq!(a, Action::Forward(0));
        assert_eq!(annos.dst_ip, [192, 0, 2, 33]);
    }

    #[test]
    fn arp_responder_builds_reply() {
        let mut el = ArpResponder::default();
        el.configure(&Args::parse("10.0.0.254")).unwrap();
        let mut f = PacketBuilder::arp()
            .src_ip([10, 0, 0, 7])
            .dst_ip([10, 0, 0, 254])
            .build();
        let (a, _) = run(&mut el, &mut f);
        assert_eq!(a, Action::Forward(0));
        assert_eq!(el.replies, 1);
        let arp = ArpPacket::parse(&f[14..]).unwrap();
        assert_eq!(arp.op, ArpOp::Reply);
        assert_eq!(arp.sender_ip, [10, 0, 0, 254]);
        assert_eq!(arp.target_ip, [10, 0, 0, 7]);
        let eth = EtherHeader::parse(&f).unwrap();
        assert_eq!(
            eth.dst,
            MacAddr([0x02, 0, 0, 0, 0, 0x01]),
            "reply goes back to the requester's MAC"
        );
    }

    #[test]
    fn arp_for_other_ip_dropped() {
        let mut el = ArpResponder::default();
        el.configure(&Args::parse("10.0.0.254")).unwrap();
        let mut f = PacketBuilder::arp().dst_ip([10, 0, 0, 99]).build();
        let (a, _) = run(&mut el, &mut f);
        assert_eq!(a, Action::Drop);
    }
}
