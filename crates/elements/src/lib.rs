//! The network-function element library for PacketMill-rs.
//!
//! Every element does **real work on real packet bytes** — parsing,
//! checksum verification and incremental update, longest-prefix-match
//! routing on a from-scratch radix trie, stateful NAPT on a from-scratch
//! cuckoo hash table — while charging its memory touches to the
//! simulated hierarchy.
//!
//! [`standard_registry`] returns a registry with every element class;
//! [`configs`] holds the paper's five NF configurations (§A.1–A.4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arp_table;
pub mod classifier;
pub mod configs;
pub mod cuckoo;
pub mod ether;
pub mod firewall;
pub mod ids;
pub mod ip;
pub mod nat;
pub mod route;
pub mod trie;
pub mod vlan;
pub mod work;

use pm_click::ElementRegistry;

/// A registry containing the built-in basics plus every element class in
/// this crate.
pub fn standard_registry() -> ElementRegistry {
    let mut r = ElementRegistry::with_basics();
    r.register("EtherMirror", || Box::new(ether::EtherMirror));
    r.register("EtherRewrite", || Box::new(ether::EtherRewrite::default()));
    r.register("EtherEncap", || Box::new(ether::EtherEncap::default()));
    r.register("Classifier", || Box::new(classifier::Classifier::default()));
    r.register("Paint", || Box::new(classifier::Paint::default()));
    r.register("Counter", || Box::new(classifier::Counter::default()));
    r.register("CheckIPHeader", || Box::new(ip::CheckIpHeader::default()));
    r.register("DecIPTTL", || Box::new(ip::DecIpTtl::default()));
    r.register("GetIPAddress", || Box::new(ip::GetIpAddress));
    r.register(
        "LookupIPRoute",
        || Box::new(route::LookupIpRoute::default()),
    );
    r.register("ARPResponder", || Box::new(ip::ArpResponder::default()));
    r.register("ARPQuerier", || Box::new(arp_table::ArpQuerier::default()));
    r.register("IPFilter", || Box::new(firewall::IpFilter::default()));
    r.register("IPRewriter", || Box::new(nat::IpRewriter::default()));
    r.register("CheckHeaders", || Box::new(ids::CheckHeaders::default()));
    r.register("VLANEncap", || Box::new(vlan::VlanEncap::default()));
    r.register("VLANDecap", || Box::new(vlan::VlanDecap));
    r.register("WorkPackage", || Box::new(work::WorkPackage::default()));
    r
}
