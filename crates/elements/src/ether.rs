//! Ethernet-layer elements: `EtherMirror`, `EtherRewrite`, `EtherEncap`.

use pm_click::{Action, Args, ConfigError, Ctx, Element, Pkt};
use pm_packet::ether::{self, EtherType};
use pm_packet::MacAddr;

fn parse_mac(s: &str) -> Option<MacAddr> {
    let mut out = [0u8; 6];
    let mut parts = s.trim().split(':');
    for b in &mut out {
        *b = u8::from_str_radix(parts.next()?, 16).ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(MacAddr(out))
}

/// `EtherMirror`: swaps source and destination MAC addresses (the
/// paper's simple forwarder body, §A.1 variant).
#[derive(Debug, Default)]
pub struct EtherMirror;

impl Element for EtherMirror {
    fn class_name(&self) -> &'static str {
        "EtherMirror"
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < 14 {
            return Action::Drop;
        }
        ctx.read_data(pkt, 0, 12);
        ether::mirror_in_place(pkt.frame_mut());
        ctx.write_data(pkt, 0, 12);
        ctx.compute(18);
        Action::Forward(0)
    }
}

/// `EtherRewrite(SRC, DST)`: overwrites both MAC addresses.
#[derive(Debug)]
pub struct EtherRewrite {
    src: MacAddr,
    dst: MacAddr,
}

impl Default for EtherRewrite {
    fn default() -> Self {
        EtherRewrite {
            src: MacAddr([0x02, 0, 0, 0, 0, 0x10]),
            dst: MacAddr([0x02, 0, 0, 0, 0, 0x20]),
        }
    }
}

impl Element for EtherRewrite {
    fn class_name(&self) -> &'static str {
        "EtherRewrite"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        let bad = |what: &str, v: &str| ConfigError::Element {
            element: String::new(),
            message: format!("{what}: bad MAC address {v:?}"),
        };
        if let Some(v) = args.get("SRC").or_else(|| args.positional(0)) {
            self.src = parse_mac(v).ok_or_else(|| bad("SRC", v))?;
        }
        if let Some(v) = args.get("DST").or_else(|| args.positional(1)) {
            self.dst = parse_mac(v).ok_or_else(|| bad("DST", v))?;
        }
        Ok(())
    }

    fn param_loads(&self) -> u32 {
        2
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < 14 {
            return Action::Drop;
        }
        ether::rewrite_in_place(pkt.frame_mut(), self.src, self.dst);
        ctx.write_data(pkt, 0, 12);
        ctx.compute(18);
        Action::Forward(0)
    }
}

/// `EtherEncap(ETHERTYPE, SRC, DST)`: (re)writes the full 14-byte
/// Ethernet header in front of the current frame.
#[derive(Debug)]
pub struct EtherEncap {
    ethertype: EtherType,
    src: MacAddr,
    dst: MacAddr,
}

impl Default for EtherEncap {
    fn default() -> Self {
        EtherEncap {
            ethertype: EtherType::IPV4,
            src: MacAddr([0x02, 0, 0, 0, 0, 0x10]),
            dst: MacAddr([0x02, 0, 0, 0, 0, 0x20]),
        }
    }
}

impl Element for EtherEncap {
    fn class_name(&self) -> &'static str {
        "EtherEncap"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        if let Some(v) = args.get("ETHERTYPE").or_else(|| args.positional(0)) {
            let raw = v.trim_start_matches("0x");
            let t = u16::from_str_radix(raw, 16).map_err(|_| ConfigError::Element {
                element: String::new(),
                message: format!("ETHERTYPE: bad value {v:?}"),
            })?;
            self.ethertype = EtherType(t);
        }
        if let Some(v) = args.get("SRC").or_else(|| args.positional(1)) {
            self.src = parse_mac(v).ok_or_else(|| ConfigError::Element {
                element: String::new(),
                message: format!("SRC: bad MAC {v:?}"),
            })?;
        }
        if let Some(v) = args.get("DST").or_else(|| args.positional(2)) {
            self.dst = parse_mac(v).ok_or_else(|| ConfigError::Element {
                element: String::new(),
                message: format!("DST: bad MAC {v:?}"),
            })?;
        }
        Ok(())
    }

    fn param_loads(&self) -> u32 {
        2
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < 14 {
            return Action::Drop;
        }
        pm_packet::ether::EtherHeader {
            dst: self.dst,
            src: self.src,
            ethertype: self.ethertype,
        }
        .write(pkt.frame_mut());
        ctx.write_data(pkt, 0, 14);
        ctx.write_meta(pkt, "mac_hdr");
        ctx.compute(16);
        Action::Forward(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{Annos, ExecPlan, MetadataModel};
    use pm_dpdk::RxDesc;
    use pm_mem::MemoryHierarchy;
    use pm_packet::builder::PacketBuilder;
    use pm_packet::ether::EtherHeader;

    fn run(el: &mut dyn Element, frame: &mut Vec<u8>) -> Action {
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        let len = frame.len();
        let desc = RxDesc {
            buf_id: 0,
            len: len as u32,
            rss_hash: 0,
            arrival: pm_sim::SimTime::ZERO,
            gen: pm_sim::SimTime::ZERO,
            seq: 0,
            data_addr: 0x10_000,
            meta_addr: 0x20_000,
            xslot: None,
        };
        let mut pkt = Pkt {
            data: frame,
            len,
            desc,
            meta_addr: 0x20_000,
            annos: Annos::default(),
        };
        el.process(&mut ctx, &mut pkt)
    }

    #[test]
    fn mirror_swaps() {
        let mut f = PacketBuilder::udp().build();
        let before = EtherHeader::parse(&f).unwrap();
        assert_eq!(run(&mut EtherMirror, &mut f), Action::Forward(0));
        let after = EtherHeader::parse(&f).unwrap();
        assert_eq!(after.src, before.dst);
        assert_eq!(after.dst, before.src);
    }

    #[test]
    fn rewrite_applies_config() {
        let mut el = EtherRewrite::default();
        el.configure(&Args::parse("SRC 02:00:00:00:00:aa, DST 02:00:00:00:00:bb"))
            .unwrap();
        let mut f = PacketBuilder::udp().build();
        run(&mut el, &mut f);
        let h = EtherHeader::parse(&f).unwrap();
        assert_eq!(h.src, MacAddr([2, 0, 0, 0, 0, 0xaa]));
        assert_eq!(h.dst, MacAddr([2, 0, 0, 0, 0, 0xbb]));
    }

    #[test]
    fn bad_mac_rejected() {
        let mut el = EtherRewrite::default();
        assert!(el.configure(&Args::parse("SRC nonsense")).is_err());
    }

    #[test]
    fn encap_sets_ethertype() {
        let mut el = EtherEncap::default();
        el.configure(&Args::parse("ETHERTYPE 0x0800")).unwrap();
        let mut f = PacketBuilder::udp().build();
        run(&mut el, &mut f);
        assert_eq!(EtherHeader::parse(&f).unwrap().ethertype, EtherType::IPV4);
    }

    #[test]
    fn runt_frames_dropped() {
        let mut f = vec![0u8; 8];
        assert_eq!(run(&mut EtherMirror, &mut f), Action::Drop);
    }
}
