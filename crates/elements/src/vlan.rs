//! `VLANEncap` / `VLANDecap` (paper §A.3: the IDS configuration
//! "eventually encapsulates the packet in a VLAN header").

use pm_click::{Action, Args, ConfigError, Ctx, Element, Pkt};
use pm_packet::ether::EtherType;
use pm_packet::vlan::{self, VlanTag};

/// `VLANEncap(VLAN_ID id, VLAN_PCP pcp)`: inserts an 802.1Q tag.
#[derive(Debug)]
pub struct VlanEncap {
    vid: u16,
    pcp: u8,
}

impl Default for VlanEncap {
    fn default() -> Self {
        VlanEncap { vid: 1, pcp: 0 }
    }
}

impl Element for VlanEncap {
    fn class_name(&self) -> &'static str {
        "VLANEncap"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        let vid = args.get_u32("VLAN_ID", u32::from(self.vid))?;
        if vid > 4095 {
            return Err(ConfigError::Element {
                element: String::new(),
                message: format!("VLAN_ID {vid} out of range"),
            });
        }
        self.vid = vid as u16;
        self.pcp = args.get_u32("VLAN_PCP", u32::from(self.pcp))? as u8 & 7;
        Ok(())
    }

    fn param_loads(&self) -> u32 {
        1
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < 14 || pkt.data.len() < pkt.len + vlan::VLAN_TAG_LEN {
            return Action::Drop;
        }
        let tag = VlanTag {
            pcp: self.pcp,
            dei: false,
            vid: self.vid,
            inner_type: EtherType::IPV4, // replaced by the shifted bytes
        };
        let len = pkt.len;
        let Ok(new_len) = vlan::encap_in_place(pkt.data, len, tag) else {
            return Action::Drop;
        };
        pkt.len = new_len;
        // The shift touches the whole frame head; charge the moved bytes.
        ctx.write_data(pkt, 12, (pkt.len - 12).min(64) as u64);
        pkt.annos.vlan_tci = tag.tci();
        ctx.write_meta(pkt, "vlan_tci");
        ctx.compute(40);
        Action::Forward(0)
    }
}

/// `VLANDecap`: removes the 802.1Q tag if present.
#[derive(Debug, Default)]
pub struct VlanDecap;

impl Element for VlanDecap {
    fn class_name(&self) -> &'static str {
        "VLANDecap"
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < 18 {
            return Action::Forward(0);
        }
        if u16::from_be_bytes([pkt.data[12], pkt.data[13]]) != EtherType::VLAN.0 {
            ctx.compute(2);
            return Action::Forward(0);
        }
        ctx.read_data(pkt, 12, 6);
        let tci = VlanTag::parse_frame(pkt.frame())
            .map(|t| t.tci())
            .unwrap_or(0);
        let len = pkt.len;
        let Ok(new_len) = vlan::decap_in_place(pkt.data, len) else {
            // Already established the tag is present and len >= 18, so
            // this is unreachable; forward untouched if it ever isn't.
            return Action::Forward(0);
        };
        pkt.len = new_len;
        ctx.write_data(pkt, 12, 8);
        pkt.annos.vlan_tci = tci;
        ctx.write_meta(pkt, "vlan_tci");
        ctx.compute(28);
        Action::Forward(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{Annos, ExecPlan, MetadataModel};
    use pm_dpdk::RxDesc;
    use pm_mem::MemoryHierarchy;
    use pm_packet::builder::PacketBuilder;

    fn run(el: &mut dyn Element, data: &mut Vec<u8>, len: usize) -> (Action, usize, u16) {
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        let mut pkt = Pkt {
            data,
            len,
            desc: RxDesc {
                buf_id: 0,
                len: len as u32,
                rss_hash: 0,
                arrival: pm_sim::SimTime::ZERO,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0x10_000,
                meta_addr: 0x20_000,
                xslot: None,
            },
            meta_addr: 0x20_000,
            annos: Annos::default(),
        };
        let a = el.process(&mut ctx, &mut pkt);
        (a, pkt.len, pkt.annos.vlan_tci)
    }

    #[test]
    fn encap_then_decap_round_trip() {
        let frame = PacketBuilder::udp().frame_len(128).build();
        let mut data = frame.clone();
        data.resize(2048, 0); // buffer headroom for the tag

        let mut enc = VlanEncap::default();
        enc.configure(&Args::parse("VLAN_ID 100, VLAN_PCP 3"))
            .unwrap();
        let (a, len, tci) = run(&mut enc, &mut data, 128);
        assert_eq!(a, Action::Forward(0));
        assert_eq!(len, 132);
        assert_eq!(tci & 0x0fff, 100);
        assert_eq!(tci >> 13, 3);

        let (a, len, _) = run(&mut VlanDecap, &mut data, len);
        assert_eq!(a, Action::Forward(0));
        assert_eq!(len, 128);
        assert_eq!(&data[..128], &frame[..]);
    }

    #[test]
    fn decap_untagged_is_noop() {
        let frame = PacketBuilder::udp().frame_len(100).build();
        let mut data = frame.clone();
        let (a, len, _) = run(&mut VlanDecap, &mut data, 100);
        assert_eq!(a, Action::Forward(0));
        assert_eq!(len, 100);
        assert_eq!(data, frame);
    }

    #[test]
    fn bad_vid_rejected() {
        let mut enc = VlanEncap::default();
        assert!(enc.configure(&Args::parse("VLAN_ID 5000")).is_err());
    }

    #[test]
    fn encap_without_headroom_drops() {
        let mut data = PacketBuilder::udp().frame_len(64).build(); // exactly 64, no spare
        let (a, _, _) = run(&mut VlanEncap::default(), &mut data, 64);
        assert_eq!(a, Action::Drop);
    }
}
