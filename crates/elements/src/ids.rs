//! `CheckHeaders`: the paper's IDS element.
//!
//! "The IDS checks the correctness of TCP, UDP, and ICMP headers, except
//! for the checksum that can be verified in hardware" (§A.3). Real
//! byte-level checks: transport lengths consistent with the IP total
//! length, legal TCP data offsets and flag combinations, legal UDP
//! lengths, known ICMP type/code pairs.

use pm_click::{Action, Ctx, Element, Pkt};
use pm_mem::AccessKind;
use pm_packet::ether::ETHER_LEN;
use pm_packet::icmp::IcmpHeader;
use pm_packet::ipv4::{IpProto, Ipv4Header};
use pm_packet::tcp::TcpHeader;
use pm_packet::udp::UdpHeader;

/// The IDS header checker.
#[derive(Debug, Default)]
pub struct CheckHeaders {
    /// Packets rejected.
    pub rejected: u64,
}

impl CheckHeaders {
    fn check(frame: &[u8]) -> bool {
        let Ok(ip) = Ipv4Header::parse(&frame[ETHER_LEN..]) else {
            return false;
        };
        if ip.is_fragment() {
            // Fragments can't be checked at L4; a strict IDS rejects them.
            return false;
        }
        let l4 = &frame[ETHER_LEN + ip.header_len..];
        let l4_len = ip.total_len as usize - ip.header_len;
        if l4.len() < l4_len {
            return false;
        }
        match ip.protocol {
            IpProto::TCP => match TcpHeader::parse(l4) {
                Ok(t) => l4_len >= t.header_len && !t.flags.is_illegal(),
                Err(_) => false,
            },
            IpProto::UDP => match UdpHeader::parse(l4) {
                Ok(u) => u.length as usize == l4_len,
                Err(_) => false,
            },
            IpProto::ICMP => match IcmpHeader::parse(l4) {
                Ok(i) => i.is_known_type(),
                Err(_) => false,
            },
            _ => false,
        }
    }
}

impl Element for CheckHeaders {
    fn class_name(&self) -> &'static str {
        "CheckHeaders"
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < ETHER_LEN + 20 {
            self.rejected += 1;
            return Action::Drop;
        }
        // The IDS reads the whole IP + transport header region.
        ctx.read_data(pkt, ETHER_LEN as u64, 40.min((pkt.len - ETHER_LEN) as u64));
        ctx.read_meta(pkt, "trans_hdr");
        ctx.compute(120);
        if Self::check(pkt.frame()) {
            Action::Forward(0)
        } else {
            self.rejected += 1;
            ctx.touch_state(0, 8, AccessKind::Store);
            Action::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{Annos, ExecPlan, MetadataModel};
    use pm_dpdk::RxDesc;
    use pm_mem::MemoryHierarchy;
    use pm_packet::builder::PacketBuilder;
    use pm_packet::tcp::TcpFlags;

    fn run(frame: &mut Vec<u8>) -> (Action, u64) {
        let mut el = CheckHeaders::default();
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.state = pm_mem::Region {
            base: 0xa00,
            size: 64,
        };
        let len = frame.len();
        let mut pkt = Pkt {
            data: frame,
            len,
            desc: RxDesc {
                buf_id: 0,
                len: len as u32,
                rss_hash: 0,
                arrival: pm_sim::SimTime::ZERO,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0x10_000,
                meta_addr: 0x20_000,
                xslot: None,
            },
            meta_addr: 0x20_000,
            annos: Annos::default(),
        };
        let a = el.process(&mut ctx, &mut pkt);
        (a, el.rejected)
    }

    #[test]
    fn clean_traffic_passes() {
        for mut f in [
            PacketBuilder::tcp().payload_len(100).build(),
            PacketBuilder::udp().payload_len(64).build(),
            PacketBuilder::icmp().payload_len(32).build(),
        ] {
            let (a, rej) = run(&mut f);
            assert_eq!(a, Action::Forward(0));
            assert_eq!(rej, 0);
        }
    }

    #[test]
    fn syn_fin_scan_rejected() {
        let mut f = PacketBuilder::tcp()
            .tcp_flags(TcpFlags::SYN | TcpFlags::FIN)
            .build();
        let (a, rej) = run(&mut f);
        assert_eq!(a, Action::Drop);
        assert_eq!(rej, 1);
    }

    #[test]
    fn null_scan_rejected() {
        let mut f = PacketBuilder::tcp().tcp_flags(0).build();
        assert_eq!(run(&mut f).0, Action::Drop);
    }

    #[test]
    fn udp_length_mismatch_rejected() {
        let mut f = PacketBuilder::udp().payload_len(20).build();
        f[34 + 4] = 0;
        f[34 + 5] = 9; // UDP length lies
        assert_eq!(run(&mut f).0, Action::Drop);
    }

    #[test]
    fn unknown_icmp_type_rejected() {
        let mut f = PacketBuilder::icmp().build();
        f[34] = 250;
        assert_eq!(run(&mut f).0, Action::Drop);
    }

    #[test]
    fn fragments_rejected() {
        let mut f = PacketBuilder::tcp().build();
        // Set MF and fix the checksum by rewriting the header.
        use pm_packet::ipv4::Ipv4Header;
        let mut h = Ipv4Header::parse(&f[14..]).unwrap();
        h.flags_frag = 0x2000;
        h.write(&mut f[14..]);
        assert_eq!(run(&mut f).0, Action::Drop);
    }

    #[test]
    fn bad_tcp_data_offset_rejected() {
        let mut f = PacketBuilder::tcp().build();
        f[34 + 12] = 0x20; // data offset 2
        assert_eq!(run(&mut f).0, Action::Drop);
    }
}
