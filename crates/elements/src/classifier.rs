//! `Classifier`, `Paint`, and `Counter`.

use pm_click::{Action, Args, ConfigError, Ctx, Element, Pkt};
use pm_mem::AccessKind;

/// One classifier pattern: byte-offset/value-with-mask conjunctions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// Matches everything (`-`).
    Any,
    /// Conjunction of `(offset, value, mask)` byte matches.
    Match(Vec<(usize, Vec<u8>, Vec<u8>)>),
}

impl Pattern {
    /// Parses Click classifier syntax: `12/0800`, `12/0806 20/0001`,
    /// masks via `%`: `33/02%12`, or `-` for match-all.
    pub fn parse(text: &str) -> Result<Pattern, ConfigError> {
        let text = text.trim();
        if text == "-" {
            return Ok(Pattern::Any);
        }
        let mut clauses = Vec::new();
        for part in text.split_whitespace() {
            let (off, rest) = part.split_once('/').ok_or_else(|| ConfigError::Element {
                element: String::new(),
                message: format!("bad classifier clause {part:?} (expected OFFSET/VALUE)"),
            })?;
            let off: usize = off.parse().map_err(|_| ConfigError::Element {
                element: String::new(),
                message: format!("bad classifier offset {off:?}"),
            })?;
            let (val_text, mask_text) = match rest.split_once('%') {
                Some((v, m)) => (v, Some(m)),
                None => (rest, None),
            };
            let value = parse_hex(val_text)?;
            let mask = match mask_text {
                Some(m) => {
                    let m = parse_hex(m)?;
                    if m.len() != value.len() {
                        return Err(ConfigError::Element {
                            element: String::new(),
                            message: "mask length != value length".into(),
                        });
                    }
                    m
                }
                None => vec![0xff; value.len()],
            };
            clauses.push((off, value, mask));
        }
        if clauses.is_empty() {
            return Err(ConfigError::Element {
                element: String::new(),
                message: "empty classifier pattern".into(),
            });
        }
        Ok(Pattern::Match(clauses))
    }

    /// Tests the pattern against a frame.
    pub fn matches(&self, frame: &[u8]) -> bool {
        match self {
            Pattern::Any => true,
            Pattern::Match(clauses) => clauses.iter().all(|(off, value, mask)| {
                if off + value.len() > frame.len() {
                    return false;
                }
                frame[*off..off + value.len()]
                    .iter()
                    .zip(value.iter().zip(mask))
                    .all(|(&b, (&v, &m))| b & m == v & m)
            }),
        }
    }

    /// Highest byte offset this pattern inspects (for charging reads).
    pub fn max_offset(&self) -> usize {
        match self {
            Pattern::Any => 0,
            Pattern::Match(clauses) => clauses
                .iter()
                .map(|(off, v, _)| off + v.len())
                .max()
                .unwrap_or(0),
        }
    }
}

fn parse_hex(s: &str) -> Result<Vec<u8>, ConfigError> {
    let s = s.trim();
    if s.is_empty() || !s.len().is_multiple_of(2) {
        return Err(ConfigError::Element {
            element: String::new(),
            message: format!("bad hex string {s:?}"),
        });
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| ConfigError::Element {
                element: String::new(),
                message: format!("bad hex string {s:?}"),
            })
        })
        .collect()
}

/// `Classifier(pat0, pat1, …)`: sends each packet out the port of the
/// first matching pattern; drops packets matching nothing.
#[derive(Debug, Default)]
pub struct Classifier {
    patterns: Vec<Pattern>,
}

impl Element for Classifier {
    fn class_name(&self) -> &'static str {
        "Classifier"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        self.patterns = args
            .items
            .iter()
            .map(|a| {
                let text = match &a.key {
                    // A pattern like `12/0800` never parses as KEY VALUE,
                    // but be permissive if it somehow did.
                    Some(k) => format!("{k} {}", a.value),
                    None => a.value.clone(),
                };
                Pattern::parse(&text)
            })
            .collect::<Result<_, _>>()?;
        if self.patterns.is_empty() {
            return Err(ConfigError::Element {
                element: String::new(),
                message: "Classifier needs at least one pattern".into(),
            });
        }
        Ok(())
    }

    fn n_outputs(&self) -> u16 {
        self.patterns.len() as u16
    }

    fn param_loads(&self) -> u32 {
        self.patterns.len() as u32
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        let deepest = self
            .patterns
            .iter()
            .map(Pattern::max_offset)
            .max()
            .unwrap_or(14)
            .min(pkt.len);
        if deepest > 0 {
            ctx.read_data(pkt, 0, deepest as u64);
        }
        for (i, p) in self.patterns.iter().enumerate() {
            ctx.compute(7);
            if p.matches(pkt.frame()) {
                return Action::Forward(i as u16);
            }
        }
        Action::Drop
    }
}

/// `Paint(COLOR)`: writes the paint annotation.
#[derive(Debug, Default)]
pub struct Paint {
    color: u8,
}

impl Element for Paint {
    fn class_name(&self) -> &'static str {
        "Paint"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        if let Some(v) = args.positional(0).or_else(|| args.get("COLOR")) {
            self.color = v.parse().map_err(|_| ConfigError::Element {
                element: String::new(),
                message: format!("bad paint color {v:?}"),
            })?;
        }
        Ok(())
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        pkt.annos.paint = self.color;
        ctx.write_meta(pkt, "paint_anno");
        ctx.compute(6);
        Action::Forward(0)
    }
}

/// `Counter`: counts packets and bytes (touches its own state line).
#[derive(Debug, Default)]
pub struct Counter {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen.
    pub bytes: u64,
}

impl Element for Counter {
    fn class_name(&self) -> &'static str {
        "Counter"
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        self.packets += 1;
        self.bytes += pkt.len as u64;
        ctx.touch_state(0, 16, AccessKind::Store);
        ctx.compute(10);
        Action::Forward(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{Annos, ExecPlan, MetadataModel};
    use pm_dpdk::RxDesc;
    use pm_mem::MemoryHierarchy;
    use pm_packet::builder::PacketBuilder;

    fn classify(cfg: &str, frame: &[u8]) -> Action {
        let mut el = Classifier::default();
        el.configure(&Args::parse(cfg)).unwrap();
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        let mut data = frame.to_vec();
        let len = data.len();
        let mut pkt = Pkt {
            data: &mut data,
            len,
            desc: RxDesc {
                buf_id: 0,
                len: len as u32,
                rss_hash: 0,
                arrival: pm_sim::SimTime::ZERO,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0x10_000,
                meta_addr: 0x20_000,
                xslot: None,
            },
            meta_addr: 0x20_000,
            annos: Annos::default(),
        };
        el.process(&mut ctx, &mut pkt)
    }

    /// The standard Click router's front classifier.
    const ROUTER_PATTERNS: &str = "12/0806 20/0001, 12/0806 20/0002, 12/0800, -";

    #[test]
    fn router_classifier_steers_correctly() {
        let arp_req = PacketBuilder::arp().build();
        assert_eq!(classify(ROUTER_PATTERNS, &arp_req), Action::Forward(0));

        let ip = PacketBuilder::tcp().build();
        assert_eq!(classify(ROUTER_PATTERNS, &ip), Action::Forward(2));

        let mut weird = PacketBuilder::tcp().build();
        weird[12] = 0x86;
        weird[13] = 0xdd; // IPv6
        assert_eq!(classify(ROUTER_PATTERNS, &weird), Action::Forward(3));
    }

    #[test]
    fn no_match_without_default_drops() {
        let ip = PacketBuilder::udp().build();
        assert_eq!(classify("12/0806", &ip), Action::Drop);
    }

    #[test]
    fn masked_match() {
        // Match any TCP packet with the SYN bit set (offset 47 = flags
        // byte for a 20-B IP header).
        let syn = PacketBuilder::tcp().syn().build();
        let ack = PacketBuilder::tcp().build();
        assert_eq!(classify("47/02%02", &syn), Action::Forward(0));
        assert_eq!(classify("47/02%02", &ack), Action::Drop);
    }

    #[test]
    fn truncated_frame_fails_deep_match() {
        let short = vec![0u8; 16];
        assert_eq!(classify("20/0001", &short), Action::Drop);
    }

    #[test]
    fn pattern_parse_errors() {
        assert!(Pattern::parse("nonsense").is_err());
        assert!(Pattern::parse("12/08001").is_err(), "odd hex length");
        assert!(Pattern::parse("x/0800").is_err());
        assert!(Pattern::parse("12/08%0bad").is_err());
        assert!(Pattern::parse("").is_err());
    }

    #[test]
    fn counter_counts() {
        let mut el = Counter::default();
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.state = pm_mem::Region {
            base: 0x1000,
            size: 64,
        };
        let mut data = vec![0u8; 100];
        let mut pkt = Pkt {
            data: &mut data,
            len: 100,
            desc: RxDesc {
                buf_id: 0,
                len: 100,
                rss_hash: 0,
                arrival: pm_sim::SimTime::ZERO,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0,
                meta_addr: 0,
                xslot: None,
            },
            meta_addr: 0,
            annos: Annos::default(),
        };
        el.process(&mut ctx, &mut pkt);
        el.process(&mut ctx, &mut pkt);
        assert_eq!(el.packets, 2);
        assert_eq!(el.bytes, 200);
    }
}
