//! A binary radix trie for IPv4 longest-prefix-match routing.
//!
//! Built from scratch as the routing substrate for `LookupIPRoute`
//! (paper §A.2: "the routing element … does a lookup for each
//! destination IP address"). The trie reports which nodes a lookup
//! visits so the element can charge those accesses to the cache model.

/// A route entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Output port.
    pub port: u16,
    /// Next-hop gateway (0 = directly connected).
    pub gateway: u32,
}

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    children: [u32; 2],
    route: Option<Route>,
}

/// A binary (one bit per level) radix trie keyed by IPv4 address.
#[derive(Debug, Clone)]
pub struct RadixTrie {
    nodes: Vec<Node>,
}

impl RadixTrie {
    /// An empty trie (root only).
    pub fn new() -> Self {
        RadixTrie {
            nodes: vec![Node {
                children: [NONE, NONE],
                route: None,
            }],
        }
    }

    /// Number of nodes (for sizing the charged region).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Inserts `prefix/len → route`, replacing any existing entry.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn insert(&mut self, prefix: u32, len: u8, route: Route) {
        assert!(len <= 32, "prefix length {len} > 32");
        let mut idx = 0usize;
        for depth in 0..len {
            let bit = ((prefix >> (31 - depth)) & 1) as usize;
            let next = self.nodes[idx].children[bit];
            idx = if next == NONE {
                self.nodes.push(Node {
                    children: [NONE, NONE],
                    route: None,
                });
                let new = (self.nodes.len() - 1) as u32;
                self.nodes[idx].children[bit] = new;
                new as usize
            } else {
                next as usize
            };
        }
        self.nodes[idx].route = Some(route);
    }

    /// Longest-prefix-match lookup, invoking `visit` with each node index
    /// walked (root first) so the caller can charge the accesses.
    pub fn lookup_visit(&self, ip: u32, mut visit: impl FnMut(u32)) -> Option<Route> {
        let mut idx = 0usize;
        let mut best = self.nodes[0].route;
        visit(0);
        for depth in 0..32 {
            let bit = ((ip >> (31 - depth)) & 1) as usize;
            let next = self.nodes[idx].children[bit];
            if next == NONE {
                break;
            }
            idx = next as usize;
            visit(next);
            if let Some(r) = self.nodes[idx].route {
                best = Some(r);
            }
        }
        best
    }

    /// Longest-prefix-match lookup without visit tracking.
    pub fn lookup(&self, ip: u32) -> Option<Route> {
        self.lookup_visit(ip, |_| {})
    }
}

impl Default for RadixTrie {
    fn default() -> Self {
        Self::new()
    }
}

/// Parses dotted-quad IPv4 text into a u32 (host order of the
/// big-endian address).
pub fn parse_ip(s: &str) -> Option<u32> {
    let mut parts = s.trim().split('.');
    let mut out = 0u32;
    for _ in 0..4 {
        let p: u32 = parts.next()?.parse().ok()?;
        if p > 255 {
            return None;
        }
        out = (out << 8) | p;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

/// Parses `a.b.c.d/len` CIDR text.
pub fn parse_cidr(s: &str) -> Option<(u32, u8)> {
    match s.split_once('/') {
        Some((ip, len)) => {
            let len: u8 = len.trim().parse().ok()?;
            if len > 32 {
                return None;
            }
            Some((parse_ip(ip)?, len))
        }
        None => Some((parse_ip(s)?, 32)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(port: u16) -> Route {
        Route { port, gateway: 0 }
    }

    #[test]
    fn parse_helpers() {
        assert_eq!(parse_ip("10.0.0.1"), Some(0x0a00_0001));
        assert_eq!(parse_ip("256.0.0.1"), None);
        assert_eq!(parse_ip("1.2.3"), None);
        assert_eq!(parse_cidr("192.168.0.0/16"), Some((0xc0a8_0000, 16)));
        assert_eq!(parse_cidr("8.8.8.8"), Some((0x0808_0808, 32)));
        assert_eq!(parse_cidr("1.0.0.0/33"), None);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RadixTrie::new();
        t.insert(0, 0, route(0)); // default
        t.insert(0x0a00_0000, 8, route(1)); // 10/8
        t.insert(0x0a01_0000, 16, route(2)); // 10.1/16
        t.insert(0x0a01_0200, 24, route(3)); // 10.1.2/24

        assert_eq!(t.lookup(0x0808_0808).unwrap().port, 0);
        assert_eq!(t.lookup(0x0aff_0001).unwrap().port, 1);
        assert_eq!(t.lookup(0x0a01_ff01).unwrap().port, 2);
        assert_eq!(t.lookup(0x0a01_0242).unwrap().port, 3);
    }

    #[test]
    fn no_default_no_match() {
        let mut t = RadixTrie::new();
        t.insert(0x0a00_0000, 8, route(1));
        assert!(t.lookup(0x0b00_0001).is_none());
        assert!(t.lookup(0x0a00_0001).is_some());
    }

    #[test]
    fn host_route() {
        let mut t = RadixTrie::new();
        t.insert(0, 0, route(0));
        t.insert(0x0a00_0001, 32, route(9));
        assert_eq!(t.lookup(0x0a00_0001).unwrap().port, 9);
        assert_eq!(t.lookup(0x0a00_0002).unwrap().port, 0);
    }

    #[test]
    fn replace_route() {
        let mut t = RadixTrie::new();
        t.insert(0x0a00_0000, 8, route(1));
        t.insert(0x0a00_0000, 8, route(7));
        assert_eq!(t.lookup(0x0a00_0005).unwrap().port, 7);
    }

    #[test]
    fn visit_depth_bounded_by_prefix() {
        let mut t = RadixTrie::new();
        t.insert(0, 0, route(0));
        t.insert(0x0a00_0000, 8, route(1));
        let mut visited = Vec::new();
        t.lookup_visit(0x0a00_0001, |n| visited.push(n));
        assert!(visited.len() <= 9, "8-bit prefix: at most 9 nodes");
        assert_eq!(visited[0], 0, "root first");
    }

    #[test]
    fn exhaustive_against_linear_scan() {
        // Differential check over a small universe.
        let prefixes = [
            (0x0000_0000u32, 0u8, 0u16),
            (0x8000_0000, 1, 1),
            (0xc000_0000, 2, 2),
            (0xc080_0000, 9, 3),
        ];
        let mut t = RadixTrie::new();
        for &(p, l, port) in &prefixes {
            t.insert(p, l, route(port));
        }
        let brute = |ip: u32| {
            prefixes
                .iter()
                .filter(|&&(p, l, _)| {
                    let mask = if l == 0 { 0 } else { u32::MAX << (32 - l) };
                    ip & mask == p & mask
                })
                .max_by_key(|&&(_, l, _)| l)
                .map(|&(_, _, port)| port)
        };
        for ip in (0..=u32::MAX).step_by(7_777_777) {
            assert_eq!(t.lookup(ip).map(|r| r.port), brute(ip), "ip={ip:#x}");
        }
    }
}
