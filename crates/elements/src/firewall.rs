//! `IPFilter`: a rule-based stateless firewall.
//!
//! An extension NF beyond the paper's five (its related work repeatedly
//! pits packet frameworks against firewalls/ACLs): first-match
//! allow/deny rules over the IPv4 5-tuple, with CIDR prefixes and port
//! ranges, evaluated on real header bytes. Rules live in a simulated
//! region charged per rule scanned, so bigger rulesets genuinely cost
//! more — useful for rule-count sweeps.

use crate::cuckoo::CuckooHash;
use crate::nat::FlowKey;
use crate::trie::parse_cidr;
use pm_click::{Action, Args, ConfigError, Ctx, Element, Pkt, TableStats};
use pm_mem::{AccessKind, AddressSpace, Region};
use pm_packet::ether::ETHER_LEN;
use pm_packet::ipv4::{IpProto, Ipv4Header};
use pm_sim::SimTime;

/// Rule verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward the packet.
    Allow,
    /// Drop the packet.
    Deny,
}

/// One filter rule (all fields are conjunctive; `None` matches any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Verdict when the rule matches.
    pub verdict: Verdict,
    /// Source prefix `(addr, len)`.
    pub src: Option<(u32, u8)>,
    /// Destination prefix.
    pub dst: Option<(u32, u8)>,
    /// IP protocol.
    pub proto: Option<u8>,
    /// Destination-port range (inclusive).
    pub dport: Option<(u16, u16)>,
}

impl Rule {
    fn matches(&self, src: u32, dst: u32, proto: u8, dport: Option<u16>) -> bool {
        let prefix_match = |p: Option<(u32, u8)>, ip: u32| match p {
            None => true,
            Some((addr, len)) => {
                let mask = if len == 0 {
                    0
                } else {
                    u32::MAX << (32 - u32::from(len))
                };
                ip & mask == addr & mask
            }
        };
        prefix_match(self.src, src)
            && prefix_match(self.dst, dst)
            && self.proto.is_none_or(|p| p == proto)
            && match self.dport {
                None => true,
                Some((lo, hi)) => dport.is_some_and(|d| (lo..=hi).contains(&d)),
            }
    }
}

/// Parses one rule from text like
/// `allow src 10.0.0.0/8 dst 192.168.0.0/16 proto tcp dport 80-443`.
pub fn parse_rule(text: &str) -> Result<Rule, ConfigError> {
    let bad = |m: String| ConfigError::Element {
        element: String::new(),
        message: m,
    };
    let mut parts = text.split_whitespace();
    let verdict = match parts.next() {
        Some("allow") => Verdict::Allow,
        Some("deny") => Verdict::Deny,
        other => {
            return Err(bad(format!(
                "rule must start with allow/deny, got {other:?}"
            )))
        }
    };
    let mut rule = Rule {
        verdict,
        src: None,
        dst: None,
        proto: None,
        dport: None,
    };
    while let Some(key) = parts.next() {
        let val = parts
            .next()
            .ok_or_else(|| bad(format!("{key} needs a value")))?;
        match key {
            "src" => {
                rule.src = Some(parse_cidr(val).ok_or_else(|| bad(format!("bad CIDR {val:?}")))?)
            }
            "dst" => {
                rule.dst = Some(parse_cidr(val).ok_or_else(|| bad(format!("bad CIDR {val:?}")))?)
            }
            "proto" => {
                rule.proto = Some(match val {
                    "tcp" => 6,
                    "udp" => 17,
                    "icmp" => 1,
                    n => n.parse().map_err(|_| bad(format!("bad proto {val:?}")))?,
                })
            }
            "dport" => {
                rule.dport = Some(match val.split_once('-') {
                    Some((lo, hi)) => (
                        lo.parse().map_err(|_| bad(format!("bad port {lo:?}")))?,
                        hi.parse().map_err(|_| bad(format!("bad port {hi:?}")))?,
                    ),
                    None => {
                        let p: u16 = val.parse().map_err(|_| bad(format!("bad port {val:?}")))?;
                        (p, p)
                    }
                })
            }
            other => return Err(bad(format!("unknown rule keyword {other:?}"))),
        }
    }
    Ok(rule)
}

/// A cached allow-verdict conntrack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ConnEntry {
    last: SimTime,
}

/// The firewall element: first-match semantics, default deny.
///
/// `CONNTRACK n` (keyword arg, not a rule) arms an n-bucket cuckoo
/// fast path that caches **allow** verdicts per 5-tuple, skipping the
/// linear rule scan for established flows; `IDLE_US t` expires cached
/// entries idle longer than `t` microseconds. Both default off, keeping
/// the stateless scan byte-identical.
#[derive(Debug, Default)]
pub struct IpFilter {
    rules: Vec<Rule>,
    rules_region: Option<Region>,
    conntrack: Option<CuckooHash<FlowKey, ConnEntry>>,
    conntrack_region: Option<Region>,
    idle: Option<SimTime>,
    /// Packets denied (by rule or by default).
    pub denied: u64,
    /// Conntrack lookups performed.
    pub lookups: u64,
    /// Conntrack hits (rule scan skipped).
    pub hits: u64,
    /// Allow verdicts inserted into the conntrack cache.
    pub insertions: u64,
    /// Conntrack entries expired by the idle timeout.
    pub expiries: u64,
}

impl Element for IpFilter {
    fn class_name(&self) -> &'static str {
        "IPFilter"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        let bad = |m: String| ConfigError::Element {
            element: String::new(),
            message: m,
        };
        for a in &args.items {
            // Policy keywords are element options, not rules.
            match a.key.as_deref() {
                Some("CONNTRACK") => {
                    let n: usize = a
                        .value
                        .parse()
                        .map_err(|_| bad(format!("bad CONNTRACK {:?}", a.value)))?;
                    self.conntrack = Some(CuckooHash::new(n));
                    continue;
                }
                Some("IDLE_US") => {
                    let us: f64 = a
                        .value
                        .parse()
                        .map_err(|_| bad(format!("bad IDLE_US {:?}", a.value)))?;
                    self.idle = Some(SimTime::from_us(us));
                    continue;
                }
                _ => {}
            }
            let text = match &a.key {
                Some(k) => format!("{k} {}", a.value),
                None => a.value.clone(),
            };
            // Click keyword parsing uppercases ALLOW/DENY; normalize.
            self.rules.push(parse_rule(&text.to_lowercase())?);
        }
        if self.rules.is_empty() {
            return Err(ConfigError::Element {
                element: String::new(),
                message: "IPFilter needs at least one rule".into(),
            });
        }
        Ok(())
    }

    fn setup(&mut self, space: &mut AddressSpace) {
        // One 32-B rule record each, two per line.
        self.rules_region = Some(space.alloc(self.rules.len() as u64 * 32));
        if let Some(ct) = &self.conntrack {
            // One cache line per bucket, like the NAT's flow table.
            self.conntrack_region = Some(space.alloc_pages(ct.bucket_count() as u64 * 64));
        }
    }

    fn param_loads(&self) -> u32 {
        1
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < ETHER_LEN + 20 {
            self.denied += 1;
            return Action::Drop;
        }
        ctx.read_data(pkt, ETHER_LEN as u64, 24);
        let Ok(ip) = Ipv4Header::parse(&pkt.frame()[ETHER_LEN..]) else {
            self.denied += 1;
            return Action::Drop;
        };
        let l4 = ETHER_LEN + ip.header_len;
        let dport = match ip.protocol {
            IpProto::TCP | IpProto::UDP if pkt.len >= l4 + 4 && !ip.is_fragment() => {
                Some(u16::from_be_bytes([
                    pkt.frame()[l4 + 2],
                    pkt.frame()[l4 + 3],
                ]))
            }
            _ => None,
        };
        let region = self.rules_region.expect("setup() ran");

        // Established-flow fast path: probe the conntrack cache before
        // paying for the linear rule scan.
        let mut ct_key = None;
        if let Some(ct) = self.conntrack.as_mut() {
            if let Some(dp) = dport {
                let sport = u16::from_be_bytes([pkt.frame()[l4], pkt.frame()[l4 + 1]]);
                let key = FlowKey {
                    src: ip.src_u32(),
                    dst: ip.dst_u32(),
                    sport,
                    dport: dp,
                    proto: ip.protocol.0,
                };
                let ct_region = self.conntrack_region.expect("setup() ran");
                self.lookups += 1;
                let mut found_bucket = 0usize;
                let hit = ct.lookup_visit(&key, |b| {
                    found_bucket = b;
                    ctx.cost += ctx.mem.access(
                        ctx.core,
                        ct_region.base + (b as u64) * 64,
                        64,
                        AccessKind::Load,
                    );
                });
                ctx.compute(48); // key assembly + two hashes + compares
                let arrival = pkt.desc.arrival;
                match (hit, self.idle) {
                    (Some(e), Some(idle)) if arrival > e.last && arrival - e.last > idle => {
                        // Stale entry: expire it and fall through to
                        // the rule scan for a fresh verdict.
                        ct.remove(&key);
                        ctx.cost += ctx.mem.access(
                            ctx.core,
                            ct_region.base + (found_bucket as u64) * 64,
                            64,
                            AccessKind::Store,
                        );
                        ctx.compute(30);
                        self.expiries += 1;
                    }
                    (Some(_), _) => {
                        self.hits += 1;
                        if self.idle.is_some() {
                            ct.update(&key, |v| v.last = arrival);
                            ctx.cost += ctx.mem.access(
                                ctx.core,
                                ct_region.base + (found_bucket as u64) * 64,
                                64,
                                AccessKind::Store,
                            );
                        }
                        ctx.compute(6);
                        return Action::Forward(0);
                    }
                    (None, _) => {}
                }
                ct_key = Some(key);
            }
        }

        for (i, rule) in self.rules.iter().enumerate() {
            // Charge the rule record scan.
            ctx.cost += ctx.mem.access(
                ctx.core,
                region.base + (i as u64) * 32,
                32,
                AccessKind::Load,
            );
            ctx.compute(7);
            if rule.matches(ip.src_u32(), ip.dst_u32(), ip.protocol.0, dport) {
                return match rule.verdict {
                    Verdict::Allow => {
                        // Cache the allow verdict for the flow's next
                        // packets (deny verdicts stay uncached: drops
                        // must keep re-consulting the ruleset).
                        if let (Some(ct), Some(key)) = (self.conntrack.as_mut(), ct_key) {
                            let ct_region = self.conntrack_region.expect("setup() ran");
                            ct.insert_visit(
                                key,
                                ConnEntry {
                                    last: pkt.desc.arrival,
                                },
                                |bk| {
                                    ctx.cost += ctx.mem.access(
                                        ctx.core,
                                        ct_region.base + (bk as u64) * 64,
                                        64,
                                        AccessKind::Store,
                                    );
                                },
                            );
                            ctx.compute(85);
                            self.insertions += 1;
                        }
                        Action::Forward(0)
                    }
                    Verdict::Deny => {
                        self.denied += 1;
                        Action::Drop
                    }
                };
            }
        }
        // Default deny.
        self.denied += 1;
        ctx.touch_state(0, 8, AccessKind::Store);
        Action::Drop
    }

    fn table_stats(&self) -> Option<TableStats> {
        let ct = self.conntrack.as_ref()?;
        Some(TableStats {
            name: String::new(),
            kind: "cuckoo",
            capacity: ct.capacity() as u64,
            occupancy: ct.len() as u64,
            lookups: self.lookups,
            hits: self.hits,
            insertions: self.insertions,
            expiries: self.expiries,
            evictions: ct.evictions(),
            displacements: ct.displacements(),
            max_chain: ct.max_chain(),
        })
    }

    fn table_regions(&self) -> Vec<Region> {
        self.conntrack_region.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{Annos, ExecPlan, MetadataModel};
    use pm_dpdk::RxDesc;
    use pm_mem::MemoryHierarchy;
    use pm_packet::builder::PacketBuilder;

    fn filter(rules: &str) -> IpFilter {
        let mut el = IpFilter::default();
        el.configure(&Args::parse(rules)).unwrap();
        el.setup(&mut AddressSpace::new());
        el
    }

    fn run(el: &mut IpFilter, frame: &mut Vec<u8>) -> Action {
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.state = pm_mem::Region {
            base: 0xc00,
            size: 64,
        };
        let len = frame.len();
        let mut pkt = Pkt {
            data: frame,
            len,
            desc: RxDesc {
                buf_id: 0,
                len: len as u32,
                rss_hash: 0,
                arrival: pm_sim::SimTime::ZERO,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0x10_000,
                meta_addr: 0x20_000,
                xslot: None,
            },
            meta_addr: 0x20_000,
            annos: Annos::default(),
        };
        el.process(&mut ctx, &mut pkt)
    }

    #[test]
    fn rule_parsing() {
        let r = parse_rule("allow src 10.0.0.0/8 proto tcp dport 80-443").unwrap();
        assert_eq!(r.verdict, Verdict::Allow);
        assert_eq!(r.src, Some((0x0a00_0000, 8)));
        assert_eq!(r.proto, Some(6));
        assert_eq!(r.dport, Some((80, 443)));
        assert!(parse_rule("frobnicate everything").is_err());
        assert!(parse_rule("allow src not.an.ip").is_err());
        assert!(parse_rule("allow dport 80-").is_err());
    }

    #[test]
    fn first_match_wins() {
        let mut el = filter("deny dst 192.168.0.0/16 proto tcp, allow proto tcp, deny proto udp");
        let mut blocked = PacketBuilder::tcp()
            .dst_ip([192, 168, 1, 1])
            .frame_len(128)
            .build();
        assert_eq!(run(&mut el, &mut blocked), Action::Drop);
        let mut ok = PacketBuilder::tcp()
            .dst_ip([8, 8, 8, 8])
            .frame_len(128)
            .build();
        assert_eq!(run(&mut el, &mut ok), Action::Forward(0));
        let mut udp = PacketBuilder::udp()
            .dst_ip([8, 8, 8, 8])
            .frame_len(128)
            .build();
        assert_eq!(run(&mut el, &mut udp), Action::Drop);
        assert_eq!(el.denied, 2);
    }

    #[test]
    fn port_ranges() {
        let mut el = filter("allow proto tcp dport 80-443");
        let mut http = PacketBuilder::tcp().dst_port(80).frame_len(128).build();
        assert_eq!(run(&mut el, &mut http), Action::Forward(0));
        let mut https = PacketBuilder::tcp().dst_port(443).frame_len(128).build();
        assert_eq!(run(&mut el, &mut https), Action::Forward(0));
        let mut ssh = PacketBuilder::tcp().dst_port(22).frame_len(128).build();
        assert_eq!(run(&mut el, &mut ssh), Action::Drop, "default deny");
    }

    #[test]
    fn icmp_matchable_without_ports() {
        let mut el = filter("allow proto icmp");
        let mut ping = PacketBuilder::icmp().frame_len(128).build();
        assert_eq!(run(&mut el, &mut ping), Action::Forward(0));
        let mut el2 = filter("allow proto icmp dport 80");
        let mut ping2 = PacketBuilder::icmp().frame_len(128).build();
        assert_eq!(
            run(&mut el2, &mut ping2),
            Action::Drop,
            "port rule can't match icmp"
        );
    }

    #[test]
    fn scanning_charges_per_rule() {
        let mut big = filter(
            "deny dst 1.0.0.0/8, deny dst 2.0.0.0/8, deny dst 3.0.0.0/8, \
             deny dst 4.0.0.0/8, allow proto tcp",
        );
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.state = pm_mem::Region {
            base: 0xc00,
            size: 64,
        };
        let mut f = PacketBuilder::tcp()
            .dst_ip([8, 8, 8, 8])
            .frame_len(128)
            .build();
        let len = f.len();
        let mut pkt = Pkt {
            data: &mut f,
            len,
            desc: RxDesc {
                buf_id: 0,
                len: len as u32,
                rss_hash: 0,
                arrival: pm_sim::SimTime::ZERO,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0x10_000,
                meta_addr: 0x20_000,
                xslot: None,
            },
            meta_addr: 0x20_000,
            annos: Annos::default(),
        };
        let a = big.process(&mut ctx, &mut pkt);
        assert_eq!(a, Action::Forward(0));
        // Five rules scanned: ≥ 5 charged loads + per-rule compute.
        assert!(ctx.cost.instructions >= 5 * 7);
    }

    #[test]
    fn empty_ruleset_rejected() {
        let mut el = IpFilter::default();
        assert!(el.configure(&Args::parse("")).is_err());
        // Policy keywords alone don't make a ruleset either.
        let mut el = IpFilter::default();
        assert!(el.configure(&Args::parse("CONNTRACK 64")).is_err());
    }

    fn run_at(el: &mut IpFilter, frame: &mut Vec<u8>, arrival: SimTime) -> Action {
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.state = pm_mem::Region {
            base: 0xc00,
            size: 64,
        };
        let len = frame.len();
        let mut pkt = Pkt {
            data: frame,
            len,
            desc: RxDesc {
                buf_id: 0,
                len: len as u32,
                rss_hash: 0,
                arrival,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0x10_000,
                meta_addr: 0x20_000,
                xslot: None,
            },
            meta_addr: 0x20_000,
            annos: Annos::default(),
        };
        el.process(&mut ctx, &mut pkt)
    }

    #[test]
    fn conntrack_caches_allow_but_not_deny() {
        let mut el = filter("CONNTRACK 256, allow proto tcp dport 80, deny proto tcp");
        let mut http = PacketBuilder::tcp().dst_port(80).frame_len(128).build();
        assert_eq!(run(&mut el, &mut http), Action::Forward(0));
        assert_eq!(el.insertions, 1, "allow verdict cached");
        assert_eq!(el.hits, 0);
        let mut http2 = PacketBuilder::tcp().dst_port(80).frame_len(128).build();
        assert_eq!(run(&mut el, &mut http2), Action::Forward(0));
        assert_eq!(el.hits, 1, "second packet hits the cache");
        let mut ssh = PacketBuilder::tcp().dst_port(22).frame_len(128).build();
        assert_eq!(run(&mut el, &mut ssh), Action::Drop);
        assert_eq!(run(&mut el, &mut ssh.clone()), Action::Drop);
        assert_eq!(el.insertions, 1, "deny verdicts stay uncached");
        let stats = el.table_stats().unwrap();
        assert_eq!(stats.kind, "cuckoo");
        assert_eq!(stats.occupancy, 1);
        assert_eq!(el.table_regions().len(), 1);
    }

    #[test]
    fn conntrack_idle_timeout_rescans() {
        let mut el = filter("CONNTRACK 256, IDLE_US 10, allow proto tcp dport 80");
        let mk = || PacketBuilder::tcp().dst_port(80).frame_len(128).build();
        assert_eq!(
            run_at(&mut el, &mut mk(), SimTime::ZERO),
            Action::Forward(0)
        );
        assert_eq!(
            run_at(&mut el, &mut mk(), SimTime::from_us(5.0)),
            Action::Forward(0)
        );
        assert_eq!(el.hits, 1);
        assert_eq!(el.expiries, 0);
        assert_eq!(
            run_at(&mut el, &mut mk(), SimTime::from_us(100.0)),
            Action::Forward(0)
        );
        assert_eq!(el.expiries, 1, "stale entry expired");
        assert_eq!(el.insertions, 2, "re-scanned and re-cached");
    }

    #[test]
    fn stateless_filter_reports_no_table() {
        let mut el = filter("allow proto tcp");
        let mut f = PacketBuilder::tcp().frame_len(128).build();
        run(&mut el, &mut f);
        assert!(el.table_stats().is_none());
        assert!(el.table_regions().is_empty());
    }
}
