//! `WorkPackage(W, S, N)`: the paper's synthetic memory/compute element
//! (§A.4).
//!
//! Per packet it performs `N` pseudo-random 8-byte reads into a static
//! array of `S` megabytes (driving the LLC behaviour of Figs. 7 and 9)
//! and generates `W` pseudo-random numbers (pure compute). Both halves
//! are real: the random accesses walk a simulated region through the
//! cache model, and the random numbers come from an actual SplitMix64.

use pm_click::{Action, Args, ConfigError, Ctx, Element, Pkt};
use pm_mem::{AccessKind, AddressSpace, Region};
use pm_sim::SplitMix64;

/// Instructions charged per generated pseudo-random number (SplitMix64
/// is ~6 ALU ops; Click's `WorkPackage` uses a similar LCG loop).
const INSTR_PER_RAND: u64 = 8;

/// The synthetic workload element.
#[derive(Debug)]
pub struct WorkPackage {
    /// Pseudo-random numbers generated per packet.
    pub w: u32,
    /// Accessed-array size in bytes.
    pub s_bytes: u64,
    /// Random array accesses per packet.
    pub n: u32,
    array: Option<Region>,
    warmed: bool,
    rng: SplitMix64,
    /// Running sum of generated numbers (prevents dead-code elimination
    /// of the real RNG work and is observable in tests).
    pub sink: u64,
}

impl Default for WorkPackage {
    fn default() -> Self {
        WorkPackage {
            w: 0,
            s_bytes: 1024 * 1024,
            n: 1,
            array: None,
            warmed: false,
            rng: SplitMix64::new(0xBEEF_F00D),
            sink: 0,
        }
    }
}

impl Element for WorkPackage {
    fn class_name(&self) -> &'static str {
        "WorkPackage"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        self.w = args.get_u32("W", self.w)?;
        // S is given in MB in the paper's plots; accept fractional KB via
        // the S_KB escape hatch for fine sweeps.
        if let Some(kb) = args.get("S_KB") {
            let kb: u64 = kb.parse().map_err(|_| ConfigError::Element {
                element: String::new(),
                message: format!("bad S_KB {kb:?}"),
            })?;
            self.s_bytes = kb * 1024;
        } else {
            self.s_bytes =
                u64::from(args.get_u32("S", (self.s_bytes / (1024 * 1024)) as u32)?) * 1024 * 1024;
        }
        self.n = args.get_u32("N", self.n)?;
        Ok(())
    }

    fn setup(&mut self, space: &mut AddressSpace) {
        if self.s_bytes > 0 && self.n > 0 {
            self.array = Some(space.alloc_pages(self.s_bytes));
        }
    }

    fn param_loads(&self) -> u32 {
        3
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, _pkt: &mut Pkt<'_>) -> Action {
        // Model the long-running steady state: after billions of packets
        // the array is as cache-resident as capacity allows. Simulation
        // runs are far too short to coupon-collect a multi-MB array, so
        // warm it once (uncharged, uncounted).
        if !self.warmed {
            if let Some(a) = self.array {
                ctx.mem.warm(ctx.core, a.base, a.size);
            }
            self.warmed = true;
        }
        // W pseudo-random numbers: pure compute.
        for _ in 0..self.w {
            self.sink = self.sink.wrapping_add(self.rng.next_u64());
        }
        ctx.compute(u64::from(self.w) * INSTR_PER_RAND + 4);

        // N random accesses into the S-MB array.
        if let Some(array) = self.array {
            for _ in 0..self.n {
                let off = self.rng.next_below(array.size.max(8) - 7) & !7;
                ctx.cost += ctx.mem.access(ctx.core, array.at(off), 8, AccessKind::Load);
                ctx.compute(3);
            }
        }
        Action::Forward(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{Annos, ExecPlan, MetadataModel};
    use pm_dpdk::RxDesc;
    use pm_mem::MemoryHierarchy;

    fn run_n(el: &mut WorkPackage, mem: &mut MemoryHierarchy, packets: usize) -> pm_mem::Cost {
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut total = pm_mem::Cost::ZERO;
        for _ in 0..packets {
            let mut ctx = Ctx::new(0, mem, &plan);
            let mut data = vec![0u8; 64];
            let mut pkt = Pkt {
                data: &mut data,
                len: 64,
                desc: RxDesc {
                    buf_id: 0,
                    len: 64,
                    rss_hash: 0,
                    arrival: pm_sim::SimTime::ZERO,
                    gen: pm_sim::SimTime::ZERO,
                    seq: 0,
                    data_addr: 0x10_000,
                    meta_addr: 0x20_000,
                    xslot: None,
                },
                meta_addr: 0x20_000,
                annos: Annos::default(),
            };
            el.process(&mut ctx, &mut pkt);
            total += ctx.take_cost();
        }
        total
    }

    fn element(w: u32, s_mb: u32, n: u32) -> WorkPackage {
        let mut el = WorkPackage::default();
        el.configure(&Args::parse(&format!("W {w}, S {s_mb}, N {n}")))
            .unwrap();
        el.setup(&mut AddressSpace::new());
        el
    }

    #[test]
    fn w_adds_compute() {
        let mut mem = MemoryHierarchy::skylake(1);
        let c0 = run_n(&mut element(0, 0, 0), &mut mem, 100);
        let c20 = run_n(&mut element(20, 0, 0), &mut mem, 100);
        assert!(c20.instructions > c0.instructions + 100 * 19 * INSTR_PER_RAND);
        assert_eq!(c20.uncore_ns, c0.uncore_ns, "W is pure compute");
    }

    #[test]
    fn rng_really_runs() {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut el = element(4, 0, 0);
        run_n(&mut el, &mut mem, 10);
        assert_ne!(el.sink, 0);
    }

    #[test]
    fn big_arrays_cost_more_memory_time() {
        // Steady-state: a 256-KB array lives in L2; a 16-MB array misses.
        let mut mem_small = MemoryHierarchy::skylake(1);
        let mut small = WorkPackage::default();
        small.configure(&Args::parse("W 0, S_KB 256, N 1")).unwrap();
        small.setup(&mut AddressSpace::new());
        // Warm until the whole 4096-line array is L2-resident.
        run_n(&mut small, &mut mem_small, 40_000);
        let c_small = run_n(&mut small, &mut mem_small, 2000);

        let mut mem_big = MemoryHierarchy::skylake(1);
        let mut big = element(0, 16, 1);
        run_n(&mut big, &mut mem_big, 2000);
        let c_big = run_n(&mut big, &mut mem_big, 2000);

        assert!(
            c_big.uncore_ns > c_small.uncore_ns * 3.0,
            "16 MB ({:.0} ns) should stall far more than 256 KB ({:.0} ns)",
            c_big.uncore_ns,
            c_small.uncore_ns
        );
    }

    #[test]
    fn n_scales_accesses() {
        let mut mem = MemoryHierarchy::skylake(1);
        run_n(&mut element(0, 4, 1), &mut mem, 500);
        let loads_n1 = mem.counters().loads;
        let mut mem2 = MemoryHierarchy::skylake(1);
        run_n(&mut element(0, 4, 5), &mut mem2, 500);
        let loads_n5 = mem2.counters().loads;
        assert!(loads_n5 >= loads_n1 * 4, "{loads_n5} vs {loads_n1}");
    }

    #[test]
    fn zero_s_means_no_array() {
        let mut el = element(4, 0, 5);
        assert!(el.array.is_none());
        let mut mem = MemoryHierarchy::skylake(1);
        let c = run_n(&mut el, &mut mem, 10);
        assert_eq!(c.uncore_ns, 0.0);
    }
}
